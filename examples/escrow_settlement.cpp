// Escrow settlement: non-signature scripts under possible-world reasoning.
//
// Section 2 of the paper notes Bitcoin outputs can demand more than a
// signature: a hash preimage, or several signatures matching different
// public keys. This example locks a payment under a 2-of-3 escrow
// (buyer, seller, arbiter) plus a hash-locked bounty, then uses denial
// constraints to audit the settlement space: can the funds be released
// twice? can the bounty and the refund coexist?
//
// Run: ./build/examples/escrow_settlement

#include <cstdio>

#include "bitcoin/script.h"
#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "query/parser.h"

using namespace bcdb;
using namespace bcdb::bitcoin;

namespace {

bool Ask(DcSatEngine& engine, const char* question, const char* text,
         bool expect_satisfied) {
  auto q = ParseDenialConstraint(text);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return false;
  }
  auto result = engine.Check(*q);
  if (!result.ok()) {
    std::printf("check error: %s\n", result.status().ToString().c_str());
    return false;
  }
  std::printf("%-46s %s\n", question,
              result->satisfied ? "NO (impossible in every world)"
                                : "YES (possible)");
  return result->satisfied == expect_satisfied;
}

}  // namespace

int main() {
  Blockchain chain;

  // Buyer funds two outputs: a 2-of-3 escrow for the purchase, and a
  // hash-locked bounty anyone can claim with the delivery receipt code.
  auto escrow = Script::MultiSig(2, {"BuyerPk", "SellerPk", "ArbiterPk"});
  if (!escrow.ok()) return 1;
  const std::string bounty = Script::HashLock("receipt-7421");

  BitcoinTransaction funding(
      {}, {TxOutput{*escrow, 8 * kCoin}, TxOutput{bounty, 2 * kCoin}});
  if (!chain.MineAndAppend({funding}).ok()) return 1;
  std::printf("Escrow funded: 8 BTC under 2-of-3 {Buyer, Seller, Arbiter}, "
              "2 BTC hash-locked bounty.\n\n");

  SimulatedNode node(chain);
  const OutPoint escrow_out{funding.txid(), 1};
  const OutPoint bounty_out{funding.txid(), 2};

  // Settlement candidates broadcast to the network:
  // (a) seller + arbiter release the purchase to the seller;
  auto release_witness = Script::MultiSigWitness(*escrow, {1, 2});
  if (!release_witness.ok()) return 1;
  BitcoinTransaction release(
      {TxInput{escrow_out, *escrow, 8 * kCoin, *release_witness}},
      {TxOutput{"SellerPk", 8 * kCoin}});
  // (b) buyer + arbiter refund the buyer — conflicts with (a);
  auto refund_witness = Script::MultiSigWitness(*escrow, {0, 2});
  if (!refund_witness.ok()) return 1;
  BitcoinTransaction refund(
      {TxInput{escrow_out, *escrow, 8 * kCoin, *refund_witness}},
      {TxOutput{"BuyerPk", 8 * kCoin}});
  // (c) the courier claims the bounty with the receipt preimage.
  BitcoinTransaction claim(
      {TxInput{bounty_out, bounty, 2 * kCoin, "receipt-7421"}},
      {TxOutput{"CourierPk", 2 * kCoin}});

  for (const BitcoinTransaction& tx : {release, refund, claim}) {
    if (!node.SubmitTransaction(tx).ok()) return 1;
  }
  std::printf("Pending: release (seller+arbiter), refund (buyer+arbiter), "
              "bounty claim — %zu conflicting pair(s) in the mempool.\n\n",
              node.mempool().ConflictPairs().size());

  auto db = BuildBlockchainDatabase(node);
  if (!db.ok()) return 1;
  DcSatEngine engine(&*db);

  bool all_as_expected = true;
  all_as_expected &= Ask(engine, "Can the seller be paid?",
                         "q() :- TxOut(t, s, 'SellerPk', a)", false);
  all_as_expected &= Ask(engine, "Can the buyer be refunded?",
                         "q() :- TxOut(t, s, 'BuyerPk', a)", false);
  all_as_expected &=
      Ask(engine, "Can BOTH release and refund happen?",
          "q() :- TxOut(t1, s1, 'SellerPk', a1), TxOut(t2, s2, 'BuyerPk', a2)",
          true);
  all_as_expected &= Ask(engine, "Can the courier collect the bounty?",
                         "q() :- TxOut(t, s, 'CourierPk', a)", false);
  all_as_expected &= Ask(
      engine, "Can the bounty coexist with the refund?",
      "q() :- TxOut(t1, s1, 'CourierPk', a1), TxOut(t2, s2, 'BuyerPk', a2)",
      false);
  all_as_expected &= Ask(
      engine, "Can anyone ever collect more than 8 BTC?",
      "[q(sum(a)) :- TxOut(t, s, 'SellerPk', a)] > 800000000", true);

  std::printf(
      "\nThe 2-of-3 escrow behaves exactly like the paper's conflicting "
      "transactions: release\nand refund spend the same output, so every "
      "possible world settles at most one of them,\nwhile the independent "
      "bounty claim composes freely with either outcome.\n");
  return all_as_expected ? 0 : 1;
}
