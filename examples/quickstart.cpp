// Quickstart: the paper's Example 4.
//
// Alice paid Bob one bitcoin, but the transaction lingers unconfirmed. She
// wants to re-issue the payment — but once both transaction messages are
// out, *both* may eventually be appended to the blockchain. Before
// broadcasting, she runs a dry run: add the hypothetical second transaction
// to the pending set and check the denial constraint "Bob is paid twice".
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "bitcoin/to_relational.h"
#include "core/dcsat.h"

using namespace bcdb;

namespace {

Tuple Out(std::int64_t tx, std::int64_t ser, const char* pk,
          std::int64_t amount) {
  return Tuple({Value::Int(tx), Value::Int(ser), Value::Str(pk),
                Value::Int(amount)});
}

Tuple In(std::int64_t prev_tx, std::int64_t prev_ser, const char* pk,
         std::int64_t amount, std::int64_t new_tx, const char* sig) {
  return Tuple({Value::Int(prev_tx), Value::Int(prev_ser), Value::Str(pk),
                Value::Int(amount), Value::Int(new_tx), Value::Str(sig)});
}

void Report(const char* label, const DcSatResult& result) {
  std::printf("%-28s -> %s (algorithm: %s, worlds evaluated: %zu)\n", label,
              result.satisfied ? "SAFE: cannot happen in any possible world"
                               : "DANGER: happens in some possible world",
              DcSatAlgorithmToString(result.stats.algorithm_used),
              result.stats.num_worlds_evaluated);
}

}  // namespace

int main() {
  // A blockchain database D = (R, I, T) over the paper's Example-1 schema:
  // TxOut(txId, ser, pk, amount), TxIn(prevTxId, prevSer, pk, amount,
  // newTxId, sig), with keys and inclusion dependencies.
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  auto constraints = bitcoin::MakeBitcoinConstraints(catalog);
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(*constraints));
  if (!db.ok()) {
    std::printf("setup failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Current state R: Alice owns two confirmed 1-BTC outputs (txs 101, 102).
  (void)db->InsertCurrent("TxOut", Out(101, 1, "AlicePK", 1));
  (void)db->InsertCurrent("TxOut", Out(102, 1, "AlicePK", 1));

  // Pending payment #1: Alice -> Bob, spending output (101, 1) as tx 201.
  Transaction first_payment("pay-bob-1");
  first_payment.Add("TxIn", In(101, 1, "AlicePK", 1, 201, "AliceSig"));
  first_payment.Add("TxOut", Out(201, 1, "BobPK", 1));
  (void)db->AddPending(first_payment);

  // The denial constraint q1 of Example 4: two *different* transactions in
  // which Alice transfers 1 BTC to Bob. The engine parses and compiles the
  // text itself (DcSatEngine::Check(std::string_view)).
  const char* q1 =
      "q1() :- TxIn(pt1, ps1, 'AlicePK', 1, ntx1, 'AliceSig'), "
      "        TxOut(ntx1, ns1, 'BobPK', 1), "
      "        TxIn(pt2, ps2, 'AlicePK', 1, ntx2, 'AliceSig'), "
      "        TxOut(ntx2, ns2, 'BobPK', 1), ntx1 != ntx2";
  std::printf("Denial constraint:\n  %s\n\n", q1);

  DcSatEngine engine(&*db);

  // With only the first payment pending, Bob cannot be paid twice.
  auto before = engine.Check(q1);
  if (!before.ok()) {
    std::printf("check failed: %s\n", before.status().ToString().c_str());
    return 1;
  }
  Report("before re-issuing", *before);

  // Dry run A (what Example 4 warns about): re-issue by spending Alice's
  // *other* output (102, 1) as tx 202. Both payments can then coexist.
  Transaction careless_reissue("pay-bob-2-careless");
  careless_reissue.Add("TxIn", In(102, 1, "AlicePK", 1, 202, "AliceSig"));
  careless_reissue.Add("TxOut", Out(202, 1, "BobPK", 1));
  auto careless_id = db->AddPending(careless_reissue);
  auto careless = engine.Check(q1);
  Report("dry run: careless re-issue", *careless);

  // Retract the hypothetical transaction (a dry run never broadcasts).
  (void)db->DiscardPending(*careless_id);

  // Dry run B (the remedy Section 2 describes): make the transactions
  // *conflict* by spending the same output (101, 1) as tx 203. The key
  // constraint on TxIn(prevTxId, prevSer) rules out their coexistence.
  Transaction conflicting_reissue("pay-bob-2-conflicting");
  conflicting_reissue.Add("TxIn", In(101, 1, "AlicePK", 1, 203, "AliceSig"));
  conflicting_reissue.Add("TxOut", Out(203, 1, "BobPK", 1));
  (void)db->AddPending(conflicting_reissue);
  auto safe = engine.Check(q1);
  Report("dry run: conflicting re-issue", *safe);

  std::printf(
      "\nConclusion: re-issue the payment as a conflicting transaction — in "
      "every possible\nworld at most one of the two spends of output "
      "(101, 1) is accepted, so Bob is paid once.\n");
  return before->satisfied && !careless->satisfied && safe->satisfied ? 0 : 1;
}
