// Template fleet: register ONE constraint template, bind many members, and
// watch Poll decide the whole class with a single shared batch check.
//
// The monitor's registration API is template-first (DESIGN.md §13):
//
//   RegisterTemplate("payout", "q() :- TxOut(t, s, $pk, a)")  -> class
//   Bind(class, {Value::Str("U8Pk")})                         -> member
//
// and plain Add canonicalizes ground constraints into singleton-bound
// classes of their own, deduplicated by α-renamed skeleton + footprint
// (RegisterTemplate classes stay distinct — a label names exactly the fleet
// you bound to it). Below: one registered class with four bound members,
// plus two ground Adds that collapse onto one shared Add-class. Each class
// costs one compiled query + one component decomposition + one clique
// enumeration per poll, whatever its member count (see bench_monitor_fanout
// for the 10^5/10^6-member numbers).
//
// Run: ./build/examples/template_fleet

#include <cstdio>
#include <string>
#include <vector>

#include "bitcoin/to_relational.h"
#include "core/monitor.h"
#include "query/parser.h"

using namespace bcdb;

namespace {

void Report(const ConstraintMonitor& monitor,
            const std::vector<ConstraintMonitor::Change>& changes) {
  for (const ConstraintMonitor::Change& change : changes) {
    std::printf("  %-28s %-10s -> %-10s (template %s, binding %s)\n",
                monitor.label(change.handle).c_str(),
                ConstraintMonitor::VerdictToString(change.before),
                ConstraintMonitor::VerdictToString(change.after),
                change.template_label.c_str(), change.binding_summary.c_str());
  }
  const ConstraintMonitor::PollStats& stats = monitor.poll_stats();
  std::printf("  [classes=%zu, batch checks so far=%zu, members batched=%zu]\n",
              monitor.num_classes(), stats.classes_evaluated,
              stats.constraints_batched);
}

}  // namespace

int main() {
  // The paper's Bitcoin schema with its key constraints; a tiny chain state
  // plus three competing pending payouts.
  Catalog catalog = bitcoin::MakeBitcoinCatalog();
  auto constraints = bitcoin::MakeBitcoinConstraints(catalog);
  if (!constraints.ok()) return 1;
  auto db = BlockchainDatabase::Create(std::move(catalog),
                                       *std::move(constraints));
  if (!db.ok()) return 1;

  // On-chain: transaction 1 already paid AlicePk.
  if (!db->InsertCurrent("TxOut", Tuple({Value::Int(1), Value::Int(0),
                                         Value::Str("AlicePk"), Value::Int(5)}))
           .ok()) {
    return 1;
  }
  // Mempool: two transactions spending the same output (txId 2 — only one
  // can ever apply under the TxOut key) plus an independent payment.
  std::vector<PendingId> pending;
  for (const char* pk : {"BobPk", "CarolPk"}) {
    Transaction txn;
    txn.Add("TxOut",
            Tuple({Value::Int(2), Value::Int(0), Value::Str(pk), Value::Int(3)}));
    auto id = db->AddPending(txn);
    if (!id.ok()) return 1;
    pending.push_back(*id);
  }
  Transaction txn;
  txn.Add("TxOut", Tuple({Value::Int(3), Value::Int(0), Value::Str("DanPk"),
                          Value::Int(7)}));
  if (!db->AddPending(txn).ok()) return 1;

  // One template, one fleet: "was $pk ever paid?" per watched key.
  ConstraintMonitor monitor(&*db);
  auto payout = monitor.RegisterTemplate("payout", "q() :- TxOut(t, s, $pk, a)");
  if (!payout.ok()) {
    std::printf("RegisterTemplate failed: %s\n",
                payout.status().ToString().c_str());
    return 1;
  }
  for (const char* pk : {"AlicePk", "BobPk", "CarolPk", "MalloryPk"}) {
    if (!monitor.Bind(*payout, {Value::Str(pk)}).ok()) return 1;
  }
  // Ground Adds of the same shape canonicalize onto ONE shared Add-class:
  // each constant is extracted into a binding and the α-renamed skeletons
  // match, so these two members ride one batch check too.
  for (const auto& [label, pk] :
       {std::pair{"dan-paid", "'DanPk'"}, std::pair{"eve-paid", "'EvePk'"}}) {
    auto ground = ParseDenialConstraint(std::string("q() :- TxOut(t, s, ") +
                                        pk + ", a)");
    if (!ground.ok() || !monitor.Add(label, *std::move(ground)).ok()) {
      return 1;
    }
  }

  std::printf("initial poll (2 classes, 6 members, 2 batch checks):\n");
  auto changes = monitor.Poll();
  if (!changes.ok()) return 1;
  Report(monitor, *changes);

  // Consensus picks Bob's spend: Carol's rival becomes impossible forever,
  // Bob's payment is now on-chain.
  if (!db->ApplyPending(pending[0]).ok()) return 1;
  if (!db->DiscardPending(pending[1]).ok()) return 1;
  std::printf("after the Bob/Carol conflict resolves:\n");
  changes = monitor.Poll();
  if (!changes.ok()) return 1;
  Report(monitor, *changes);
  return 0;
}
