// Mempool monitor: standing denial constraints on a live simulated node.
//
// A node runs the synthetic workload generator, which plants conflicting
// double-spend pairs in the mempool, then keeps mining blocks. After every
// block the monitor rebuilds the blockchain database (current chain +
// surviving mempool) and a ConstraintMonitor re-evaluates, for each
// double-spend rival payout, whether it (a) already happened on the chain,
// (b) can still happen in some possible world, or (c) has become
// impossible in every possible world — the uncertainty collapsing as
// consensus picks winners.
//
// Run: ./build/examples/mempool_monitor [--budget-ms N]
//
// --budget-ms N caps every constraint check at N milliseconds of wall
// clock. A check that cannot finish in time reports "undecided" instead of
// stalling the poll; the monitor retries it on later polls with an
// escalating budget until the verdict settles. 0 (the default) disables
// the budget entirely.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "core/monitor.h"
#include "workload/constraints.h"

using namespace bcdb;
using namespace bcdb::bitcoin;

int main(int argc, char** argv) {
  double budget_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::atof(argv[++i]);
    } else {
      std::printf("usage: %s [--budget-ms N]\n", argv[0]);
      return 1;
    }
  }
  GeneratorParams params;
  params.seed = 2026;
  params.num_blocks = 60;
  params.num_users = 16;
  params.num_pending = 40;
  params.num_contradictions = 5;
  params.pending_chain_depth = 4;
  params.star_size = 3;
  params.rich_payments = 3;

  auto workload = GenerateWorkload(params);
  if (!workload.ok()) {
    std::printf("generation failed: %s\n",
                workload.status().ToString().c_str());
    return 1;
  }
  SimulatedNode node = std::move(workload->node);

  // One standing constraint per injected double spend: "the rival payout
  // to DoubleSpendRcpt<c>Pk is received". While both sides of the conflict
  // are pending it is possible; once a block confirms either side, it
  // either happened or became impossible forever.
  std::vector<DenialConstraint> standing;
  for (std::size_t c = 0; c < params.num_contradictions; ++c) {
    standing.push_back(workload::MakeSimpleConstraint(
        "DoubleSpendRcpt" + std::to_string(c) + "Pk"));
  }

  MinerPolicy policy;
  policy.miner_pubkey = "MonitorMinerPk";
  policy.max_transactions = 14;  // Small blocks: resolution takes rounds.

  std::printf("Standing constraints: rival double-spend payout #c received\n");
  if (budget_ms > 0) {
    std::printf("Per-check budget: %.3f ms (timed-out checks report "
                "\"undecided\")\n",
                budget_ms);
  }
  std::printf("\n");
  std::printf("height | mempool |");
  for (std::size_t c = 0; c < standing.size(); ++c) {
    std::printf(" rival %zu    |", c);
  }
  std::printf("\n-------+---------+");
  for (std::size_t c = 0; c < standing.size(); ++c) {
    std::printf("------------+");
  }
  std::printf("\n");

  for (int round = 0; round <= 5; ++round) {
    auto db = BuildBlockchainDatabase(node);
    if (!db.ok()) {
      std::printf("load failed: %s\n", db.status().ToString().c_str());
      return 1;
    }
    // The database is rebuilt per block, so the monitor is too; within a
    // block interval its Poll would track mempool churn incrementally.
    MonitorOptions monitor_options;
    monitor_options.budget.deadline_ms = budget_ms;
    ConstraintMonitor monitor(&*db, monitor_options);
    std::vector<MonitorHandle> handles;
    for (std::size_t c = 0; c < standing.size(); ++c) {
      auto handle = monitor.Add("rival " + std::to_string(c), standing[c]);
      if (!handle.ok()) {
        std::printf("add failed: %s\n", handle.status().ToString().c_str());
        return 1;
      }
      handles.push_back(*handle);
    }
    if (auto polled = monitor.Poll(); !polled.ok()) {
      std::printf("poll failed: %s\n", polled.status().ToString().c_str());
      return 1;
    }
    std::printf("%6zu | %7zu |", node.chain().height(),
                node.mempool().size());
    for (MonitorHandle handle : handles) {
      std::printf(" %-10s |",
                  ConstraintMonitor::VerdictToString(monitor.verdict(handle)));
    }
    std::printf("\n");
    if (round < 5) {
      if (!node.MineBlock(policy).ok()) return 1;
    }
  }

  std::printf(
      "\nEach conflicting pair resolves once a block confirms one side: the "
      "rival payout\neither lands on the chain (happened) or its transaction "
      "is evicted as permanently\nconflicted (impossible). Until then DCSat "
      "reports it as a genuine possible future.\n");
  return 0;
}
