// Mempool monitor: standing denial constraints on a live simulated node.
//
// A node runs the synthetic workload generator, which plants conflicting
// double-spend pairs in the mempool, then keeps mining blocks. After every
// block the monitor rebuilds the blockchain database (current chain +
// surviving mempool) and re-evaluates, for each double-spend rival payout,
// whether it (a) already happened on the chain, (b) can still happen in
// some possible world, or (c) has become impossible in every possible
// world — the uncertainty collapsing as consensus picks winners.
//
// Run: ./build/examples/mempool_monitor

#include <cstdio>
#include <string>
#include <vector>

#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "query/compiled_query.h"
#include "workload/constraints.h"

using namespace bcdb;
using namespace bcdb::bitcoin;

namespace {

/// happened on chain / still possible / impossible.
std::string Verdict(BlockchainDatabase& db, DcSatEngine& engine,
                    const DenialConstraint& q) {
  auto compiled = CompiledQuery::Compile(q, &db.database());
  if (!compiled.ok()) return "compile error";
  if (compiled->Evaluate(db.BaseView())) return "HAPPENED";
  auto result = engine.Check(q);
  if (!result.ok()) return "check error";
  return result->satisfied ? "impossible" : "possible";
}

}  // namespace

int main() {
  GeneratorParams params;
  params.seed = 2026;
  params.num_blocks = 60;
  params.num_users = 16;
  params.num_pending = 40;
  params.num_contradictions = 5;
  params.pending_chain_depth = 4;
  params.star_size = 3;
  params.rich_payments = 3;

  auto workload = GenerateWorkload(params);
  if (!workload.ok()) {
    std::printf("generation failed: %s\n",
                workload.status().ToString().c_str());
    return 1;
  }
  SimulatedNode node = std::move(workload->node);

  // One standing constraint per injected double spend: "the rival payout
  // to DoubleSpendRcpt<c>Pk is received". While both sides of the conflict
  // are pending it is possible; once a block confirms either side, it
  // either happened or became impossible forever.
  std::vector<DenialConstraint> standing;
  for (std::size_t c = 0; c < params.num_contradictions; ++c) {
    standing.push_back(workload::MakeSimpleConstraint(
        "DoubleSpendRcpt" + std::to_string(c) + "Pk"));
  }

  MinerPolicy policy;
  policy.miner_pubkey = "MonitorMinerPk";
  policy.max_transactions = 14;  // Small blocks: resolution takes rounds.

  std::printf("Standing constraints: rival double-spend payout #c received\n\n");
  std::printf("height | mempool |");
  for (std::size_t c = 0; c < standing.size(); ++c) {
    std::printf(" rival %zu    |", c);
  }
  std::printf("\n-------+---------+");
  for (std::size_t c = 0; c < standing.size(); ++c) {
    std::printf("------------+");
  }
  std::printf("\n");

  for (int round = 0; round <= 5; ++round) {
    auto db = BuildBlockchainDatabase(node);
    if (!db.ok()) {
      std::printf("load failed: %s\n", db.status().ToString().c_str());
      return 1;
    }
    DcSatEngine engine(&*db);
    std::printf("%6zu | %7zu |", node.chain().height(),
                node.mempool().size());
    for (const DenialConstraint& q : standing) {
      std::printf(" %-10s |", Verdict(*db, engine, q).c_str());
    }
    std::printf("\n");
    if (round < 5) {
      if (!node.MineBlock(policy).ok()) return 1;
    }
  }

  std::printf(
      "\nEach conflicting pair resolves once a block confirms one side: the "
      "rival payout\neither lands on the chain (HAPPENED) or its transaction "
      "is evicted as permanently\nconflicted (impossible). Until then DCSat "
      "reports it as a genuine possible future.\n");
  return 0;
}
