// Network divergence: denial constraints are a *local* judgment.
//
// The paper (footnote 6) notes that the pending set T is not necessarily
// identical across nodes at a given moment — transactions propagate by
// gossip. This example runs a 6-node P2P simulation: an exchange broadcasts
// a withdrawal at node 0, and every node answers the same denial constraint
// ("the customer can be paid") from its own chain + mempool while the
// gossip is still in flight. Verdicts disagree until the network converges.
//
// Run: ./build/examples/network_divergence

#include <cstdio>
#include <string>

#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "network/simulator.h"
#include "query/parser.h"

using namespace bcdb;
using namespace bcdb::net;
using namespace bcdb::bitcoin;

namespace {

std::string VerdictAt(const NetworkSimulator& net, NodeId v) {
  auto db = BuildBlockchainDatabase(net.node(v));
  if (!db.ok()) return "error";
  DcSatEngine engine(&*db);
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'CustomerPk', a)");
  if (!q.ok()) return "error";
  auto result = engine.Check(*q);
  if (!result.ok()) return "error";
  return result->satisfied ? "impossible" : "possible";
}

void PrintRow(const NetworkSimulator& net) {
  std::printf("t=%5.2fs |", net.now());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    std::printf(" node%zu: %-10s |", v, VerdictAt(net, v).c_str());
  }
  std::printf(" jaccard(0,%zu)=%.2f\n", net.num_nodes() - 1,
              net.MempoolJaccard(0, net.num_nodes() - 1));
}

}  // namespace

int main() {
  NetworkParams params;
  params.num_nodes = 6;
  params.extra_edges = 0;  // Ring: propagation takes several hops.
  params.min_latency = 0.8;
  params.max_latency = 1.2;
  params.seed = 11;
  NetworkSimulator net(params);

  // Fund the exchange via a mined block and let it settle everywhere.
  MinerPolicy policy;
  policy.miner_pubkey = "ExchangePk";
  if (!net.MineAt(0, policy).ok()) return 1;
  net.Run();

  const BitcoinTransaction& coinbase =
      net.node(0).chain().blocks()[1].transactions()[0];
  BitcoinTransaction withdrawal(
      {TxInput{OutPoint{coinbase.txid(), 1}, "ExchangePk", kBlockReward,
               SignatureFor("ExchangePk")}},
      {TxOutput{"CustomerPk", 10 * kCoin},
       TxOutput{"ExchangePk", kBlockReward - 10 * kCoin - 1000}});

  std::printf("Denial constraint per node: \"CustomerPk receives bitcoins\" "
              "— possible or impossible?\n\n");
  std::printf("Before broadcast:\n");
  PrintRow(net);

  if (!net.BroadcastTransaction(0, withdrawal).ok()) return 1;
  std::printf("\nWithdrawal broadcast at node 0; gossip in flight "
              "(ring topology, ~1s per hop):\n");
  for (int step = 0; step < 4; ++step) {
    net.RunUntil(net.now() + 1.0);
    PrintRow(net);
  }
  net.Run();
  std::printf("\nAfter convergence:\n");
  PrintRow(net);

  std::printf(
      "\nWhile the transaction travels the ring, nodes that have not heard "
      "of it still call\nthe payout impossible — the same DCSat question has "
      "node-local answers until T converges.\n");
  return 0;
}
