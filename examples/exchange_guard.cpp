// Exchange guard: the paper's motivating example, end-to-end on the full
// Bitcoin substrate (node + mempool + miner + relational image).
//
// A Bitcoin exchange issues a customer withdrawal with a low fee; the miner
// skips it. The customer complains, the exchange wants to re-issue with a
// higher fee. Before broadcasting, the exchange dry-runs the denial
// constraint "this customer is withdrawn more than requested" over the
// blockchain database the node sees — catching the historical MtGox-style
// double-withdrawal failure mode before it can happen.
//
// Run: ./build/examples/exchange_guard

#include <cstdio>

#include "bitcoin/node.h"
#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "workload/constraints.h"

using namespace bcdb;
using namespace bcdb::bitcoin;

namespace {

BitcoinTransaction Withdrawal(const OutPoint& source, const Utxo& utxo,
                              const std::string& customer, Satoshi amount,
                              Satoshi fee) {
  std::vector<TxOutput> outputs{TxOutput{customer, amount}};
  const Satoshi change = utxo.amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{utxo.pubkey, change});
  return BitcoinTransaction(
      {TxInput{source, utxo.pubkey, utxo.amount, SignatureFor(utxo.pubkey)}},
      std::move(outputs));
}

/// The guard: over every possible future of the chain, does the customer
/// collect more than `limit` satoshi from us? (sum is monotone here, so the
/// check is exact and usually answered by the R ∪ T pre-check.)
bool SafeToBroadcast(const SimulatedNode& node, const std::string& customer,
                     Satoshi limit) {
  auto db = BuildBlockchainDatabase(node);
  if (!db.ok()) return false;
  DcSatEngine engine(&*db);
  const DenialConstraint overdraw =
      workload::MakeAggregateConstraint(customer, limit + 1);
  auto result = engine.Check(overdraw);
  if (!result.ok()) {
    std::printf("  guard error: %s\n", result.status().ToString().c_str());
    return false;
  }
  std::printf("  guard: paying %s more than %lld sat is %s\n",
              customer.c_str(), static_cast<long long>(limit),
              result->satisfied ? "IMPOSSIBLE in every possible world"
                                : "POSSIBLE in some possible world");
  return result->satisfied;
}

}  // namespace

int main() {
  SimulatedNode node;
  MinerPolicy policy;
  policy.miner_pubkey = "ExchangePk";

  // The exchange mines a few blocks to fund its hot wallet.
  for (int i = 0; i < 3; ++i) {
    if (!node.MineBlock(policy).ok()) return 1;
  }
  std::printf("Exchange hot wallet funded: %zu UTXOs on chain height %zu\n\n",
              node.chain().utxos().size(), node.chain().height());

  // Customer Carol requests a 10 BTC withdrawal. The exchange issues it
  // from its first coinbase with a fee too low for the miner's policy.
  const Satoshi kWithdrawal = 10 * kCoin;
  const BitcoinTransaction& cb1 = node.chain().blocks()[1].transactions()[0];
  const OutPoint source1{cb1.txid(), 1};
  const Utxo wallet1{cb1.outputs()[0].pubkey, cb1.outputs()[0].amount};
  BitcoinTransaction low_fee =
      Withdrawal(source1, wallet1, "CarolPk", kWithdrawal, /*fee=*/100);
  if (!node.SubmitTransaction(low_fee).ok()) return 1;
  std::printf("Issued withdrawal tx %lld (fee 100 sat)\n",
              static_cast<long long>(low_fee.txid()));

  // The miner requires 1000 sat; the withdrawal stays in the mempool.
  MinerPolicy greedy = policy;
  greedy.min_fee = 1000;
  auto mined = node.MineBlock(greedy);
  if (!mined.ok()) return 1;
  std::printf("Block mined with %zu withdrawal(s); mempool still holds %zu "
              "pending tx(s)\n\n",
              *mined, node.mempool().size());

  // Carol complains. Option A: re-issue from a DIFFERENT wallet output
  // (higher fee). Dry-run the guard with the candidate added.
  const BitcoinTransaction& cb2 = node.chain().blocks()[2].transactions()[0];
  const OutPoint source2{cb2.txid(), 1};
  const Utxo wallet2{cb2.outputs()[0].pubkey, cb2.outputs()[0].amount};
  BitcoinTransaction careless =
      Withdrawal(source2, wallet2, "CarolPk", kWithdrawal, /*fee=*/5000);
  {
    SimulatedNode dry_run = node;  // Hypothetical: never broadcast.
    if (!dry_run.SubmitTransaction(careless).ok()) return 1;
    std::printf("Option A: re-issue from a different wallet output\n");
    if (!SafeToBroadcast(dry_run, "CarolPk", kWithdrawal)) {
      std::printf("  -> rejected: the stuck transaction may still confirm; "
                  "Carol could be paid twice.\n\n");
    }
  }

  // Option B: re-issue by double-spending the SAME output the stuck
  // withdrawal uses — the two transactions conflict, so at most one ever
  // confirms.
  BitcoinTransaction conflicting =
      Withdrawal(source1, wallet1, "CarolPk", kWithdrawal, /*fee=*/5000);
  {
    SimulatedNode dry_run = node;
    if (!dry_run.SubmitTransaction(conflicting).ok()) return 1;
    std::printf("Option B: re-issue as a conflicting transaction\n");
    if (!SafeToBroadcast(dry_run, "CarolPk", kWithdrawal)) return 1;
    std::printf("  -> approved: broadcast it.\n\n");
  }

  // Broadcast for real and let the network confirm whichever wins.
  if (!node.SubmitTransaction(conflicting).ok()) return 1;
  if (!node.MineBlock(greedy).ok()) return 1;
  std::printf("After the next block: chain height %zu; mempool drained to "
              "%zu entries (the losing withdrawal was evicted as permanently "
              "conflicted).\n",
              node.chain().height(), node.mempool().size());

  // Final audit over the *chain only*.
  Satoshi carol_received = 0;
  for (const auto& [point, utxo] : node.chain().utxos()) {
    if (utxo.pubkey == "CarolPk") carol_received += utxo.amount;
  }
  std::printf("Carol's on-chain balance: %lld sat (requested %lld)\n",
              static_cast<long long>(carol_received),
              static_cast<long long>(kWithdrawal));
  return carol_received == kWithdrawal ? 0 : 1;
}
