// Supply chain: blockchain databases beyond cryptocurrency.
//
// A consortium tracks diamond provenance on a blockchain. The relational
// view has two relations:
//   Diamond(id, origin)                       — registered stones
//   Transfer(diamondId, seq, fromOwner, toOwner) — custody hand-offs
// with integrity constraints
//   key  Transfer(diamondId, seq)      — one hand-off per sequence step
//   ind  Transfer[diamondId] ⊆ Diamond[id] — only registered stones move.
//
// Dealers broadcast transfer transactions; consensus decides which are
// appended. A compliance officer asks: can stone #7 ever end up with a
// sanctioned entity, given everything currently pending? That is denial-
// constraint satisfaction over the possible worlds.
//
// Run: ./build/examples/supply_chain

#include <cstdio>

#include "core/dcsat.h"
#include "query/parser.h"

using namespace bcdb;

namespace {

Tuple Diamond(std::int64_t id, const char* origin) {
  return Tuple({Value::Int(id), Value::Str(origin)});
}

Tuple Transfer(std::int64_t diamond, std::int64_t seq, const char* from,
               const char* to) {
  return Tuple({Value::Int(diamond), Value::Int(seq), Value::Str(from),
                Value::Str(to)});
}

void Report(const char* question, const DcSatResult& result) {
  std::printf("%-52s %s\n", question,
              result.satisfied ? "NO (in every possible world)"
                               : "YES (in some possible world)");
}

}  // namespace

int main() {
  Catalog catalog;
  (void)catalog.AddRelation(RelationSchema(
      "Diamond", {Attribute{"id", ValueType::kInt},
                  Attribute{"origin", ValueType::kString}}));
  (void)catalog.AddRelation(RelationSchema(
      "Transfer", {Attribute{"diamondId", ValueType::kInt},
                   Attribute{"seq", ValueType::kInt},
                   Attribute{"fromOwner", ValueType::kString},
                   Attribute{"toOwner", ValueType::kString}}));

  ConstraintSet constraints;
  constraints.AddFd(
      *FunctionalDependency::Key(catalog, "Transfer", {"diamondId", "seq"}));
  constraints.AddInd(*InclusionDependency::Create(
      catalog, "Transfer", {"diamondId"}, "Diamond", {"id"}));

  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  if (!db.ok()) return 1;

  // Accepted history: two registered stones, one past hand-off.
  (void)db->InsertCurrent("Diamond", Diamond(7, "Botswana"));
  (void)db->InsertCurrent("Diamond", Diamond(9, "Canada"));
  (void)db->InsertCurrent("Transfer", Transfer(7, 1, "Mine", "CutterA"));

  // Pending transfer transactions broadcast by dealers. Note P1 and P2
  // both claim hand-off #2 of stone 7 — only one can ever be appended
  // (the key constraint), exactly like conflicting Bitcoin spends.
  Transaction p1("sell-to-trader");
  p1.Add("Transfer", Transfer(7, 2, "CutterA", "TraderB"));
  Transaction p2("sell-to-shadow");
  p2.Add("Transfer", Transfer(7, 2, "CutterA", "ShadowCorp"));
  Transaction p3("trader-exports");  // Depends on P1's hand-off.
  p3.Add("Transfer", Transfer(7, 3, "TraderB", "RetailC"));
  Transaction p4("register-and-move");  // Self-contained: registers stone 11.
  p4.Add("Diamond", Diamond(11, "Unknown"));
  p4.Add("Transfer", Transfer(11, 1, "Mine", "ShadowCorp"));
  for (const Transaction& txn : {p1, p2, p3, p4}) {
    if (!db->AddPending(txn).ok()) return 1;
  }

  DcSatEngine engine(&*db);
  auto ask = [&](const char* question, const char* text) {
    auto q = ParseDenialConstraint(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    auto result = engine.Check(*q);
    if (!result.ok()) {
      std::printf("check error: %s\n", result.status().ToString().c_str());
      return;
    }
    Report(question, *result);
  };

  std::printf("Compliance questions over the pending transfer pool:\n\n");
  ask("Can stone 7 reach ShadowCorp?",
      "q() :- Transfer(7, s, f, 'ShadowCorp')");
  ask("Can ANY stone reach ShadowCorp?",
      "q() :- Transfer(d, s, f, 'ShadowCorp')");
  ask("Can stone 7 be handed off twice at the same step?",
      "q() :- Transfer(7, s, f1, t1), Transfer(7, s, f2, t2), t1 != t2");
  ask("Can stone 7 pass through TraderB to RetailC?",
      "q() :- Transfer(7, s1, f, 'TraderB'), Transfer(7, s2, 'TraderB', "
      "'RetailC')");
  ask("Can an unregistered stone move?",
      "q() :- Transfer(42, s, f, t)");
  ask("Can stone 9 move at all?", "q() :- Transfer(9, s, f, t)");
  ask("Can 3 or more hand-offs of stone 7 coexist?",
      "[q(count()) :- Transfer(7, s, f, t)] >= 3");

  std::printf(
      "\nReading: hand-off collisions are impossible by the key constraint "
      "(like Bitcoin double\nspends); ShadowCorp remains reachable through "
      "either the contested hand-off or the newly\nregistered stone — the "
      "officer should act before consensus does.\n");
  return 0;
}
