// bcdb_shell: an interactive denial-constraint console over a synthetic
// Bitcoin blockchain database.
//
// Generates a small chain + mempool, then reads queries from stdin:
//
//   q() :- TxOut(t, s, 'RichPk', a)          -> DCSat verdict
//   q(pk) :- TxOut(t, s, pk, a)              -> certain & possible answers
//   [q(sum(a)) :- TxOut(t, s, 'RichPk', a)] >= 100000000
//   \stats        database statistics        \algo naive|opt|exhaustive|auto
//   \landmarks    interesting constants      \prob <p>  violation probability
//   \help         this text                  \quit
//
// Run interactively:  ./build/examples/bcdb_shell
// Or piped:           echo "q() :- TxOut(t, s, 'RichPk', a)" | bcdb_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "bitcoin/generator.h"
#include "bitcoin/to_relational.h"
#include "core/answers.h"
#include "core/dcsat.h"
#include "core/probability.h"
#include "query/parser.h"
#include "util/strings.h"

using namespace bcdb;

namespace {

void PrintHelp() {
  std::printf(
      "Enter a denial constraint (datalog-ish syntax), e.g.\n"
      "  q() :- TxOut(t, s, 'RichPk', a)\n"
      "  q() :- TxIn(pt, ps, 'StarPk', a, n, g)\n"
      "  [q(sum(a)) :- TxOut(t, s, 'RichPk', a)] >= 100000000\n"
      "  q(pk, a) :- TxOut(t, s, pk, a), a > 4000000000   (answers mode)\n"
      "Commands: \\stats  \\landmarks  \\algo <naive|opt|exhaustive|auto>\n"
      "          \\prob <p>   (Monte-Carlo violation probability)\n"
      "          \\help  \\quit\n");
}

}  // namespace

int main() {
  bitcoin::GeneratorParams params;
  params.seed = 7;
  params.num_blocks = 120;
  params.num_users = 24;
  params.num_pending = 80;
  params.num_contradictions = 8;
  std::fprintf(stderr, "generating synthetic chain (seed %llu)...\n",
               static_cast<unsigned long long>(params.seed));
  auto workload = bitcoin::GenerateWorkload(params);
  if (!workload.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  auto db = bitcoin::BuildBlockchainDatabase(workload->node);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  DcSatEngine engine(&*db);
  DcSatOptions options;
  const bitcoin::WorkloadMetadata& meta = workload->metadata;

  std::printf("bcdb shell — blockchain database over %zu chain txs, %zu "
              "pending. \\help for help.\n",
              workload->node.chain().Stats().transactions,
              db->num_pending());

  bool prob_mode = false;
  double prob_mode_p = 0.5;
  std::string line;
  while (true) {
    std::printf("bcdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed{TrimWhitespace(line)};
    if (trimmed.empty()) continue;

    if (trimmed[0] == '\\') {
      std::istringstream command(trimmed.substr(1));
      std::string verb;
      command >> verb;
      if (verb == "quit" || verb == "q" || verb == "exit") break;
      if (verb == "help") {
        PrintHelp();
      } else if (verb == "stats") {
        const bitcoin::ChainStats chain = workload->node.chain().Stats();
        const bitcoin::ChainStats pool = workload->node.mempool().Stats();
        std::printf("R: %zu blocks, %zu txs, %zu inputs, %zu outputs\n",
                    chain.blocks, chain.transactions, chain.inputs,
                    chain.outputs);
        std::printf("T: %zu txs, %zu inputs, %zu outputs, %zu conflicts\n",
                    pool.transactions, pool.inputs, pool.outputs,
                    workload->node.mempool().ConflictPairs().size());
      } else if (verb == "landmarks") {
        std::printf("chain head: '%s' (pending path to '%s')\n",
                    meta.chain_pks.front().c_str(),
                    meta.chain_pks.back().c_str());
        std::printf("star spender: '%s'  rich receiver: '%s'\n",
                    meta.star_pk.c_str(), meta.rich_pk.c_str());
        std::printf("quiet (confirmed, no pending activity): '%s'\n",
                    meta.quiet_pk.c_str());
      } else if (verb == "algo") {
        std::string which;
        command >> which;
        if (which == "naive") {
          options.algorithm = DcSatAlgorithm::kNaive;
        } else if (which == "opt") {
          options.algorithm = DcSatAlgorithm::kOpt;
        } else if (which == "exhaustive") {
          options.algorithm = DcSatAlgorithm::kExhaustive;
        } else {
          options.algorithm = DcSatAlgorithm::kAuto;
        }
        std::printf("algorithm: %s\n",
                    DcSatAlgorithmToString(options.algorithm));
      } else if (verb == "prob") {
        double p = 0.5;
        command >> p;
        std::printf("set \\prob and then enter a query: estimating with "
                    "inclusion probability %.2f per pending tx\n", p);
        prob_mode_p = p;
        prob_mode = true;
      } else {
        std::printf("unknown command; \\help for help\n");
      }
      continue;
    }

    auto q = ParseDenialConstraint(trimmed);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      continue;
    }

    if (prob_mode) {
      InclusionModel model;
      model.default_probability = prob_mode_p;
      auto estimate =
          EstimateViolationProbability(*db, *q, model, 2000, 1234);
      if (!estimate.ok()) {
        std::printf("error: %s\n", estimate.status().ToString().c_str());
      } else {
        std::printf("violation probability ≈ %.3f (± %.3f, %zu samples)\n",
                    estimate->probability, estimate->standard_error,
                    estimate->samples);
      }
      prob_mode = false;
      continue;
    }

    if (!q->head_vars.empty()) {
      auto certain = CertainAnswers(engine, *q);
      auto possible = PossibleAnswers(engine, *q);
      if (!certain.ok() || !possible.ok()) {
        std::printf("error: %s\n",
                    (!certain.ok() ? certain.status() : possible.status())
                        .ToString()
                        .c_str());
        continue;
      }
      std::printf("certain answers (%zu):\n", certain->size());
      for (const Tuple& t : *certain) std::printf("  %s\n", t.ToString().c_str());
      std::printf("possible answers (%zu):\n", possible->size());
      for (const Tuple& t : *possible) {
        std::printf("  %s\n", t.ToString().c_str());
      }
      continue;
    }

    // Boolean constraints go through the textual overload: the engine
    // parses and compiles internally (the parse above only routed the
    // answers/probability modes).
    auto result = engine.Check(trimmed, options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s  [%s, %.1f ms, %zu worlds, %zu cliques]\n",
                result->satisfied
                    ? "SATISFIED: q is false in every possible world"
                    : "NOT satisfied: q holds in some possible world",
                DcSatAlgorithmToString(result->stats.algorithm_used),
                result->stats.total_seconds * 1e3,
                result->stats.num_worlds_evaluated,
                result->stats.num_cliques);
    if (!result->satisfied && result->witness.has_value()) {
      std::printf("  witness world: %zu pending transaction(s) active\n",
                  result->witness->size());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
