#include "relational/database.h"

namespace bcdb {

Database::Database(Catalog catalog)
    : catalog_(std::make_unique<Catalog>(std::move(catalog))) {
  relations_.reserve(catalog_->num_relations());
  for (std::size_t i = 0; i < catalog_->num_relations(); ++i) {
    relations_.emplace_back(&catalog_->schema(i));
  }
}

Status Database::Insert(std::string_view relation_name, Tuple tuple,
                        TupleOwner owner) {
  StatusOr<std::size_t> id = catalog_->RelationId(relation_name);
  if (!id.ok()) return id.status();
  return Insert(*id, std::move(tuple), owner);
}

Status Database::Insert(std::size_t relation_id, Tuple tuple,
                        TupleOwner owner) {
  const RelationSchema& schema = catalog_->schema(relation_id);
  BCDB_RETURN_IF_ERROR(schema.ValidateTuple(tuple));
  relations_[relation_id].Insert(std::move(tuple), owner);
  return Status::OK();
}

std::size_t Database::TotalTuples() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) total += r.num_tuples();
  return total;
}

}  // namespace bcdb
