#ifndef BCDB_RELATIONAL_SCHEMA_H_
#define BCDB_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"
#include "util/status.h"

namespace bcdb {

/// A named, typed attribute of a relation schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;
  /// Hint used by the monotonicity analyzer: sum-aggregates over attributes
  /// known to be non-negative are monotone under tuple insertion.
  bool non_negative = false;
};

/// Schema of a single relation: a name and an ordered attribute list.
///
/// Key constraints and dependencies live in the constraints module; the
/// schema only defines structure and types.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes);

  const std::string& name() const { return name_; }
  std::size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }

  /// Position of the attribute called `name`.
  StatusOr<std::size_t> AttributeIndex(std::string_view name) const;

  /// Positions of all attributes named in `names`, in the order given.
  StatusOr<std::vector<std::size_t>> AttributeIndexes(
      const std::vector<std::string>& names) const;

  /// Checks arity and per-attribute types. NULLs are rejected: blockchain
  /// databases store ground tuples only.
  Status ValidateTuple(const Tuple& tuple) const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// The set of relation schemas that make up a database schema.
class Catalog {
 public:
  /// Registers a schema. Fails if a relation with that name already exists.
  Status AddRelation(RelationSchema schema);

  bool HasRelation(std::string_view name) const;
  StatusOr<std::size_t> RelationId(std::string_view name) const;

  const RelationSchema& schema(std::size_t relation_id) const {
    return schemas_[relation_id];
  }
  std::size_t num_relations() const { return schemas_.size(); }

 private:
  std::vector<RelationSchema> schemas_;
  std::map<std::string, std::size_t, std::less<>> ids_by_name_;
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_SCHEMA_H_
