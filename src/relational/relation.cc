#include "relational/relation.h"

#include <algorithm>
#include <cassert>

namespace bcdb {

namespace {
const std::vector<TupleId> kEmptyTupleIds;
}  // namespace

void Relation::Reserve(std::size_t expected_tuples) {
  tuples_.reserve(expected_tuples);
  owners_.reserve(expected_tuples);
  ids_by_tuple_.reserve(expected_tuples);
}

TupleId Relation::Insert(Tuple tuple, TupleOwner owner) {
  auto it = ids_by_tuple_.find(tuple);
  if (it != ids_by_tuple_.end()) {
    const TupleId id = it->second;
    std::vector<TupleOwner>& owner_list = owners_[id];
    if (std::find(owner_list.begin(), owner_list.end(), owner) ==
        owner_list.end()) {
      owner_list.push_back(owner);
      tuples_by_owner_[owner].push_back(id);
    }
    return id;
  }
  const TupleId id = static_cast<TupleId>(tuples_.size());
  ids_by_tuple_.emplace(tuple, id);
  tuples_.push_back(std::move(tuple));
  owners_.push_back({owner});
  tuples_by_owner_[owner].push_back(id);
  for (HashIndex& index : indexes_) AddToIndex(index, id);
  return id;
}

Status Relation::RestoreTuple(Tuple tuple,
                              const std::vector<TupleOwner>& owners) {
  BCDB_RETURN_IF_ERROR(schema_->ValidateTuple(tuple));
  if (ids_by_tuple_.find(tuple) != ids_by_tuple_.end()) {
    return Status::AlreadyExists("restored tuple already stored in " +
                                 schema_->name());
  }
  for (std::size_t i = 0; i < owners.size(); ++i) {
    for (std::size_t j = i + 1; j < owners.size(); ++j) {
      if (owners[i] == owners[j]) {
        return Status::InvalidArgument("restored tuple repeats an owner");
      }
    }
  }
  const TupleId id = static_cast<TupleId>(tuples_.size());
  ids_by_tuple_.emplace(tuple, id);
  tuples_.push_back(std::move(tuple));
  owners_.push_back(owners);
  for (TupleOwner owner : owners) tuples_by_owner_[owner].push_back(id);
  for (HashIndex& index : indexes_) AddToIndex(index, id);
  return Status::OK();
}

bool Relation::ContainsVisible(const Tuple& tuple,
                               const WorldView& view) const {
  auto it = ids_by_tuple_.find(tuple);
  return it != ids_by_tuple_.end() && IsVisible(it->second, view);
}

bool Relation::ContainsVisible(const ProjectionKey& key,
                               const WorldView& view) const {
  auto it = ids_by_tuple_.find(key);
  return it != ids_by_tuple_.end() && IsVisible(it->second, view);
}

std::size_t Relation::CountVisible(const WorldView& view) const {
  std::size_t count = 0;
  for (TupleId id = 0; id < tuples_.size(); ++id) {
    if (IsVisible(id, view)) ++count;
  }
  return count;
}

const std::vector<TupleId>& Relation::TuplesOwnedBy(TupleOwner owner) const {
  auto it = tuples_by_owner_.find(owner);
  return it == tuples_by_owner_.end() ? kEmptyTupleIds : it->second;
}

void Relation::PromoteOwner(TupleOwner owner) {
  assert(owner != kBaseOwner);
  auto it = tuples_by_owner_.find(owner);
  if (it == tuples_by_owner_.end()) return;
  // Detach the id list before inserting under kBaseOwner: that insert may
  // rehash and would invalidate both `it` and the list being walked.
  const std::vector<TupleId> ids = std::move(it->second);
  tuples_by_owner_.erase(it);
  for (TupleId id : ids) {
    std::vector<TupleOwner>& owner_list = owners_[id];
    owner_list.erase(std::remove(owner_list.begin(), owner_list.end(), owner),
                     owner_list.end());
    if (std::find(owner_list.begin(), owner_list.end(), kBaseOwner) ==
        owner_list.end()) {
      owner_list.push_back(kBaseOwner);
      tuples_by_owner_[kBaseOwner].push_back(id);
    }
  }
}

void Relation::DropOwner(TupleOwner owner) {
  assert(owner != kBaseOwner);
  auto it = tuples_by_owner_.find(owner);
  if (it == tuples_by_owner_.end()) return;
  const std::vector<TupleId> ids = std::move(it->second);
  tuples_by_owner_.erase(it);
  for (TupleId id : ids) {
    std::vector<TupleOwner>& owner_list = owners_[id];
    owner_list.erase(std::remove(owner_list.begin(), owner_list.end(), owner),
                     owner_list.end());
  }
}

bool Relation::RemoveTupleOwner(const Tuple& tuple, TupleOwner owner) {
  auto it = ids_by_tuple_.find(tuple);
  if (it == ids_by_tuple_.end()) return false;
  const TupleId id = it->second;
  std::vector<TupleOwner>& owner_list = owners_[id];
  auto pos = std::find(owner_list.begin(), owner_list.end(), owner);
  if (pos == owner_list.end()) return false;
  owner_list.erase(pos);
  auto by_owner = tuples_by_owner_.find(owner);
  if (by_owner != tuples_by_owner_.end()) {
    std::vector<TupleId>& ids = by_owner->second;
    auto id_pos = std::find(ids.begin(), ids.end(), id);
    if (id_pos != ids.end()) {
      // Order within an owner's id list is not meaningful (PromoteOwner /
      // DropOwner walk it as a set), so swap-erase.
      *id_pos = ids.back();
      ids.pop_back();
    }
    if (ids.empty()) tuples_by_owner_.erase(by_owner);
  }
  return true;
}

bool Relation::DemoteTuple(const Tuple& tuple, TupleOwner owner) {
  assert(owner != kBaseOwner);
  if (!RemoveTupleOwner(tuple, kBaseOwner)) return false;
  Insert(tuple, owner);  // Re-attaches `owner`; dedups if already present.
  return true;
}

std::size_t Relation::GetOrBuildIndex(
    const std::vector<std::size_t>& positions) const {
  assert(std::is_sorted(positions.begin(), positions.end()));
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return i;
  }
  indexes_.push_back(HashIndex{positions, {}});
  HashIndex& index = indexes_.back();
  // Cardinality is known up front: at most one bucket per stored tuple.
  index.buckets.reserve(tuples_.size());
  for (TupleId id = 0; id < tuples_.size(); ++id) AddToIndex(index, id);
  return indexes_.size() - 1;
}

const std::vector<TupleId>& Relation::IndexLookup(std::size_t index_id,
                                                  const Tuple& key) const {
  const HashIndex& index = indexes_[index_id];
  assert(key.arity() == index.positions.size());
  auto it = index.buckets.find(key);
  return it == index.buckets.end() ? kEmptyTupleIds : it->second;
}

const std::vector<TupleId>& Relation::IndexLookup(
    std::size_t index_id, const ProjectionKey& key) const {
  const HashIndex& index = indexes_[index_id];
  assert(key.size() == index.positions.size());
  auto it = index.buckets.find(key);
  return it == index.buckets.end() ? kEmptyTupleIds : it->second;
}

void Relation::AddToIndex(HashIndex& index, TupleId id) const {
  // Probe with the non-allocating view; materialize the owned key only for
  // a bucket's first entry.
  const ProjectionKey key = tuples_[id].ProjectKey(index.positions);
  auto it = index.buckets.find(key);
  if (it == index.buckets.end()) {
    it = index.buckets.emplace(Tuple::FromIds(key), std::vector<TupleId>{})
             .first;
  }
  it->second.push_back(id);
}

}  // namespace bcdb
