#ifndef BCDB_RELATIONAL_VALUE_POOL_H_
#define BCDB_RELATIONAL_VALUE_POOL_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>

#include "relational/value.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcdb {

/// Dense identifier of an interned Value. Two ids are equal iff the values
/// they name are `Value::Compare`-equal, so id comparison is a full
/// substitute for deep value equality.
using ValueId = std::uint32_t;

/// The id NULL interns to (the pool pre-interns NULL at construction).
inline constexpr ValueId kNullValueId = 0;

/// An append-only interner mapping each distinct `Value` to a dense 32-bit
/// `ValueId` with a precomputed hash.
///
/// Interning canonicalizes values so that id equality matches
/// `Value::Compare` equality exactly:
///   * an integral `Real` (1.0, -0.0, 3e4) maps to the equal `Int`;
///   * every NaN maps to one canonical NaN (NaNs are Compare-equal);
///   * everything else interns as-is.
/// Resolving an id back therefore returns the *canonical* representative of
/// its equivalence class, which is Compare-equal (and prints identically)
/// to whatever was interned.
///
/// Storage is chunked with power-of-two chunk growth, so resolved
/// `const Value&` references stay valid forever — interning never moves an
/// entry. `Intern` is serialized by a mutex; `value`/`hash` are lock-free
/// array reads and may run concurrently with interning, provided the reader
/// obtained the id through some synchronizing handoff (a task queue, a
/// mutex) — the same discipline the rest of the engine already follows for
/// tuples themselves.
///
/// The pool is process-wide (`Global()`): tuples are built before they
/// reach any particular database (transaction items, query constants) and
/// the differential test harnesses insert identical tuples into several
/// databases, so all databases must agree on ids. `Database` re-exports it
/// as `pool()`; ids are stable for the lifetime of the process and hence of
/// every database.
class ValuePool {
 public:
  ValuePool() {
    chunks_[0].store(new Entry[kBaseChunkSize], std::memory_order_relaxed);
    (void)Intern(Value::Null());  // kNullValueId
  }

  ~ValuePool() {
    for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
  }

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the id of `v`'s equivalence class, interning the canonical
  /// representative on first sight. Thread-safe.
  ValueId Intern(const Value& v);

  /// The canonical value an id resolves to. The reference is stable for the
  /// pool's lifetime.
  const Value& value(ValueId id) const { return entry(id).value; }

  /// Precomputed `Value::Hash()` of the canonical value.
  std::size_t hash(ValueId id) const { return entry(id).hash; }

  /// Number of distinct values interned so far.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// The canonical representative of `v`'s Compare-equivalence class.
  static Value Canonical(const Value& v);

  /// The process-wide pool every `Tuple` interns into. Never destroyed, so
  /// ids (and resolved references) outlive all static-destruction order
  /// concerns.
  static ValuePool& Global() {
    static ValuePool* pool = new ValuePool();
    return *pool;
  }

 private:
  struct Entry {
    Value value;
    std::size_t hash = 0;
  };

  // Chunk 0 holds ids [0, 1024); chunk c >= 1 holds [2^(c+9), 2^(c+10)).
  static constexpr std::size_t kBaseLog = 10;
  static constexpr std::size_t kBaseChunkSize = std::size_t{1} << kBaseLog;
  static constexpr std::size_t kNumChunks = 32 - kBaseLog + 1;

  static std::size_t ChunkIndex(ValueId id) {
    return id < kBaseChunkSize
               ? 0
               : static_cast<std::size_t>(std::bit_width(
                     static_cast<std::uint32_t>(id))) - kBaseLog;
  }
  static std::size_t ChunkOffset(ValueId id, std::size_t chunk) {
    return chunk == 0 ? id : id - (std::size_t{1} << (chunk + kBaseLog - 1));
  }

  const Entry& entry(ValueId id) const {
    const std::size_t c = ChunkIndex(id);
    return chunks_[c].load(std::memory_order_acquire)[ChunkOffset(id, c)];
  }

  struct IdHash {
    using is_transparent = void;
    const ValuePool* pool;
    std::size_t operator()(ValueId id) const { return pool->hash(id); }
    std::size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct IdEq {
    using is_transparent = void;
    const ValuePool* pool;
    bool operator()(ValueId a, ValueId b) const { return a == b; }
    bool operator()(ValueId a, const Value& b) const {
      return pool->value(a) == b;
    }
    bool operator()(const Value& a, ValueId b) const {
      return a == pool->value(b);
    }
  };

  mutable Mutex mutex_{LockRank::kValuePool};
  std::unordered_set<ValueId, IdHash, IdEq> ids_ BCDB_GUARDED_BY(mutex_){
      16, IdHash{this}, IdEq{this}};
  // The read side (value/hash/entry) is intentionally lock-free: each chunk
  // pointer is published once with release order after its first entry is
  // written, and size_ is bumped with release order after the entry is
  // complete, so an acquire reader holding a handed-off id always sees a
  // fully constructed Entry. Readers never lock mutex_.
  std::atomic<Entry*> chunks_[kNumChunks] BCDB_LOCK_FREE(
      "write-once pointers published with release order under mutex_; read"
      " with acquire order locklessly on the resolve hot path") = {};
  std::atomic<std::size_t> size_ BCDB_LOCK_FREE(
      "bumped with release order under mutex_ after the new Entry is fully"
      " written; acquire readers use it as the publication fence") {0};
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_VALUE_POOL_H_
