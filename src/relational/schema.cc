#include "relational/schema.h"

namespace bcdb {

RelationSchema::RelationSchema(std::string name,
                               std::vector<Attribute> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {}

StatusOr<std::size_t> RelationSchema::AttributeIndex(
    std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("relation " + name_ + " has no attribute '" +
                          std::string(name) + "'");
}

StatusOr<std::vector<std::size_t>> RelationSchema::AttributeIndexes(
    const std::vector<std::string>& names) const {
  std::vector<std::size_t> indexes;
  indexes.reserve(names.size());
  for (const std::string& name : names) {
    StatusOr<std::size_t> index = AttributeIndex(name);
    if (!index.ok()) return index.status();
    indexes.push_back(*index);
  }
  return indexes;
}

Status RelationSchema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.arity() != arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.arity()) + " != arity " +
        std::to_string(arity()) + " of relation " + name_);
  }
  for (std::size_t i = 0; i < arity(); ++i) {
    const Value& v = tuple[i];
    if (v.is_null()) {
      return Status::InvalidArgument("NULL value for attribute " +
                                     attributes_[i].name + " of relation " +
                                     name_);
    }
    const bool numeric_ok =
        v.IsNumeric() && (attributes_[i].type == ValueType::kInt ||
                          attributes_[i].type == ValueType::kReal);
    if (v.type() != attributes_[i].type && !numeric_ok) {
      return Status::InvalidArgument(
          "type mismatch for attribute " + attributes_[i].name +
          " of relation " + name_ + ": expected " +
          ValueTypeToString(attributes_[i].type) + ", got " +
          ValueTypeToString(v.type()));
    }
    if (attributes_[i].non_negative && v.IsNumeric() && v.AsNumeric() < 0) {
      return Status::InvalidArgument("negative value for non-negative attribute " +
                                     attributes_[i].name + " of relation " +
                                     name_);
    }
  }
  return Status::OK();
}

Status Catalog::AddRelation(RelationSchema schema) {
  if (HasRelation(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name() +
                                 " already in catalog");
  }
  ids_by_name_.emplace(schema.name(), schemas_.size());
  schemas_.push_back(std::move(schema));
  return Status::OK();
}

bool Catalog::HasRelation(std::string_view name) const {
  return ids_by_name_.find(name) != ids_by_name_.end();
}

StatusOr<std::size_t> Catalog::RelationId(std::string_view name) const {
  auto it = ids_by_name_.find(name);
  if (it == ids_by_name_.end()) {
    return Status::NotFound("no relation named '" + std::string(name) + "'");
  }
  return it->second;
}

}  // namespace bcdb
