#ifndef BCDB_RELATIONAL_DATABASE_H_
#define BCDB_RELATIONAL_DATABASE_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value_pool.h"
#include "relational/world_view.h"
#include "util/status.h"

namespace bcdb {

/// An in-memory relational database instance: a catalog plus one `Relation`
/// per schema, with owner-tagged tuples supporting possible-world views.
///
/// This is the storage substrate that replaces the paper's Postgres backend.
class Database {
 public:
  explicit Database(Catalog catalog);

  // Relations hold stable pointers into the catalog; moving would be safe but
  // copying would alias, so the database is move-only.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Catalog& catalog() const { return *catalog_; }
  std::size_t num_relations() const { return relations_.size(); }

  /// The value interner backing every tuple this database stores. All
  /// databases share the process-wide pool (tuples are interned before they
  /// reach a database — transaction items, query constants — and must keep
  /// their ids when replayed into differential replicas); the pool is never
  /// destroyed, so ids stay stable for the database's entire lifetime.
  ValuePool& pool() const { return ValuePool::Global(); }

  Relation& relation(std::size_t id) { return relations_[id]; }
  const Relation& relation(std::size_t id) const { return relations_[id]; }

  StatusOr<std::size_t> RelationId(std::string_view name) const {
    return catalog_->RelationId(name);
  }

  /// Validates `tuple` against the schema and inserts it for `owner`.
  Status Insert(std::string_view relation_name, Tuple tuple,
                TupleOwner owner = kBaseOwner);
  Status Insert(std::size_t relation_id, Tuple tuple,
                TupleOwner owner = kBaseOwner);

  /// Registers a new pending owner (transaction slot) and returns its tag.
  TupleOwner RegisterOwner() {
    return static_cast<TupleOwner>(num_owners_++);
  }
  /// Releases `owner` if (and only if) it is the most recently registered
  /// slot and owns no tuples — the rollback path of a failed transaction
  /// add. Interior slots are never reclaimed (owner tags are stable ids).
  /// Returns false when the slot was not the top one.
  bool ReleaseOwner(TupleOwner owner) {
    if (static_cast<std::size_t>(owner) + 1 != num_owners_) return false;
    --num_owners_;
    return true;
  }
  std::size_t num_owners() const { return num_owners_; }

  /// View containing only the current state.
  WorldView BaseView() const { return WorldView::BaseOnly(num_owners_); }
  /// View containing the current state plus every pending owner.
  WorldView FullView() const { return WorldView::AllPending(num_owners_); }

  /// Total distinct tuples across all relations (any owner).
  std::size_t TotalTuples() const;

 private:
  std::unique_ptr<Catalog> catalog_;  // Stable address for relations_.
  std::vector<Relation> relations_;
  std::size_t num_owners_ = 0;
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_DATABASE_H_
