#include "relational/tuple.h"

namespace bcdb {

void Tuple::InternFrom(const Value* values, std::size_t n) {
  EnsureCapacity(n);
  ValuePool& pool = ValuePool::Global();
  ValueId* out = const_cast<ValueId*>(ids());
  for (std::size_t i = 0; i < n; ++i) out[i] = pool.Intern(values[i]);
}

std::vector<Value> Tuple::values() const {
  std::vector<Value> result;
  result.reserve(arity_);
  const ValuePool& pool = ValuePool::Global();
  const ValueId* id = ids();
  for (std::size_t i = 0; i < arity_; ++i) result.push_back(pool.value(id[i]));
  return result;
}

int Tuple::Compare(const Tuple& other) const {
  const ValuePool& pool = ValuePool::Global();
  const ValueId* a = ids();
  const ValueId* b = other.ids();
  const std::size_t n = std::min<std::size_t>(arity_, other.arity_);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;  // Interned: equal ids <=> equal values.
    const int c = pool.value(a[i]).Compare(pool.value(b[i]));
    if (c != 0) return c;
  }
  if (arity_ == other.arity_) return 0;
  return arity_ < other.arity_ ? -1 : 1;
}

std::size_t Tuple::Hash() const { return HashValueIds(ids(), arity_); }

std::string Tuple::ToString() const {
  std::string result = "(";
  for (std::size_t i = 0; i < arity_; ++i) {
    if (i > 0) result += ", ";
    result += at(i).ToString();
  }
  result += ")";
  return result;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace bcdb
