#include "relational/tuple.h"

#include "util/hash.h"

namespace bcdb {

std::size_t Tuple::Hash() const {
  std::size_t seed = values_.size();
  for (const Value& v : values_) HashCombine(seed, v.Hash());
  return seed;
}

std::string Tuple::ToString() const {
  std::string result = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) result += ", ";
    result += values_[i].ToString();
  }
  result += ")";
  return result;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace bcdb
