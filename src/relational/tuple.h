#ifndef BCDB_RELATIONAL_TUPLE_H_
#define BCDB_RELATIONAL_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "relational/value.h"

namespace bcdb {

/// An immutable ground tuple: a fixed-arity sequence of values.
///
/// Tuples are regular values; projections of tuples serve as hash-index keys
/// and as the equality-constraint signatures used by the ind-q-transaction
/// graph.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  std::size_t arity() const { return values_.size(); }
  const Value& at(std::size_t i) const { return values_[i]; }
  const Value& operator[](std::size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Projection onto the given attribute positions, in the given order.
  Tuple Project(const std::vector<std::size_t>& positions) const {
    std::vector<Value> projected;
    projected.reserve(positions.size());
    for (std::size_t p : positions) projected.push_back(values_[p]);
    return Tuple(std::move(projected));
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic three-way comparison (shorter tuples first on ties).
  int Compare(const Tuple& other) const {
    const std::size_t n = std::min(values_.size(), other.values_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int c = values_[i].Compare(other.values_[i]);
      if (c != 0) return c;
    }
    if (values_.size() == other.values_.size()) return 0;
    return values_.size() < other.values_.size() ? -1 : 1;
  }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  std::size_t Hash() const;

  /// Display form: (1, 'a', NULL).
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

struct TupleHash {
  std::size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_TUPLE_H_
