#ifndef BCDB_RELATIONAL_TUPLE_H_
#define BCDB_RELATIONAL_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "relational/value.h"
#include "relational/value_pool.h"
#include "util/hash.h"

namespace bcdb {

class ProjectionKey;

/// An immutable ground tuple: a fixed-arity sequence of interned values.
///
/// Tuples are regular values; projections of tuples serve as hash-index keys
/// and as the equality-constraint signatures used by the ind-q-transaction
/// graph.
///
/// Representation: a flat array of `ValueId`s into the process-wide
/// `ValuePool` — values are interned at construction, after which equality
/// is an id-sequence compare and hashing mixes raw ids (no variant walks,
/// no string re-hashing). Arities up to `kInlineArity` live inline in the
/// tuple object itself; larger tuples use one heap array of 4-byte ids.
/// Value accessors (`at`, `operator[]`) resolve through the pool and return
/// references to the *canonical* representative (e.g. `Real(1.0)` resolves
/// as the Compare-equal `Int(1)`), stable for the process lifetime.
class Tuple {
 public:
  /// Largest arity stored inline without a heap allocation.
  static constexpr std::size_t kInlineArity = 4;

  Tuple() : arity_(0) {}
  explicit Tuple(const std::vector<Value>& values) {
    InternFrom(values.data(), values.size());
  }
  Tuple(std::initializer_list<Value> values) {
    InternFrom(values.begin(), values.size());
  }

  Tuple(const Tuple& other) { CopyFrom(other); }
  Tuple(Tuple&& other) noexcept { StealFrom(other); }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Release();
      StealFrom(other);
    }
    return *this;
  }
  ~Tuple() { Release(); }

  /// Builds a tuple directly from already-interned ids (no pool access).
  static Tuple FromIds(const ValueId* ids, std::size_t n) {
    Tuple t;
    t.AssignIds(ids, n);
    return t;
  }
  static Tuple FromIds(const ProjectionKey& key);

  std::size_t arity() const { return arity_; }

  /// The interned-id sequence (length `arity()`).
  const ValueId* ids() const {
    return arity_ <= kInlineArity ? inline_ : heap_;
  }
  ValueId id_at(std::size_t i) const { return ids()[i]; }

  /// Canonical value at position `i`; the reference is stable forever.
  const Value& at(std::size_t i) const {
    return ValuePool::Global().value(ids()[i]);
  }
  const Value& operator[](std::size_t i) const { return at(i); }

  /// Materializes the (canonical) values. O(arity) pool resolutions.
  std::vector<Value> values() const;

  /// Projection onto the given attribute positions, in the given order.
  /// An id gather — no interning, no heap allocation for results of arity
  /// <= kInlineArity. Callers that only need a lookup key should prefer
  /// `ProjectKey`, which never allocates for keys up to
  /// ProjectionKey::kInlineCapacity ids.
  Tuple Project(const std::vector<std::size_t>& positions) const {
    Tuple t;
    t.EnsureCapacity(positions.size());
    ValueId* out = const_cast<ValueId*>(t.ids());
    const ValueId* src = ids();
    for (std::size_t i = 0; i < positions.size(); ++i) out[i] = src[positions[i]];
    return t;
  }

  /// Non-owning-style projection for key lookups (see ProjectionKey).
  ProjectionKey ProjectKey(const std::vector<std::size_t>& positions) const;

  bool operator==(const Tuple& other) const {
    return arity_ == other.arity_ &&
           std::equal(ids(), ids() + arity_, other.ids());
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic three-way comparison (shorter tuples first on ties),
  /// ordering by `Value::Compare` semantics — equal ids short-circuit,
  /// differing ids resolve through the pool.
  int Compare(const Tuple& other) const;
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  std::size_t Hash() const;

  /// Display form: (1, 'a', NULL).
  std::string ToString() const;

 private:
  void InternFrom(const Value* values, std::size_t n);
  void EnsureCapacity(std::size_t n) {
    arity_ = static_cast<std::uint32_t>(n);
    if (n > kInlineArity) heap_ = new ValueId[n];
  }
  void AssignIds(const ValueId* ids_in, std::size_t n) {
    EnsureCapacity(n);
    std::copy(ids_in, ids_in + n, const_cast<ValueId*>(ids()));
  }
  void CopyFrom(const Tuple& other) { AssignIds(other.ids(), other.arity_); }
  void StealFrom(Tuple& other) noexcept {
    arity_ = other.arity_;
    if (arity_ <= kInlineArity) {
      std::copy(other.inline_, other.inline_ + arity_, inline_);
    } else {
      heap_ = other.heap_;
      other.arity_ = 0;
    }
  }
  void Release() {
    if (arity_ > kInlineArity) delete[] heap_;
  }

  std::uint32_t arity_;
  union {
    ValueId inline_[kInlineArity];
    ValueId* heap_;
  };
};

/// A small gather buffer of interned ids used as a hash-map lookup key —
/// the "projection view" of the hot paths. Building one from a tuple and a
/// position list copies only 4-byte ids and never touches the heap for keys
/// of up to `kInlineCapacity` positions (every FD determinant, IND side and
/// index key in the shipped workloads fits). Id-keyed containers declared
/// with `TupleHash`/`TupleEq` accept it directly via heterogeneous lookup,
/// so probing an index allocates nothing.
class ProjectionKey {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  ProjectionKey() = default;

  /// Gathers `tuple`'s ids at `positions` (in that order).
  ProjectionKey(const Tuple& tuple, const std::vector<std::size_t>& positions)
      : ProjectionKey(positions.size()) {
    const ValueId* src = tuple.ids();
    ValueId* out = data_mutable();
    for (std::size_t i = 0; i < positions.size(); ++i) out[i] = src[positions[i]];
  }

  /// An uninitialized key of `n` slots, to be filled with `set`.
  explicit ProjectionKey(std::size_t n) : size_(static_cast<std::uint32_t>(n)) {
    if (n > kInlineCapacity) heap_ = std::make_unique<ValueId[]>(n);
  }

  void set(std::size_t i, ValueId id) { data_mutable()[i] = id; }

  const ValueId* data() const { return size_ <= kInlineCapacity ? inline_ : heap_.get(); }
  std::size_t size() const { return size_; }
  ValueId operator[](std::size_t i) const { return data()[i]; }

  std::size_t Hash() const;

  bool operator==(const ProjectionKey& other) const {
    return size_ == other.size_ &&
           std::equal(data(), data() + size_, other.data());
  }

 private:
  ValueId* data_mutable() {
    return size_ <= kInlineCapacity ? inline_ : heap_.get();
  }

  std::uint32_t size_ = 0;
  ValueId inline_[kInlineCapacity] = {};
  std::unique_ptr<ValueId[]> heap_;
};

inline Tuple Tuple::FromIds(const ProjectionKey& key) {
  return FromIds(key.data(), key.size());
}

inline ProjectionKey Tuple::ProjectKey(
    const std::vector<std::size_t>& positions) const {
  return ProjectionKey(*this, positions);
}

/// Shared id-sequence hash: seeded by length, mixing raw ids. Sound as a
/// value hash because interning maps Compare-equal values to one id.
inline std::size_t HashValueIds(const ValueId* ids, std::size_t n) {
  std::size_t seed = n;
  for (std::size_t i = 0; i < n; ++i) HashCombine(seed, ids[i]);
  return seed;
}

inline std::size_t ProjectionKey::Hash() const {
  return HashValueIds(data(), size_);
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

/// Transparent hash/equality over id sequences: containers keyed by `Tuple`
/// and declared with both functors can be probed with a `ProjectionKey`
/// without materializing a tuple.
struct TupleHash {
  using is_transparent = void;
  std::size_t operator()(const Tuple& t) const { return t.Hash(); }
  std::size_t operator()(const ProjectionKey& k) const { return k.Hash(); }
};

struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(const ProjectionKey& a, const ProjectionKey& b) const {
    return a == b;
  }
  bool operator()(const Tuple& a, const ProjectionKey& b) const {
    return a.arity() == b.size() &&
           std::equal(a.ids(), a.ids() + a.arity(), b.data());
  }
  bool operator()(const ProjectionKey& a, const Tuple& b) const {
    return (*this)(b, a);
  }
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_TUPLE_H_
