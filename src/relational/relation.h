#ifndef BCDB_RELATIONAL_RELATION_H_
#define BCDB_RELATIONAL_RELATION_H_

#include <cstdint>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/world_view.h"
#include "util/flat_table.h"
#include "util/status.h"

namespace bcdb {

/// Index of a distinct tuple within a relation instance.
using TupleId = std::uint32_t;

/// One stored relation instance with set semantics and owner-tagged tuples.
///
/// The relation stores each distinct tuple once, together with the set of
/// owners (the current state and/or pending transactions) that contribute it.
/// A tuple is visible in a `WorldView` iff at least one of its owners is
/// active. Secondary hash indexes over attribute subsets are built lazily and
/// maintained on insert; index entries reference all distinct tuples, so
/// readers must re-check visibility.
///
/// Not thread-safe: lazy index construction mutates shared state.
class Relation {
 public:
  explicit Relation(const RelationSchema* schema) : schema_(schema) {}

  const RelationSchema& schema() const { return *schema_; }

  /// Inserts `tuple` on behalf of `owner`. Duplicate (tuple, owner) pairs are
  /// ignored; a duplicate tuple from a new owner just extends the owner set.
  /// The tuple must already be schema-valid (Database::Insert validates).
  TupleId Insert(Tuple tuple, TupleOwner owner);

  /// Pre-sizes the tuple store and primary hash table for a bulk load of
  /// `expected_tuples` distinct tuples (rehash churn otherwise dominates
  /// large ingests).
  void Reserve(std::size_t expected_tuples);

  /// Restore hook for the durable storage backend: appends `tuple` with an
  /// explicit owner list — possibly empty, since a tuple whose owners were
  /// all dropped stays stored (and invisible) to keep TupleId assignment
  /// stable. Called in persisted TupleId order on a relation with no
  /// secondary indexes yet, it reproduces the persisted id layout exactly.
  /// Fails (leaving the relation untouched) on schema violations or if an
  /// equal tuple is already stored.
  Status RestoreTuple(Tuple tuple, const std::vector<TupleOwner>& owners);

  /// Number of distinct stored tuples (visible or not, over all owners).
  std::size_t num_tuples() const { return tuples_.size(); }

  const Tuple& tuple(TupleId id) const { return tuples_[id]; }
  const std::vector<TupleOwner>& owners(TupleId id) const {
    return owners_[id];
  }

  bool IsVisible(TupleId id, const WorldView& view) const {
    for (TupleOwner owner : owners_[id]) {
      if (view.IsActive(owner)) return true;
    }
    return false;
  }

  /// True if an equal tuple is stored and visible in `view`.
  bool ContainsVisible(const Tuple& tuple, const WorldView& view) const;
  /// Same, keyed by an id sequence (full arity) — allocation-free.
  bool ContainsVisible(const ProjectionKey& key, const WorldView& view) const;

  /// Number of tuples visible in `view`.
  std::size_t CountVisible(const WorldView& view) const;

  /// Distinct tuples contributed by `owner` (empty for unknown owners).
  const std::vector<TupleId>& TuplesOwnedBy(TupleOwner owner) const;

  /// Transfers ownership of `owner`'s tuples to the base state (the pending
  /// transaction was accepted into the blockchain).
  void PromoteOwner(TupleOwner owner);

  /// Removes `owner` from all its tuples (the pending transaction became
  /// permanently unappendable and was discarded). Tuples left with no owner
  /// become invisible in every view.
  void DropOwner(TupleOwner owner);

  /// Removes `owner` from the stored tuple equal to `tuple`, if both exist.
  /// Returns true when an ownership was actually removed (false: the tuple
  /// is not stored, or `owner` does not own it). The tuple itself stays
  /// stored — possibly with no owners, and therefore invisible in every
  /// view — so TupleId assignment and index entries remain stable; indexes
  /// need no maintenance because readers re-check visibility.
  bool RemoveTupleOwner(const Tuple& tuple, TupleOwner owner);

  /// Moves ownership of the stored tuple equal to `tuple` from the base
  /// state back to `owner` (the inverse of one PromoteOwner step, used when
  /// a chain reorg returns an applied transaction to pending). Returns true
  /// when the base ownership was removed; `owner` gains the tuple either
  /// way (no-op if it already owns it). False when the tuple is not stored
  /// or not base-owned — the caller decides whether that is tolerable (a
  /// transaction listing one tuple twice demotes it once).
  bool DemoteTuple(const Tuple& tuple, TupleOwner owner);

  /// Identifier of the lazily-built hash index over `positions`, which must
  /// be sorted, unique and in range. The same positions always return the
  /// same id.
  std::size_t GetOrBuildIndex(const std::vector<std::size_t>& positions) const;

  /// All tuples (visible or not) whose projection on the index's positions
  /// equals `key`. `key` arity must match the index positions.
  const std::vector<TupleId>& IndexLookup(std::size_t index_id,
                                          const Tuple& key) const;
  /// Same, keyed by a ProjectionKey — the allocation-free lookup path.
  const std::vector<TupleId>& IndexLookup(std::size_t index_id,
                                          const ProjectionKey& key) const;

  /// Invokes `fn(TupleId)` for every tuple visible in `view`.
  template <typename Fn>
  void ForEachVisible(const WorldView& view, Fn&& fn) const {
    for (TupleId id = 0; id < tuples_.size(); ++id) {
      if (IsVisible(id, view)) fn(id);
    }
  }

 private:
  /// Buckets are id-keyed: the Tuple key is a flat ValueId sequence, and the
  /// transparent TupleHash/TupleEq pair lets lookups probe with a
  /// ProjectionKey instead of materializing a projection. The table itself
  /// is a flat open-addressing FlatIdMap — an index probe is a tag scan over
  /// contiguous control bytes, not a bucket-node pointer chase.
  struct HashIndex {
    std::vector<std::size_t> positions;
    FlatIdMap<Tuple, std::vector<TupleId>, TupleHash, TupleEq> buckets;
  };

  void AddToIndex(HashIndex& index, TupleId id) const;

  const RelationSchema* schema_;
  std::vector<Tuple> tuples_;
  std::vector<std::vector<TupleOwner>> owners_;
  FlatIdMap<Tuple, TupleId, TupleHash, TupleEq> ids_by_tuple_;
  FlatIdMap<TupleOwner, std::vector<TupleId>> tuples_by_owner_;
  mutable std::vector<HashIndex> indexes_;
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_RELATION_H_
