#ifndef BCDB_RELATIONAL_WORLD_VIEW_H_
#define BCDB_RELATIONAL_WORLD_VIEW_H_

#include <cstddef>
#include <cstdint>

#include "util/bitset.h"

namespace bcdb {

/// Identifies who contributed a tuple: the accepted current state (`R`) or a
/// pending transaction (its index in the blockchain database's pending set).
using TupleOwner = std::int32_t;

/// Owner tag for tuples of the accepted current state.
inline constexpr TupleOwner kBaseOwner = -1;

/// A possible world selector: base tuples are always visible, and a tuple
/// owned by pending transaction `t` is visible iff `t` is activated.
///
/// This generalizes the paper's per-tuple Boolean `current` column — instead
/// of mutating a flag on every tuple when moving between possible worlds, a
/// world is an O(#pending / 64) bitset and visibility is a bit test.
///
/// A view is a snapshot over a fixed number of pending owners; registering
/// new pending transactions requires creating fresh views.
class WorldView {
 public:
  /// World containing only the current state R.
  static WorldView BaseOnly(std::size_t num_owners) {
    return WorldView(num_owners, /*all_active=*/false);
  }

  /// The (usually inconsistent) superset R ∪ T used by the monotone
  /// pre-check of the DCSat algorithms.
  static WorldView AllPending(std::size_t num_owners) {
    return WorldView(num_owners, /*all_active=*/true);
  }

  std::size_t num_owners() const { return active_.size(); }

  bool IsActive(TupleOwner owner) const {
    if (owner == kBaseOwner || all_active_) return true;
    return active_.Test(static_cast<std::size_t>(owner));
  }

  void Activate(TupleOwner owner) {
    if (owner == kBaseOwner) return;
    active_.Set(static_cast<std::size_t>(owner));
  }

  void Deactivate(TupleOwner owner) {
    if (owner == kBaseOwner) return;
    active_.Reset(static_cast<std::size_t>(owner));
  }

  void DeactivateAll() {
    all_active_ = false;
    active_.Clear();
  }

  /// Number of activated pending owners (meaningless for AllPending views).
  std::size_t NumActive() const { return active_.Count(); }

  const DynamicBitset& active_bits() const { return active_; }

  bool operator==(const WorldView& other) const {
    return all_active_ == other.all_active_ && active_ == other.active_;
  }

 private:
  WorldView(std::size_t num_owners, bool all_active)
      : active_(num_owners), all_active_(all_active) {}

  DynamicBitset active_;
  bool all_active_;
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_WORLD_VIEW_H_
