#ifndef BCDB_RELATIONAL_VALUE_H_
#define BCDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace bcdb {

/// Runtime type of a Value / declared type of a schema attribute.
enum class ValueType {
  kNull = 0,
  kInt,
  kReal,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A single relational value: NULL, 64-bit integer, double, or string.
///
/// Values are immutable, regular (copyable, equality-comparable, hashable,
/// totally ordered) so they can serve directly as hash-index keys. Numeric
/// values of different types (`kInt` vs `kReal`) compare numerically, which
/// matches SQL comparison semantics; values of incomparable types order by
/// type tag so sorting is always well-defined.
///
/// To keep the order total for every representable double, `Real(NaN)` is
/// pinned to a defined position: all NaNs are equal to each other and sort
/// *after* every other numeric value (but still by numeric type tag against
/// non-numeric types). IEEE "NaN compares false with everything" semantics
/// would otherwise break the antisymmetry that hash-index buckets and
/// sorted outputs rely on.
class Value {
 public:
  /// Defaults to NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int(std::int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Real(double v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value Str(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kReal;
  }

  /// Requires type() == kInt.
  std::int64_t AsInt() const { return std::get<1>(rep_); }
  /// Requires type() == kReal.
  double AsReal() const { return std::get<2>(rep_); }
  /// Requires type() == kString.
  const std::string& AsString() const { return std::get<3>(rep_); }

  /// Numeric view of an int or real value. Requires IsNumeric().
  double AsNumeric() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt()) : AsReal();
  }

  /// Three-way comparison: negative / zero / positive. NULL sorts first and
  /// equals only NULL; cross-type numeric values compare by numeric value.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::size_t Hash() const;

  /// Display form: NULL, 42, 1.5, 'text'.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, std::int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace bcdb

#endif  // BCDB_RELATIONAL_VALUE_H_
