#include "relational/value_pool.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace bcdb {

Value ValuePool::Canonical(const Value& v) {
  if (v.type() != ValueType::kReal) return v;
  const double d = v.AsReal();
  if (std::isnan(d)) return Value::Real(std::numeric_limits<double>::quiet_NaN());
  // Integral reals are Compare-equal to the int (1 == 1.0); the range guard
  // keeps the cast defined. -0.0 is integral and canonicalizes to Int(0).
  if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
    const auto as_int = static_cast<std::int64_t>(d);
    if (static_cast<double>(as_int) == d) return Value::Int(as_int);
  }
  return v;
}

ValueId ValuePool::Intern(const Value& v) {
  Value canonical = Canonical(v);
  MutexLock lock(mutex_);
  auto it = ids_.find(canonical);
  if (it != ids_.end()) return *it;

  const std::size_t next = size_.load(std::memory_order_relaxed);
  assert(next <= 0xffffffffu && "value pool exhausted the 32-bit id space");
  const ValueId id = static_cast<ValueId>(next);
  const std::size_t c = ChunkIndex(id);
  Entry* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[std::size_t{1} << (c + kBaseLog - 1)];
    chunks_[c].store(chunk, std::memory_order_release);
  }
  Entry& entry = chunk[ChunkOffset(id, c)];
  entry.hash = canonical.Hash();
  entry.value = std::move(canonical);
  size_.store(next + 1, std::memory_order_release);
  ids_.insert(id);
  return id;
}

}  // namespace bcdb
