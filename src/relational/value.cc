#include "relational/value.h"

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "util/hash.h"

namespace bcdb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  // Cross-type numeric comparison: 1 == 1.0.
  if (IsNumeric() && other.IsNumeric()) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      const std::int64_t x = AsInt();
      const std::int64_t y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = AsNumeric();
    const double y = other.AsNumeric();
    // Totality for NaN: all NaNs are equal, and greater than every other
    // numeric (ints can never be NaN).
    const bool x_nan = std::isnan(x);
    const bool y_nan = std::isnan(y);
    if (x_nan || y_nan) {
      if (x_nan && y_nan) return 0;
      return x_nan ? 1 : -1;
    }
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) return a < b ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric handled above.
  }
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      HashCombineValue(seed, AsInt());
      break;
    case ValueType::kReal: {
      // Hash integral reals like the equal int so that 1 == 1.0 implies
      // equal hashes (required because Compare treats them as equal). The
      // range guard keeps the double->int64 cast defined; out-of-range
      // reals can never equal an int anyway. All NaNs are Compare-equal,
      // so they share one fixed hash.
      const double d = AsReal();
      if (std::isnan(d)) {
        HashCombineValue(seed, std::numeric_limits<double>::quiet_NaN());
        break;
      }
      if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
        const auto as_int = static_cast<std::int64_t>(d);
        if (static_cast<double>(as_int) == d) {
          seed = static_cast<std::size_t>(ValueType::kInt);
          HashCombineValue(seed, as_int);
          break;
        }
      }
      HashCombineValue(seed, d);
      break;
    }
    case ValueType::kString:
      HashCombineValue(seed, AsString());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kReal: {
      std::ostringstream os;
      os << AsReal();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace bcdb
