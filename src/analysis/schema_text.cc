#include "analysis/schema_text.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace bcdb {
namespace {

/// Cursor over one schema line with the usual recursive-descent helpers.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (line_.compare(pos_, token.size(), token) != 0) return false;
    pos_ += token.size();
    return true;
  }

  /// [A-Za-z_][A-Za-z0-9_]*; empty when the next char is not a word start.
  std::string Word() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      const bool word_char = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                             c == '_';
      if (!word_char) break;
      ++pos_;
    }
    return std::string(line_.substr(start, pos_ - start));
  }

  /// `(w1, w2, ...)`; empty vector + false on malformed input.
  bool WordList(std::vector<std::string>& out) {
    if (!Consume("(")) return false;
    while (true) {
      std::string word = Word();
      if (word.empty()) return false;
      out.push_back(std::move(word));
      if (Consume(")")) return true;
      if (!Consume(",")) return false;
    }
  }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

Status LineError(std::size_t line_number, const std::string& what) {
  return Status::InvalidArgument("schema line " + std::to_string(line_number) +
                                 ": " + what);
}

Status ParseRelation(LineParser& p, std::size_t line_number,
                     Catalog& catalog) {
  const std::string name = p.Word();
  if (name.empty()) return LineError(line_number, "expected relation name");
  if (!p.Consume("(")) return LineError(line_number, "expected '('");
  std::vector<Attribute> attributes;
  while (true) {
    Attribute attr;
    attr.name = p.Word();
    if (attr.name.empty()) {
      return LineError(line_number, "expected attribute name");
    }
    const std::string type = p.Word();
    if (type == "int") {
      attr.type = ValueType::kInt;
    } else if (type == "real") {
      attr.type = ValueType::kReal;
    } else if (type == "string") {
      attr.type = ValueType::kString;
    } else {
      return LineError(line_number, "unknown attribute type '" + type +
                                        "' (want int, real or string)");
    }
    // Optional flags after the type.
    while (true) {
      if (p.Consume("nonneg")) {
        attr.non_negative = true;
        continue;
      }
      break;
    }
    attributes.push_back(std::move(attr));
    if (p.Consume(")")) break;
    if (!p.Consume(",")) return LineError(line_number, "expected ',' or ')'");
  }
  Status added = catalog.AddRelation(RelationSchema(name, attributes));
  if (!added.ok()) return LineError(line_number, added.message());
  return Status::OK();
}

}  // namespace

StatusOr<ParsedSchema> ParseSchemaText(std::string_view text) {
  ParsedSchema schema;
  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const std::size_t newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);

    LineParser p(line);
    if (p.AtEnd()) continue;
    if (p.Consume("relation")) {
      Status s = ParseRelation(p, line_number, schema.catalog);
      if (!s.ok()) return s;
    } else if (p.Consume("key")) {
      const std::string relation = p.Word();
      std::vector<std::string> attrs;
      if (relation.empty() || !p.WordList(attrs)) {
        return LineError(line_number, "want: key Rel(attr, ...)");
      }
      auto key = FunctionalDependency::Key(schema.catalog, relation, attrs);
      if (!key.ok()) return LineError(line_number, key.status().message());
      schema.constraints.AddFd(*std::move(key));
    } else if (p.Consume("fd")) {
      const std::string relation = p.Word();
      std::vector<std::string> lhs;
      std::vector<std::string> rhs;
      if (relation.empty() || !p.WordList(lhs) || !p.Consume("->") ||
          !p.WordList(rhs)) {
        return LineError(line_number, "want: fd Rel(lhs, ...) -> (rhs, ...)");
      }
      auto fd = FunctionalDependency::Create(schema.catalog, relation, lhs,
                                             rhs);
      if (!fd.ok()) return LineError(line_number, fd.status().message());
      schema.constraints.AddFd(*std::move(fd));
    } else if (p.Consume("ind")) {
      const std::string lhs_relation = p.Word();
      std::vector<std::string> lhs_attrs;
      if (lhs_relation.empty() || !p.WordList(lhs_attrs) || !p.Consume("<=")) {
        return LineError(line_number,
                         "want: ind Lhs(a, ...) <= Rhs(b, ...)");
      }
      const std::string rhs_relation = p.Word();
      std::vector<std::string> rhs_attrs;
      if (rhs_relation.empty() || !p.WordList(rhs_attrs)) {
        return LineError(line_number,
                         "want: ind Lhs(a, ...) <= Rhs(b, ...)");
      }
      auto ind = InclusionDependency::Create(schema.catalog, lhs_relation,
                                             lhs_attrs, rhs_relation,
                                             rhs_attrs);
      if (!ind.ok()) return LineError(line_number, ind.status().message());
      schema.constraints.AddInd(*std::move(ind));
    } else {
      return LineError(line_number,
                       "unknown declaration (want relation/key/fd/ind)");
    }
    if (!p.AtEnd()) {
      return LineError(line_number, "trailing junk after declaration");
    }
  }
  return schema;
}

}  // namespace bcdb
