#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <utility>

#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/union_find.h"

namespace bcdb {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

const char* AnalysisCodeToString(AnalysisCode code) {
  switch (code) {
    case AnalysisCode::kParseError:
      return "parse-error";
    case AnalysisCode::kNoPositiveAtoms:
      return "no-positive-atoms";
    case AnalysisCode::kUnknownRelation:
      return "unknown-relation";
    case AnalysisCode::kArityMismatch:
      return "arity-mismatch";
    case AnalysisCode::kConstantTypeMismatch:
      return "constant-type-mismatch";
    case AnalysisCode::kUnsafeVariable:
      return "unsafe-variable";
    case AnalysisCode::kBadAggregate:
      return "bad-aggregate";
    case AnalysisCode::kCompileRejected:
      return "compile-rejected";
    case AnalysisCode::kAlwaysFalseComparison:
      return "always-false-comparison";
    case AnalysisCode::kJoinTypeConflict:
      return "join-type-conflict";
    case AnalysisCode::kComparisonTypeMismatch:
      return "comparison-type-mismatch";
    case AnalysisCode::kAlreadyViolated:
      return "already-violated";
    case AnalysisCode::kNonMonotone:
      return "non-monotone";
    case AnalysisCode::kDisconnected:
      return "disconnected";
    case AnalysisCode::kMixedConstraintClass:
      return "mixed-constraint-class";
    case AnalysisCode::kGeneralQueryShape:
      return "general-query-shape";
    case AnalysisCode::kUnboundParameter:
      return "unbound-parameter";
  }
  return "?";
}

const char* TractabilityClassToString(TractabilityClass klass) {
  switch (klass) {
    case TractabilityClass::kTriviallyUnsat:
      return "trivially-unsat";
    case TractabilityClass::kTriviallyViolated:
      return "trivially-violated";
    case TractabilityClass::kPtimeFdOnly:
      return "ptime-fd-only";
    case TractabilityClass::kPtimeIndOnly:
      return "ptime-ind-only";
    case TractabilityClass::kCoNpMixed:
      return "conp-mixed";
  }
  return "?";
}

bool AnalysisReport::ok() const {
  return CountSeverity(Severity::kError) == 0;
}

std::size_t AnalysisReport::CountSeverity(Severity severity) const {
  std::size_t count = 0;
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == severity) ++count;
  }
  return count;
}

std::string AnalysisReport::ErrorSummary() const {
  std::string summary;
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity != Severity::kError) continue;
    if (!summary.empty()) summary += "; ";
    summary += diag.message;
    summary += " [";
    summary += AnalysisCodeToString(diag.code);
    summary += "]";
  }
  return summary;
}

namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Best-effort span of the `occurrence`-th identifier-boundary match of
/// `name` in `text`. Zero length when absent or no text was supplied.
SourceSpan FindIdentifier(std::string_view text, std::string_view name,
                          std::size_t occurrence) {
  if (text.empty() || name.empty()) return {};
  std::size_t seen = 0;
  for (std::size_t pos = 0; pos + name.size() <= text.size(); ++pos) {
    if (text.compare(pos, name.size(), name) != 0) continue;
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const bool right_ok = pos + name.size() == text.size() ||
                          !IsIdentChar(text[pos + name.size()]);
    if (!left_ok || !right_ok) continue;
    if (seen++ == occurrence) return SourceSpan{pos, name.size()};
  }
  return {};
}

/// Collects every diagnostic of one analysis pass, resolving spans against
/// the (possibly empty) source text.
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::string_view source_text)
      : source_text_(source_text) {}

  void Add(Severity severity, AnalysisCode code, std::string message,
           SourceSpan span = {}) {
    has_error_ = has_error_ || severity == Severity::kError;
    diagnostics_.push_back(
        Diagnostic{severity, code, std::move(message), span});
  }

  bool has_error() const { return has_error_; }

  /// Span of `name`'s `occurrence`-th identifier occurrence.
  SourceSpan SpanOf(std::string_view name, std::size_t occurrence = 0) const {
    return FindIdentifier(source_text_, name, occurrence);
  }

  /// Span of a term: variables and string constants locate their token,
  /// other constants fall back to the whole constraint.
  SourceSpan SpanOfTerm(const Term& term) const {
    if (term.is_variable()) return SpanOf(term.name());
    if (term.value().type() == ValueType::kString) {
      return SpanOf(term.value().AsString());
    }
    return {};
  }

  std::vector<Diagnostic> Take() { return std::move(diagnostics_); }

 private:
  std::string_view source_text_;
  std::vector<Diagnostic> diagnostics_;
  bool has_error_ = false;
};

/// Coarse static type of a term: definitely-numeric, definitely-string, or
/// unknown (mixed/unconstrained). Int and Real compare numerically, so they
/// share one bucket; numeric-vs-string never matches under Value equality.
enum class CoarseType { kUnknown, kNumeric, kString };

CoarseType CoarseOf(ValueType type) {
  switch (type) {
    case ValueType::kInt:
    case ValueType::kReal:
      return CoarseType::kNumeric;
    case ValueType::kString:
      return CoarseType::kString;
    case ValueType::kNull:
      return CoarseType::kUnknown;
  }
  return CoarseType::kUnknown;
}

/// Relation id of `atom` if the name binds and the arity matches; nullopt
/// otherwise (those defects carry their own diagnostics).
std::optional<std::size_t> BoundRelation(const Atom& atom,
                                         const Catalog& catalog) {
  StatusOr<std::size_t> id = catalog.RelationId(atom.relation);
  if (!id.ok()) return std::nullopt;
  if (atom.args.size() != catalog.schema(*id).arity()) return std::nullopt;
  return *id;
}

/// Shared state of the unsatisfiability core: a union-find over the
/// variables of `q` with `=`-comparisons applied, per-class constant
/// bindings, and per-variable coarse types from positive-atom positions.
class UnsatCore {
 public:
  UnsatCore(const DenialConstraint& q, const Catalog& catalog) : q_(q) {
    auto intern = [&](const Term& term) {
      if (term.is_variable()) {
        var_ids_.emplace(term.name(), var_ids_.size());
      }
    };
    for (const Atom& atom : q.positive_atoms) {
      for (const Term& term : atom.args) intern(term);
    }
    for (const Atom& atom : q.negated_atoms) {
      for (const Term& term : atom.args) intern(term);
    }
    for (const Comparison& cmp : q.comparisons) {
      intern(cmp.lhs);
      intern(cmp.rhs);
    }
    uf_ = UnionFind(var_ids_.size());
    for (const Comparison& cmp : q.comparisons) {
      if (cmp.op != ComparisonOp::kEq) continue;
      if (cmp.lhs.is_variable() && cmp.rhs.is_variable()) {
        uf_.Union(var_ids_.at(cmp.lhs.name()), var_ids_.at(cmp.rhs.name()));
      }
    }
    // Coarse types from positive-atom occurrences (where bindings happen).
    var_types_.resize(var_ids_.size(), CoarseType::kUnknown);
    for (const Atom& atom : q.positive_atoms) {
      const std::optional<std::size_t> rel_id = BoundRelation(atom, catalog);
      if (!rel_id.has_value()) continue;
      const RelationSchema& schema = catalog.schema(*rel_id);
      for (std::size_t i = 0; i < atom.args.size(); ++i) {
        if (!atom.args[i].is_variable()) continue;
        const std::size_t var = var_ids_.at(atom.args[i].name());
        const CoarseType here = CoarseOf(schema.attribute(i).type);
        if (here == CoarseType::kUnknown) continue;
        if (var_types_[var] == CoarseType::kUnknown) {
          var_types_[var] = here;
        } else if (var_types_[var] != here) {
          type_conflict_var_ = atom.args[i].name();
        }
      }
    }
  }

  /// A variable provably joining numeric and string attributes, if any.
  const std::optional<std::string>& type_conflict_var() const {
    return type_conflict_var_;
  }

  /// Constant bound to `term`'s equality class via `=`-chains, or the term's
  /// own value for constants. Records conflicting bindings.
  std::optional<Value> ResolveConstant(const Term& term) {
    if (!term.is_variable()) return term.value();
    auto it = bindings_.find(ClassOf(term));
    if (it == bindings_.end()) return std::nullopt;
    return it->second;
  }

  /// Applies every `var = const` comparison; returns the first pair of
  /// conflicting constants bound to one class, if any.
  std::optional<std::pair<Value, Value>> BindConstants() {
    for (const Comparison& cmp : q_.comparisons) {
      if (cmp.op != ComparisonOp::kEq) continue;
      const Term* var = nullptr;
      const Term* constant = nullptr;
      if (cmp.lhs.is_variable() && !cmp.rhs.is_variable()) {
        var = &cmp.lhs;
        constant = &cmp.rhs;
      } else if (!cmp.lhs.is_variable() && cmp.rhs.is_variable()) {
        var = &cmp.rhs;
        constant = &cmp.lhs;
      } else {
        continue;
      }
      const std::size_t klass = ClassOf(*var);
      auto [it, inserted] = bindings_.emplace(klass, constant->value());
      if (!inserted && !(it->second == constant->value())) {
        return std::make_pair(it->second, constant->value());
      }
    }
    return std::nullopt;
  }

  /// Same equality class (variables only; constants never share a class).
  bool SameClass(const Term& a, const Term& b) {
    if (!a.is_variable() || !b.is_variable()) return false;
    return ClassOf(a) == ClassOf(b);
  }

  /// Coarse type of a term: a constant's own type, or the union of the
  /// variable's class's attribute types and bound constants.
  CoarseType TypeOf(const Term& term) {
    if (!term.is_variable()) return CoarseOf(term.value().type());
    CoarseType result = var_types_[var_ids_.at(term.name())];
    if (result == CoarseType::kUnknown) {
      const std::optional<Value> bound = ResolveConstant(term);
      if (bound.has_value()) result = CoarseOf(bound->type());
    }
    return result;
  }

 private:
  std::size_t ClassOf(const Term& var) {
    return uf_.Find(var_ids_.at(var.name()));
  }

  const DenialConstraint& q_;
  std::map<std::string, std::size_t> var_ids_;
  UnionFind uf_{0};
  std::vector<CoarseType> var_types_;
  std::map<std::size_t, Value> bindings_;
  std::optional<std::string> type_conflict_var_;
};

/// The unsatisfiability pass: true when `q` provably has no satisfying
/// assignment over any instance of `catalog`. When `sink` is non-null the
/// pass explains each proof step as a diagnostic.
bool RunUnsatCore(const DenialConstraint& q, const Catalog& catalog,
                  DiagnosticSink* sink) {
  UnsatCore core(q, catalog);
  bool unsat = false;

  if (core.type_conflict_var().has_value()) {
    unsat = true;
    if (sink != nullptr) {
      sink->Add(Severity::kWarning, AnalysisCode::kJoinTypeConflict,
                "variable '" + *core.type_conflict_var() +
                    "' joins numeric and string attributes; no tuple pair "
                    "can ever match, the constraint is vacuously satisfied",
                sink->SpanOf(*core.type_conflict_var()));
    }
  }

  const std::optional<std::pair<Value, Value>> conflict = core.BindConstants();
  if (conflict.has_value()) {
    unsat = true;
    if (sink != nullptr) {
      sink->Add(Severity::kWarning, AnalysisCode::kAlwaysFalseComparison,
                "equality chain binds one variable to both " +
                    conflict->first.ToString() + " and " +
                    conflict->second.ToString() +
                    "; the body can never be satisfied");
    }
  }

  for (const Comparison& cmp : q.comparisons) {
    // Irreflexive comparison over one equality class: x != x, x < x, x > x.
    if (core.SameClass(cmp.lhs, cmp.rhs) &&
        (cmp.op == ComparisonOp::kNe || cmp.op == ComparisonOp::kLt ||
         cmp.op == ComparisonOp::kGt)) {
      unsat = true;
      if (sink != nullptr) {
        sink->Add(Severity::kWarning, AnalysisCode::kAlwaysFalseComparison,
                  "comparison " + cmp.ToString() +
                      " relates a value to itself and can never hold",
                  sink->SpanOfTerm(cmp.lhs));
      }
      continue;
    }
    // Constant folding after `=`-propagation: both sides resolve to known
    // constants (literal, or a class bound to one).
    const std::optional<Value> lhs = core.ResolveConstant(cmp.lhs);
    const std::optional<Value> rhs = core.ResolveConstant(cmp.rhs);
    if (lhs.has_value() && rhs.has_value()) {
      if (!EvaluateComparison(*lhs, cmp.op, *rhs)) {
        unsat = true;
        if (sink != nullptr) {
          sink->Add(Severity::kWarning, AnalysisCode::kAlwaysFalseComparison,
                    "comparison " + cmp.ToString() + " folds to " +
                        lhs->ToString() + " " + ComparisonOpToString(cmp.op) +
                        " " + rhs->ToString() + ", which is false",
                    sink->SpanOfTerm(cmp.lhs));
        }
      }
      continue;
    }
    // Cross-type comparison: the total Value order decides numeric-vs-string
    // comparisons by type tag alone, so the outcome is a constant.
    const CoarseType lhs_type = core.TypeOf(cmp.lhs);
    const CoarseType rhs_type = core.TypeOf(cmp.rhs);
    if (lhs_type != CoarseType::kUnknown && rhs_type != CoarseType::kUnknown &&
        lhs_type != rhs_type) {
      // Numeric sorts before string in the type-tag order.
      const bool lhs_smaller = lhs_type == CoarseType::kNumeric;
      bool holds = false;
      switch (cmp.op) {
        case ComparisonOp::kEq:
          holds = false;
          break;
        case ComparisonOp::kNe:
          holds = true;
          break;
        case ComparisonOp::kLt:
        case ComparisonOp::kLe:
          holds = lhs_smaller;
          break;
        case ComparisonOp::kGt:
        case ComparisonOp::kGe:
          holds = !lhs_smaller;
          break;
      }
      if (sink != nullptr) {
        sink->Add(Severity::kWarning, AnalysisCode::kComparisonTypeMismatch,
                  "comparison " + cmp.ToString() +
                      " mixes numeric and string operands; under the total "
                      "value order it is always " +
                      (holds ? "true (redundant)" : "false"),
                  sink->SpanOfTerm(cmp.lhs));
      }
      if (!holds) unsat = true;
    }
  }
  return unsat;
}

/// Schema conformance of one atom: relation exists, arity matches, constant
/// terms fit the attribute types. Mirrors CompiledQuery's validation but as
/// structured diagnostics with spans.
void CheckAtomAgainstSchema(const Atom& atom, std::size_t occurrence,
                            const Catalog& catalog, DiagnosticSink& sink) {
  const SourceSpan span = sink.SpanOf(atom.relation, occurrence);
  StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
  if (!rel_id.ok()) {
    sink.Add(Severity::kError, AnalysisCode::kUnknownRelation,
             "relation '" + atom.relation + "' is not in the catalog", span);
    return;
  }
  const RelationSchema& schema = catalog.schema(*rel_id);
  if (atom.args.size() != schema.arity()) {
    sink.Add(Severity::kError, AnalysisCode::kArityMismatch,
             "atom " + atom.ToString() + " has arity " +
                 std::to_string(atom.args.size()) + " but relation " +
                 schema.name() + " has arity " +
                 std::to_string(schema.arity()),
             span);
    return;
  }
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].is_variable()) continue;
    const Value& v = atom.args[i].value();
    const ValueType expected = schema.attribute(i).type;
    const bool numeric_ok = v.IsNumeric() && (expected == ValueType::kInt ||
                                              expected == ValueType::kReal);
    if (v.type() != expected && !numeric_ok) {
      sink.Add(Severity::kError, AnalysisCode::kConstantTypeMismatch,
               "constant " + v.ToString() + " at position " +
                   std::to_string(i) + " of atom " + atom.ToString() +
                   " has wrong type (attribute " + schema.attribute(i).name +
                   " is " + ValueTypeToString(expected) + ")",
               sink.SpanOfTerm(atom.args[i]).valid()
                   ? sink.SpanOfTerm(atom.args[i])
                   : span);
    }
  }
}

/// Range restriction: every variable of a negated atom, comparison,
/// aggregate head, or answer head must occur in some positive atom.
void CheckSafety(const DenialConstraint& q, DiagnosticSink& sink) {
  std::vector<std::string> positive_vars;
  for (const Atom& atom : q.positive_atoms) {
    for (const Term& term : atom.args) {
      if (term.is_variable()) positive_vars.push_back(term.name());
    }
  }
  auto bound = [&](const Term& term) {
    return !term.is_variable() ||
           std::find(positive_vars.begin(), positive_vars.end(),
                     term.name()) != positive_vars.end();
  };
  auto flag = [&](const Term& term, const std::string& where) {
    sink.Add(Severity::kError, AnalysisCode::kUnsafeVariable,
             "unsafe " + where + ": variable '" + term.name() +
                 "' does not occur in any positive atom",
             sink.SpanOf(term.name()));
  };
  for (const Atom& atom : q.negated_atoms) {
    for (const Term& term : atom.args) {
      if (!bound(term)) flag(term, "negated atom " + atom.ToString());
    }
  }
  for (const Comparison& cmp : q.comparisons) {
    if (!bound(cmp.lhs)) flag(cmp.lhs, "comparison " + cmp.ToString());
    if (!bound(cmp.rhs)) flag(cmp.rhs, "comparison " + cmp.ToString());
  }
  if (q.aggregate.has_value()) {
    for (const Term& term : q.aggregate->args) {
      if (term.is_variable() && !bound(term)) {
        flag(term, "aggregate head");
      }
    }
  }
  for (const Term& term : q.head_vars) {
    if (term.is_variable() && !bound(term)) flag(term, "head");
  }
}

void CheckAggregate(const DenialConstraint& q, DiagnosticSink& sink) {
  if (!q.aggregate.has_value()) return;
  const AggregateSpec& spec = *q.aggregate;
  if (!q.head_vars.empty()) {
    sink.Add(Severity::kError, AnalysisCode::kBadAggregate,
             "a query cannot have both head variables and an aggregate");
  }
  for (const Term& term : spec.args) {
    if (!term.is_variable()) {
      sink.Add(Severity::kError, AnalysisCode::kBadAggregate,
               "aggregate argument " + term.ToString() +
                   " must be a variable");
    }
  }
  const bool value_agg = spec.fn == AggregateFunction::kSum ||
                         spec.fn == AggregateFunction::kMax ||
                         spec.fn == AggregateFunction::kMin;
  if (value_agg && spec.args.size() != 1) {
    sink.Add(Severity::kError, AnalysisCode::kBadAggregate,
             std::string(AggregateFunctionToString(spec.fn)) +
                 " aggregates take exactly one variable");
  }
}

/// Names of every template parameter occurring in `q`, first occurrence
/// first. Ground constraints return an empty list.
std::vector<std::string> CollectParams(const DenialConstraint& q) {
  std::vector<std::string> params;
  auto visit = [&](const Term& term) {
    if (!term.is_param()) return;
    if (std::find(params.begin(), params.end(), term.name()) == params.end()) {
      params.push_back(term.name());
    }
  };
  for (const std::vector<Atom>* atoms :
       {&q.positive_atoms, &q.negated_atoms}) {
    for (const Atom& atom : *atoms) {
      for (const Term& term : atom.args) visit(term);
    }
  }
  for (const Comparison& cmp : q.comparisons) {
    visit(cmp.lhs);
    visit(cmp.rhs);
  }
  if (q.aggregate.has_value()) {
    for (const Term& term : q.aggregate->args) visit(term);
    if (q.aggregate->threshold_param.has_value()) {
      visit(Term::Param(*q.aggregate->threshold_param));
    }
  }
  return params;
}

}  // namespace

bool ProvedUnsatisfiable(const DenialConstraint& q, const Catalog& catalog) {
  return RunUnsatCore(q, catalog, nullptr);
}

std::vector<std::size_t> IndClosedFootprint(const DenialConstraint& q,
                                            const Catalog& catalog,
                                            const ConstraintSet& constraints) {
  const std::size_t num_relations = catalog.num_relations();
  UnionFind coupling(num_relations);
  for (const InclusionDependency& ind : constraints.inds()) {
    coupling.Union(ind.lhs_relation_id(), ind.rhs_relation_id());
  }
  std::vector<std::size_t> direct;
  for (const std::vector<Atom>* atoms :
       {&q.positive_atoms, &q.negated_atoms}) {
    for (const Atom& atom : *atoms) {
      StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
      if (!rel_id.ok()) continue;  // Unknown relations carry diagnostics.
      if (std::find(direct.begin(), direct.end(), *rel_id) == direct.end()) {
        direct.push_back(*rel_id);
      }
    }
  }
  std::vector<std::size_t> footprint;
  for (std::size_t r = 0; r < num_relations; ++r) {
    for (std::size_t d : direct) {
      if (coupling.Find(r) == coupling.Find(d)) {
        footprint.push_back(r);
        break;
      }
    }
  }
  return footprint;
}

TractabilityClass ClassifyConstraint(const DenialConstraint& q,
                                     const QueryAnalysis& analysis,
                                     const ConstraintSet& constraints,
                                     bool proved_unsat) {
  if (proved_unsat) return TractabilityClass::kTriviallyUnsat;
  const bool has_fds = !constraints.fds().empty();
  const bool has_inds = !constraints.inds().empty();
  // Mirrors TryTractableDcSat's gating exactly, so static dispatch routes
  // bit-identically to the runtime probing it replaces.
  if (!has_fds) {
    return analysis.monotone ? TractabilityClass::kPtimeIndOnly
                             : TractabilityClass::kCoNpMixed;
  }
  if (!has_inds && !q.is_aggregate() && q.negated_atoms.empty()) {
    return TractabilityClass::kPtimeFdOnly;
  }
  return TractabilityClass::kCoNpMixed;
}

AnalysisReport AnalyzeConstraint(const DenialConstraint& q, const Database& db,
                                 const ConstraintSet& constraints,
                                 const AnalyzerOptions& options) {
  const Catalog& catalog = db.catalog();
  DiagnosticSink sink(options.source_text);
  AnalysisReport report;

  // --- Unbound template parameters. ---
  // Every later pass treats terms as variable-or-constant, so parameters
  // must be rejected up front (the rest of the analysis would misread them).
  const std::vector<std::string> params = CollectParams(q);
  if (!params.empty()) {
    for (const std::string& name : params) {
      sink.Add(Severity::kError, AnalysisCode::kUnboundParameter,
               "unbound parameter '$" + name +
                   "'; register the constraint as a template and bind it",
               sink.SpanOf(name));
    }
    report.diagnostics = sink.Take();
    return report;
  }

  // --- Schema / arity / type conformance. ---
  if (q.positive_atoms.empty()) {
    sink.Add(Severity::kError, AnalysisCode::kNoPositiveAtoms,
             "query '" + q.name + "' has no positive atoms");
  }
  std::map<std::string, std::size_t> occurrences;
  for (const std::vector<Atom>* atoms :
       {&q.positive_atoms, &q.negated_atoms}) {
    for (const Atom& atom : *atoms) {
      CheckAtomAgainstSchema(atom, occurrences[atom.relation]++, catalog,
                             sink);
    }
  }

  // --- Safety (range restriction) and aggregate shape. ---
  CheckSafety(q, sink);
  CheckAggregate(q, sink);

  // --- Unsatisfiability core (folding, bindings, type conflicts). ---
  report.proved_unsat = RunUnsatCore(q, catalog, &sink);

  // --- Monotonicity and connectivity. ---
  const QueryAnalysis analysis = AnalyzeQuery(q, catalog);
  report.monotone = analysis.monotone;
  report.monotone_reason = analysis.monotone_reason;
  report.connected = analysis.connected;
  // Derived-fact notes are suppressed for erroneous constraints: the
  // classification is only meaningful once the errors are fixed.
  if (!analysis.monotone && !sink.has_error()) {
    sink.Add(Severity::kNote, AnalysisCode::kNonMonotone,
             "not proved monotone (" + analysis.monotone_reason +
                 "); the exhaustive possible-world search applies and the "
                 "monitor re-checks on every mutation");
  }
  if (!q.is_aggregate() && q.positive_atoms.size() > 1 &&
      !analysis.connected && !sink.has_error()) {
    sink.Add(Severity::kNote, AnalysisCode::kDisconnected,
             "the Gaifman graph is disconnected; OptDCSat's per-component "
             "split does not apply (NaiveDCSat runs instead)");
  }

  // --- Dichotomy classification. ---
  report.footprint = IndClosedFootprint(q, catalog, constraints);
  report.tractability =
      ClassifyConstraint(q, analysis, constraints, report.proved_unsat);
  const bool has_fds = !constraints.fds().empty();
  const bool has_inds = !constraints.inds().empty();
  if (report.tractability == TractabilityClass::kCoNpMixed &&
      !sink.has_error()) {
    if (has_fds && has_inds) {
      sink.Add(Severity::kNote, AnalysisCode::kMixedConstraintClass,
               "keys/FDs mix with inclusion dependencies: DCSat is "
               "CoNP-complete for this class (Theorem 1); a check budget is "
               "advisable");
    } else {
      sink.Add(Severity::kNote, AnalysisCode::kGeneralQueryShape,
               "the constraint set is one-sided but the query falls outside "
               "the proven-PTIME fragment (" +
                   std::string(has_fds ? "FD-only needs a positive "
                                         "non-aggregate conjunctive query"
                                       : "IND-only needs a monotone query") +
                   "); the general search applies");
    }
  }

  // --- Compile safety net + base-state probe. ---
  // Compilation re-checks everything above and catches the long tail this
  // analyzer does not reproduce (e.g. non-variable head terms). A compile
  // failure with no matching structured diagnostic still must surface as an
  // error: registration would fail later otherwise.
  StatusOr<CompiledQuery> compiled = CompiledQuery::Compile(q, &db);
  if (compiled.ok() && options.check_base_state &&
      !report.proved_unsat) {
    if (compiled->Evaluate(db.BaseView())) {
      sink.Add(Severity::kWarning, AnalysisCode::kAlreadyViolated,
               "the constraint is already violated by the current state R "
               "alone; every possible world inherits the violation");
      report.tractability = TractabilityClass::kTriviallyViolated;
    }
  }

  report.diagnostics = sink.Take();
  if (!compiled.ok()) {
    bool already_flagged = false;
    for (const Diagnostic& diag : report.diagnostics) {
      if (diag.severity == Severity::kError) {
        already_flagged = true;
        break;
      }
    }
    if (!already_flagged) {
      report.diagnostics.push_back(
          Diagnostic{Severity::kError, AnalysisCode::kCompileRejected,
                     "rejected by the query compiler: " +
                         compiled.status().message(),
                     SourceSpan{}});
    }
  }
  return report;
}

TemplateAnalysis AnalyzeTemplate(const ConstraintTemplate& tmpl,
                                 const Database& db,
                                 const ConstraintSet& constraints,
                                 const AnalyzerOptions& options) {
  const Catalog& catalog = db.catalog();
  TemplateAnalysis result;

  // Admission runs on a dummy-typed instance: each parameter takes a value
  // of its first positive-atom attribute's type (Int(0) when the parameter
  // has no positive site or the site does not bind). Every admission error
  // (schema, arity, safety, aggregate shape, cross-type parameters) is
  // binding-independent, so rejecting the dummy rejects every binding.
  std::vector<Value> dummies;
  dummies.reserve(tmpl.num_params());
  for (std::size_t p = 0; p < tmpl.num_params(); ++p) {
    ValueType type = ValueType::kInt;
    for (const ParamSite& site : tmpl.param_sites()[p]) {
      if (site.kind != ParamSite::Kind::kPositiveAtom) continue;
      const Atom& atom = tmpl.constraint().positive_atoms[site.element_index];
      StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
      if (rel_id.ok() && atom.args.size() == catalog.schema(*rel_id).arity()) {
        type = catalog.schema(*rel_id).attribute(site.arg_index).type;
      }
      break;
    }
    switch (type) {
      case ValueType::kReal:
        dummies.push_back(Value::Real(0));
        break;
      case ValueType::kString:
        dummies.push_back(Value::Str(""));
        break;
      default:
        dummies.push_back(Value::Int(0));
        break;
    }
  }

  AnalyzerOptions admission = options;
  // Base-state and unsat classifications of the dummy instance would be
  // binding-dependent facts, not class facts.
  admission.check_base_state = false;
  AnalysisReport dummy_report;
  StatusOr<DenialConstraint> dummy = tmpl.Instantiate(dummies);
  if (dummy.ok()) {
    dummy_report = AnalyzeConstraint(*dummy, db, constraints, admission);
  } else {
    dummy_report.diagnostics.push_back(
        Diagnostic{Severity::kError, AnalysisCode::kCompileRejected,
                   dummy.status().message(), SourceSpan{}});
  }

  result.batchable = tmpl.projectable() && dummy_report.ok();
  if (result.batchable) {
    // The class-level report comes from the generalized query: with
    // parameters as variables, monotonicity / connectivity / tractability /
    // footprint are exactly the facts shared by every member.
    AnalysisReport general =
        AnalyzeConstraint(tmpl.Generalized(), db, constraints, admission);
    if (general.ok()) {
      result.report = std::move(general);
    } else {
      result.batchable = false;
      result.report = std::move(dummy_report);
    }
  } else {
    result.report = std::move(dummy_report);
  }

  std::string key = tmpl.CanonicalSkeleton() + "#fp:";
  for (std::size_t i = 0; i < result.report.footprint.size(); ++i) {
    if (i > 0) key += ",";
    key += std::to_string(result.report.footprint[i]);
  }
  result.class_key = std::move(key);
  return result;
}

AnalysisReport AnalyzeConstraintText(std::string_view text, const Database& db,
                                     const ConstraintSet& constraints,
                                     AnalyzerOptions options) {
  options.source_text = text;
  StatusOr<DenialConstraint> q = ParseDenialConstraint(text);
  if (!q.ok()) {
    AnalysisReport report;
    // Parser messages end in "at offset N" when they can localize the
    // defect; recover the offset for the span.
    const std::string& message = q.status().message();
    SourceSpan span;
    const std::size_t marker = message.rfind("at offset ");
    if (marker != std::string::npos) {
      const char* digits = message.c_str() + marker + 10;
      char* end = nullptr;
      const unsigned long offset = std::strtoul(digits, &end, 10);
      if (end != digits && offset < text.size()) {
        span = SourceSpan{static_cast<std::size_t>(offset), 1};
      }
    }
    report.diagnostics.push_back(Diagnostic{
        Severity::kError, AnalysisCode::kParseError, message, span});
    return report;
  }
  return AnalyzeConstraint(*q, db, constraints, options);
}

}  // namespace bcdb
