#ifndef BCDB_ANALYSIS_SCHEMA_TEXT_H_
#define BCDB_ANALYSIS_SCHEMA_TEXT_H_

#include <string_view>

#include "constraints/constraint.h"
#include "relational/schema.h"
#include "util/status.h"

namespace bcdb {

/// A catalog plus integrity-constraint set parsed from a schema description
/// file — the lint context `bcdb_lint` checks constraint files against.
struct ParsedSchema {
  Catalog catalog;
  ConstraintSet constraints;
};

/// Parses the line-oriented schema description language of bcdb_lint:
///
///   # comment
///   relation TxOut(txId int, ser int, pk string, amount real nonneg)
///   key TxOut(txId, ser)
///   fd Account(owner) -> (region)
///   ind TxIn(prevTxId, prevSer) <= TxOut(txId, ser)
///
/// Attribute types: int, real, string; `nonneg` marks the schema hint that
/// makes sum-aggregates monotone. Declarations may come in any order except
/// that key/fd/ind lines must follow the relations they reference. Errors
/// carry the 1-based line number.
StatusOr<ParsedSchema> ParseSchemaText(std::string_view text);

}  // namespace bcdb

#endif  // BCDB_ANALYSIS_SCHEMA_TEXT_H_
