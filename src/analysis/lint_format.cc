#include "analysis/lint_format.h"

#include <cstdio>

namespace bcdb {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatConstraintText(std::string_view file,
                                 const LintedConstraint& c) {
  std::string out;
  const std::string location =
      std::string(file) + ":" + std::to_string(c.line) + ": ";
  for (const Diagnostic& diag : c.report.diagnostics) {
    out += location;
    out += SeverityToString(diag.severity);
    out += ": ";
    out += diag.message;
    out += " [";
    out += AnalysisCodeToString(diag.code);
    out += "]\n";
    if (diag.span.valid() && diag.span.offset < c.text.size()) {
      out += "  " + c.text + "\n";
      out += "  " + std::string(diag.span.offset, ' ') + "^";
      if (diag.span.length > 1) {
        out += std::string(diag.span.length - 1, '~');
      }
      out += "\n";
    }
  }
  // The class/monotonicity summary is meaningless for a constraint that
  // failed analysis — only print it for admissible constraints.
  if (c.report.ok()) {
    if (c.is_template) {
      out += location + "template (" + std::to_string(c.num_params) +
             (c.num_params == 1 ? " param" : " params") + "), class " +
             TractabilityClassToString(c.report.tractability) +
             (c.report.monotone ? ", monotone" : ", non-monotone") +
             (c.batchable ? ", batch-admitted" : ", per-member") + "\n";
      out += location + "class key: " + c.class_key + "\n";
    } else {
      out += location + "class " +
             TractabilityClassToString(c.report.tractability) +
             (c.report.monotone ? ", monotone" : ", non-monotone") + "\n";
    }
  }
  return out;
}

namespace {

void AppendDiagnosticJson(const Diagnostic& diag, std::string& out) {
  out += "{\"severity\": \"";
  out += SeverityToString(diag.severity);
  out += "\", \"code\": \"";
  out += AnalysisCodeToString(diag.code);
  out += "\", \"message\": \"";
  out += JsonEscape(diag.message);
  out += "\"";
  if (diag.span.valid()) {
    out += ", \"offset\": " + std::to_string(diag.span.offset) +
           ", \"length\": " + std::to_string(diag.span.length);
  }
  out += "}";
}

void AppendConstraintJson(const LintedConstraint& c, std::string& out) {
  out += "    {\"line\": " + std::to_string(c.line) + ", \"text\": \"" +
         JsonEscape(c.text) + "\",\n     \"class\": \"";
  out += TractabilityClassToString(c.report.tractability);
  out += "\", \"monotone\": ";
  out += c.report.monotone ? "true" : "false";
  out += ", \"connected\": ";
  out += c.report.connected ? "true" : "false";
  if (c.is_template) {
    out += ", \"template\": true, \"params\": " + std::to_string(c.num_params) +
           ", \"batchable\": ";
    out += c.batchable ? "true" : "false";
    out += ", \"class_key\": \"" + JsonEscape(c.class_key) + "\"";
  }
  out += ", \"footprint\": [";
  for (std::size_t i = 0; i < c.report.footprint.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(c.report.footprint[i]);
  }
  out += "],\n     \"diagnostics\": [";
  for (std::size_t i = 0; i < c.report.diagnostics.size(); ++i) {
    if (i > 0) out += ", ";
    AppendDiagnosticJson(c.report.diagnostics[i], out);
  }
  out += "]}";
}

}  // namespace

std::string FormatFileJson(std::string_view file,
                           const std::vector<LintedConstraint>& constraints) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const LintedConstraint& c : constraints) {
    errors += c.report.CountSeverity(Severity::kError);
    warnings += c.report.CountSeverity(Severity::kWarning);
  }
  std::string out = "{\"file\": \"" + JsonEscape(file) + "\", \"errors\": " +
                    std::to_string(errors) + ", \"warnings\": " +
                    std::to_string(warnings) + ",\n  \"constraints\": [\n";
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    AppendConstraintJson(constraints[i], out);
    out += i + 1 < constraints.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

}  // namespace bcdb
