#ifndef BCDB_ANALYSIS_LINT_FORMAT_H_
#define BCDB_ANALYSIS_LINT_FORMAT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"

namespace bcdb {

/// One constraint of a lint run: its source text, where it came from, and
/// the analyzer's verdict.
struct LintedConstraint {
  /// Source text of the constraint (one logical line of the .dc file).
  std::string text;
  /// 1-based line number in the linted file.
  std::size_t line = 0;
  AnalysisReport report;
  /// Template lines ($name placeholders) are analyzed class-level
  /// (AnalyzeTemplate): the report describes the whole template class, and
  /// the fields below carry its batch admission and canonicalization key.
  bool is_template = false;
  bool batchable = false;
  std::size_t num_params = 0;
  /// The isomorphism-class key: α-renamed skeleton + IND-closed footprint.
  /// Registrations with equal keys share all class-level evaluation work.
  std::string class_key;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// compiler-style human-readable rendering of one linted constraint:
///
///   bad.dc:3: error: relation 'Txout' is not in the catalog [unknown-relation]
///     q() :- Txout(a, b)
///            ^~~~~
///   bad.dc:3: class conp-mixed, non-monotone
///
/// Diagnostics come first (with caret lines when they carry a span), then a
/// one-line summary of the derived facts.
std::string FormatConstraintText(std::string_view file,
                                 const LintedConstraint& c);

/// The whole lint run as one JSON document:
///
///   {"file": "...", "errors": N, "warnings": N,
///    "constraints": [{"line": 3, "text": "...", "class": "...",
///                     "monotone": true, "footprint": [0, 1],
///                     "diagnostics": [{"severity": "error", "code": "...",
///                                      "message": "...", "offset": 7,
///                                      "length": 5}, ...]}, ...]}
std::string FormatFileJson(std::string_view file,
                           const std::vector<LintedConstraint>& constraints);

}  // namespace bcdb

#endif  // BCDB_ANALYSIS_LINT_FORMAT_H_
