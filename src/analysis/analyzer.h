#ifndef BCDB_ANALYSIS_ANALYZER_H_
#define BCDB_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "constraints/constraint.h"
#include "query/analysis.h"
#include "query/ast.h"
#include "query/template.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace bcdb {

/// Severity of one analyzer diagnostic. Reports with a kError diagnostic
/// describe constraints that must not be registered or executed; kWarning
/// marks well-formed constraints whose behaviour is almost certainly not
/// what the author intended (vacuously satisfied, already violated);
/// kNote records derived facts that shape dispatch (class, monotonicity).
enum class Severity {
  kError,
  kWarning,
  kNote,
};

const char* SeverityToString(Severity severity);

/// Stable machine-readable diagnostic kinds (one per distinct defect or
/// derived fact), used by tests and by bcdb_lint's JSON output.
enum class AnalysisCode {
  kParseError,              // error: the constraint text does not parse.
  kNoPositiveAtoms,         // error: a query needs at least one positive atom.
  kUnknownRelation,         // error: atom references a relation not in the catalog.
  kArityMismatch,           // error: atom arity != schema arity.
  kConstantTypeMismatch,    // error: constant term incompatible with attribute type.
  kUnsafeVariable,          // error: negated-atom / comparison / aggregate-head
                            //        variable unbound by any positive atom.
  kBadAggregate,            // error: malformed aggregate head (non-variable
                            //        args, value aggregate without exactly one).
  kCompileRejected,         // error: CompiledQuery::Compile rejected the
                            //        constraint for a reason the structured
                            //        checks above did not reproduce.
  kAlwaysFalseComparison,   // warning: a comparison can never hold (constant
                            //          fold, x < x, conflicting constants).
  kJoinTypeConflict,        // warning: one variable joins attributes of
                            //          incompatible types; no tuple pair matches.
  kComparisonTypeMismatch,  // warning: comparison across incompatible types
                            //          (legal under the total Value order,
                            //          almost never intended).
  kAlreadyViolated,         // warning: q is true over the current state R.
  kNonMonotone,             // note: not proved monotone (reason attached).
  kDisconnected,            // note: Gaifman graph disconnected; OptDCSat's
                            //       component split does not apply.
  kMixedConstraintClass,    // note: keys/FDs mixed with INDs — DCSat is
                            //       CoNP-complete (Theorem 1); budgets advised.
  kGeneralQueryShape,       // note: one-sided constraint set, but the query
                            //       falls outside the proven-PTIME fragment.
  kUnboundParameter,        // error: a template parameter ($name) reached the
                            //        analyzer without a binding.
};

const char* AnalysisCodeToString(AnalysisCode code);

/// Byte range into the constraint's source text. Only meaningful when the
/// analyzer was given the text (AnalyzeConstraintText); zero-length spans
/// mean "the whole constraint".
struct SourceSpan {
  std::size_t offset = 0;
  std::size_t length = 0;

  bool valid() const { return length > 0; }
};

struct Diagnostic {
  Severity severity = Severity::kNote;
  AnalysisCode code = AnalysisCode::kParseError;
  std::string message;
  SourceSpan span;
};

/// Where a (query, constraint-set) pair lands in the paper's Theorem-1
/// dichotomy, extended with the two statically decided corners. Meaningful
/// only when the report carries no kError diagnostic.
enum class TractabilityClass {
  /// q provably has no satisfying assignment in any world (always-false
  /// comparison, conflicting constant bindings, join type conflict): the
  /// denial constraint holds vacuously, no search ever needed.
  kTriviallyUnsat,
  /// q is already true over the current state R alone: the bad outcome
  /// happened, every future keeps it (insert-only semantics).
  kTriviallyViolated,
  /// ∆ ⊆ {key, fd} and q is a positive non-aggregate conjunctive query:
  /// DCSat is PTIME via the assignment-support check (Theorem 1).
  kPtimeFdOnly,
  /// ∆ ⊆ {ind} (or empty) and q is proved monotone: Poss(D) has a unique
  /// maximal world, DCSat is one query evaluation (Theorems 1 and 2).
  kPtimeIndOnly,
  /// No polynomial guarantee: keys/FDs mix with INDs (CoNP-complete,
  /// Theorem 1), or the query falls outside the proven fragment (negation,
  /// non-monotone aggregate). The general clique / possible-world search
  /// applies and deadline budgets are advisable.
  kCoNpMixed,
};

const char* TractabilityClassToString(TractabilityClass klass);

struct AnalyzerOptions {
  /// Evaluate q over the current state R and classify kTriviallyViolated
  /// when it already holds. Costs one query evaluation; engine-internal
  /// callers that re-check R themselves turn it off.
  bool check_base_state = true;
  /// Original constraint text; enables source spans on diagnostics.
  std::string_view source_text;
};

/// Everything the static analyzer derives about one denial constraint
/// against one catalog + integrity-constraint set.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// Proved monotone (AnalyzeQuery), with the classifier's reason.
  bool monotone = false;
  std::string monotone_reason;
  /// Gaifman graph connected (non-aggregate queries only).
  bool connected = false;
  /// Statically proved to have no satisfying assignment in any world.
  bool proved_unsat = false;
  TractabilityClass tractability = TractabilityClass::kCoNpMixed;
  /// Relations whose mutations can ever change the constraint's verdict:
  /// the referenced relations closed under IND coupling. Sorted ascending.
  std::vector<std::size_t> footprint;

  /// No kError diagnostic: the constraint may be registered and executed.
  bool ok() const;
  std::size_t CountSeverity(Severity severity) const;
  /// First kError message (with every further error appended after "; "),
  /// for embedding in a rejection Status. Empty when ok().
  std::string ErrorSummary() const;
};

/// Statically analyzes `q` against `db`'s catalog, base state, and the
/// integrity constraints `constraints`. Never fails: defects come back as
/// kError diagnostics inside the report.
AnalysisReport AnalyzeConstraint(const DenialConstraint& q, const Database& db,
                                 const ConstraintSet& constraints,
                                 const AnalyzerOptions& options = {});

/// Parses `text` and analyzes the result; a parse failure yields a report
/// whose single kError diagnostic carries the parser message (and a span at
/// the offending offset when the parser reports one).
AnalysisReport AnalyzeConstraintText(std::string_view text, const Database& db,
                                     const ConstraintSet& constraints,
                                     AnalyzerOptions options = {});

/// Everything the analyzer derives about a whole template class.
struct TemplateAnalysis {
  /// The class-level report. For batchable templates this analyzes the
  /// *generalized* query (parameters as head variables), so monotonicity,
  /// connectivity, tractability, and footprint are binding-independent
  /// class facts; otherwise it analyzes a dummy-typed instance, which is
  /// only good for admission (its errors are binding-independent).
  AnalysisReport report;
  /// Admitted for the shared batch evaluator (projectable and error-free).
  bool batchable = false;
  /// The isomorphism-class key: canonical α-renamed skeleton plus the
  /// IND-closed footprint. Two registrations with equal keys share all
  /// class-level evaluation work.
  std::string class_key;
};

/// Statically analyzes a constraint template: admission (schema, arity,
/// safety, cross-type parameters — checked on a dummy-typed instance so the
/// errors are binding-independent), batchability, the class-level report,
/// and the canonicalization key. Never fails; defects come back as kError
/// diagnostics inside the report.
TemplateAnalysis AnalyzeTemplate(const ConstraintTemplate& tmpl,
                                 const Database& db,
                                 const ConstraintSet& constraints,
                                 const AnalyzerOptions& options = {});

/// The cheap classification core, shared with the engine's per-check
/// dispatch: no diagnostics, no base-state probe. `proved_unsat` comes from
/// ProvedUnsatisfiable (or a cached report).
TractabilityClass ClassifyConstraint(const DenialConstraint& q,
                                     const QueryAnalysis& analysis,
                                     const ConstraintSet& constraints,
                                     bool proved_unsat);

/// True when `q` provably has no satisfying assignment in any world over
/// any database with this catalog: an always-false comparison survives
/// constant folding, equality chains bind one variable class to two
/// distinct constants, an irreflexive comparison loops on one class, or a
/// variable joins attributes of incompatible types. Purely syntactic;
/// `false` means "not proved", not "satisfiable".
bool ProvedUnsatisfiable(const DenialConstraint& q, const Catalog& catalog);

/// The IND-closed watch set: every relation sharing an IND-coupling class
/// with a relation `q` references (positive or negated atoms). Sorted
/// ascending. Unknown relation names are skipped (they carry their own
/// kError diagnostics).
std::vector<std::size_t> IndClosedFootprint(const DenialConstraint& q,
                                            const Catalog& catalog,
                                            const ConstraintSet& constraints);

}  // namespace bcdb

#endif  // BCDB_ANALYSIS_ANALYZER_H_
