#include "query/compiled_query.h"

#include <algorithm>
#include <map>

#include "util/flat_table.h"

namespace bcdb {

namespace {

/// Maps variable names to dense ids, in order of first appearance.
class VariableTable {
 public:
  std::size_t Intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const std::size_t id = names_.size();
    ids_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  StatusOr<std::size_t> Lookup(const std::string& name) const {
    auto it = ids_.find(name);
    if (it == ids_.end()) {
      return Status::InvalidArgument(
          "unsafe query: variable '" + name +
          "' does not occur in any positive atom");
    }
    return it->second;
  }

  std::vector<std::string> names() const { return names_; }

 private:
  std::map<std::string, std::size_t> ids_;
  std::vector<std::string> names_;
};

Status ValidateAtomAgainstSchema(const Atom& atom, const RelationSchema& schema) {
  if (atom.args.size() != schema.arity()) {
    return Status::InvalidArgument(
        "atom " + atom.ToString() + " has arity " +
        std::to_string(atom.args.size()) + " but relation " + schema.name() +
        " has arity " + std::to_string(schema.arity()));
  }
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].is_variable()) continue;
    const Value& v = atom.args[i].value();
    const ValueType expected = schema.attribute(i).type;
    const bool numeric_ok = v.IsNumeric() && (expected == ValueType::kInt ||
                                              expected == ValueType::kReal);
    if (v.type() != expected && !numeric_ok) {
      return Status::InvalidArgument(
          "constant " + v.ToString() + " at position " + std::to_string(i) +
          " of atom " + atom.ToString() + " has wrong type (expected " +
          ValueTypeToString(expected) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<CompiledQuery> CompiledQuery::Compile(const DenialConstraint& q,
                                               const Database* db) {
  CompiledQuery result;
  result.db_ = db;
  result.source_ = q;
  const Catalog& catalog = db->catalog();

  if (q.positive_atoms.empty()) {
    return Status::InvalidArgument("query '" + q.name +
                                   "' has no positive atoms");
  }

  // --- Reject unbound template parameters before anything else sees them. ---
  {
    const Term* param = nullptr;
    auto scan = [&](const std::vector<Term>& terms) {
      for (const Term& t : terms) {
        if (t.is_param() && param == nullptr) param = &t;
      }
    };
    for (const Atom& atom : q.positive_atoms) scan(atom.args);
    for (const Atom& atom : q.negated_atoms) scan(atom.args);
    for (const Comparison& cmp : q.comparisons) {
      if (cmp.lhs.is_param() && param == nullptr) param = &cmp.lhs;
      if (cmp.rhs.is_param() && param == nullptr) param = &cmp.rhs;
    }
    if (q.aggregate.has_value()) scan(q.aggregate->args);
    std::string param_name;
    if (param != nullptr) {
      param_name = param->name();
    } else if (q.aggregate.has_value() &&
               q.aggregate->threshold_param.has_value()) {
      param_name = *q.aggregate->threshold_param;
    }
    if (!param_name.empty()) {
      return Status::InvalidArgument(
          "unbound parameter '$" + param_name +
          "' in query '" + q.name +
          "'; bind it through a ConstraintTemplate before compiling");
    }
  }

  // --- Validate atoms and intern variables (positive atoms define them). ---
  VariableTable vars;
  std::vector<std::size_t> atom_relation_ids(q.positive_atoms.size());
  for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
    const Atom& atom = q.positive_atoms[a];
    StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
    if (!rel_id.ok()) return rel_id.status();
    BCDB_RETURN_IF_ERROR(
        ValidateAtomAgainstSchema(atom, catalog.schema(*rel_id)));
    atom_relation_ids[a] = *rel_id;
    for (const Term& term : atom.args) {
      if (term.is_variable()) vars.Intern(term.name());
    }
  }

  auto resolve_term = [&](const Term& term) -> StatusOr<Arg> {
    Arg arg;
    if (term.is_variable()) {
      StatusOr<std::size_t> id = vars.Lookup(term.name());
      if (!id.ok()) return id.status();
      arg.is_var = true;
      arg.var = *id;
    } else {
      arg.constant = term.value();
      arg.constant_id = ValuePool::Global().Intern(term.value());
    }
    return arg;
  };

  // --- Compile negated atoms and comparisons (safety-checked). ---
  struct PendingNeg {
    NegCheck check;
    std::vector<std::size_t> vars;
  };
  std::vector<PendingNeg> pending_negs;
  for (const Atom& atom : q.negated_atoms) {
    StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
    if (!rel_id.ok()) return rel_id.status();
    BCDB_RETURN_IF_ERROR(
        ValidateAtomAgainstSchema(atom, catalog.schema(*rel_id)));
    PendingNeg pending;
    pending.check.relation_id = *rel_id;
    for (const Term& term : atom.args) {
      StatusOr<Arg> arg = resolve_term(term);
      if (!arg.ok()) return arg.status();
      if (arg->is_var) pending.vars.push_back(arg->var);
      pending.check.args.push_back(std::move(*arg));
    }
    pending_negs.push_back(std::move(pending));
  }

  struct PendingCmp {
    CmpCheck check;
    std::vector<std::size_t> vars;
  };
  std::vector<PendingCmp> pending_cmps;
  for (const Comparison& cmp : q.comparisons) {
    StatusOr<Arg> lhs = resolve_term(cmp.lhs);
    if (!lhs.ok()) return lhs.status();
    StatusOr<Arg> rhs = resolve_term(cmp.rhs);
    if (!rhs.ok()) return rhs.status();
    if (!lhs->is_var && !rhs->is_var) {
      // Constant comparison: fold at compile time.
      if (!EvaluateComparison(lhs->constant, cmp.op, rhs->constant)) {
        result.always_false_ = true;
      }
      continue;
    }
    PendingCmp pending;
    pending.check = CmpCheck{std::move(*lhs), cmp.op, std::move(*rhs)};
    if (pending.check.lhs.is_var) pending.vars.push_back(pending.check.lhs.var);
    if (pending.check.rhs.is_var) pending.vars.push_back(pending.check.rhs.var);
    pending_cmps.push_back(std::move(pending));
  }

  // --- Compile the head (answer-producing queries). ---
  if (!q.head_vars.empty() && q.aggregate.has_value()) {
    return Status::InvalidArgument(
        "a query cannot have both head variables and an aggregate");
  }
  for (const Term& term : q.head_vars) {
    if (!term.is_variable()) {
      return Status::InvalidArgument("head arguments must be variables");
    }
    StatusOr<std::size_t> id = vars.Lookup(term.name());
    if (!id.ok()) return id.status();
    result.head_var_ids_.push_back(*id);
  }

  // --- Compile the aggregate head. ---
  if (q.aggregate.has_value()) {
    const AggregateSpec& spec = *q.aggregate;
    result.is_aggregate_ = true;
    result.agg_fn_ = spec.fn;
    result.agg_op_ = spec.op;
    result.agg_threshold_ = spec.threshold;
    for (const Term& term : spec.args) {
      if (!term.is_variable()) {
        return Status::InvalidArgument(
            "aggregate arguments must be variables in query '" + q.name + "'");
      }
      StatusOr<std::size_t> id = vars.Lookup(term.name());
      if (!id.ok()) return id.status();
      result.agg_vars_.push_back(*id);
    }
    const bool value_agg = spec.fn == AggregateFunction::kSum ||
                           spec.fn == AggregateFunction::kMax ||
                           spec.fn == AggregateFunction::kMin;
    if (value_agg && result.agg_vars_.size() != 1) {
      return Status::InvalidArgument(
          std::string(AggregateFunctionToString(spec.fn)) +
          " aggregates take exactly one variable");
    }
    if (value_agg) {
      // The aggregated variable is non-negative if any positive-atom
      // occurrence is at a non-negative attribute (equal values, so one
      // witness position suffices).
      for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
        const RelationSchema& schema = catalog.schema(atom_relation_ids[a]);
        const Atom& atom = q.positive_atoms[a];
        for (std::size_t i = 0; i < atom.args.size(); ++i) {
          if (atom.args[i].is_variable() &&
              atom.args[i].name() == spec.args[0].name() &&
              schema.attribute(i).non_negative) {
            result.aggregate_arg_non_negative_ = true;
          }
        }
      }
    }
    // Early exit is sound when the partial aggregate can only move toward
    // the threshold: growing aggregates with >,>= and min with <,<=.
    const bool grows =
        spec.fn == AggregateFunction::kCount ||
        spec.fn == AggregateFunction::kCountDistinct ||
        spec.fn == AggregateFunction::kMax ||
        (spec.fn == AggregateFunction::kSum &&
         result.aggregate_arg_non_negative_);
    const bool shrinks = spec.fn == AggregateFunction::kMin;
    result.agg_early_exit_ =
        (grows && (spec.op == ComparisonOp::kGt || spec.op == ComparisonOp::kGe)) ||
        (shrinks && (spec.op == ComparisonOp::kLt || spec.op == ComparisonOp::kLe));
  }

  // --- Greedy bound-first join order over the positive atoms. ---
  result.variable_names_ = vars.names();
  std::vector<bool> var_bound(result.variable_names_.size(), false);
  std::vector<bool> atom_planned(q.positive_atoms.size(), false);
  std::vector<bool> cmp_attached(pending_cmps.size(), false);
  std::vector<bool> neg_attached(pending_negs.size(), false);

  for (std::size_t round = 0; round < q.positive_atoms.size(); ++round) {
    // Pick the unplanned atom with the most bound positions.
    std::size_t best = q.positive_atoms.size();
    std::size_t best_score = 0;
    for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
      if (atom_planned[a]) continue;
      std::size_t score = 0;
      for (const Term& term : q.positive_atoms[a].args) {
        if (!term.is_variable()) {
          ++score;
        } else {
          StatusOr<std::size_t> id = vars.Lookup(term.name());
          if (var_bound[*id]) ++score;
        }
      }
      if (best == q.positive_atoms.size() || score > best_score) {
        best = a;
        best_score = score;
      }
    }
    atom_planned[best] = true;

    const Atom& atom = q.positive_atoms[best];
    Step step;
    step.relation_id = atom_relation_ids[best];

    std::vector<std::size_t> bound_positions;
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.is_variable()) {
        bound_positions.push_back(i);
      } else {
        const std::size_t id = *vars.Lookup(term.name());
        if (var_bound[id]) bound_positions.push_back(i);
      }
    }
    // bound_positions is sorted by construction (ascending i).
    step.use_index = !bound_positions.empty();
    if (step.use_index) {
      step.index_id =
          db->relation(step.relation_id).GetOrBuildIndex(bound_positions);
      for (std::size_t pos : bound_positions) {
        const Term& term = atom.args[pos];
        Arg arg;
        if (term.is_variable()) {
          arg.is_var = true;
          arg.var = *vars.Lookup(term.name());
        } else {
          arg.constant = term.value();
          arg.constant_id = ValuePool::Global().Intern(term.value());
        }
        step.key_args.push_back(std::move(arg));
      }
    }

    // Actions for the positions not covered by the index key. A variable's
    // first unbound occurrence binds it; later occurrences (still within
    // this atom) compare against the fresh binding.
    std::size_t next_bound = 0;
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      const bool in_key = step.use_index &&
                          next_bound < bound_positions.size() &&
                          bound_positions[next_bound] == i;
      if (in_key) {
        ++next_bound;
        continue;
      }
      const Term& term = atom.args[i];
      ArgAction action;
      action.position = i;
      if (!term.is_variable()) {
        action.kind = ArgAction::kCheckConst;
        action.constant_id = ValuePool::Global().Intern(term.value());
      } else {
        const std::size_t id = *vars.Lookup(term.name());
        if (var_bound[id]) {
          action.kind = ArgAction::kCheckVar;
          action.var = id;
        } else {
          action.kind = ArgAction::kBind;
          action.var = id;
          var_bound[id] = true;
        }
      }
      step.actions.push_back(std::move(action));
    }

    // Attach comparisons and negations that just became fully bound.
    for (std::size_t c = 0; c < pending_cmps.size(); ++c) {
      if (cmp_attached[c]) continue;
      const bool ready = std::all_of(
          pending_cmps[c].vars.begin(), pending_cmps[c].vars.end(),
          [&](std::size_t v) { return var_bound[v]; });
      if (ready) {
        step.comparisons.push_back(pending_cmps[c].check);
        cmp_attached[c] = true;
      }
    }
    for (std::size_t n = 0; n < pending_negs.size(); ++n) {
      if (neg_attached[n]) continue;
      const bool ready = std::all_of(
          pending_negs[n].vars.begin(), pending_negs[n].vars.end(),
          [&](std::size_t v) { return var_bound[v]; });
      if (ready) {
        step.negations.push_back(pending_negs[n].check);
        neg_attached[n] = true;
      }
    }

    result.steps_.push_back(std::move(step));
  }

  // --- Constant-coverage probes (for OptDCSat's Covers test). ---
  for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
    const Atom& atom = q.positive_atoms[a];
    std::vector<std::size_t> const_positions;
    std::vector<Value> const_values;
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      if (!atom.args[i].is_variable()) {
        const_positions.push_back(i);
        const_values.push_back(atom.args[i].value());
      }
    }
    if (const_positions.empty()) continue;
    CoverProbe probe;
    probe.relation_id = atom_relation_ids[a];
    probe.index_id =
        db->relation(probe.relation_id).GetOrBuildIndex(const_positions);
    probe.key = Tuple(std::move(const_values));
    result.cover_probes_.push_back(std::move(probe));
  }

  // Structural derivations the DCSat engine needs on every check, hoisted
  // to compile time (both depend only on the query and the catalog).
  result.analysis_ = AnalyzeQuery(q, db->catalog());
  StatusOr<std::vector<EqualityConstraint>> equalities =
      EqualitiesFromQuery(q, db->catalog());
  if (equalities.ok()) {
    result.equalities_ = std::move(*equalities);
  } else {
    result.equalities_status_ = equalities.status();
  }

  return result;
}

/// Streaming aggregate accumulator over the satisfying-assignment bag.
struct CompiledQuery::AggState {
  const CompiledQuery* query;
  std::int64_t count = 0;
  FlatIdSet<Tuple, TupleHash, TupleEq> distinct;
  bool sum_is_int = true;
  std::int64_t sum_int = 0;
  double sum_real = 0;
  std::optional<Value> best;  // max/min

  /// Folds one assignment (of interned ids) in; returns true if the
  /// early-exit condition already guarantees the aggregate comparison holds.
  bool Accumulate(const std::vector<ValueId>& assignment) {
    switch (query->agg_fn_) {
      case AggregateFunction::kCount:
        ++count;
        break;
      case AggregateFunction::kCountDistinct: {
        // Distinctness over ids is exact: interning canonicalizes, so two
        // projections are Compare-equal iff their id sequences match.
        ProjectionKey projected(query->agg_vars_.size());
        for (std::size_t i = 0; i < query->agg_vars_.size(); ++i) {
          projected.set(i, assignment[query->agg_vars_[i]]);
        }
        distinct.insert(Tuple::FromIds(projected));
        break;
      }
      case AggregateFunction::kSum: {
        const Value& v =
            ValuePool::Global().value(assignment[query->agg_vars_[0]]);
        if (sum_is_int && v.type() == ValueType::kInt) {
          sum_int += v.AsInt();
        } else {
          if (sum_is_int) {
            sum_real = static_cast<double>(sum_int);
            sum_is_int = false;
          }
          sum_real += v.AsNumeric();
        }
        ++count;
        break;
      }
      case AggregateFunction::kMax: {
        const Value& v =
            ValuePool::Global().value(assignment[query->agg_vars_[0]]);
        if (!best.has_value() || v > *best) best = v;
        ++count;
        break;
      }
      case AggregateFunction::kMin: {
        const Value& v =
            ValuePool::Global().value(assignment[query->agg_vars_[0]]);
        if (!best.has_value() || v < *best) best = v;
        ++count;
        break;
      }
    }
    return query->agg_early_exit_ && !Empty() &&
           EvaluateComparison(Current(), query->agg_op_,
                              query->agg_threshold_);
  }

  bool Empty() const {
    switch (query->agg_fn_) {
      case AggregateFunction::kCount:
        return count == 0;
      case AggregateFunction::kCountDistinct:
        return distinct.empty();
      default:
        return count == 0;
    }
  }

  Value Current() const {
    switch (query->agg_fn_) {
      case AggregateFunction::kCount:
        return Value::Int(count);
      case AggregateFunction::kCountDistinct:
        return Value::Int(static_cast<std::int64_t>(distinct.size()));
      case AggregateFunction::kSum:
        return sum_is_int ? Value::Int(sum_int) : Value::Real(sum_real);
      case AggregateFunction::kMax:
      case AggregateFunction::kMin:
        return *best;
    }
    return Value::Null();
  }

  /// Final truth value: the empty bag evaluates to false (paper Section 5).
  bool Finalize() const {
    if (Empty()) return false;
    return EvaluateComparison(Current(), query->agg_op_,
                              query->agg_threshold_);
  }
};

bool CompiledQuery::MatchCandidate(const Step& step, TupleId id,
                                   const WorldView& view,
                                   std::vector<ValueId>& assignment,
                                   SearchContext& context) const {
  const Relation& rel = db_->relation(step.relation_id);
  if (!rel.IsVisible(id, view)) return false;
  const Tuple& t = rel.tuple(id);
  const ValueId* ids = t.ids();
  for (const ArgAction& action : step.actions) {
    const ValueId v = ids[action.position];
    switch (action.kind) {
      case ArgAction::kCheckConst:
        if (v != action.constant_id) return false;
        break;
      case ArgAction::kCheckVar:
        if (v != assignment[action.var]) return false;
        break;
      case ArgAction::kBind:
        assignment[action.var] = v;
        break;
    }
  }
  for (const CmpCheck& cmp : step.comparisons) {
    // Equality/inequality is decided on ids; ordered operators resolve
    // through the pool (they need Value::Compare's numeric semantics).
    if (cmp.op == ComparisonOp::kEq || cmp.op == ComparisonOp::kNe) {
      const bool equal = ResolveArg(cmp.lhs, assignment) ==
                         ResolveArg(cmp.rhs, assignment);
      if (equal != (cmp.op == ComparisonOp::kEq)) return false;
    } else if (!EvaluateComparison(ResolveArgValue(cmp.lhs, assignment),
                                   cmp.op,
                                   ResolveArgValue(cmp.rhs, assignment))) {
      return false;
    }
  }
  for (const NegCheck& neg : step.negations) {
    ProjectionKey ground(neg.args.size());
    for (std::size_t i = 0; i < neg.args.size(); ++i) {
      ground.set(i, ResolveArg(neg.args[i], assignment));
    }
    if (db_->relation(neg.relation_id).ContainsVisible(ground, view)) {
      return false;
    }
  }
  // Find the step index to continue from: steps are contiguous, so locate
  // this step and recurse to the next.
  const std::size_t step_idx = static_cast<std::size_t>(&step - steps_.data());
  if (context.support != nullptr) {
    context.support->push_back(SupportEntry{step.relation_id, id});
    const bool stop = Search(step_idx + 1, view, assignment, context);
    context.support->pop_back();
    return stop;
  }
  return Search(step_idx + 1, view, assignment, context);
}

bool CompiledQuery::Search(std::size_t step_idx, const WorldView& view,
                           std::vector<ValueId>& assignment,
                           SearchContext& context) const {
  if (step_idx == steps_.size()) {
    if (context.support_sink != nullptr) {
      return !(*context.support_sink)(*context.support);
    }
    if (context.sink != nullptr) return (*context.sink)(assignment);
    if (context.agg == nullptr) {
      return true;  // One satisfying assignment suffices.
    }
    return context.agg->Accumulate(assignment);
  }
  const Step& step = steps_[step_idx];
  const Relation& rel = db_->relation(step.relation_id);
  if (step.use_index) {
    ProjectionKey key(step.key_args.size());
    for (std::size_t i = 0; i < step.key_args.size(); ++i) {
      key.set(i, ResolveArg(step.key_args[i], assignment));
    }
    for (TupleId id : rel.IndexLookup(step.index_id, key)) {
      if (MatchCandidate(step, id, view, assignment, context)) return true;
    }
  } else {
    const std::size_t n = rel.num_tuples();
    for (TupleId id = 0; id < n; ++id) {
      if (MatchCandidate(step, id, view, assignment, context)) return true;
    }
  }
  return false;
}

std::size_t CompiledQuery::DistinctSetSizeHint() const {
  if (steps_.empty()) return 0;
  const std::size_t driving = db_->relation(steps_[0].relation_id).num_tuples();
  return std::min<std::size_t>(driving, 4096);
}

bool CompiledQuery::Evaluate(const WorldView& view) const {
  if (always_false_) return false;
  std::vector<ValueId> assignment(num_variables(), kNullValueId);
  SearchContext context;
  if (!is_aggregate_) {
    return Search(0, view, assignment, context);
  }
  AggState agg;
  agg.query = this;
  if (agg_fn_ == AggregateFunction::kCountDistinct) {
    agg.distinct.reserve(DistinctSetSizeHint());
  }
  context.agg = &agg;
  if (Search(0, view, assignment, context)) {
    return true;  // Early exit fired.
  }
  return agg.Finalize();
}

void CompiledQuery::EnumerateSupports(
    const WorldView& view,
    const std::function<bool(const std::vector<SupportEntry>&)>& callback)
    const {
  if (always_false_ || is_aggregate_) return;
  std::vector<ValueId> assignment(num_variables(), kNullValueId);
  std::vector<SupportEntry> support;
  support.reserve(steps_.size());
  SearchContext context;
  context.support = &support;
  context.support_sink = &callback;
  (void)Search(0, view, assignment, context);
}

void CompiledQuery::EnumerateAnswers(
    const WorldView& view,
    const std::function<bool(const Tuple&)>& callback) const {
  if (always_false_ || is_aggregate_) return;
  std::vector<ValueId> assignment(num_variables(), kNullValueId);
  FlatIdSet<Tuple, TupleHash, TupleEq> seen;
  seen.reserve(DistinctSetSizeHint());
  SearchContext context;
  const AssignmentSink sink = [&](const std::vector<ValueId>& full) -> bool {
    ProjectionKey head(head_var_ids_.size());
    for (std::size_t i = 0; i < head_var_ids_.size(); ++i) {
      head.set(i, full[head_var_ids_[i]]);
    }
    Tuple answer = Tuple::FromIds(head);
    if (!seen.insert(answer).second) return false;  // Duplicate: keep going.
    return !callback(answer);  // Stop the search if the callback says so.
  };
  context.sink = &sink;
  (void)Search(0, view, assignment, context);
}

std::vector<Tuple> CompiledQuery::Answers(const WorldView& view) const {
  std::vector<Tuple> answers;
  EnumerateAnswers(view, [&](const Tuple& t) {
    answers.push_back(t);
    return true;
  });
  return answers;
}

std::string CompiledQuery::ExplainPlan() const {
  std::string out = "plan for " + source_.name + " (" +
                    std::to_string(steps_.size()) + " steps";
  if (always_false_) out += ", constantly false";
  out += ")\n";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    const RelationSchema& schema = db_->catalog().schema(step.relation_id);
    out += "  " + std::to_string(i + 1) + ". " + schema.name();
    if (step.use_index) {
      out += " via index(";
      // Key args are parallel to the index's sorted positions; recover the
      // attribute names through the schema for readability.
      std::string keys;
      std::size_t shown = 0;
      for (std::size_t pos = 0; pos < schema.arity() && shown <
           step.key_args.size(); ++pos) {
        // Positions are implicit; reconstruct by counting non-action slots.
        bool is_action = false;
        for (const ArgAction& action : step.actions) {
          if (action.position == pos) is_action = true;
        }
        if (is_action) continue;
        if (!keys.empty()) keys += ", ";
        keys += schema.attribute(pos).name;
        const Arg& arg = step.key_args[shown++];
        keys += arg.is_var ? std::string("=?") + variable_names_[arg.var]
                           : "=" + arg.constant.ToString();
      }
      out += keys + ")";
    } else {
      out += " via full scan";
    }
    std::size_t binds = 0, checks = 0;
    for (const ArgAction& action : step.actions) {
      (action.kind == ArgAction::kBind ? binds : checks) += 1;
    }
    if (binds > 0) out += ", binds " + std::to_string(binds);
    if (checks > 0) out += ", checks " + std::to_string(checks);
    if (!step.comparisons.empty()) {
      out += ", " + std::to_string(step.comparisons.size()) + " comparison(s)";
    }
    if (!step.negations.empty()) {
      out += ", " + std::to_string(step.negations.size()) + " negation(s)";
    }
    out += "\n";
  }
  if (is_aggregate_) {
    out += "  => " +
           std::string(AggregateFunctionToString(agg_fn_)) + " " +
           ComparisonOpToString(agg_op_) + " " + agg_threshold_.ToString() +
           (agg_early_exit_ ? " (early exit)" : "") + "\n";
  }
  return out;
}

bool CompiledQuery::CoversConstants(const WorldView& view) const {
  for (const CoverProbe& probe : cover_probes_) {
    const Relation& rel = db_->relation(probe.relation_id);
    bool covered = false;
    for (TupleId id : rel.IndexLookup(probe.index_id, probe.key)) {
      if (rel.IsVisible(id, view)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace bcdb
