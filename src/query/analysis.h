#ifndef BCDB_QUERY_ANALYSIS_H_
#define BCDB_QUERY_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "query/ast.h"
#include "relational/schema.h"
#include "util/status.h"

namespace bcdb {

/// Structural properties of a denial constraint that select which DCSat
/// algorithm applies (Section 6 of the paper).
struct QueryAnalysis {
  /// q(R) ⊆ q(R') whenever R ⊆ R'? Conservative: `false` means "not proved
  /// monotone", triggering the exhaustive fallback.
  bool monotone = false;
  /// Why the classifier decided `monotone` (for diagnostics).
  std::string monotone_reason;
  /// Is the Gaifman graph (over the terms of the positive atoms, with
  /// `=`-comparisons merging terms) connected? Only meaningful for
  /// non-aggregate constraints; always false for aggregates, which the
  /// paper excludes from the connected optimization.
  bool connected = false;
};

/// Classifies `q`. The monotonicity rules are:
/// - positive conjunctive queries are monotone;
/// - any negated atom makes the result non-monotone (conservatively);
/// - aggregate constraints with a positive body are monotone when the
///   aggregate can only move toward the threshold as tuples are added:
///   count/cntd/max with > or >=, sum with > or >= over a non-negative
///   attribute (schema hint resolved via `catalog`), min with < or <=.
QueryAnalysis AnalyzeQuery(const DenialConstraint& q, const Catalog& catalog);

/// An equality constraint θ: R[X̄] = S[Ȳ] (paper Section 6.2). Position
/// lists are parallel and equally long. Satisfied by a tuple pair (t, s)
/// with t[X̄] = s[Ȳ]; satisfied by a transaction pair if some tuple pair
/// from them satisfies it.
struct EqualityConstraint {
  std::size_t lhs_relation_id;
  std::size_t rhs_relation_id;
  std::vector<std::size_t> lhs_positions;
  std::vector<std::size_t> rhs_positions;
};

/// Θ_I: one equality constraint per inclusion dependency.
std::vector<EqualityConstraint> EqualitiesFromConstraints(
    const ConstraintSet& constraints);

/// Θ_q: for every pair of positive atoms, the positional equalities implied
/// by shared variables (after propagating `=`-comparisons through a
/// union-find) and by shared constants. Fails on atoms that do not bind to
/// the catalog.
StatusOr<std::vector<EqualityConstraint>> EqualitiesFromQuery(
    const DenialConstraint& q, const Catalog& catalog);

/// Θ for a whole template class: `generalized` is a template's generalized
/// query (parameters turned into `$`-prefixed variables). A term class is
/// *groundable* if it contains a constant or a `$`-variable — i.e. some
/// binding fixes its value. Two positions are potentially equal if their
/// classes coincide, or both are groundable (some binding can make them
/// coincide). Each potentially-equal pair is emitted as a single-position
/// constraint, so the merged decomposition is coarser than (refined by)
/// every per-binding Θ_{q_b} — sound for the monotone support argument.
StatusOr<std::vector<EqualityConstraint>> TemplateEqualitiesFromQuery(
    const DenialConstraint& generalized, const Catalog& catalog);

}  // namespace bcdb

#endif  // BCDB_QUERY_ANALYSIS_H_
