#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace bcdb {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kParam,   // $name (template placeholder)
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kArrow,   // :- or <-
  kPeriod,
  kOp,      // = != <> < > <= >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      const std::size_t start = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(input_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        ++pos_;
        bool saw_dot = false;
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                (!saw_dot && input_[pos_] == '.' && pos_ + 1 < input_.size() &&
                 std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))))) {
          if (input_[pos_] == '.') saw_dot = true;
          ++pos_;
        }
        tokens.push_back({TokenKind::kNumber,
                          std::string(input_.substr(start, pos_ - start)),
                          start});
        continue;
      }
      switch (c) {
        case '\'': {
          ++pos_;
          std::string text;
          while (pos_ < input_.size() && input_[pos_] != '\'') {
            text += input_[pos_++];
          }
          if (pos_ == input_.size()) {
            return Status::InvalidArgument("unterminated string literal");
          }
          ++pos_;  // Closing quote.
          tokens.push_back({TokenKind::kString, std::move(text), start});
          break;
        }
        case '$': {
          ++pos_;
          const std::size_t name_start = pos_;
          while (pos_ < input_.size() &&
                 (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                  input_[pos_] == '_')) {
            ++pos_;
          }
          if (pos_ == name_start) {
            return Status::InvalidArgument(
                "expected parameter name after '$' at offset " +
                std::to_string(start));
          }
          tokens.push_back(
              {TokenKind::kParam,
               std::string(input_.substr(name_start, pos_ - name_start)),
               start});
          break;
        }
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", start});
          ++pos_;
          break;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", start});
          ++pos_;
          break;
        case '[':
          tokens.push_back({TokenKind::kLBracket, "[", start});
          ++pos_;
          break;
        case ']':
          tokens.push_back({TokenKind::kRBracket, "]", start});
          ++pos_;
          break;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", start});
          ++pos_;
          break;
        case '.':
          tokens.push_back({TokenKind::kPeriod, ".", start});
          ++pos_;
          break;
        case ':':
          if (Peek(1) == '-') {
            tokens.push_back({TokenKind::kArrow, ":-", start});
            pos_ += 2;
          } else {
            return Status::InvalidArgument("unexpected ':' at offset " +
                                           std::to_string(start));
          }
          break;
        case '<':
          if (Peek(1) == '-') {
            tokens.push_back({TokenKind::kArrow, "<-", start});
            pos_ += 2;
          } else if (Peek(1) == '=') {
            tokens.push_back({TokenKind::kOp, "<=", start});
            pos_ += 2;
          } else if (Peek(1) == '>') {
            tokens.push_back({TokenKind::kOp, "!=", start});
            pos_ += 2;
          } else {
            tokens.push_back({TokenKind::kOp, "<", start});
            ++pos_;
          }
          break;
        case '>':
          if (Peek(1) == '=') {
            tokens.push_back({TokenKind::kOp, ">=", start});
            pos_ += 2;
          } else {
            tokens.push_back({TokenKind::kOp, ">", start});
            ++pos_;
          }
          break;
        case '=':
          tokens.push_back({TokenKind::kOp, "=", start});
          ++pos_;
          break;
        case '!':
          if (Peek(1) == '=') {
            tokens.push_back({TokenKind::kOp, "!=", start});
            pos_ += 2;
          } else {
            return Status::InvalidArgument("unexpected '!' at offset " +
                                           std::to_string(start));
          }
          break;
        default:
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " +
                                         std::to_string(start));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<DenialConstraint> Parse() {
    DenialConstraint q;
    const bool aggregate = Current().kind == TokenKind::kLBracket;
    if (aggregate) Advance();

    // Head: name '(' [aggfn '(' args ')'] ')'
    if (Current().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected query name");
    }
    q.name = Current().text;
    Advance();
    BCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    if (aggregate) {
      AggregateSpec spec;
      if (Current().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected aggregate function");
      }
      StatusOr<AggregateFunction> fn = ParseAggregateFunction(Current().text);
      if (!fn.ok()) return fn.status();
      spec.fn = *fn;
      Advance();
      BCDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      while (Current().kind != TokenKind::kRParen) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        spec.args.push_back(std::move(*term));
        if (Current().kind == TokenKind::kComma) Advance();
      }
      Advance();  // ')'
      q.aggregate = std::move(spec);
    } else {
      // Optional head variables: q(x, y) :- ... (answer-producing query).
      while (Current().kind != TokenKind::kRParen &&
             Current().kind != TokenKind::kEnd) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        if (!term->is_variable()) {
          return Status::InvalidArgument("head arguments must be variables");
        }
        q.head_vars.push_back(std::move(*term));
        if (Current().kind == TokenKind::kComma) Advance();
      }
    }
    BCDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    BCDB_RETURN_IF_ERROR(Expect(TokenKind::kArrow, ":-"));

    // Body: comma-separated atoms / negated atoms / comparisons.
    for (;;) {
      BCDB_RETURN_IF_ERROR(ParseBodyElement(q));
      if (Current().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }

    if (aggregate) {
      BCDB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      if (Current().kind != TokenKind::kOp) {
        return Status::InvalidArgument("expected comparison after ']'");
      }
      StatusOr<ComparisonOp> op = ParseOp(Current().text);
      if (!op.ok()) return op.status();
      q.aggregate->op = *op;
      Advance();
      StatusOr<Term> threshold = ParseTerm();
      if (!threshold.ok()) return threshold.status();
      if (threshold->is_variable()) {
        return Status::InvalidArgument("aggregate threshold must be a constant");
      }
      if (threshold->is_param()) {
        q.aggregate->threshold_param = threshold->name();
      } else {
        q.aggregate->threshold = threshold->value();
      }
    }

    if (Current().kind == TokenKind::kPeriod) Advance();
    if (Current().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing input: '" +
                                     Current().text + "'");
    }
    return q;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Current().kind != kind) {
      return Status::InvalidArgument("expected '" + std::string(what) +
                                     "', found '" + Current().text + "'");
    }
    Advance();
    return Status::OK();
  }

  static StatusOr<AggregateFunction> ParseAggregateFunction(
      const std::string& name) {
    if (name == "count") return AggregateFunction::kCount;
    if (name == "cntd") return AggregateFunction::kCountDistinct;
    if (name == "sum") return AggregateFunction::kSum;
    if (name == "max") return AggregateFunction::kMax;
    if (name == "min") return AggregateFunction::kMin;
    return Status::InvalidArgument("unknown aggregate function '" + name + "'");
  }

  static StatusOr<ComparisonOp> ParseOp(const std::string& text) {
    if (text == "=") return ComparisonOp::kEq;
    if (text == "!=") return ComparisonOp::kNe;
    if (text == "<") return ComparisonOp::kLt;
    if (text == ">") return ComparisonOp::kGt;
    if (text == "<=") return ComparisonOp::kLe;
    if (text == ">=") return ComparisonOp::kGe;
    return Status::InvalidArgument("unknown comparison '" + text + "'");
  }

  StatusOr<Term> ParseTerm() {
    const Token& token = Current();
    switch (token.kind) {
      case TokenKind::kIdent: {
        Term term = Term::Var(token.text);
        Advance();
        return term;
      }
      case TokenKind::kString: {
        Term term = Term::Const(Value::Str(token.text));
        Advance();
        return term;
      }
      case TokenKind::kParam: {
        Term term = Term::Param(token.text);
        Advance();
        return term;
      }
      case TokenKind::kNumber: {
        Term term = token.text.find('.') == std::string::npos
                        ? Term::Const(Value::Int(std::strtoll(
                              token.text.c_str(), nullptr, 10)))
                        : Term::Const(Value::Real(
                              std::strtod(token.text.c_str(), nullptr)));
        Advance();
        return term;
      }
      default:
        return Status::InvalidArgument("expected term, found '" + token.text +
                                       "'");
    }
  }

  Status ParseBodyElement(DenialConstraint& q) {
    bool negated = false;
    if (Current().kind == TokenKind::kIdent && Current().text == "not") {
      negated = true;
      Advance();
    }
    // Lookahead: ident '(' => atom, otherwise comparison.
    if (Current().kind == TokenKind::kIdent &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      Atom atom;
      atom.negated = negated;
      atom.relation = Current().text;
      Advance();
      Advance();  // '('
      while (Current().kind != TokenKind::kRParen) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        atom.args.push_back(std::move(*term));
        if (Current().kind == TokenKind::kComma) Advance();
      }
      Advance();  // ')'
      (negated ? q.negated_atoms : q.positive_atoms).push_back(std::move(atom));
      return Status::OK();
    }
    if (negated) {
      return Status::InvalidArgument("'not' must be followed by an atom");
    }
    Comparison cmp;
    StatusOr<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    cmp.lhs = std::move(*lhs);
    if (Current().kind != TokenKind::kOp) {
      return Status::InvalidArgument("expected comparison operator, found '" +
                                     Current().text + "'");
    }
    StatusOr<ComparisonOp> op = ParseOp(Current().text);
    if (!op.ok()) return op.status();
    cmp.op = *op;
    Advance();
    StatusOr<Term> rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    cmp.rhs = std::move(*rhs);
    q.comparisons.push_back(std::move(cmp));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<DenialConstraint> ParseDenialConstraint(std::string_view text) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace bcdb
