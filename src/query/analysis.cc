#include "query/analysis.h"

#include <array>
#include <map>
#include <set>

#include "util/union_find.h"

namespace bcdb {

namespace {

/// Assigns one node id per term equivalence class: variables merged by
/// `=`-comparisons share a class; equal constant values share a class.
class TermClasses {
 public:
  explicit TermClasses(const DenialConstraint& q) {
    // Intern every term of the positive atoms.
    for (const Atom& atom : q.positive_atoms) {
      for (const Term& term : atom.args) Intern(term);
    }
    // Merge classes implied by equality comparisons (both sides must be
    // interned; sides that never occur in positive atoms are unsafe and are
    // rejected later by compilation — here we just skip them).
    for (const Comparison& cmp : q.comparisons) {
      if (cmp.op != ComparisonOp::kEq) continue;
      const int a = TryIntern(cmp.lhs);
      const int b = TryIntern(cmp.rhs);
      if (a >= 0 && b >= 0) merges_.emplace_back(a, b);
    }
  }

  std::size_t num_nodes() const { return next_id_; }

  /// Union-find over the interned nodes with the `=`-merges applied.
  UnionFind BuildUnionFind() const {
    UnionFind uf(next_id_);
    for (const auto& [a, b] : merges_) uf.Union(a, b);
    return uf;
  }

  /// Node id of `term`; requires the term to occur in a positive atom.
  std::size_t NodeOf(const Term& term) const {
    if (term.is_variable()) return var_ids_.at(term.name());
    return const_ids_.at(term.value());
  }

 private:
  void Intern(const Term& term) { (void)TryIntern(term); }

  int TryIntern(const Term& term) {
    if (term.is_variable()) {
      auto it = var_ids_.find(term.name());
      if (it != var_ids_.end()) return static_cast<int>(it->second);
      var_ids_.emplace(term.name(), next_id_);
      return static_cast<int>(next_id_++);
    }
    auto it = const_ids_.find(term.value());
    if (it != const_ids_.end()) return static_cast<int>(it->second);
    const_ids_.emplace(term.value(), next_id_);
    return static_cast<int>(next_id_++);
  }

  std::map<std::string, std::size_t> var_ids_;
  std::map<Value, std::size_t> const_ids_;
  std::vector<std::pair<std::size_t, std::size_t>> merges_;
  std::size_t next_id_ = 0;
};

bool IsGe(ComparisonOp op) {
  return op == ComparisonOp::kGt || op == ComparisonOp::kGe;
}
bool IsLe(ComparisonOp op) {
  return op == ComparisonOp::kLt || op == ComparisonOp::kLe;
}

/// True if the summed variable provably only takes non-negative values:
/// some positive-atom occurrence sits at an attribute with the non_negative
/// schema hint.
bool SumArgNonNegative(const DenialConstraint& q, const Catalog& catalog,
                       const std::string& var_name) {
  for (const Atom& atom : q.positive_atoms) {
    StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
    if (!rel_id.ok()) continue;
    const RelationSchema& schema = catalog.schema(*rel_id);
    if (atom.args.size() != schema.arity()) continue;
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i].is_variable() && atom.args[i].name() == var_name &&
          schema.attribute(i).non_negative) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

QueryAnalysis AnalyzeQuery(const DenialConstraint& q, const Catalog& catalog) {
  QueryAnalysis result;

  // --- Monotonicity. ---
  if (!q.negated_atoms.empty()) {
    result.monotone = false;
    result.monotone_reason = "negated atoms can turn true into false";
  } else if (!q.is_aggregate()) {
    result.monotone = true;
    result.monotone_reason = "positive conjunctive query";
  } else {
    const AggregateSpec& spec = *q.aggregate;
    switch (spec.fn) {
      case AggregateFunction::kCount:
      case AggregateFunction::kCountDistinct:
      case AggregateFunction::kMax:
        result.monotone = IsGe(spec.op);
        result.monotone_reason =
            result.monotone
                ? "growing aggregate compared with > / >="
                : "aggregate can cross the threshold downward";
        break;
      case AggregateFunction::kSum:
        if (IsGe(spec.op) && spec.args.size() == 1 &&
            spec.args[0].is_variable() &&
            SumArgNonNegative(q, catalog, spec.args[0].name())) {
          result.monotone = true;
          result.monotone_reason = "sum over non-negative attribute with > / >=";
        } else {
          result.monotone = false;
          result.monotone_reason =
              "sum not provably monotone (negative values or op)";
        }
        break;
      case AggregateFunction::kMin:
        result.monotone = IsLe(spec.op);
        result.monotone_reason =
            result.monotone ? "min only decreases; compared with < / <="
                            : "min aggregate with non-downward comparison";
        break;
    }
  }

  // --- Connectivity (non-aggregate only; paper Section 6.2). ---
  if (!q.is_aggregate() && !q.positive_atoms.empty()) {
    TermClasses classes(q);
    UnionFind uf = classes.BuildUnionFind();
    // Atoms connect all their terms pairwise; chain-union suffices.
    for (const Atom& atom : q.positive_atoms) {
      for (std::size_t i = 1; i < atom.args.size(); ++i) {
        uf.Union(classes.NodeOf(atom.args[0]), classes.NodeOf(atom.args[i]));
      }
    }
    // Connected iff all terms of all atoms share one class. (A 0-ary atom
    // would break connectivity with other atoms, matching the definition.)
    bool connected = true;
    bool have_root = false;
    std::size_t root = 0;
    for (const Atom& atom : q.positive_atoms) {
      if (atom.args.empty()) {
        connected = q.positive_atoms.size() == 1;
        break;
      }
      const std::size_t r = uf.Find(classes.NodeOf(atom.args[0]));
      if (!have_root) {
        root = r;
        have_root = true;
      } else if (r != root) {
        connected = false;
        break;
      }
    }
    result.connected = connected;
  }

  return result;
}

std::vector<EqualityConstraint> EqualitiesFromConstraints(
    const ConstraintSet& constraints) {
  std::vector<EqualityConstraint> result;
  result.reserve(constraints.inds().size());
  for (const InclusionDependency& ind : constraints.inds()) {
    result.push_back(EqualityConstraint{
        ind.lhs_relation_id(), ind.rhs_relation_id(), ind.lhs_positions(),
        ind.rhs_positions()});
  }
  return result;
}

StatusOr<std::vector<EqualityConstraint>> EqualitiesFromQuery(
    const DenialConstraint& q, const Catalog& catalog) {
  TermClasses classes(q);
  UnionFind uf = classes.BuildUnionFind();

  std::vector<std::size_t> relation_ids(q.positive_atoms.size());
  for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
    StatusOr<std::size_t> rel_id =
        catalog.RelationId(q.positive_atoms[a].relation);
    if (!rel_id.ok()) return rel_id.status();
    relation_ids[a] = *rel_id;
  }

  std::vector<EqualityConstraint> result;
  for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
    for (std::size_t b = a + 1; b < q.positive_atoms.size(); ++b) {
      const Atom& atom_a = q.positive_atoms[a];
      const Atom& atom_b = q.positive_atoms[b];
      // Greedy maximal matching of equal-class positions with distinct
      // indices on both sides (paper: "maximal sequence of distinct
      // indices"; any valid matching is implied by assignment compatibility
      // and hence sound).
      std::vector<bool> used_b(atom_b.args.size(), false);
      EqualityConstraint eq;
      eq.lhs_relation_id = relation_ids[a];
      eq.rhs_relation_id = relation_ids[b];
      for (std::size_t i = 0; i < atom_a.args.size(); ++i) {
        const std::size_t class_a = uf.Find(classes.NodeOf(atom_a.args[i]));
        for (std::size_t j = 0; j < atom_b.args.size(); ++j) {
          if (used_b[j]) continue;
          if (uf.Find(classes.NodeOf(atom_b.args[j])) == class_a) {
            eq.lhs_positions.push_back(i);
            eq.rhs_positions.push_back(j);
            used_b[j] = true;
            break;
          }
        }
      }
      if (!eq.lhs_positions.empty()) result.push_back(std::move(eq));
    }
  }
  return result;
}

StatusOr<std::vector<EqualityConstraint>> TemplateEqualitiesFromQuery(
    const DenialConstraint& generalized, const Catalog& catalog) {
  TermClasses classes(generalized);
  UnionFind uf = classes.BuildUnionFind();

  std::vector<std::size_t> relation_ids(generalized.positive_atoms.size());
  for (std::size_t a = 0; a < generalized.positive_atoms.size(); ++a) {
    StatusOr<std::size_t> rel_id =
        catalog.RelationId(generalized.positive_atoms[a].relation);
    if (!rel_id.ok()) return rel_id.status();
    relation_ids[a] = *rel_id;
  }

  // A class is groundable when some binding fixes its value: it contains a
  // constant or a `$`-variable (a projected template parameter).
  std::map<std::size_t, bool> groundable;
  for (const Atom& atom : generalized.positive_atoms) {
    for (const Term& term : atom.args) {
      const std::size_t root = uf.Find(classes.NodeOf(term));
      const bool fixed =
          !term.is_variable() ||
          (!term.name().empty() && term.name()[0] == '$');
      groundable[root] = groundable[root] || fixed;
    }
  }

  std::vector<EqualityConstraint> result;
  std::set<std::array<std::size_t, 4>> seen;
  for (std::size_t a = 0; a < generalized.positive_atoms.size(); ++a) {
    for (std::size_t b = a + 1; b < generalized.positive_atoms.size(); ++b) {
      const Atom& atom_a = generalized.positive_atoms[a];
      const Atom& atom_b = generalized.positive_atoms[b];
      for (std::size_t i = 0; i < atom_a.args.size(); ++i) {
        const std::size_t class_a = uf.Find(classes.NodeOf(atom_a.args[i]));
        for (std::size_t j = 0; j < atom_b.args.size(); ++j) {
          const std::size_t class_b = uf.Find(classes.NodeOf(atom_b.args[j]));
          const bool potentially_equal =
              class_a == class_b ||
              (groundable[class_a] && groundable[class_b]);
          if (!potentially_equal) continue;
          if (!seen.insert({relation_ids[a], relation_ids[b], i, j}).second) {
            continue;
          }
          result.push_back(EqualityConstraint{relation_ids[a], relation_ids[b],
                                              {i}, {j}});
        }
      }
    }
  }
  return result;
}

}  // namespace bcdb
