#include "query/ast.h"

namespace bcdb {

std::string Atom::ToString() const {
  std::string result = negated ? "not " : "";
  result += relation + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) result += ", ";
    result += args[i].ToString();
  }
  result += ")";
  return result;
}

const char* ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvaluateComparison(const Value& lhs, ComparisonOp op, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case ComparisonOp::kEq:
      return c == 0;
    case ComparisonOp::kNe:
      return c != 0;
    case ComparisonOp::kLt:
      return c < 0;
    case ComparisonOp::kGt:
      return c > 0;
    case ComparisonOp::kLe:
      return c <= 0;
    case ComparisonOp::kGe:
      return c >= 0;
  }
  return false;
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + ComparisonOpToString(op) + " " +
         rhs.ToString();
}

const char* AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "count";
    case AggregateFunction::kCountDistinct:
      return "cntd";
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kMin:
      return "min";
  }
  return "?";
}

std::string DenialConstraint::ToString() const {
  std::string body;
  bool first = true;
  auto append = [&](const std::string& piece) {
    if (!first) body += ", ";
    body += piece;
    first = false;
  };
  for (const Atom& atom : positive_atoms) append(atom.ToString());
  for (const Atom& atom : negated_atoms) append(atom.ToString());
  for (const Comparison& cmp : comparisons) append(cmp.ToString());

  if (!aggregate.has_value()) {
    std::string head = name + "(";
    for (std::size_t i = 0; i < head_vars.size(); ++i) {
      if (i > 0) head += ", ";
      head += head_vars[i].ToString();
    }
    return head + ") :- " + body;
  }
  std::string head = name + "(" + AggregateFunctionToString(aggregate->fn) + "(";
  for (std::size_t i = 0; i < aggregate->args.size(); ++i) {
    if (i > 0) head += ", ";
    head += aggregate->args[i].ToString();
  }
  head += "))";
  const std::string threshold_text =
      aggregate->threshold_param.has_value()
          ? "$" + *aggregate->threshold_param
          : aggregate->threshold.ToString();
  return "[" + head + " :- " + body + "] " +
         ComparisonOpToString(aggregate->op) + " " + threshold_text;
}

}  // namespace bcdb
