#include "query/template.h"

#include <map>
#include <utility>

#include "query/parser.h"

namespace bcdb {

namespace {

/// Calls `fn(term, site)` for every term of the constraint in the fixed
/// template traversal order (aggregate thresholds are visited as a
/// pseudo-term only when parameterized).
template <typename Fn>
void ForEachTerm(DenialConstraint& q, Fn&& fn) {
  for (std::size_t a = 0; a < q.positive_atoms.size(); ++a) {
    for (std::size_t i = 0; i < q.positive_atoms[a].args.size(); ++i) {
      fn(q.positive_atoms[a].args[i],
         ParamSite{ParamSite::Kind::kPositiveAtom, a, i});
    }
  }
  for (std::size_t a = 0; a < q.negated_atoms.size(); ++a) {
    for (std::size_t i = 0; i < q.negated_atoms[a].args.size(); ++i) {
      fn(q.negated_atoms[a].args[i],
         ParamSite{ParamSite::Kind::kNegatedAtom, a, i});
    }
  }
  for (std::size_t c = 0; c < q.comparisons.size(); ++c) {
    fn(q.comparisons[c].lhs, ParamSite{ParamSite::Kind::kComparison, c, 0});
    fn(q.comparisons[c].rhs, ParamSite{ParamSite::Kind::kComparison, c, 1});
  }
  if (q.aggregate.has_value()) {
    for (std::size_t i = 0; i < q.aggregate->args.size(); ++i) {
      fn(q.aggregate->args[i],
         ParamSite{ParamSite::Kind::kAggregateArg, 0, i});
    }
  }
}

}  // namespace

StatusOr<ConstraintTemplate> ConstraintTemplate::Create(
    DenialConstraint constraint) {
  ConstraintTemplate tmpl;
  std::map<std::string, std::size_t> index_of;
  auto visit = [&](const Term& term, const ParamSite& site) {
    if (!term.is_param()) return;
    auto [it, inserted] =
        index_of.emplace(term.name(), tmpl.param_names_.size());
    if (inserted) {
      tmpl.param_names_.push_back(term.name());
      tmpl.param_sites_.emplace_back();
    }
    tmpl.param_sites_[it->second].push_back(site);
  };
  ForEachTerm(constraint, visit);
  if (constraint.aggregate.has_value() &&
      constraint.aggregate->threshold_param.has_value()) {
    visit(Term::Param(*constraint.aggregate->threshold_param),
          ParamSite{ParamSite::Kind::kAggregateThreshold, 0, 0});
  }
  for (const Term& head : constraint.head_vars) {
    if (head.is_param()) {
      return Status::InvalidArgument(
          "template parameter '$" + head.name() +
          "' cannot appear as a head variable");
    }
  }

  // Projectable: Boolean positive non-aggregate query whose every parameter
  // occurs in a positive atom (so it can be projected into the head).
  bool all_params_in_positive = !tmpl.param_names_.empty();
  for (const std::vector<ParamSite>& sites : tmpl.param_sites_) {
    bool in_positive = false;
    for (const ParamSite& site : sites) {
      if (site.kind == ParamSite::Kind::kPositiveAtom) in_positive = true;
    }
    if (!in_positive) all_params_in_positive = false;
  }
  tmpl.projectable_ = constraint.is_boolean() && !constraint.is_aggregate() &&
                      constraint.is_positive() && all_params_in_positive;
  tmpl.constraint_ = std::move(constraint);
  return tmpl;
}

StatusOr<ConstraintTemplate> ConstraintTemplate::Parse(std::string_view text) {
  StatusOr<DenialConstraint> parsed = ParseDenialConstraint(text);
  if (!parsed.ok()) return parsed.status();
  return Create(std::move(*parsed));
}

StatusOr<CanonicalizedConstraint> ConstraintTemplate::Canonicalize(
    const DenialConstraint& constraint) {
  DenialConstraint rewritten = constraint;
  std::map<Value, std::size_t> param_of;
  std::vector<Value> binding;
  Status bad = Status::OK();
  ForEachTerm(rewritten, [&](Term& term, const ParamSite&) {
    if (term.is_param()) {
      if (bad.ok()) {
        bad = Status::InvalidArgument(
            "cannot canonicalize a constraint that already has parameters "
            "('$" +
            term.name() + "')");
      }
      return;
    }
    if (term.is_variable()) return;
    auto [it, inserted] = param_of.emplace(term.value(), binding.size());
    if (inserted) binding.push_back(term.value());
    term = Term::Param("b" + std::to_string(it->second));
  });
  if (!bad.ok()) return bad;
  if (rewritten.aggregate.has_value() &&
      rewritten.aggregate->threshold_param.has_value()) {
    return Status::InvalidArgument(
        "cannot canonicalize a constraint that already has parameters ('$" +
        *rewritten.aggregate->threshold_param + "')");
  }
  StatusOr<ConstraintTemplate> tmpl = Create(std::move(rewritten));
  if (!tmpl.ok()) return tmpl.status();
  CanonicalizedConstraint result;
  result.tmpl = std::move(*tmpl);
  result.binding = std::move(binding);
  return result;
}

StatusOr<DenialConstraint> ConstraintTemplate::Instantiate(
    const std::vector<Value>& binding) const {
  if (binding.size() != param_names_.size()) {
    return Status::InvalidArgument(
        "binding has " + std::to_string(binding.size()) +
        " values but template has " + std::to_string(param_names_.size()) +
        " parameters");
  }
  DenialConstraint result = constraint_;
  for (std::size_t p = 0; p < param_sites_.size(); ++p) {
    for (const ParamSite& site : param_sites_[p]) {
      switch (site.kind) {
        case ParamSite::Kind::kPositiveAtom:
          result.positive_atoms[site.element_index].args[site.arg_index] =
              Term::Const(binding[p]);
          break;
        case ParamSite::Kind::kNegatedAtom:
          result.negated_atoms[site.element_index].args[site.arg_index] =
              Term::Const(binding[p]);
          break;
        case ParamSite::Kind::kComparison: {
          Comparison& cmp = result.comparisons[site.element_index];
          (site.arg_index == 0 ? cmp.lhs : cmp.rhs) = Term::Const(binding[p]);
          break;
        }
        case ParamSite::Kind::kAggregateArg:
          result.aggregate->args[site.arg_index] = Term::Const(binding[p]);
          break;
        case ParamSite::Kind::kAggregateThreshold:
          result.aggregate->threshold = binding[p];
          result.aggregate->threshold_param.reset();
          break;
      }
    }
  }
  return result;
}

std::string ConstraintTemplate::CanonicalSkeleton() const {
  DenialConstraint renamed = constraint_;
  std::map<std::string, std::string> var_of;
  std::map<std::string, std::string> param_of;
  auto rename = [&](Term& term, const ParamSite&) {
    if (term.is_variable()) {
      auto [it, inserted] = var_of.emplace(
          term.name(), "v" + std::to_string(var_of.size()));
      term = Term::Var(it->second);
    } else if (term.is_param()) {
      auto [it, inserted] = param_of.emplace(
          term.name(), "p" + std::to_string(param_of.size()));
      term = Term::Param(it->second);
    }
  };
  ForEachTerm(renamed, rename);
  if (renamed.aggregate.has_value() &&
      renamed.aggregate->threshold_param.has_value()) {
    auto [it, inserted] =
        param_of.emplace(*renamed.aggregate->threshold_param,
                         "p" + std::to_string(param_of.size()));
    renamed.aggregate->threshold_param = it->second;
  }
  for (Term& head : renamed.head_vars) {
    if (!head.is_variable()) continue;
    auto [it, inserted] =
        var_of.emplace(head.name(), "v" + std::to_string(var_of.size()));
    head = Term::Var(it->second);
  }
  renamed.name = "q";
  return renamed.ToString();
}

DenialConstraint ConstraintTemplate::Generalized() const {
  DenialConstraint result = constraint_;
  ForEachTerm(result, [&](Term& term, const ParamSite&) {
    if (term.is_param()) term = Term::Var("$" + term.name());
  });
  result.head_vars.clear();
  result.head_vars.reserve(param_names_.size());
  for (const std::string& name : param_names_) {
    result.head_vars.push_back(Term::Var("$" + name));
  }
  return result;
}

}  // namespace bcdb
