#ifndef BCDB_QUERY_TEMPLATE_H_
#define BCDB_QUERY_TEMPLATE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "query/ast.h"
#include "util/status.h"

namespace bcdb {

/// A position inside a DenialConstraint where a template parameter occurs.
struct ParamSite {
  enum class Kind {
    kPositiveAtom,
    kNegatedAtom,
    kComparison,
    kAggregateArg,
    kAggregateThreshold,
  };

  Kind kind = Kind::kPositiveAtom;
  /// Index into the corresponding constraint list (atom / comparison index);
  /// unused for kAggregateThreshold.
  std::size_t element_index = 0;
  /// Argument position inside the atom (or aggregate argument list). For
  /// kComparison, 0 = lhs and 1 = rhs.
  std::size_t arg_index = 0;
};

struct CanonicalizedConstraint;

/// A denial constraint with named constant placeholders (`$name`).
///
/// Templates are the unit of *class* registration in the monitor: millions of
/// structurally identical constraints differing only in constants share one
/// template and are registered as per-binding instances via
/// `ConstraintMonitor::Bind`. `Instantiate` substitutes a binding (one Value
/// per parameter, in `param_names()` order) to recover an ordinary ground
/// constraint; `Generalized` turns parameters into head variables so the
/// whole class can be evaluated as a single answer-producing query.
class ConstraintTemplate {
 public:
  /// An empty template (no constraint, no parameters); assign a real one
  /// from Create/Parse/Canonicalize before use.
  ConstraintTemplate() = default;

  /// Wraps a parsed constraint, collecting parameter occurrences. Parameter
  /// order is first occurrence in a fixed traversal: positive atoms, negated
  /// atoms, comparisons (lhs before rhs), aggregate arguments, aggregate
  /// threshold.
  static StatusOr<ConstraintTemplate> Create(DenialConstraint constraint);

  /// Parses `text` (which may contain `$name` placeholders) and Creates.
  static StatusOr<ConstraintTemplate> Parse(std::string_view text);

  /// Canonicalizes a ground constraint into a template plus binding by
  /// extracting every constant (except aggregate thresholds) into a
  /// parameter. Equal constants share one parameter, so `R(1, 1)` and
  /// `R(1, 2)` canonicalize into *different* templates — constant coupling
  /// is part of the structure. Constraints that already contain parameters
  /// are rejected.
  static StatusOr<CanonicalizedConstraint> Canonicalize(
      const DenialConstraint& constraint);

  /// Substitutes `binding[i]` for parameter `param_names()[i]` everywhere,
  /// yielding a ground constraint.
  StatusOr<DenialConstraint> Instantiate(const std::vector<Value>& binding) const;

  /// An α-renamed rendering (query name -> "q", variables -> v0, v1, ...,
  /// parameters -> p0, p1, ..., by first occurrence): two templates have
  /// equal skeletons iff they are isomorphic up to naming.
  std::string CanonicalSkeleton() const;

  /// Whether the class can be batch-evaluated by projecting parameters into
  /// head variables: Boolean, non-aggregate, no negated atoms, at least one
  /// parameter, and every parameter occurs in some positive atom.
  bool projectable() const { return projectable_; }

  /// The parameterized constraint with every parameter `p` replaced by a
  /// fresh variable `$p`, and head variables `$p0, $p1, ...` in
  /// `param_names()` order. Only meaningful when `projectable()`.
  DenialConstraint Generalized() const;

  const DenialConstraint& constraint() const { return constraint_; }
  const std::vector<std::string>& param_names() const { return param_names_; }
  std::size_t num_params() const { return param_names_.size(); }
  /// Occurrence sites per parameter, parallel to `param_names()`.
  const std::vector<std::vector<ParamSite>>& param_sites() const {
    return param_sites_;
  }

 private:
  DenialConstraint constraint_;
  std::vector<std::string> param_names_;
  std::vector<std::vector<ParamSite>> param_sites_;
  bool projectable_ = false;
};

/// Result of ConstraintTemplate::Canonicalize.
struct CanonicalizedConstraint {
  ConstraintTemplate tmpl;
  /// The extracted constants, in `tmpl.param_names()` order.
  std::vector<Value> binding;
};

}  // namespace bcdb

#endif  // BCDB_QUERY_TEMPLATE_H_
