#ifndef BCDB_QUERY_PARSER_H_
#define BCDB_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace bcdb {

/// Parses the datalog-ish denial-constraint syntax used in the paper:
///
///   q() :- TxOut(ntx, s, 'U8Pk', a)
///   q() :- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), not Trusted(pk), a > 0
///   [q(sum(a)) :- TxOut(ntx, s, 'X', a)] > 5
///
/// Terms: bare identifiers are variables, single-quoted strings and numeric
/// literals are constants. Atoms prefixed with `not` are negated.
/// Comparisons use =, !=, <>, <, >, <=, >=. `<-` is accepted for `:-` and a
/// trailing period is optional. Aggregate functions: count, cntd, sum, max,
/// min.
StatusOr<DenialConstraint> ParseDenialConstraint(std::string_view text);

}  // namespace bcdb

#endif  // BCDB_QUERY_PARSER_H_
