#ifndef BCDB_QUERY_COMPILED_QUERY_H_
#define BCDB_QUERY_COMPILED_QUERY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "query/analysis.h"
#include "query/ast.h"
#include "relational/database.h"
#include "relational/world_view.h"
#include "util/status.h"

namespace bcdb {

/// A denial constraint compiled against one database: schema-validated,
/// safety-checked, with a greedy bound-first join order and hash indexes
/// pre-built for every lookup the plan performs.
///
/// Compile once, then call Evaluate with many different world views — this
/// is exactly the access pattern of the DCSat algorithms, which probe the
/// same constraint over every maximal possible world.
class CompiledQuery {
 public:
  /// Validates `q` against `db`'s catalog (atom arities, constant types,
  /// safety: every variable of a negated atom / comparison / aggregate head
  /// occurs in a positive atom) and builds the evaluation plan. `db` must
  /// outlive the compiled query.
  static StatusOr<CompiledQuery> Compile(const DenialConstraint& q,
                                         const Database* db);

  /// True iff `q` has a satisfying assignment over the tuples visible in
  /// `view` (for aggregate constraints: iff `α(B) θ c` holds, with the empty
  /// bag evaluating to false, matching the paper's SQL-like semantics).
  bool Evaluate(const WorldView& view) const;

  /// True iff every positive atom's constants are covered by some tuple
  /// visible in `view` (the Covers(R, T, q) test of OptDCSat).
  bool CoversConstants(const WorldView& view) const;

  /// For answer-producing queries (non-empty head): invokes `callback` once
  /// per *distinct* head-projection of a satisfying assignment, in discovery
  /// order. Return false from the callback to stop early. No-op for
  /// aggregate queries (which have no head).
  void EnumerateAnswers(const WorldView& view,
                        const std::function<bool(const Tuple&)>& callback) const;

  /// All distinct answers over `view` (set semantics).
  std::vector<Tuple> Answers(const WorldView& view) const;

  bool has_head() const { return !head_var_ids_.empty(); }

  /// One matched positive-atom tuple of a satisfying assignment.
  struct SupportEntry {
    std::size_t relation_id;
    TupleId tuple_id;
  };

  /// For non-aggregate queries: invokes `callback` once per satisfying
  /// assignment with the tuples matched by the positive atoms (in plan
  /// order). Return false to stop. Used by the tractable-fragment DCSat
  /// fast paths, which must reason about *who contributed* each tuple.
  void EnumerateSupports(
      const WorldView& view,
      const std::function<bool(const std::vector<SupportEntry>&)>& callback)
      const;

  /// Human-readable rendering of the chosen join order: one line per step
  /// with the access path (index key positions or full scan) and the
  /// residual checks attached to it. For diagnostics and the shell.
  std::string ExplainPlan() const;

  /// Structural analysis of the source constraint (monotonicity,
  /// connectedness), computed once at compile time — both are functions of
  /// (query, catalog) alone, so re-deriving them per check is pure waste on
  /// the DCSat hot path.
  const QueryAnalysis& analysis() const { return analysis_; }

  /// Θ_q: the equality constraints implied by the query's join structure
  /// (shared variables / constants across positive atoms), precomputed at
  /// compile time for the same reason. Empty when `equalities_status()` is
  /// not OK (atoms that do not bind to the catalog).
  const Status& equalities_status() const { return equalities_status_; }
  const std::vector<EqualityConstraint>& equalities() const {
    return equalities_;
  }

  const DenialConstraint& source() const { return source_; }
  std::size_t num_variables() const { return variable_names_.size(); }
  const std::vector<std::string>& variable_names() const {
    return variable_names_;
  }
  /// True if the aggregated variable is known non-negative (schema hint) —
  /// makes sum-aggregates monotone under insertion.
  bool aggregate_arg_non_negative() const {
    return aggregate_arg_non_negative_;
  }

 private:
  /// A term resolved to either a constant or a variable slot. Constants are
  /// interned at compile time so evaluation compares ids, never values.
  struct Arg {
    bool is_var = false;
    std::size_t var = 0;
    Value constant;
    ValueId constant_id = kNullValueId;
  };

  /// What to do with one tuple position when matching a candidate.
  struct ArgAction {
    enum Kind { kCheckConst, kCheckVar, kBind };
    Kind kind;
    std::size_t position;
    std::size_t var = 0;                  // kCheckVar / kBind
    ValueId constant_id = kNullValueId;   // kCheckConst
  };

  struct CmpCheck {
    Arg lhs;
    ComparisonOp op;
    Arg rhs;
  };

  struct NegCheck {
    std::size_t relation_id;
    std::vector<Arg> args;
  };

  /// One positive atom in plan order.
  struct Step {
    std::size_t relation_id = 0;
    bool use_index = false;
    std::size_t index_id = 0;
    std::vector<Arg> key_args;  // Parallel to the index's sorted positions.
    std::vector<ArgAction> actions;
    std::vector<CmpCheck> comparisons;  // Fully bound after this step.
    std::vector<NegCheck> negations;    // Fully bound after this step.
  };

  /// Constant-coverage probe for one positive atom (atoms without constants
  /// are omitted).
  struct CoverProbe {
    std::size_t relation_id;
    std::size_t index_id;
    Tuple key;
  };

  struct AggState;

  /// Called with each full satisfying assignment (as interned ids) during
  /// enumeration; return true to terminate the whole search.
  using AssignmentSink = std::function<bool(const std::vector<ValueId>&)>;

  /// Everything threaded through the backtracking search besides the
  /// assignment itself. Exactly one of the terminal handlers is active:
  /// none (Boolean existence), agg, sink (answer enumeration), or
  /// support_sink (provenance enumeration).
  struct SearchContext {
    AggState* agg = nullptr;
    const AssignmentSink* sink = nullptr;
    std::vector<SupportEntry>* support = nullptr;
    const std::function<bool(const std::vector<SupportEntry>&)>*
        support_sink = nullptr;
  };

  CompiledQuery() = default;

  /// Assignments bind interned ids; equality checks compare ids directly,
  /// and only ordered comparisons / aggregates resolve through the pool.
  static ValueId ResolveArg(const Arg& arg,
                            const std::vector<ValueId>& assignment) {
    return arg.is_var ? assignment[arg.var] : arg.constant_id;
  }
  static const Value& ResolveArgValue(const Arg& arg,
                                      const std::vector<ValueId>& assignment) {
    return arg.is_var ? ValuePool::Global().value(assignment[arg.var])
                      : arg.constant;
  }

  bool MatchCandidate(const Step& step, TupleId id, const WorldView& view,
                      std::vector<ValueId>& assignment,
                      SearchContext& context) const;

  /// Pre-size hint for distinct/seen sets: the driving step's stored-tuple
  /// count bounds the answer multiplicity in practice (capped so pathological
  /// relations don't over-allocate).
  std::size_t DistinctSetSizeHint() const;
  bool Search(std::size_t step_idx, const WorldView& view,
              std::vector<ValueId>& assignment, SearchContext& context) const;

  const Database* db_ = nullptr;
  DenialConstraint source_;
  QueryAnalysis analysis_;
  std::vector<EqualityConstraint> equalities_;
  Status equalities_status_ = Status::OK();
  std::vector<std::string> variable_names_;
  std::vector<std::size_t> head_var_ids_;
  std::vector<Step> steps_;
  std::vector<CoverProbe> cover_probes_;
  bool always_false_ = false;  // A constant comparison failed at compile time.

  // Aggregate plan.
  bool is_aggregate_ = false;
  AggregateFunction agg_fn_ = AggregateFunction::kCount;
  std::vector<std::size_t> agg_vars_;
  ComparisonOp agg_op_ = ComparisonOp::kGt;
  Value agg_threshold_;
  bool agg_early_exit_ = false;
  bool aggregate_arg_non_negative_ = false;
};

}  // namespace bcdb

#endif  // BCDB_QUERY_COMPILED_QUERY_H_
