#ifndef BCDB_QUERY_AST_H_
#define BCDB_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace bcdb {

/// A term in a query body: a named variable, a constant value, or a named
/// constant placeholder (`$name`, a ConstraintTemplate parameter).
///
/// Parameters are a *template-time* construct: ConstraintTemplate::Instantiate
/// substitutes them with constants before compilation, and
/// ConstraintTemplate::Generalized turns them into head variables for the
/// batch evaluator. A raw parameter reaching CompiledQuery::Compile is an
/// error ("bind it first"), so evaluation code never sees one.
class Term {
 public:
  static Term Var(std::string name) {
    Term t;
    t.kind_ = Kind::kVar;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.kind_ = Kind::kConst;
    t.value_ = std::move(value);
    return t;
  }
  static Term Param(std::string name) {
    Term t;
    t.kind_ = Kind::kParam;
    t.name_ = std::move(name);
    return t;
  }
  /// Shorthand constant constructors.
  static Term Const(std::int64_t v) { return Const(Value::Int(v)); }
  static Term Const(const char* v) { return Const(Value::Str(v)); }
  static Term Const(std::string v) { return Const(Value::Str(std::move(v))); }

  bool is_variable() const { return kind_ == Kind::kVar; }
  bool is_param() const { return kind_ == Kind::kParam; }
  /// Requires is_variable() || is_param().
  const std::string& name() const { return name_; }
  /// Requires !is_variable() && !is_param().
  const Value& value() const { return value_; }

  bool operator==(const Term& other) const {
    if (kind_ != other.kind_) return false;
    return kind_ == Kind::kConst ? value_ == other.value_
                                 : name_ == other.name_;
  }

  std::string ToString() const {
    switch (kind_) {
      case Kind::kVar:
        return name_;
      case Kind::kParam:
        return "$" + name_;
      case Kind::kConst:
        break;
    }
    return value_.ToString();
  }

 private:
  enum class Kind { kConst, kVar, kParam };

  Kind kind_ = Kind::kConst;
  std::string name_;
  Value value_;
};

/// A relational atom `R(t1, ..., tn)`, possibly negated.
struct Atom {
  std::string relation;
  std::vector<Term> args;
  bool negated = false;

  std::string ToString() const;
};

/// Comparison operators usable in query bodies and aggregate heads.
enum class ComparisonOp {
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

const char* ComparisonOpToString(ComparisonOp op);

/// Returns whether `lhs op rhs` holds under Value ordering.
bool EvaluateComparison(const Value& lhs, ComparisonOp op, const Value& rhs);

/// A comparison `t1 op t2` between terms of the body.
struct Comparison {
  Term lhs;
  ComparisonOp op;
  Term rhs;

  std::string ToString() const;
};

/// Aggregate functions of the paper: count, cntd (count distinct), sum, max
/// (min is the symmetric case noted after Theorem 2).
enum class AggregateFunction {
  kCount,
  kCountDistinct,
  kSum,
  kMax,
  kMin,
};

const char* AggregateFunctionToString(AggregateFunction fn);

/// The head `[q(α(x̄)) ← body] θ c` of an aggregate denial constraint.
struct AggregateSpec {
  AggregateFunction fn = AggregateFunction::kCount;
  /// The tuple x̄ of variables aggregated over (may be empty for count).
  std::vector<Term> args;
  ComparisonOp op = ComparisonOp::kGt;
  Value threshold;
  /// When set, the threshold is the template parameter `$threshold_param`
  /// rather than the `threshold` constant. Must be substituted (via
  /// ConstraintTemplate::Instantiate) before compilation.
  std::optional<std::string> threshold_param;
};

/// A denial constraint: a Boolean (possibly aggregate) query `q` that the
/// user wants to evaluate to false over *every* possible world.
///
/// A plain constraint `q() ← P, N, C` holds positive atoms `P`, negated
/// atoms `N` and comparisons `C`; an aggregate constraint adds the
/// `aggregate` head. Structural validation (safety, schema binding) happens
/// in CompiledQuery::Compile.
struct DenialConstraint {
  std::string name = "q";
  /// Head variables. Empty for Boolean queries (denial constraints proper);
  /// non-empty heads turn the query into an answer-producing conjunctive
  /// query, used by the certain/possible-answer machinery. Mutually
  /// exclusive with `aggregate`.
  std::vector<Term> head_vars;
  std::vector<Atom> positive_atoms;
  std::vector<Atom> negated_atoms;
  std::vector<Comparison> comparisons;
  std::optional<AggregateSpec> aggregate;

  bool is_aggregate() const { return aggregate.has_value(); }
  bool is_positive() const { return negated_atoms.empty(); }
  bool is_boolean() const { return head_vars.empty(); }

  /// Datalog-ish rendering, parseable by query::Parse.
  std::string ToString() const;
};

}  // namespace bcdb

#endif  // BCDB_QUERY_AST_H_
