#ifndef BCDB_QUERY_AST_H_
#define BCDB_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace bcdb {

/// A term in a query body: a named variable or a constant value.
class Term {
 public:
  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(value);
    return t;
  }
  /// Shorthand constant constructors.
  static Term Const(std::int64_t v) { return Const(Value::Int(v)); }
  static Term Const(const char* v) { return Const(Value::Str(v)); }
  static Term Const(std::string v) { return Const(Value::Str(std::move(v))); }

  bool is_variable() const { return is_var_; }
  /// Requires is_variable().
  const std::string& name() const { return name_; }
  /// Requires !is_variable().
  const Value& value() const { return value_; }

  bool operator==(const Term& other) const {
    if (is_var_ != other.is_var_) return false;
    return is_var_ ? name_ == other.name_ : value_ == other.value_;
  }

  std::string ToString() const {
    return is_var_ ? name_ : value_.ToString();
  }

 private:
  bool is_var_ = false;
  std::string name_;
  Value value_;
};

/// A relational atom `R(t1, ..., tn)`, possibly negated.
struct Atom {
  std::string relation;
  std::vector<Term> args;
  bool negated = false;

  std::string ToString() const;
};

/// Comparison operators usable in query bodies and aggregate heads.
enum class ComparisonOp {
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

const char* ComparisonOpToString(ComparisonOp op);

/// Returns whether `lhs op rhs` holds under Value ordering.
bool EvaluateComparison(const Value& lhs, ComparisonOp op, const Value& rhs);

/// A comparison `t1 op t2` between terms of the body.
struct Comparison {
  Term lhs;
  ComparisonOp op;
  Term rhs;

  std::string ToString() const;
};

/// Aggregate functions of the paper: count, cntd (count distinct), sum, max
/// (min is the symmetric case noted after Theorem 2).
enum class AggregateFunction {
  kCount,
  kCountDistinct,
  kSum,
  kMax,
  kMin,
};

const char* AggregateFunctionToString(AggregateFunction fn);

/// The head `[q(α(x̄)) ← body] θ c` of an aggregate denial constraint.
struct AggregateSpec {
  AggregateFunction fn = AggregateFunction::kCount;
  /// The tuple x̄ of variables aggregated over (may be empty for count).
  std::vector<Term> args;
  ComparisonOp op = ComparisonOp::kGt;
  Value threshold;
};

/// A denial constraint: a Boolean (possibly aggregate) query `q` that the
/// user wants to evaluate to false over *every* possible world.
///
/// A plain constraint `q() ← P, N, C` holds positive atoms `P`, negated
/// atoms `N` and comparisons `C`; an aggregate constraint adds the
/// `aggregate` head. Structural validation (safety, schema binding) happens
/// in CompiledQuery::Compile.
struct DenialConstraint {
  std::string name = "q";
  /// Head variables. Empty for Boolean queries (denial constraints proper);
  /// non-empty heads turn the query into an answer-producing conjunctive
  /// query, used by the certain/possible-answer machinery. Mutually
  /// exclusive with `aggregate`.
  std::vector<Term> head_vars;
  std::vector<Atom> positive_atoms;
  std::vector<Atom> negated_atoms;
  std::vector<Comparison> comparisons;
  std::optional<AggregateSpec> aggregate;

  bool is_aggregate() const { return aggregate.has_value(); }
  bool is_positive() const { return negated_atoms.empty(); }
  bool is_boolean() const { return head_vars.empty(); }

  /// Datalog-ish rendering, parseable by query::Parse.
  std::string ToString() const;
};

}  // namespace bcdb

#endif  // BCDB_QUERY_AST_H_
