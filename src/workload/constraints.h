#ifndef BCDB_WORKLOAD_CONSTRAINTS_H_
#define BCDB_WORKLOAD_CONSTRAINTS_H_

#include <cstddef>
#include <string>

#include "bitcoin/generator.h"
#include "bitcoin/transaction.h"
#include "query/ast.h"

namespace bcdb {
namespace workload {

/// The paper's four denial-constraint families (Section 7), over the
/// Example-1 Bitcoin schema.

/// qs() ← TxOut(ntx, s, X, a) — "address X never receives bitcoins".
DenialConstraint MakeSimpleConstraint(const std::string& x);

/// qp_i — no payment path of i transactions starting at an output owned by
/// X and whose (i-1)-th hop spends an output owned by Y. i >= 2.
DenialConstraint MakePathConstraint(std::size_t i, const std::string& x,
                                    const std::string& y);

/// qr_i — X never transfers bitcoins in i distinct transactions
/// (star: i TxIn atoms with pk = X and pairwise-distinct new txids). i >= 1.
DenialConstraint MakeStarConstraint(std::size_t i, const std::string& x);

/// qa_n — [sum(a) over TxOut(ntx, s, X, a)] >= n: X never accumulates n or
/// more satoshi.
DenialConstraint MakeAggregateConstraint(const std::string& x,
                                         bitcoin::Satoshi n);

/// The paper's Example-5 q4 family: X never participates in n or more
/// distinct transactions paying Y —
///   [q4(cntd(ntx)) :- TxIn(pt, ps, X, a, ntx, sig),
///                     TxOut(ntx, s, Y, b)] >= n.
DenialConstraint MakeDistinctTransfersConstraint(const std::string& x,
                                                 const std::string& y,
                                                 std::int64_t n);

/// Constant pickers: bind each family to the generated workload's landmarks
/// so the denial constraint is *unsatisfied* (the underlying query is true
/// in some possible world, forcing the full clique search) or *satisfied*
/// (the query is false even over R ∪ T, so the monotone pre-check decides).
DenialConstraint SimpleUnsat(const bitcoin::WorkloadMetadata& meta);
DenialConstraint SimpleSat(const bitcoin::WorkloadMetadata& meta);
DenialConstraint PathUnsat(const bitcoin::WorkloadMetadata& meta,
                           std::size_t i);
DenialConstraint PathSat(const bitcoin::WorkloadMetadata& meta, std::size_t i);
DenialConstraint StarUnsat(const bitcoin::WorkloadMetadata& meta,
                           std::size_t i);
DenialConstraint StarSat(const bitcoin::WorkloadMetadata& meta, std::size_t i);
DenialConstraint AggregateUnsat(const bitcoin::WorkloadMetadata& meta);
DenialConstraint AggregateSat(const bitcoin::WorkloadMetadata& meta);

}  // namespace workload
}  // namespace bcdb

#endif  // BCDB_WORKLOAD_CONSTRAINTS_H_
