#ifndef BCDB_WORKLOAD_DATASETS_H_
#define BCDB_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "bitcoin/generator.h"

namespace bcdb {
namespace workload {

/// A named dataset configuration mirroring the paper's Table 1 datasets.
struct DatasetSpec {
  std::string name;
  bitcoin::GeneratorParams params;
};

/// Scaled stand-ins for the paper's D100/D200/D300 (the first 100k/200k/300k
/// real Bitcoin blocks). Block counts are divided by ~100 and the
/// superlinear growth of per-block activity is kept, so transaction counts
/// grow faster than block counts across S100 → S300 just as in Table 1.
/// Pending-set sizes stay at the paper's scale (thousands), because they —
/// not |R| — drive the DCSat algorithms.
DatasetSpec S100();
DatasetSpec S200();
DatasetSpec S300();

/// The paper's experimental defaults (Section 7): the S200 dataset, 3733
/// pending transactions, 20 contradictions.
DatasetSpec DefaultDataset();

/// All three dataset specs, for Table 1 and the data-size sweep.
std::vector<DatasetSpec> AllDatasets();

/// Copy of `spec` whose *total* pending-transaction count (bulk + designated
/// landmarks + contradictions) is `total_pending` — the Figure 6c/6d knob.
DatasetSpec WithPendingTotal(DatasetSpec spec, std::size_t total_pending);

/// Copy of `spec` with `n` injected contradictions, keeping the total
/// pending count unchanged — the Figure 6e/6f knob.
DatasetSpec WithContradictions(DatasetSpec spec, std::size_t n);

}  // namespace workload
}  // namespace bcdb

#endif  // BCDB_WORKLOAD_DATASETS_H_
