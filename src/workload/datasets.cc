#include "workload/datasets.h"

namespace bcdb {
namespace workload {

namespace {

/// Non-bulk pending transactions the generator always adds (designated
/// chain + star + rich payments). The bulk size is chosen so the *total*
/// pending count matches the paper's figures.
std::size_t DesignatedCount(const bitcoin::GeneratorParams& p) {
  return p.pending_chain_depth + p.star_size + p.rich_payments +
         p.num_contradictions;
}

bitcoin::GeneratorParams ParamsWithPendingTotal(bitcoin::GeneratorParams p,
                                                std::size_t total_pending) {
  const std::size_t designated = DesignatedCount(p);
  p.num_pending = total_pending > designated ? total_pending - designated : 0;
  return p;
}

}  // namespace

DatasetSpec S100() {
  bitcoin::GeneratorParams p;
  p.seed = 100;
  p.num_blocks = 1000;
  p.num_users = 80;
  p.txs_per_block_base = 2.0;
  p.txs_per_block_slope = 0.015;
  p.txs_per_block_cap = 20;
  p.num_contradictions = 20;
  // Paper: 2741 pending transactions for D100.
  return DatasetSpec{"S100", ParamsWithPendingTotal(p, 2741)};
}

DatasetSpec S200() {
  bitcoin::GeneratorParams p;
  p.seed = 200;
  p.num_blocks = 2000;
  p.num_users = 120;
  p.txs_per_block_base = 2.0;
  p.txs_per_block_slope = 0.02;
  p.txs_per_block_cap = 42;
  p.num_contradictions = 20;
  // Paper: 3733 pending transactions for D200 (also the default).
  return DatasetSpec{"S200", ParamsWithPendingTotal(p, 3733)};
}

DatasetSpec S300() {
  bitcoin::GeneratorParams p;
  p.seed = 300;
  p.num_blocks = 3000;
  p.num_users = 160;
  p.txs_per_block_base = 2.0;
  p.txs_per_block_slope = 0.03;
  p.txs_per_block_cap = 92;
  p.num_contradictions = 20;
  // Paper: 2766 pending transactions for D300.
  return DatasetSpec{"S300", ParamsWithPendingTotal(p, 2766)};
}

DatasetSpec DefaultDataset() { return S200(); }

std::vector<DatasetSpec> AllDatasets() { return {S100(), S200(), S300()}; }

DatasetSpec WithPendingTotal(DatasetSpec spec, std::size_t total_pending) {
  spec.params = ParamsWithPendingTotal(spec.params, total_pending);
  spec.name += "-p" + std::to_string(total_pending);
  return spec;
}

DatasetSpec WithContradictions(DatasetSpec spec, std::size_t n) {
  const std::size_t total = DesignatedCount(spec.params) +
                            spec.params.num_pending;
  spec.params.num_contradictions = n;
  spec.params = ParamsWithPendingTotal(spec.params, total);
  spec.name += "-c" + std::to_string(n);
  return spec;
}

}  // namespace workload
}  // namespace bcdb
