#include "workload/constraints.h"

#include <cassert>

#include "bitcoin/to_relational.h"

namespace bcdb {
namespace workload {

namespace {

using bitcoin::kTxIn;
using bitcoin::kTxOut;

Term V(const std::string& name) { return Term::Var(name); }
Term C(const std::string& value) { return Term::Const(Value::Str(value)); }

std::string Num(std::size_t i) { return std::to_string(i); }

}  // namespace

DenialConstraint MakeSimpleConstraint(const std::string& x) {
  DenialConstraint q;
  q.name = "qs";
  q.positive_atoms.push_back(Atom{kTxOut, {V("ntx"), V("s"), C(x), V("a")}});
  return q;
}

DenialConstraint MakePathConstraint(std::size_t i, const std::string& x,
                                    const std::string& y) {
  assert(i >= 2);
  DenialConstraint q;
  q.name = "qp" + Num(i);
  const std::size_t hops = i - 1;
  for (std::size_t j = 1; j <= hops; ++j) {
    // Hop j: an output of transaction t_j (owned by X for j = 1) is spent
    // by transaction t_{j+1}; the spender's pk is Y on the final hop.
    Term out_pk = j == 1 ? C(x) : V("p" + Num(j));
    Term in_pk = j == hops ? C(y) : V("q" + Num(j));
    q.positive_atoms.push_back(Atom{
        kTxOut, {V("t" + Num(j)), V("s" + Num(j)), out_pk, V("a" + Num(j))}});
    q.positive_atoms.push_back(
        Atom{kTxIn,
             {V("t" + Num(j)), V("s" + Num(j)), in_pk, V("a" + Num(j)),
              V("t" + Num(j + 1)), V("g" + Num(j))}});
  }
  return q;
}

DenialConstraint MakeStarConstraint(std::size_t i, const std::string& x) {
  assert(i >= 1);
  DenialConstraint q;
  q.name = "qr" + Num(i);
  for (std::size_t k = 1; k <= i; ++k) {
    q.positive_atoms.push_back(
        Atom{kTxIn,
             {V("pn" + Num(k)), V("s" + Num(k)), C(x), V("a" + Num(k)),
              V("n" + Num(k)), V("g" + Num(k))}});
    q.positive_atoms.push_back(Atom{
        kTxOut, {V("n" + Num(k)), V("s" + Num(k)), V("p" + Num(k)),
                 V("b" + Num(k))}});
  }
  for (std::size_t j = 1; j <= i; ++j) {
    for (std::size_t k = j + 1; k <= i; ++k) {
      q.comparisons.push_back(
          Comparison{V("n" + Num(j)), ComparisonOp::kNe, V("n" + Num(k))});
    }
  }
  return q;
}

DenialConstraint MakeAggregateConstraint(const std::string& x,
                                         bitcoin::Satoshi n) {
  DenialConstraint q;
  q.name = "qa";
  q.positive_atoms.push_back(Atom{kTxOut, {V("ntx"), V("s"), C(x), V("a")}});
  q.aggregate = AggregateSpec{AggregateFunction::kSum,
                              {V("a")},
                              ComparisonOp::kGe,
                              Value::Int(n)};
  return q;
}

DenialConstraint MakeDistinctTransfersConstraint(const std::string& x,
                                                 const std::string& y,
                                                 std::int64_t n) {
  DenialConstraint q;
  q.name = "q4";
  q.positive_atoms.push_back(
      Atom{kTxIn, {V("pt"), V("ps"), C(x), V("a"), V("ntx"), V("sig")}});
  q.positive_atoms.push_back(Atom{kTxOut, {V("ntx"), V("s"), C(y), V("b")}});
  q.aggregate = AggregateSpec{AggregateFunction::kCountDistinct,
                              {V("ntx")},
                              ComparisonOp::kGe,
                              Value::Int(n)};
  return q;
}

DenialConstraint SimpleUnsat(const bitcoin::WorkloadMetadata& meta) {
  // chain_pks[1] receives bitcoins only inside the pending chain.
  return MakeSimpleConstraint(meta.chain_pks.at(1));
}

DenialConstraint SimpleSat(const bitcoin::WorkloadMetadata& meta) {
  return MakeSimpleConstraint(meta.absent_pk);
}

DenialConstraint PathUnsat(const bitcoin::WorkloadMetadata& meta,
                           std::size_t i) {
  // The designated pending chain realizes the path: X funds it on-chain,
  // and the (i-1)-th hop spends the output owned by chain_pks[i-2].
  return MakePathConstraint(i, meta.chain_pks.at(0), meta.chain_pks.at(i - 2));
}

DenialConstraint PathSat(const bitcoin::WorkloadMetadata& meta,
                         std::size_t i) {
  // quiet_pk holds a confirmed output that nothing (confirmed or pending)
  // ever spends, so no path of any length starts there.
  return MakePathConstraint(i, meta.quiet_pk, meta.quiet_pk2);
}

DenialConstraint StarUnsat(const bitcoin::WorkloadMetadata& meta,
                           std::size_t i) {
  return MakeStarConstraint(i, meta.star_pk);
}

DenialConstraint StarSat(const bitcoin::WorkloadMetadata& meta,
                         std::size_t i) {
  return MakeStarConstraint(i, meta.quiet_pk);
}

DenialConstraint AggregateUnsat(const bitcoin::WorkloadMetadata& meta) {
  // Reachable: rich_pk's confirmed total plus half of its pending inflow.
  return MakeAggregateConstraint(
      meta.rich_pk, meta.rich_base_total + meta.rich_pending_total / 2);
}

DenialConstraint AggregateSat(const bitcoin::WorkloadMetadata& meta) {
  // One satoshi more than everything rich_pk could ever collect.
  return MakeAggregateConstraint(
      meta.rich_pk, meta.rich_base_total + meta.rich_pending_total + 1);
}

}  // namespace workload
}  // namespace bcdb
