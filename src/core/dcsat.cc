#include "core/dcsat.h"

#include <algorithm>
#include <exception>
#include <future>

#include "core/bron_kerbosch.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/possible_worlds.h"
#include "core/tractable.h"
#include "query/analysis.h"
#include "query/parser.h"
#include "util/flat_table.h"
#include "util/stopwatch.h"

namespace bcdb {

const char* DcSatAlgorithmToString(DcSatAlgorithm algorithm) {
  switch (algorithm) {
    case DcSatAlgorithm::kAuto:
      return "Auto";
    case DcSatAlgorithm::kNaive:
      return "NaiveDCSat";
    case DcSatAlgorithm::kOpt:
      return "OptDCSat";
    case DcSatAlgorithm::kExhaustive:
      return "Exhaustive";
    case DcSatAlgorithm::kTractable:
      return "TractableFragment";
    case DcSatAlgorithm::kStatic:
      return "StaticAnalysis";
  }
  return "?";
}

namespace {

/// Active pending ids of a world view.
std::vector<PendingId> WitnessOf(const WorldView& view) {
  std::vector<PendingId> ids;
  view.active_bits().ForEach([&](std::size_t id) { ids.push_back(id); });
  return ids;
}

/// Everything one parallel component task produces; merged by index order
/// after all futures join, so the aggregate result is deterministic.
struct ComponentOutcome {
  bool covered = false;
  bool violated = false;
  bool cancelled = false;
  /// The shared budget expired before (or while) this component ran.
  bool expired = false;
  /// The component's search finished normally (filtered by covers, fully
  /// enumerated, or stopped by its own violation).
  bool completed = false;
  std::optional<std::vector<PendingId>> witness;
  std::size_t cliques = 0;
  std::size_t worlds = 0;
};

}  // namespace

const FdGraph& DcSatEngine::PrepareSteadyState() {
  RefreshCaches();
  return *fd_graph_;
}

void DcSatEngine::RefreshCaches() {
  last_refresh_ = SteadyStateRefresh{};
  if (cached_version_ == db_->version() && fd_graph_.has_value()) {
    ++cache_hits_;
    return;
  }
  ++cache_misses_;
  last_refresh_.refreshed = true;
  if (!TryIncrementalRefresh()) {
    fd_graph_.emplace(*db_, /*track_mutations=*/steady_options_.incremental);
    theta_i_.Rebuild(*db_, EqualitiesFromConstraints(db_->constraints()),
                     fd_graph_->valid_nodes());
    last_refresh_.full_rebuild = true;
    ++steady_stats_.full_rebuilds;
  }
  cached_version_ = db_->version();
  consumed_seq_ = db_->mutations().end_seq();
}

bool DcSatEngine::TryIncrementalRefresh() {
  if (!steady_options_.incremental || !fd_graph_.has_value() ||
      !fd_graph_->tracking_mutations()) {
    return false;
  }
  std::vector<MutationEvent> events;
  if (db_->mutations().ReadSince(consumed_seq_, &events) !=
      MutationLog::ReadResult::kOk) {
    // The bounded log was trimmed past our cursor (or the cursor is foreign):
    // deltas were missed, the maintained state can no longer be patched
    // soundly.
    ++steady_stats_.fallbacks_missed_events;
    return false;
  }
  if (events.size() > steady_options_.max_delta_events) {
    ++steady_stats_.fallbacks_batch_too_large;
    return false;
  }
  std::vector<PendingId> integrated_in_batch;
  for (const MutationEvent& event : events) {
    if ((event.kind == MutationKind::kCurrentInserted ||
         event.kind == MutationKind::kCurrentRemoved) &&
        (event.relation_ids.empty() || event.tuple.arity() == 0)) {
      // A base-state event without its tuple payload cannot drive the
      // determinant-bucket probes (never produced by the public API, but a
      // hand-built event stream could). Rebuild.
      ++steady_stats_.fallbacks_base_insert;
      return false;
    }
    if (event.kind == MutationKind::kPendingAdded ||
        event.kind == MutationKind::kPendingRestored) {
      integrated_in_batch.push_back(event.pending_id);
    } else if (event.kind == MutationKind::kPendingApplied &&
               std::find(integrated_in_batch.begin(),
                         integrated_in_batch.end(),
                         event.pending_id) != integrated_in_batch.end()) {
      // An AddPending (or UnapplyPending) and ApplyPending of one
      // transaction inside a single batch cannot be replayed: the
      // add/restore replays against the post-apply database (IsPending is
      // already false), so the node is never integrated, and the apply's
      // cascade — the still-pending FD-conflictors it invalidates — would
      // be computed from the absent node's edges and come up empty, leaving
      // those conflictors marked valid where a from-scratch build
      // invalidates them. Rebuild.
      ++steady_stats_.fallbacks_applied_in_batch;
      return false;
    }
  }

  // Replay the batch in event order. The database has already reached its
  // final state, so validity probes (AddPendingNode) see the final base —
  // exactly what a from-scratch build over the final state would see —
  // while removals work off recorded footprints and never re-read tuples.
  //
  // Base-state mutations ride on validity monotonicity: growing R can only
  // *invalidate* pending transactions (more base tuples, more FD
  // conflicts — found by one determinant-bucket probe per FD), while
  // shrinking R (kCurrentRemoved) or returning an applied transaction to
  // pending (kPendingRestored) can only *revalidate* — so those events
  // re-probe exactly the still-invalid pending transactions touching the
  // event's relations against the final base. Pairwise pending/pending
  // conflicts never depend on R at all.
  bool removed_nodes = false;

  // Re-checks every invalid-but-still-pending transaction whose footprint
  // meets `rids`; AddPendingNode runs the full base-consistency probe, so a
  // node that stays inconsistent for another reason stays out.
  auto revalidate_touching = [&](const std::vector<std::size_t>& rids) {
    for (PendingId id = 0; id < db_->num_pending(); ++id) {
      if (!db_->IsPending(id)) continue;
      const DynamicBitset& valid = fd_graph_->valid_nodes();
      if (id < valid.size() && valid.Test(id)) continue;
      bool touches = false;
      for (std::size_t rid : db_->PendingRelations(id)) {
        if (std::find(rids.begin(), rids.end(), rid) != rids.end()) {
          touches = true;
          break;
        }
      }
      if (touches && fd_graph_->AddPendingNode(id)) {
        theta_i_.AddNode(id);
        last_refresh_.revalidated.push_back(id);
      }
    }
  };

  for (const MutationEvent& event : events) {
    switch (event.kind) {
      case MutationKind::kPendingAdded: {
        theta_i_.GrowTo(db_->num_pending());
        // An earlier kCurrentRemoved/kPendingRestored in this batch may have
        // already integrated this node (revalidation replays against the
        // final database state, which includes it); Θ_I membership is not
        // idempotent, so skip the double add.
        const DynamicBitset& valid = fd_graph_->valid_nodes();
        if (event.pending_id < valid.size() && valid.Test(event.pending_id)) {
          break;
        }
        if (fd_graph_->AddPendingNode(event.pending_id)) {
          theta_i_.AddNode(event.pending_id);
        }
        break;
      }
      case MutationKind::kPendingDiscarded: {
        const DynamicBitset& valid = fd_graph_->valid_nodes();
        const bool was_valid =
            event.pending_id < valid.size() && valid.Test(event.pending_id);
        fd_graph_->RemovePendingNode(event.pending_id);
        if (was_valid) {
          theta_i_.RemoveNode(event.pending_id);
          removed_nodes = true;
        }
        break;
      }
      case MutationKind::kPendingApplied: {
        const DynamicBitset& valid = fd_graph_->valid_nodes();
        const bool was_valid =
            event.pending_id < valid.size() && valid.Test(event.pending_id);
        const std::vector<PendingId> cascade =
            fd_graph_->ApplyPendingNode(event.pending_id);
        if (was_valid) {
          theta_i_.RemoveNode(event.pending_id);
          removed_nodes = true;
        }
        for (PendingId node : cascade) {
          theta_i_.RemoveNode(node);
          removed_nodes = true;
        }
        last_refresh_.cascade_invalidated.insert(
            last_refresh_.cascade_invalidated.end(), cascade.begin(),
            cascade.end());
        break;
      }
      case MutationKind::kCurrentInserted: {
        const std::vector<PendingId> invalidated = fd_graph_->InsertBaseTuple(
            event.relation_ids.front(), event.tuple);
        for (PendingId node : invalidated) {
          theta_i_.RemoveNode(node);
          removed_nodes = true;
        }
        last_refresh_.cascade_invalidated.insert(
            last_refresh_.cascade_invalidated.end(), invalidated.begin(),
            invalidated.end());
        break;
      }
      case MutationKind::kCurrentRemoved:
        revalidate_touching(event.relation_ids);
        break;
      case MutationKind::kPendingRestored: {
        // The restored transaction itself first (its tuples left R and are
        // pending again), then the nodes its base departure may have
        // revalidated — any FD-conflictor shares the FD's relation, so the
        // footprint filter covers the whole former cascade. Skip the node if
        // an earlier event's revalidation already integrated it.
        const DynamicBitset& valid = fd_graph_->valid_nodes();
        const bool already =
            event.pending_id < valid.size() && valid.Test(event.pending_id);
        if (!already && fd_graph_->AddPendingNode(event.pending_id)) {
          theta_i_.AddNode(event.pending_id);
        }
        revalidate_touching(event.relation_ids);
        break;
      }
    }
  }
  // A union-find cannot split, so removals leave it too coarse; one replay
  // of the retained buckets per batch restores exactness.
  if (removed_nodes) theta_i_.RecomputeUnions();
  last_refresh_.events_applied = events.size();
  ++steady_stats_.incremental_batches;
  steady_stats_.incremental_events += events.size();
  return true;
}

std::shared_ptr<ThreadPool> DcSatEngine::PoolFor(
    std::size_t num_workers) const {
  // Callers pass the *requested* effective width (never the per-check
  // min(threads, work items)), so in steady state the pool is created once
  // and reused: recreating it per Check as the component count fluctuates
  // is a thread create/join storm.
  MutexLock lock(pool_mutex_);
  if (pool_ == nullptr || pool_->num_threads() != num_workers) {
    pool_ = std::make_shared<ThreadPool>(num_workers);
  }
  return pool_;
}

StatusOr<std::shared_ptr<const CompiledQuery>> DcSatEngine::GetOrCompile(
    const DenialConstraint& q) {
  const std::uint64_t version = db_->version();
  std::string text = q.ToString();
  for (const CompiledCacheEntry& entry : compiled_cache_) {
    if (entry.version == version && entry.text == text) {
      return entry.compiled;
    }
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db_->database());
  if (!compiled.ok()) return compiled.status();
  if (compiled_cache_.size() >= kCompiledCacheCapacity) {
    // FIFO eviction drops only the cache's reference; queries handed out by
    // earlier calls stay alive with their holders.
    compiled_cache_.erase(compiled_cache_.begin());
  }
  compiled_cache_.push_back(CompiledCacheEntry{
      std::move(text), version,
      std::make_shared<const CompiledQuery>(std::move(*compiled))});
  return compiled_cache_.back().compiled;
}

StatusOr<DcSatResult> DcSatEngine::Check(const DenialConstraint& q,
                                         const DcSatOptions& options) {
  Stopwatch total_watch;
  StatusOr<std::shared_ptr<const CompiledQuery>> compiled = GetOrCompile(q);
  if (!compiled.ok()) return compiled.status();
  const bool cache_hit =
      cached_version_ == db_->version() && fd_graph_.has_value();
  RefreshCaches();
  return CheckImpl(q, **compiled, options, /*report=*/nullptr, &uf_scratch_,
                   cache_hit, total_watch);
}

StatusOr<DcSatResult> DcSatEngine::Check(std::string_view query_text,
                                         const DcSatOptions& options) {
  StatusOr<DenialConstraint> q = ParseDenialConstraint(query_text);
  if (!q.ok()) return q.status();
  return Check(*q, options);
}

StatusOr<DcSatResult> DcSatEngine::Check(const DenialConstraint& q,
                                         const AnalysisReport& report,
                                         const DcSatOptions& options) {
  Stopwatch total_watch;
  if (!report.ok()) {
    return Status::InvalidArgument(
        "constraint rejected by static analysis: " + report.ErrorSummary());
  }
  StatusOr<std::shared_ptr<const CompiledQuery>> compiled = GetOrCompile(q);
  if (!compiled.ok()) return compiled.status();
  const bool cache_hit =
      cached_version_ == db_->version() && fd_graph_.has_value();
  RefreshCaches();
  return CheckImpl(q, **compiled, options, &report, &uf_scratch_, cache_hit,
                   total_watch);
}

StatusOr<DcSatResult> DcSatEngine::CheckPrepared(
    const DenialConstraint& q, const CompiledQuery& compiled,
    const AnalysisReport& report, const DcSatOptions& options) const {
  Stopwatch total_watch;
  if (!report.ok()) {
    return Status::InvalidArgument(
        "constraint rejected by static analysis: " + report.ErrorSummary());
  }
  if (cached_version_ != db_->version() || !fd_graph_.has_value()) {
    return Status::Internal(
        "CheckPrepared requires fresh steady-state caches; call "
        "PrepareSteadyState after the last database mutation");
  }
  return CheckImpl(q, compiled, options, &report, /*scratch=*/nullptr,
                   /*cache_hit=*/true, total_watch);
}

AnalysisReport DcSatEngine::Analyze(const DenialConstraint& q) const {
  AnalyzerOptions analyzer_options;
  // The classified Check paths evaluate R themselves (pre-check and the
  // base-view probe), so the cached class must not depend on the data.
  analyzer_options.check_base_state = false;
  return AnalyzeConstraint(q, db_->database(), db_->constraints(),
                           analyzer_options);
}

StatusOr<DcSatResult> DcSatEngine::CheckPrepared(
    const DenialConstraint& q, const CompiledQuery& compiled,
    const DcSatOptions& options) const {
  Stopwatch total_watch;
  if (cached_version_ != db_->version() || !fd_graph_.has_value()) {
    return Status::Internal(
        "CheckPrepared requires fresh steady-state caches; call "
        "PrepareSteadyState after the last database mutation");
  }
  return CheckImpl(q, compiled, options, /*report=*/nullptr,
                   /*scratch=*/nullptr, /*cache_hit=*/true, total_watch);
}

StatusOr<DcSatResult> DcSatEngine::CheckImpl(
    const DenialConstraint& q, const CompiledQuery& compiled,
    const DcSatOptions& options, const AnalysisReport* report,
    UnionFind* scratch, bool cache_hit,
    const Stopwatch& total_watch) const {
  const QueryAnalysis& analysis = compiled.analysis();

  // --- Static dispatch (classified overloads only). ---
  // kTriviallyUnsat: q has no satisfying assignment in any world over this
  // catalog, so D |= ¬q vacuously — no data access at all. The general path
  // agrees: its R ∪ T pre-check evaluates q to false and returns satisfied.
  if (report != nullptr &&
      report->tractability == TractabilityClass::kTriviallyUnsat &&
      options.algorithm == DcSatAlgorithm::kAuto) {
    DcSatResult result;
    result.stats.algorithm_used = DcSatAlgorithm::kStatic;
    result.stats.num_pending = db_->PendingIds().size();
    result.stats.steady_cache_hit = cache_hit;
    result.satisfied = true;
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  // With limits set, one shared tracker is probed at every cooperative
  // preemption point below; with the default (unlimited) limits the pointer
  // stays null and every search path is bit-identical to the unbudgeted
  // reference. The deadline clock starts here, so it covers the whole
  // decision procedure.
  std::optional<Budget> budget_storage;
  const Budget* budget = nullptr;
  if (!options.budget.unlimited()) {
    budget_storage.emplace(options.budget);
    budget = &*budget_storage;
  }

  // Resolve kAuto and reject unsound explicit choices.
  DcSatAlgorithm algorithm = options.algorithm;
  if (algorithm == DcSatAlgorithm::kTractable) {
    return Status::InvalidArgument(
        "the tractable fragments are selected automatically; use kAuto");
  }
  if (algorithm == DcSatAlgorithm::kStatic) {
    return Status::InvalidArgument(
        "the static-analysis decision is selected automatically; use kAuto");
  }
  // A classified kCoNpMixed constraint skips the fragment probe it could
  // never pass (TryTractableDcSat's gates are exactly what the classifier
  // mirrors); every other class attempts the fragment as before, falling
  // back to the general search when the fragment abstains.
  const bool attempt_tractable =
      algorithm == DcSatAlgorithm::kAuto && options.use_tractable_fragments &&
      (report == nullptr ||
       report->tractability != TractabilityClass::kCoNpMixed);
  if (attempt_tractable) {
    std::optional<DcSatResult> tractable = TryTractableDcSat(
        *db_, *fd_graph_, q, &compiled, /*support_limit=*/100000, &analysis);
    if (tractable.has_value()) {
      tractable->stats.steady_cache_hit = cache_hit;
      tractable->stats.total_seconds = total_watch.ElapsedSeconds();
      return *tractable;
    }
  }
  if (algorithm == DcSatAlgorithm::kAuto) {
    if (!analysis.monotone) {
      algorithm = DcSatAlgorithm::kExhaustive;
    } else if (analysis.connected && !q.is_aggregate()) {
      algorithm = DcSatAlgorithm::kOpt;
    } else {
      algorithm = DcSatAlgorithm::kNaive;
    }
  } else if (algorithm == DcSatAlgorithm::kNaive ||
             algorithm == DcSatAlgorithm::kOpt) {
    if (!analysis.monotone) {
      return Status::InvalidArgument(
          std::string(DcSatAlgorithmToString(algorithm)) +
          " requires a monotone denial constraint (" +
          analysis.monotone_reason + ")");
    }
    if (algorithm == DcSatAlgorithm::kOpt &&
        (q.is_aggregate() || !analysis.connected)) {
      return Status::InvalidArgument(
          "OptDCSat requires a connected, non-aggregate denial constraint");
    }
  }

  DcSatResult result;
  result.stats.algorithm_used = algorithm;
  result.stats.num_pending = db_->PendingIds().size();
  result.stats.steady_cache_hit = cache_hit;

  if (algorithm == DcSatAlgorithm::kExhaustive) {
    StatusOr<PossibleWorldsEnumeration> enumeration =
        EnumeratePossibleWorldsWithin(*db_, options.exhaustive_world_limit,
                                      budget);
    if (!enumeration.ok()) return enumeration.status();
    result.satisfied = true;
    // The enumerated worlds are evaluated even after expiry (bounded work:
    // the budget already capped how many exist): a violating world among
    // them decides unsat conclusively, budget or not.
    for (const WorldView& world : enumeration->worlds) {
      ++result.stats.num_worlds_evaluated;
      if (compiled.Evaluate(world)) {
        result.satisfied = false;
        result.witness = WitnessOf(world);
        break;
      }
    }
    if (result.satisfied && !enumeration->complete) {
      // Certifying satisfaction needs all of Poss(D); we ran out mid-way.
      result.decided = false;
      result.satisfied = false;
    }
    result.stats.budget_expired = budget != nullptr && budget->Expired();
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  // --- Monotone pre-check over R ∪ T (Section 6.3). ---
  if (options.use_precheck) {
    if (!compiled.Evaluate(db_->PendingUnionView())) {
      result.satisfied = true;
      result.stats.precheck_decided = true;
      result.stats.total_seconds = total_watch.ElapsedSeconds();
      return result;
    }
  }

  // --- Steady-state structures (kept fresh by the caller). ---
  Stopwatch graph_watch;
  const FdGraph& fd_graph = *fd_graph_;
  result.stats.num_valid_nodes = fd_graph.valid_nodes().Count();
  result.stats.fd_conflict_pairs = fd_graph.num_conflict_pairs();

  // The base world R is itself a possible world; the clique search below
  // reaches it only when a component is empty, so check it once up front.
  if (compiled.Evaluate(db_->BaseView())) {
    result.satisfied = false;
    result.witness = std::vector<PendingId>{};
    ++result.stats.num_worlds_evaluated;
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }
  ++result.stats.num_worlds_evaluated;

  // --- Component structure (OptDCSat) or one big component (Naive). ---
  std::vector<std::vector<PendingId>> components;
  if (algorithm == DcSatAlgorithm::kOpt) {
    UnionFind local{0};
    UnionFind& uf = scratch != nullptr ? *scratch : local;
    uf.CopyFrom(theta_i_.components());  // Θ_I precomputed; add Θ_q.
    if (!compiled.equalities_status().ok()) {
      return compiled.equalities_status();
    }
    MergeEqualityComponents(*db_, compiled.equalities(), fd_graph.valid_nodes(),
                            uf);
    components = GroupComponents(fd_graph.valid_nodes(), uf);
  } else {
    components.push_back(fd_graph.valid_nodes().ToVector());
    if (components.back().empty()) components.clear();
  }
  result.stats.num_components = components.size();
  result.stats.graph_seconds = graph_watch.ElapsedSeconds();

  const std::size_t num_workers = std::min(
      ThreadPool::EffectiveThreads(options.num_threads), components.size());
  if (num_workers > 1) {
    ParallelComponentSearch(compiled, options, components, num_workers,
                            budget, result);
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  // --- Serial clique search per component (the reference path). ---
  result.satisfied = true;
  bool expired = false;
  for (const std::vector<PendingId>& component : components) {
    if (budget != nullptr && budget->Expired()) {
      expired = true;
      break;
    }
    if (algorithm == DcSatAlgorithm::kOpt && options.use_covers) {
      WorldView cover_view = db_->BaseView();
      for (PendingId id : component) {
        cover_view.Activate(static_cast<TupleOwner>(id));
      }
      if (!compiled.CoversConstants(cover_view)) {
        ++result.stats.components_completed;
        continue;
      }
    }
    ++result.stats.num_components_covered;
    if (budget != nullptr && !budget->ChargeComponent()) {
      expired = true;
      break;
    }

    DynamicBitset subset(db_->num_pending());
    for (PendingId id : component) subset.Set(id);

    const CliqueEnumerationStats clique_stats = EnumerateMaximalCliques(
        fd_graph.graph(), subset, options.use_pivot,
        [&](const std::vector<std::size_t>& clique) {
          if (budget != nullptr &&
              (!budget->ChargeClique() || !budget->ChargeWorld())) {
            return false;  // Budget expired; unwind without evaluating.
          }
          const WorldView world = GetMaximal(*db_, clique);
          ++result.stats.num_worlds_evaluated;
          if (compiled.Evaluate(world)) {
            result.satisfied = false;
            result.witness = WitnessOf(world);
            return false;  // Stop: one violating world suffices.
          }
          return true;
        },
        budget);
    result.stats.num_cliques += clique_stats.cliques_reported;
    // stopped_early with `satisfied` still true means the stop came from a
    // budget charge, not a violation (the expiry-probe stop is flagged
    // directly); either way the component did not finish.
    if (clique_stats.budget_expired ||
        (clique_stats.stopped_early && result.satisfied)) {
      expired = true;
      break;
    }
    ++result.stats.components_completed;
    if (!result.satisfied) break;
  }
  if (result.satisfied && expired) {
    // No counterexample found and parts of the search were skipped: the
    // answer is genuinely unknown within this budget.
    result.decided = false;
    result.satisfied = false;
  }
  result.stats.budget_expired = expired;

  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

void DcSatEngine::ParallelComponentSearch(
    const CompiledQuery& compiled, const DcSatOptions& options,
    const std::vector<std::vector<PendingId>>& components,
    std::size_t num_workers, const Budget* budget,
    DcSatResult& result) const {
  const FdGraph& fd_graph = *fd_graph_;
  const bool check_covers =
      result.stats.algorithm_used == DcSatAlgorithm::kOpt &&
      options.use_covers;

  // Deterministic-result rule: the serial algorithm reports the violating
  // world of the first violating component in scan order. A task may
  // therefore abandon its search only once a *lower-index* component has
  // violated; the token's rank limit carries exactly that information.
  CancellationToken cancel;
  std::vector<ComponentOutcome> outcomes(components.size());

  // One task per contiguous chunk of components rather than per component:
  // typical components are a handful of transactions, far below the pool's
  // task overhead. A few chunks per worker keeps the stealing deques busy
  // for load balancing without drowning in bookkeeping. Cancellation ranks
  // stay per-*component*, so chunking cannot change the decided result.
  const std::size_t num_chunks = std::min(components.size(), num_workers * 8);
  const std::size_t chunk_size =
      (components.size() + num_chunks - 1) / num_chunks;

  // The pool is sized to the *requested* width, not min(width, work): the
  // per-check fan-out only decides how many chunks are submitted, so the
  // pool survives fluctuating component counts unchanged.
  std::shared_ptr<ThreadPool> pool =
      PoolFor(ThreadPool::EffectiveThreads(options.num_threads));
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t begin = 0; begin < components.size(); begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, components.size());
    futures.push_back(pool->Submit([&, begin, end] {
      for (std::size_t index = begin; index < end; ++index) {
        ComponentOutcome& out = outcomes[index];
        if (budget != nullptr && budget->Expired()) {
          out.expired = true;
          continue;
        }
        if (cancel.ShouldStop(index)) {
          out.cancelled = true;
          continue;
        }
        const std::vector<PendingId>& component = components[index];
        if (check_covers) {
          WorldView cover_view = db_->BaseView();
          for (PendingId id : component) {
            cover_view.Activate(static_cast<TupleOwner>(id));
          }
          if (!compiled.CoversConstants(cover_view)) {
            out.completed = true;
            continue;
          }
        }
        out.covered = true;
        if (budget != nullptr && !budget->ChargeComponent()) {
          out.expired = true;
          continue;
        }

        DynamicBitset subset(db_->num_pending());
        for (PendingId id : component) subset.Set(id);

        const CliqueEnumerationStats clique_stats = EnumerateMaximalCliques(
            fd_graph.graph(), subset, options.use_pivot,
            [&](const std::vector<std::size_t>& clique) {
              if (cancel.ShouldStop(index)) {
                out.cancelled = true;
                return false;
              }
              if (budget != nullptr &&
                  (!budget->ChargeClique() || !budget->ChargeWorld())) {
                out.expired = true;
                return false;
              }
              const WorldView world = GetMaximal(*db_, clique);
              ++out.worlds;
              if (compiled.Evaluate(world)) {
                out.violated = true;
                out.witness = WitnessOf(world);
                cancel.CancelRanksAbove(index);
                return false;
              }
              return true;
            },
            budget);
        out.cliques = clique_stats.cliques_reported;
        if (clique_stats.budget_expired) out.expired = true;
        if (!out.expired && !out.cancelled) out.completed = true;
      }
    }));
  }
  // Join every future before any error can propagate: a task that threw
  // (e.g. bad_alloc) surfaces via future.get(), and rethrowing while
  // sibling tasks still reference the stack-local outcomes/cancel state
  // would be use-after-scope UB.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);

  // Merge in component order: the lowest violating index supplies the
  // witness, matching what the serial scan would have returned.
  result.satisfied = true;
  bool any_expired = false;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    ComponentOutcome& out = outcomes[index];
    if (out.covered) ++result.stats.num_components_covered;
    if (out.completed) ++result.stats.components_completed;
    result.stats.num_cliques += out.cliques;
    result.stats.num_worlds_evaluated += out.worlds;
    if (out.cancelled) ++result.stats.cancelled_tasks;
    if (out.expired) any_expired = true;
    if (out.violated && result.satisfied) {
      result.satisfied = false;
      result.witness = std::move(out.witness);
    }
  }
  if (result.satisfied && any_expired) {
    result.decided = false;
    result.satisfied = false;
  }
  result.stats.budget_expired = any_expired;
  result.stats.threads_used = pool->num_threads();
  result.stats.components_parallel = components.size();
}

TemplateBindingIndex TemplateBindingIndex::Build(
    const std::vector<Tuple>& bindings) {
  TemplateBindingIndex index;
  index.slot_of.reserve(bindings.size());
  index.slots.reserve(bindings.size());
  for (const Tuple& binding : bindings) {
    auto [it, inserted] = index.slot_of.try_emplace(binding, index.num_unique);
    if (inserted) ++index.num_unique;
    index.slots.push_back(it->second);
  }
  return index;
}

StatusOr<TemplateBatchResult> DcSatEngine::CheckTemplateBatch(
    const CompiledQuery& generalized,
    const std::vector<EqualityConstraint>& template_equalities,
    const std::vector<Tuple>& bindings, const DcSatOptions& options) const {
  return CheckTemplateBatch(generalized, template_equalities, bindings,
                            TemplateBindingIndex::Build(bindings), options);
}

StatusOr<TemplateBatchResult> DcSatEngine::CheckTemplateBatch(
    const CompiledQuery& generalized,
    const std::vector<EqualityConstraint>& template_equalities,
    const std::vector<Tuple>& bindings, const TemplateBindingIndex& index,
    const DcSatOptions& options) const {
  Stopwatch total_watch;
  if (cached_version_ != db_->version() || !fd_graph_.has_value()) {
    return Status::Internal(
        "CheckTemplateBatch requires fresh steady-state caches; call "
        "PrepareSteadyState after the last database mutation");
  }
  if (!generalized.has_head()) {
    return Status::InvalidArgument(
        "CheckTemplateBatch needs an answer-producing generalized query "
        "(template parameters projected into the head)");
  }
  const QueryAnalysis& analysis = generalized.analysis();
  if (!analysis.monotone) {
    return Status::InvalidArgument(
        "CheckTemplateBatch requires a monotone template class (" +
        analysis.monotone_reason + ")");
  }

  TemplateBatchResult result;
  result.outcomes.assign(bindings.size(), TemplateBatchOutcome::kUndecided);
  result.stats.steady_cache_hit = true;
  result.stats.num_pending = db_->PendingIds().size();
  result.stats.threads_used = 1;

  // Duplicate bindings share one slot (and hence one evaluation).
  const auto& slot_of = index.slot_of;
  const std::size_t num_unique = index.num_unique;
  std::vector<TemplateBatchOutcome> outcome(num_unique,
                                            TemplateBatchOutcome::kUndecided);
  std::vector<bool> settled(num_unique, false);
  std::size_t unsettled = num_unique;
  auto settle = [&](std::size_t slot, TemplateBatchOutcome verdict) {
    if (settled[slot]) return;
    settled[slot] = true;
    outcome[slot] = verdict;
    --unsettled;
  };

  std::optional<Budget> budget_storage;
  const Budget* budget = nullptr;
  if (!options.budget.unlimited()) {
    budget_storage.emplace(options.budget);
    budget = &*budget_storage;
  }

  // --- Phase H: answers over R alone. A binding answered by the current
  // state has already happened — the per-member equivalent of the base-world
  // probe, shared across the whole class.
  if (unsettled > 0) {
    ++result.stats.num_worlds_evaluated;
    generalized.EnumerateAnswers(db_->BaseView(), [&](const Tuple& answer) {
      auto it = slot_of.find(answer);
      if (it != slot_of.end()) settle(it->second, TemplateBatchOutcome::kHappened);
      return unsettled > 0;
    });
  }

  // --- Phase P: answers over R ∪ T. Monotonicity makes this elimination
  // exact: a binding with no satisfying assignment even when every pending
  // transaction is active has none in any possible world (the shared
  // equivalent of the per-member pre-check).
  std::vector<bool> alive(num_unique, false);
  if (unsettled > 0) {
    std::size_t alive_unsettled = 0;
    ++result.stats.num_worlds_evaluated;
    generalized.EnumerateAnswers(
        db_->PendingUnionView(), [&](const Tuple& answer) {
          auto it = slot_of.find(answer);
          if (it != slot_of.end() && !settled[it->second] &&
              !alive[it->second]) {
            alive[it->second] = true;
            ++alive_unsettled;
          }
          return alive_unsettled < unsettled;
        });
    for (std::size_t slot = 0; slot < num_unique; ++slot) {
      if (!settled[slot] && !alive[slot]) {
        settle(slot, TemplateBatchOutcome::kImpossible);
      }
    }
  }

  // --- Survivors: one shared component decomposition and clique
  // enumeration. Every maximal world evaluated marks all the bindings it
  // answers, so each additional member costs one hash lookup per answer.
  bool expired = false;
  if (unsettled > 0) {
    Stopwatch graph_watch;
    const FdGraph& fd_graph = *fd_graph_;
    result.stats.num_valid_nodes = fd_graph.valid_nodes().Count();
    result.stats.fd_conflict_pairs = fd_graph.num_conflict_pairs();

    // Θ_I ∪ Θ_template components when the generalized query is connected
    // (the class analogue of OptDCSat); otherwise one all-valid-nodes
    // component (NaiveDCSat). `template_equalities` is coarser than every
    // member's Θ_q, so any member's support stays within one component.
    std::vector<std::vector<PendingId>> components;
    if (analysis.connected) {
      UnionFind uf{0};
      uf.CopyFrom(theta_i_.components());
      MergeEqualityComponents(*db_, template_equalities,
                              fd_graph.valid_nodes(), uf);
      components = GroupComponents(fd_graph.valid_nodes(), uf);
      result.stats.algorithm_used = DcSatAlgorithm::kOpt;
    } else {
      components.push_back(fd_graph.valid_nodes().ToVector());
      if (components.back().empty()) components.clear();
      result.stats.algorithm_used = DcSatAlgorithm::kNaive;
    }
    result.stats.num_components = components.size();
    result.stats.graph_seconds = graph_watch.ElapsedSeconds();

    for (const std::vector<PendingId>& component : components) {
      if (budget != nullptr && budget->Expired()) {
        expired = true;
        break;
      }
      if (result.stats.algorithm_used == DcSatAlgorithm::kOpt &&
          options.use_covers) {
        // The generalized query carries only the class's literal constants
        // (parameters are variables), so this filters a subset of what any
        // member's own probe would filter — sound for every binding.
        WorldView cover_view = db_->BaseView();
        for (PendingId id : component) {
          cover_view.Activate(static_cast<TupleOwner>(id));
        }
        if (!generalized.CoversConstants(cover_view)) {
          ++result.stats.components_completed;
          continue;
        }
      }
      ++result.stats.num_components_covered;
      if (budget != nullptr && !budget->ChargeComponent()) {
        expired = true;
        break;
      }

      DynamicBitset subset(db_->num_pending());
      for (PendingId id : component) subset.Set(id);

      const CliqueEnumerationStats clique_stats = EnumerateMaximalCliques(
          fd_graph.graph(), subset, options.use_pivot,
          [&](const std::vector<std::size_t>& clique) {
            if (budget != nullptr &&
                (!budget->ChargeClique() || !budget->ChargeWorld())) {
              return false;  // Budget expired; unwind without evaluating.
            }
            const WorldView world = GetMaximal(*db_, clique);
            ++result.stats.num_worlds_evaluated;
            generalized.EnumerateAnswers(world, [&](const Tuple& answer) {
              auto it = slot_of.find(answer);
              if (it != slot_of.end()) {
                settle(it->second, TemplateBatchOutcome::kPossible);
              }
              return unsettled > 0;
            });
            return unsettled > 0;  // Stop once every binding is settled.
          },
          budget);
      result.stats.num_cliques += clique_stats.cliques_reported;
      // stopped_early with survivors left means a budget charge stopped the
      // enumeration (the all-settled stop leaves unsettled == 0).
      if (clique_stats.budget_expired ||
          (clique_stats.stopped_early && unsettled > 0)) {
        expired = true;
        break;
      }
      ++result.stats.components_completed;
      if (unsettled == 0) break;
    }

    if (!expired) {
      // The enumeration ran to completion (or every binding settled): any
      // remaining survivor was answered by no maximal world, so no possible
      // world satisfies it.
      for (std::size_t slot = 0; slot < num_unique; ++slot) {
        if (!settled[slot]) settle(slot, TemplateBatchOutcome::kImpossible);
      }
    }
  }
  result.stats.budget_expired = expired;

  for (std::size_t i = 0; i < bindings.size(); ++i) {
    result.outcomes[i] = outcome[index.slots[i]];
  }
  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace bcdb
