#include "core/dcsat.h"

#include <algorithm>

#include "core/bron_kerbosch.h"
#include "core/get_maximal.h"
#include "core/ind_graph.h"
#include "core/possible_worlds.h"
#include "core/tractable.h"
#include "query/analysis.h"
#include "util/stopwatch.h"

namespace bcdb {

const char* DcSatAlgorithmToString(DcSatAlgorithm algorithm) {
  switch (algorithm) {
    case DcSatAlgorithm::kAuto:
      return "Auto";
    case DcSatAlgorithm::kNaive:
      return "NaiveDCSat";
    case DcSatAlgorithm::kOpt:
      return "OptDCSat";
    case DcSatAlgorithm::kExhaustive:
      return "Exhaustive";
    case DcSatAlgorithm::kTractable:
      return "TractableFragment";
  }
  return "?";
}

namespace {

/// Active pending ids of a world view.
std::vector<PendingId> WitnessOf(const WorldView& view) {
  std::vector<PendingId> ids;
  view.active_bits().ForEach([&](std::size_t id) { ids.push_back(id); });
  return ids;
}

}  // namespace

const FdGraph& DcSatEngine::PrepareSteadyState() {
  RefreshCaches();
  return *fd_graph_;
}

void DcSatEngine::RefreshCaches() {
  if (cached_version_ == db_->version() && fd_graph_.has_value()) return;
  fd_graph_.emplace(*db_);
  theta_i_components_.emplace(db_->num_pending());
  MergeEqualityComponents(*db_,
                          EqualitiesFromConstraints(db_->constraints()),
                          fd_graph_->valid_nodes(), *theta_i_components_);
  cached_version_ = db_->version();
}

StatusOr<DcSatResult> DcSatEngine::Check(const DenialConstraint& q,
                                         const DcSatOptions& options) {
  Stopwatch total_watch;
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db_->database());
  if (!compiled.ok()) return compiled.status();
  const QueryAnalysis analysis = AnalyzeQuery(q, db_->catalog());

  // Resolve kAuto and reject unsound explicit choices.
  DcSatAlgorithm algorithm = options.algorithm;
  if (algorithm == DcSatAlgorithm::kTractable) {
    return Status::InvalidArgument(
        "the tractable fragments are selected automatically; use kAuto");
  }
  if (algorithm == DcSatAlgorithm::kAuto && options.use_tractable_fragments) {
    RefreshCaches();
    std::optional<DcSatResult> tractable =
        TryTractableDcSat(*db_, *fd_graph_, q);
    if (tractable.has_value()) {
      tractable->stats.total_seconds = total_watch.ElapsedSeconds();
      return *tractable;
    }
  }
  if (algorithm == DcSatAlgorithm::kAuto) {
    if (!analysis.monotone) {
      algorithm = DcSatAlgorithm::kExhaustive;
    } else if (analysis.connected && !q.is_aggregate()) {
      algorithm = DcSatAlgorithm::kOpt;
    } else {
      algorithm = DcSatAlgorithm::kNaive;
    }
  } else if (algorithm == DcSatAlgorithm::kNaive ||
             algorithm == DcSatAlgorithm::kOpt) {
    if (!analysis.monotone) {
      return Status::InvalidArgument(
          std::string(DcSatAlgorithmToString(algorithm)) +
          " requires a monotone denial constraint (" +
          analysis.monotone_reason + ")");
    }
    if (algorithm == DcSatAlgorithm::kOpt &&
        (q.is_aggregate() || !analysis.connected)) {
      return Status::InvalidArgument(
          "OptDCSat requires a connected, non-aggregate denial constraint");
    }
  }

  DcSatResult result;
  result.stats.algorithm_used = algorithm;
  result.stats.num_pending = db_->PendingIds().size();

  if (algorithm == DcSatAlgorithm::kExhaustive) {
    StatusOr<std::vector<WorldView>> worlds =
        EnumeratePossibleWorlds(*db_, options.exhaustive_world_limit);
    if (!worlds.ok()) return worlds.status();
    result.satisfied = true;
    for (const WorldView& world : *worlds) {
      ++result.stats.num_worlds_evaluated;
      if (compiled->Evaluate(world)) {
        result.satisfied = false;
        result.witness = WitnessOf(world);
        break;
      }
    }
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  // --- Monotone pre-check over R ∪ T (Section 6.3). ---
  if (options.use_precheck) {
    if (!compiled->Evaluate(db_->PendingUnionView())) {
      result.satisfied = true;
      result.stats.precheck_decided = true;
      result.stats.total_seconds = total_watch.ElapsedSeconds();
      return result;
    }
  }

  // --- Steady-state structures. ---
  Stopwatch graph_watch;
  RefreshCaches();
  const FdGraph& fd_graph = *fd_graph_;
  result.stats.num_valid_nodes = fd_graph.valid_nodes().Count();
  result.stats.fd_conflict_pairs = fd_graph.num_conflict_pairs();

  // The base world R is itself a possible world; the clique search below
  // reaches it only when a component is empty, so check it once up front.
  if (compiled->Evaluate(db_->BaseView())) {
    result.satisfied = false;
    result.witness = std::vector<PendingId>{};
    ++result.stats.num_worlds_evaluated;
    result.stats.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }
  ++result.stats.num_worlds_evaluated;

  // --- Component structure (OptDCSat) or one big component (Naive). ---
  std::vector<std::vector<PendingId>> components;
  if (algorithm == DcSatAlgorithm::kOpt) {
    UnionFind uf = *theta_i_components_;  // Θ_I precomputed; add Θ_q.
    StatusOr<std::vector<EqualityConstraint>> theta_q =
        EqualitiesFromQuery(q, db_->catalog());
    if (!theta_q.ok()) return theta_q.status();
    MergeEqualityComponents(*db_, *theta_q, fd_graph.valid_nodes(), uf);
    components = GroupComponents(fd_graph.valid_nodes(), uf);
  } else {
    components.push_back(fd_graph.valid_nodes().ToVector());
    if (components.back().empty()) components.clear();
  }
  result.stats.num_components = components.size();
  result.stats.graph_seconds = graph_watch.ElapsedSeconds();

  // --- Clique search per component. ---
  result.satisfied = true;
  for (const std::vector<PendingId>& component : components) {
    if (algorithm == DcSatAlgorithm::kOpt && options.use_covers) {
      WorldView cover_view = db_->BaseView();
      for (PendingId id : component) {
        cover_view.Activate(static_cast<TupleOwner>(id));
      }
      if (!compiled->CoversConstants(cover_view)) continue;
    }
    ++result.stats.num_components_covered;

    DynamicBitset subset(db_->num_pending());
    for (PendingId id : component) subset.Set(id);

    const CliqueEnumerationStats clique_stats = EnumerateMaximalCliques(
        fd_graph.graph(), subset, options.use_pivot,
        [&](const std::vector<std::size_t>& clique) {
          const WorldView world = GetMaximal(*db_, clique);
          ++result.stats.num_worlds_evaluated;
          if (compiled->Evaluate(world)) {
            result.satisfied = false;
            result.witness = WitnessOf(world);
            return false;  // Stop: one violating world suffices.
          }
          return true;
        });
    result.stats.num_cliques += clique_stats.cliques_reported;
    if (!result.satisfied) break;
  }

  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace bcdb
