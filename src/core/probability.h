#ifndef BCDB_CORE_PROBABILITY_H_
#define BCDB_CORE_PROBABILITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/blockchain_db.h"
#include "query/ast.h"
#include "relational/world_view.h"
#include "util/rng.h"
#include "util/status.h"

namespace bcdb {

/// Per-transaction inclusion likelihoods — the paper's future-work idea of
/// "weighting possible worlds by learning an estimation of their actual
/// likelihood". The model is deliberately simple: each pending transaction
/// carries an independent probability of being *offered* to the chain;
/// consistency with the constraints (conflicts, dependencies) is enforced
/// by the sampling process itself.
struct InclusionModel {
  /// probability[i] ∈ [0,1] for pending id i. Missing entries default to
  /// `default_probability`.
  std::vector<double> probability;
  double default_probability = 0.5;

  double ProbabilityOf(PendingId id) const {
    return id < probability.size() ? probability[id] : default_probability;
  }
};

/// Draws one possible world: pending transactions are visited in a uniformly
/// random order; each is offered with its inclusion probability and accepted
/// only if appending it preserves the constraints in the world built so far.
/// Every draw is therefore a genuine element of Poss(D), and conflicting
/// transactions race in arrival order — mirroring how miners resolve double
/// spends.
WorldView SampleWorld(const BlockchainDatabase& db, const InclusionModel& model,
                      Xoshiro256& rng);

struct ViolationEstimate {
  /// Fraction of sampled worlds in which the denial constraint's underlying
  /// query held (i.e. the bad outcome materialized).
  double probability = 0;
  /// Binomial standard error of `probability`.
  double standard_error = 0;
  std::size_t samples = 0;
  std::size_t violations = 0;
};

/// Monte-Carlo estimate of the likelihood that `q` becomes true, under the
/// inclusion model. Complements the Boolean DCSat verdict: DCSat says
/// whether a bad outcome is possible at all; this says how worried to be.
StatusOr<ViolationEstimate> EstimateViolationProbability(
    const BlockchainDatabase& db, const DenialConstraint& q,
    const InclusionModel& model, std::size_t samples, std::uint64_t seed);

}  // namespace bcdb

#endif  // BCDB_CORE_PROBABILITY_H_
