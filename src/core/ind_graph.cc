#include "core/ind_graph.h"

#include <algorithm>

namespace bcdb {

void MergeEqualityComponents(const BlockchainDatabase& db,
                             const std::vector<EqualityConstraint>& equalities,
                             const DynamicBitset& nodes, UnionFind& uf) {
  for (const EqualityConstraint& eq : equalities) {
    struct Bucket {
      std::vector<PendingId> lhs_members;
      std::vector<PendingId> rhs_members;
    };
    std::unordered_map<Tuple, Bucket, TupleHash> buckets;
    const Relation& lhs_rel = db.database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db.database().relation(eq.rhs_relation_id);
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
        buckets[lhs_rel.tuple(t).Project(eq.lhs_positions)]
            .lhs_members.push_back(id);
      }
      for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
        buckets[rhs_rel.tuple(t).Project(eq.rhs_positions)]
            .rhs_members.push_back(id);
      }
    });
    for (const auto& [key, bucket] : buckets) {
      if (bucket.lhs_members.empty() || bucket.rhs_members.empty()) continue;
      // Constraint-satisfied pairs form a complete bipartite graph between
      // the two sides, so the whole bucket is one component.
      const PendingId anchor = bucket.lhs_members.front();
      for (PendingId id : bucket.lhs_members) uf.Union(anchor, id);
      for (PendingId id : bucket.rhs_members) uf.Union(anchor, id);
    }
  }
}

std::vector<std::vector<PendingId>> GroupComponents(const DynamicBitset& nodes,
                                                    UnionFind& uf) {
  std::unordered_map<std::size_t, std::vector<PendingId>> by_root;
  nodes.ForEach(
      [&](std::size_t id) { by_root[uf.Find(id)].push_back(id); });
  std::vector<std::vector<PendingId>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    components.push_back(std::move(members));
  }
  // Canonical scan order: members are already ascending (ForEach order), so
  // sorting by the smallest member makes the result independent of
  // union-find root choice and hash-map iteration order.
  std::sort(components.begin(), components.end(),
            [](const std::vector<PendingId>& a,
               const std::vector<PendingId>& b) {
              return a.front() < b.front();
            });
  return components;
}

void EqualityComponents::Rebuild(const BlockchainDatabase& db,
                                 std::vector<EqualityConstraint> equalities,
                                 const DynamicBitset& nodes) {
  db_ = &db;
  equalities_ = std::move(equalities);
  buckets_.assign(equalities_.size(), Buckets{});
  footprints_.assign(db.num_pending(), {});
  uf_.Reset(db.num_pending());
  for (std::size_t ord = 0; ord < equalities_.size(); ++ord) {
    const EqualityConstraint& eq = equalities_[ord];
    const Relation& lhs_rel = db.database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db.database().relation(eq.rhs_relation_id);
    Buckets& buckets = buckets_[ord];
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
        Tuple key = lhs_rel.tuple(t).Project(eq.lhs_positions);
        footprints_[id].push_back(FootprintEntry{ord, false, key});
        buckets[std::move(key)].lhs_members.push_back(id);
      }
      for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
        Tuple key = rhs_rel.tuple(t).Project(eq.rhs_positions);
        footprints_[id].push_back(FootprintEntry{ord, true, key});
        buckets[std::move(key)].rhs_members.push_back(id);
      }
    });
    for (const auto& [key, bucket] : buckets) CollapseBucket(bucket);
  }
}

void EqualityComponents::CollapseBucket(const Bucket& bucket) {
  if (bucket.lhs_members.empty() || bucket.rhs_members.empty()) return;
  const PendingId anchor = bucket.lhs_members.front();
  for (PendingId id : bucket.lhs_members) uf_.Union(anchor, id);
  for (PendingId id : bucket.rhs_members) uf_.Union(anchor, id);
}

void EqualityComponents::GrowTo(std::size_t num_pending) {
  uf_.Grow(num_pending);
  if (footprints_.size() < num_pending) footprints_.resize(num_pending);
}

void EqualityComponents::AddNode(PendingId id) {
  GrowTo(id + 1);
  for (std::size_t ord = 0; ord < equalities_.size(); ++ord) {
    const EqualityConstraint& eq = equalities_[ord];
    const Relation& lhs_rel = db_->database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db_->database().relation(eq.rhs_relation_id);
    const TupleOwner owner = static_cast<TupleOwner>(id);
    for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
      Tuple key = lhs_rel.tuple(t).Project(eq.lhs_positions);
      footprints_[id].push_back(FootprintEntry{ord, false, key});
      Bucket& bucket = buckets_[ord][std::move(key)];
      bucket.lhs_members.push_back(id);
      CollapseBucket(bucket);
    }
    for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
      Tuple key = rhs_rel.tuple(t).Project(eq.rhs_positions);
      footprints_[id].push_back(FootprintEntry{ord, true, key});
      Bucket& bucket = buckets_[ord][std::move(key)];
      bucket.rhs_members.push_back(id);
      CollapseBucket(bucket);
    }
  }
}

void EqualityComponents::RemoveNode(PendingId id) {
  if (id >= footprints_.size()) return;
  for (const FootprintEntry& entry : footprints_[id]) {
    auto it = buckets_[entry.ordinal].find(entry.key);
    if (it == buckets_[entry.ordinal].end()) continue;
    std::vector<PendingId>& members =
        entry.rhs_side ? it->second.rhs_members : it->second.lhs_members;
    members.erase(std::remove(members.begin(), members.end(), id),
                  members.end());
    if (it->second.lhs_members.empty() && it->second.rhs_members.empty()) {
      buckets_[entry.ordinal].erase(it);
    }
  }
  footprints_[id].clear();
}

void EqualityComponents::RecomputeUnions() {
  uf_.Reset(footprints_.size());
  for (const Buckets& buckets : buckets_) {
    for (const auto& [key, bucket] : buckets) CollapseBucket(bucket);
  }
}

}  // namespace bcdb
