#include "core/ind_graph.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace bcdb {

void MergeEqualityComponents(const BlockchainDatabase& db,
                             const std::vector<EqualityConstraint>& equalities,
                             const DynamicBitset& nodes, UnionFind& uf) {
  // A bucket collapses into one component iff both sides are non-empty —
  // constraint-satisfied pairs form a complete bipartite graph between the
  // two sides. Rather than materializing member vectors per bucket (a heap
  // allocation each, all torn down again at the end — this runs per check
  // on the OptDCSat hot path for Θ_q), keep only an activation anchor per
  // bucket: once both sides have appeared, every member unions with the
  // anchor on sight. Members that arrive while their bucket is still
  // one-sided are parked in one shared deferred list and folded in at the
  // end if their bucket activated. Union order differs from the vector
  // formulation but the resulting partition is identical.
  constexpr PendingId kInactive = static_cast<PendingId>(-1);
  struct BucketState {
    std::uint32_t ordinal;
    bool has_lhs = false;
    bool has_rhs = false;
  };
  struct NodeSpans {
    PendingId id;
    const std::vector<TupleId>* lhs;
    const std::vector<TupleId>* rhs;
  };
  FlatIdMap<Tuple, BucketState, TupleHash, TupleEq> buckets;
  std::vector<PendingId> anchors;  // ordinal → anchor, kInactive until both sides seen.
  std::vector<std::pair<std::uint32_t, PendingId>> deferred;
  std::vector<NodeSpans> spans;
  for (const EqualityConstraint& eq : equalities) {
    buckets.clear();
    anchors.clear();
    deferred.clear();
    spans.clear();
    const Relation& lhs_rel = db.database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db.database().relation(eq.rhs_relation_id);
    // One owner-table probe per (node, side): the spans stay valid while the
    // relations are untouched, so the sizing pass and the fill pass share
    // them, and tuple-less nodes drop out before the fill.
    std::size_t expected = 0;
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      const std::vector<TupleId>& lhs = lhs_rel.TuplesOwnedBy(owner);
      const std::vector<TupleId>& rhs = rhs_rel.TuplesOwnedBy(owner);
      if (lhs.empty() && rhs.empty()) return;
      expected += lhs.size() + rhs.size();
      spans.push_back(NodeSpans{id, &lhs, &rhs});
    });
    buckets.reserve(expected);
    const auto visit = [&](Tuple key, bool rhs_side, PendingId id) {
      auto [it, inserted] = buckets.try_emplace(std::move(key));
      BucketState& state = it->second;
      if (inserted) {
        state.ordinal = static_cast<std::uint32_t>(anchors.size());
        anchors.push_back(kInactive);
      }
      (rhs_side ? state.has_rhs : state.has_lhs) = true;
      PendingId& anchor = anchors[state.ordinal];
      if (anchor != kInactive) {
        uf.Union(anchor, id);
      } else if (state.has_lhs && state.has_rhs) {
        anchor = id;  // Activation; parked members union in the final pass.
      } else {
        deferred.emplace_back(state.ordinal, id);
      }
    };
    for (const NodeSpans& node : spans) {
      for (TupleId t : *node.lhs) {
        visit(lhs_rel.tuple(t).Project(eq.lhs_positions), false, node.id);
      }
      for (TupleId t : *node.rhs) {
        visit(rhs_rel.tuple(t).Project(eq.rhs_positions), true, node.id);
      }
    }
    for (const auto& [ordinal, id] : deferred) {
      if (anchors[ordinal] != kInactive) uf.Union(anchors[ordinal], id);
    }
  }
}

std::vector<std::vector<PendingId>> GroupComponents(const DynamicBitset& nodes,
                                                    UnionFind& uf) {
  // Union-find roots are dense pending ids, so group by direct array
  // indexing — no hashing. ForEach visits ids ascending, which makes each
  // component's first-encountered member its smallest; appending components
  // in first-encounter order therefore *is* the canonical order (ascending
  // smallest member, members ascending) that keeps the scan — and the
  // deterministic lowest-violating-component witness — independent of
  // union-find history and of the table backend. No sort needed.
  std::vector<std::uint32_t> slot_of_root(uf.num_elements(), 0);  // idx + 1.
  std::vector<std::vector<PendingId>> components;
  nodes.ForEach([&](std::size_t id) {
    std::uint32_t& slot = slot_of_root[uf.Find(id)];
    if (slot == 0) {
      components.emplace_back();
      slot = static_cast<std::uint32_t>(components.size());
    }
    components[slot - 1].push_back(id);
  });
  return components;
}

void EqualityComponents::Rebuild(const BlockchainDatabase& db,
                                 std::vector<EqualityConstraint> equalities,
                                 const DynamicBitset& nodes) {
  db_ = &db;
  equalities_ = std::move(equalities);
  buckets_.assign(equalities_.size(), Buckets{});
  footprints_.assign(db.num_pending(), {});
  uf_.Reset(db.num_pending());
  for (std::size_t ord = 0; ord < equalities_.size(); ++ord) {
    const EqualityConstraint& eq = equalities_[ord];
    const Relation& lhs_rel = db.database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db.database().relation(eq.rhs_relation_id);
    Buckets& buckets = buckets_[ord];
    std::size_t expected = 0;
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      expected += lhs_rel.TuplesOwnedBy(owner).size() +
                  rhs_rel.TuplesOwnedBy(owner).size();
    });
    buckets.reserve(expected);
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
        Tuple key = lhs_rel.tuple(t).Project(eq.lhs_positions);
        footprints_[id].push_back(FootprintEntry{ord, false, key});
        buckets[std::move(key)].lhs_members.push_back(id);
      }
      for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
        Tuple key = rhs_rel.tuple(t).Project(eq.rhs_positions);
        footprints_[id].push_back(FootprintEntry{ord, true, key});
        buckets[std::move(key)].rhs_members.push_back(id);
      }
    });
    for (const auto& [key, bucket] : buckets) CollapseBucket(bucket);
  }
}

void EqualityComponents::CollapseBucket(const Bucket& bucket) {
  if (bucket.lhs_members.empty() || bucket.rhs_members.empty()) return;
  const PendingId anchor = bucket.lhs_members.front();
  for (PendingId id : bucket.lhs_members) uf_.Union(anchor, id);
  for (PendingId id : bucket.rhs_members) uf_.Union(anchor, id);
}

void EqualityComponents::GrowTo(std::size_t num_pending) {
  uf_.Grow(num_pending);
  if (footprints_.size() < num_pending) footprints_.resize(num_pending);
}

void EqualityComponents::AddNode(PendingId id) {
  GrowTo(id + 1);
  for (std::size_t ord = 0; ord < equalities_.size(); ++ord) {
    const EqualityConstraint& eq = equalities_[ord];
    const Relation& lhs_rel = db_->database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db_->database().relation(eq.rhs_relation_id);
    const TupleOwner owner = static_cast<TupleOwner>(id);
    for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
      Tuple key = lhs_rel.tuple(t).Project(eq.lhs_positions);
      footprints_[id].push_back(FootprintEntry{ord, false, key});
      Bucket& bucket = buckets_[ord][std::move(key)];
      bucket.lhs_members.push_back(id);
      CollapseBucket(bucket);
    }
    for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
      Tuple key = rhs_rel.tuple(t).Project(eq.rhs_positions);
      footprints_[id].push_back(FootprintEntry{ord, true, key});
      Bucket& bucket = buckets_[ord][std::move(key)];
      bucket.rhs_members.push_back(id);
      CollapseBucket(bucket);
    }
  }
}

void EqualityComponents::RemoveNode(PendingId id) {
  if (id >= footprints_.size()) return;
  for (const FootprintEntry& entry : footprints_[id]) {
    auto it = buckets_[entry.ordinal].find(entry.key);
    if (it == buckets_[entry.ordinal].end()) continue;
    std::vector<PendingId>& members =
        entry.rhs_side ? it->second.rhs_members : it->second.lhs_members;
    members.erase(std::remove(members.begin(), members.end(), id),
                  members.end());
    if (it->second.lhs_members.empty() && it->second.rhs_members.empty()) {
      buckets_[entry.ordinal].erase(it);
    }
  }
  footprints_[id].clear();
}

void EqualityComponents::RecomputeUnions() {
  uf_.Reset(footprints_.size());
  for (const Buckets& buckets : buckets_) {
    for (const auto& [key, bucket] : buckets) CollapseBucket(bucket);
  }
}

}  // namespace bcdb
