#include "core/ind_graph.h"

#include <unordered_map>

#include "relational/tuple.h"

namespace bcdb {

void MergeEqualityComponents(const BlockchainDatabase& db,
                             const std::vector<EqualityConstraint>& equalities,
                             const DynamicBitset& nodes, UnionFind& uf) {
  for (const EqualityConstraint& eq : equalities) {
    struct Bucket {
      std::vector<PendingId> lhs_members;
      std::vector<PendingId> rhs_members;
    };
    std::unordered_map<Tuple, Bucket, TupleHash> buckets;
    const Relation& lhs_rel = db.database().relation(eq.lhs_relation_id);
    const Relation& rhs_rel = db.database().relation(eq.rhs_relation_id);
    nodes.ForEach([&](std::size_t id) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      for (TupleId t : lhs_rel.TuplesOwnedBy(owner)) {
        buckets[lhs_rel.tuple(t).Project(eq.lhs_positions)]
            .lhs_members.push_back(id);
      }
      for (TupleId t : rhs_rel.TuplesOwnedBy(owner)) {
        buckets[rhs_rel.tuple(t).Project(eq.rhs_positions)]
            .rhs_members.push_back(id);
      }
    });
    for (const auto& [key, bucket] : buckets) {
      if (bucket.lhs_members.empty() || bucket.rhs_members.empty()) continue;
      // Constraint-satisfied pairs form a complete bipartite graph between
      // the two sides, so the whole bucket is one component.
      const PendingId anchor = bucket.lhs_members.front();
      for (PendingId id : bucket.lhs_members) uf.Union(anchor, id);
      for (PendingId id : bucket.rhs_members) uf.Union(anchor, id);
    }
  }
}

std::vector<std::vector<PendingId>> GroupComponents(const DynamicBitset& nodes,
                                                    UnionFind& uf) {
  std::unordered_map<std::size_t, std::vector<PendingId>> by_root;
  nodes.ForEach(
      [&](std::size_t id) { by_root[uf.Find(id)].push_back(id); });
  std::vector<std::vector<PendingId>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    components.push_back(std::move(members));
  }
  return components;
}

}  // namespace bcdb
