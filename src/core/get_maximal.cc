#include "core/get_maximal.h"

namespace bcdb {

WorldView GetMaximal(const BlockchainDatabase& db,
                     const std::vector<PendingId>& candidates,
                     GetMaximalStats* stats) {
  WorldView view = db.BaseView();
  std::vector<PendingId> remaining = candidates;
  bool progressed = true;
  while (!remaining.empty() && progressed) {
    progressed = false;
    if (stats != nullptr) ++stats->iterations;
    for (std::size_t i = 0; i < remaining.size();) {
      const TupleOwner owner = static_cast<TupleOwner>(remaining[i]);
      if (db.checker().CanAppendOwner(view, owner)) {
        view.Activate(owner);
        remaining[i] = remaining.back();
        remaining.pop_back();
        progressed = true;
        if (stats != nullptr) ++stats->appended;
      } else {
        ++i;
      }
    }
  }
  return view;
}

}  // namespace bcdb
