#include "core/possible_worlds.h"

#include <deque>
#include <unordered_set>

namespace bcdb {

namespace {

struct BitsetHash {
  std::size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace

bool IsPossibleWorld(const BlockchainDatabase& db,
                     const std::vector<PendingId>& subset) {
  for (PendingId id : subset) {
    if (!db.IsPending(id)) return false;
  }
  WorldView view = db.BaseView();
  std::vector<PendingId> remaining = subset;
  bool progressed = true;
  while (!remaining.empty() && progressed) {
    progressed = false;
    for (std::size_t i = 0; i < remaining.size();) {
      const TupleOwner owner = static_cast<TupleOwner>(remaining[i]);
      if (db.checker().CanAppendOwner(view, owner)) {
        view.Activate(owner);
        remaining[i] = remaining.back();
        remaining.pop_back();
        progressed = true;
      } else {
        ++i;
      }
    }
  }
  return remaining.empty();
}

StatusOr<std::vector<WorldView>> EnumeratePossibleWorlds(
    const BlockchainDatabase& db, std::size_t limit) {
  StatusOr<PossibleWorldsEnumeration> enumeration =
      EnumeratePossibleWorldsWithin(db, limit, /*budget=*/nullptr);
  if (!enumeration.ok()) return enumeration.status();
  return std::move(enumeration->worlds);
}

StatusOr<PossibleWorldsEnumeration> EnumeratePossibleWorldsWithin(
    const BlockchainDatabase& db, std::size_t limit, const Budget* budget) {
  const std::vector<PendingId> pending = db.PendingIds();
  PossibleWorldsEnumeration result;
  std::unordered_set<DynamicBitset, BitsetHash> seen;

  std::deque<WorldView> frontier;
  frontier.push_back(db.BaseView());
  seen.insert(frontier.back().active_bits());
  while (!frontier.empty()) {
    if (budget != nullptr && !budget->ChargeWorld()) {
      result.complete = false;
      return result;
    }
    WorldView view = frontier.front();
    frontier.pop_front();
    result.worlds.push_back(view);
    if (result.worlds.size() > limit) {
      return Status::OutOfRange("possible-world enumeration exceeded limit " +
                                std::to_string(limit));
    }
    for (PendingId id : pending) {
      const TupleOwner owner = static_cast<TupleOwner>(id);
      if (view.IsActive(owner)) continue;
      if (!db.checker().CanAppendOwner(view, owner)) continue;
      WorldView next = view;
      next.Activate(owner);
      if (seen.insert(next.active_bits()).second) {
        frontier.push_back(next);
      }
    }
  }
  return result;
}

}  // namespace bcdb
