#ifndef BCDB_CORE_ANSWERS_H_
#define BCDB_CORE_ANSWERS_H_

#include <cstddef>
#include <vector>

#include "core/dcsat.h"
#include "query/ast.h"
#include "relational/tuple.h"
#include "util/status.h"

namespace bcdb {

/// Query answering over the possible worlds of a blockchain database
/// (Section 5 of the paper frames both directions; this module implements
/// them for answer-producing conjunctive queries, i.e. non-aggregate
/// queries with head variables).
///
/// *Certain* answers appear in q(W) for **every** W ∈ Poss(D). For monotone
/// queries they are exactly q(R) — the paper's observation that certain
/// answers of conjunctive queries reduce to evaluation over the current
/// state — because R is itself a possible world and R ⊆ W for all W.
///
/// *Possible* answers appear in q(W) for **some** W ∈ Poss(D). For monotone
/// queries each candidate answer over R ∪ T is verified by binding the head
/// to the candidate and asking DCSat whether the resulting Boolean query can
/// become true — the two problems are dual. Non-monotone queries fall back
/// to exhaustive world enumeration (bounded by `world_limit`).

/// Copy of `q` with each head variable replaced, throughout the body, by
/// the corresponding constant of `binding` (arity must match) and the head
/// cleared — the Boolean "is this specific answer realizable?" query.
StatusOr<DenialConstraint> BindHead(const DenialConstraint& q,
                                    const Tuple& binding);

/// Tuples answered by `q` in every possible world, sorted ascending.
StatusOr<std::vector<Tuple>> CertainAnswers(DcSatEngine& engine,
                                            const DenialConstraint& q,
                                            std::size_t world_limit = 1u << 20);

/// Tuples answered by `q` in at least one possible world, sorted ascending.
StatusOr<std::vector<Tuple>> PossibleAnswers(
    DcSatEngine& engine, const DenialConstraint& q,
    std::size_t world_limit = 1u << 20);

}  // namespace bcdb

#endif  // BCDB_CORE_ANSWERS_H_
