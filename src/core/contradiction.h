#ifndef BCDB_CORE_CONTRADICTION_H_
#define BCDB_CORE_CONTRADICTION_H_

#include <string>

#include "core/blockchain_db.h"
#include "core/transaction.h"
#include "util/status.h"

namespace bcdb {

/// A synthesized transaction that can never coexist with its target — the
/// paper's future-work problem of "automatically deriving a new transaction
/// that contradicts previous transactions" (the generalized form of
/// replacing a stuck Bitcoin payment by a double spend).
struct ContradictionPlan {
  Transaction transaction;
  /// Human-readable description of the induced conflict (which tuple and
  /// which functional dependency rule out coexistence).
  std::string reason;
};

/// Synthesizes a transaction that (a) conflicts with pending transaction
/// `target` on some functional dependency — so no possible world contains
/// both — and (b) is itself appendable to the current state R, so it is a
/// credible replacement.
///
/// Strategy: for each tuple of the target and each FD over its relation,
/// clone the tuple, perturb a dependent (non-determinant) attribute to a
/// fresh value, then repair the inclusion dependencies the perturbed tuple
/// breaks by cloning witnesses (substituting the perturbed values),
/// recursively up to a small depth. Every candidate is verified against the
/// database — pairwise FD-inconsistent with the target, appendable to R —
/// before being returned; the database is left unchanged.
///
/// Fails with NotFound if no verifiable contradiction exists (e.g. the
/// target's relations carry no FDs).
StatusOr<ContradictionPlan> PlanContradiction(BlockchainDatabase& db,
                                              PendingId target);

}  // namespace bcdb

#endif  // BCDB_CORE_CONTRADICTION_H_
