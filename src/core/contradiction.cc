#include "core/contradiction.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace bcdb {

namespace {

/// Fresh-value synthesis for a perturbed attribute: deterministic, unlikely
/// to collide with live data; `attempt` varies the choice when verification
/// rejects a candidate.
Value Perturb(const Value& original, int attempt) {
  switch (original.type()) {
    case ValueType::kInt:
      return Value::Int(original.AsInt() + 1000003 * (attempt + 1));
    case ValueType::kReal:
      return Value::Real(original.AsReal() + 1000003.0 * (attempt + 1));
    case ValueType::kString:
      return Value::Str(original.AsString() + "~rival" +
                        std::to_string(attempt));
    case ValueType::kNull:
      break;
  }
  return original;
}

/// Applies `changes` (position -> value) to `tuple`.
Tuple WithChanges(const Tuple& tuple,
                  const std::vector<std::pair<std::size_t, Value>>& changes) {
  std::vector<Value> values = tuple.values();
  for (const auto& [position, value] : changes) values[position] = value;
  return Tuple(std::move(values));
}

/// Repairs the inclusion dependencies broken by adding `tuple` to
/// `relation_id`: for every IND whose left side is this relation, if no
/// base-visible witness matches, clones a stored witness of the *original*
/// projection with the new projection substituted, recursing for the
/// clone's own INDs. Appends repair tuples to `txn`. Returns false if no
/// witness can be constructed within `depth`.
bool RepairInds(const BlockchainDatabase& db, std::size_t relation_id,
                const Tuple& tuple, const Tuple& original, int depth,
                Transaction& txn) {
  if (depth < 0) return false;
  const Database& database = db.database();
  const WorldView base = database.BaseView();
  for (const InclusionDependency* ind :
       db.constraints().IndsWithLhs(relation_id)) {
    const Relation& rhs_rel = database.relation(ind->rhs_relation_id());
    const Tuple needed = tuple.Project(ind->lhs_positions());
    const Tuple original_proj = original.Project(ind->lhs_positions());

    // Witness lookup goes through a sorted-position index; align both the
    // needed and original projections with the sorted order. Both keys are
    // id gathers over already-interned tuples — no value copies.
    std::vector<std::size_t> perm(ind->rhs_positions().size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return ind->rhs_positions()[a] < ind->rhs_positions()[b];
    });
    std::vector<std::size_t> sorted_rhs;
    std::vector<Value> needed_sorted;
    ProjectionKey needed_key(perm.size());
    ProjectionKey original_key(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      const std::size_t p = perm[i];
      sorted_rhs.push_back(ind->rhs_positions()[p]);
      needed_sorted.push_back(needed[p]);
      needed_key.set(i, needed.id_at(p));
      original_key.set(i, original_proj.id_at(p));
    }
    const std::size_t index_id = rhs_rel.GetOrBuildIndex(sorted_rhs);

    // Already satisfied by the current state?
    bool have_witness = false;
    for (TupleId id : rhs_rel.IndexLookup(index_id, needed_key)) {
      if (rhs_rel.IsVisible(id, base)) {
        have_witness = true;
        break;
      }
    }
    if (have_witness) continue;
    // Also satisfied if the transaction itself already carries the witness.
    const std::string& rhs_name = rhs_rel.schema().name();
    for (const Transaction::Item& item : txn.items()) {
      if (item.relation == rhs_name &&
          item.tuple.ProjectKey(sorted_rhs) == needed_key) {
        have_witness = true;
        break;
      }
    }
    if (have_witness) continue;

    // Clone a stored witness of the original tuple's projection (wherever
    // it lives — base, the target, any pending transaction), substituting
    // the perturbed projection values.
    const std::vector<TupleId>& donors =
        rhs_rel.IndexLookup(index_id, original_key);
    if (donors.empty()) return false;
    const Tuple& donor = rhs_rel.tuple(donors.front());
    std::vector<std::pair<std::size_t, Value>> changes;
    for (std::size_t i = 0; i < sorted_rhs.size(); ++i) {
      changes.emplace_back(sorted_rhs[i], needed_sorted[i]);
    }
    Tuple clone = WithChanges(donor, changes);
    if (!RepairInds(db, ind->rhs_relation_id(), clone, donor, depth - 1,
                    txn)) {
      return false;
    }
    txn.Add(rhs_name, std::move(clone));
  }
  return true;
}

}  // namespace

StatusOr<ContradictionPlan> PlanContradiction(BlockchainDatabase& db,
                                              PendingId target) {
  if (!db.IsPending(target)) {
    return Status::InvalidArgument("target transaction is not pending");
  }
  const Database& database = db.database();
  // Copy, not reference: the verification step below adds (and discards)
  // candidate pending transactions, which may reallocate the pending store
  // and invalidate references into it.
  const Transaction victim = db.pending(target);

  for (const Transaction::Item& item : victim.items()) {
    StatusOr<std::size_t> relation_id = database.RelationId(item.relation);
    if (!relation_id.ok()) continue;
    for (const FunctionalDependency* fd :
         db.constraints().FdsFor(*relation_id)) {
      // Perturb one dependent attribute that is not part of the determinant
      // — the clone then agrees on the determinant but disagrees on the
      // dependent, which is exactly an FD conflict.
      for (std::size_t position : fd->rhs()) {
        if (std::find(fd->lhs().begin(), fd->lhs().end(), position) !=
            fd->lhs().end()) {
          continue;
        }
        for (int attempt = 0; attempt < 3; ++attempt) {
          Transaction candidate("rival-of-" + victim.label());
          Tuple rival = WithChanges(
              item.tuple,
              {{position, Perturb(item.tuple[position], attempt)}});
          if (!RepairInds(db, *relation_id, rival, item.tuple, /*depth=*/3,
                          candidate)) {
            continue;
          }
          candidate.Add(item.relation, rival);

          // Verify against the live database, then roll back.
          StatusOr<PendingId> planned = db.AddPending(candidate);
          if (!planned.ok()) continue;
          const bool conflicts = !db.checker().FdConsistentPair(
              static_cast<TupleOwner>(target),
              static_cast<TupleOwner>(*planned));
          const bool viable = db.checker().CanAppendOwner(
              db.BaseView(), static_cast<TupleOwner>(*planned));
          (void)db.DiscardPending(*planned);
          if (conflicts && viable) {
            ContradictionPlan plan;
            plan.transaction = std::move(candidate);
            plan.reason = "clashes with tuple " + item.tuple.ToString() +
                          " of " + item.relation + " on FD " +
                          fd->ToString(db.catalog());
            return plan;
          }
        }
      }
    }
  }
  return Status::NotFound(
      "no verifiable contradicting transaction could be synthesized for the "
      "target");
}

}  // namespace bcdb
