#ifndef BCDB_CORE_IND_GRAPH_H_
#define BCDB_CORE_IND_GRAPH_H_

#include <cstddef>
#include <vector>

#include "core/blockchain_db.h"
#include "query/analysis.h"
#include "relational/tuple.h"
#include "util/bitset.h"
#include "util/flat_table.h"
#include "util/union_find.h"

namespace bcdb {

/// Merges, into `uf` (one element per pending-id slot), the connected
/// components induced by `equalities` over the transactions in `nodes`:
/// two transactions are connected when some equality constraint
/// R[X̄] = S[Ȳ] is satisfied by a tuple pair of theirs.
///
/// Implementation: per constraint, hash the X̄-projections (left side) and
/// Ȳ-projections (right side) of all pending tuples into shared buckets.
/// Within a bucket the constraint-satisfied pairs form a complete bipartite
/// graph between left and right contributors, so if both sides are
/// non-empty the whole bucket collapses into one component — giving exact
/// components without materializing edges (near-linear instead of O(k²)).
void MergeEqualityComponents(const BlockchainDatabase& db,
                             const std::vector<EqualityConstraint>& equalities,
                             const DynamicBitset& nodes, UnionFind& uf);

/// Groups the transactions of `nodes` into connected components of the
/// ind-q-transaction graph G^{q,ind}_T, given a union-find prepared by
/// MergeEqualityComponents calls for Θ_I and Θ_q. Components are returned in
/// a canonical order (ascending smallest member, members ascending), so the
/// scan order — and with it the deterministic lowest-violating-component
/// witness — does not depend on union-find history. An incrementally
/// maintained Θ_I therefore yields bit-identical results to a from-scratch
/// one.
std::vector<std::vector<PendingId>> GroupComponents(const DynamicBitset& nodes,
                                                    UnionFind& uf);

/// The Θ_I half of the ind-graph components, maintained incrementally
/// (paper Section 6.3). Holds the per-constraint projection buckets of
/// MergeEqualityComponents as live state, so one mempool mutation touches
/// only the affected transaction's entries:
///
/// * AddNode inserts the new transaction's projections and unions its
///   bucket-mates eagerly (unions only — cheap).
/// * RemoveNode deletes its entries; since a union-find cannot split, the
///   caller runs RecomputeUnions once per mutation batch that removed
///   anything — a replay of the retained buckets, skipping the expensive
///   re-projection and re-hashing of every pending tuple.
///
/// The resulting component *partition* is always identical to a fresh
/// MergeEqualityComponents over the same valid set (union order may differ,
/// which GroupComponents' canonical ordering hides).
class EqualityComponents {
 public:
  EqualityComponents() = default;

  /// Full (re)build over the valid `nodes` of `db` with Θ_I `equalities`.
  void Rebuild(const BlockchainDatabase& db,
               std::vector<EqualityConstraint> equalities,
               const DynamicBitset& nodes);

  /// Extends the element space to `db.num_pending()` (new ids start as
  /// singletons). Call for every added pending id, valid or not.
  void GrowTo(std::size_t num_pending);

  /// Inserts valid node `id`'s projections; unions it with bucket-mates.
  void AddNode(PendingId id);

  /// Removes `id`'s projections. The union-find is stale (possibly too
  /// coarse) until RecomputeUnions runs.
  void RemoveNode(PendingId id);

  /// Rebuilds the union-find from the retained buckets.
  void RecomputeUnions();

  /// The Θ_I components; one element per pending-id slot.
  const UnionFind& components() const { return uf_; }

 private:
  struct Bucket {
    std::vector<PendingId> lhs_members;
    std::vector<PendingId> rhs_members;
  };
  using Buckets = FlatIdMap<Tuple, Bucket, TupleHash, TupleEq>;
  struct FootprintEntry {
    std::size_t ordinal;  // Index into equalities_.
    bool rhs_side;
    Tuple key;
  };

  /// Unions every member of `bucket` into one set (both sides non-empty).
  void CollapseBucket(const Bucket& bucket);

  const BlockchainDatabase* db_ = nullptr;
  std::vector<EqualityConstraint> equalities_;
  std::vector<Buckets> buckets_;  // Parallel to equalities_.
  /// Per pending id: where its tuples bucketed, for tuple-free removal.
  std::vector<std::vector<FootprintEntry>> footprints_;
  UnionFind uf_{0};
};

}  // namespace bcdb

#endif  // BCDB_CORE_IND_GRAPH_H_
