#ifndef BCDB_CORE_IND_GRAPH_H_
#define BCDB_CORE_IND_GRAPH_H_

#include <vector>

#include "core/blockchain_db.h"
#include "query/analysis.h"
#include "util/bitset.h"
#include "util/union_find.h"

namespace bcdb {

/// Merges, into `uf` (one element per pending-id slot), the connected
/// components induced by `equalities` over the transactions in `nodes`:
/// two transactions are connected when some equality constraint
/// R[X̄] = S[Ȳ] is satisfied by a tuple pair of theirs.
///
/// Implementation: per constraint, hash the X̄-projections (left side) and
/// Ȳ-projections (right side) of all pending tuples into shared buckets.
/// Within a bucket the constraint-satisfied pairs form a complete bipartite
/// graph between left and right contributors, so if both sides are
/// non-empty the whole bucket collapses into one component — giving exact
/// components without materializing edges (near-linear instead of O(k²)).
void MergeEqualityComponents(const BlockchainDatabase& db,
                             const std::vector<EqualityConstraint>& equalities,
                             const DynamicBitset& nodes, UnionFind& uf);

/// Groups the transactions of `nodes` into connected components of the
/// ind-q-transaction graph G^{q,ind}_T, given a union-find prepared by
/// MergeEqualityComponents calls for Θ_I and Θ_q.
std::vector<std::vector<PendingId>> GroupComponents(const DynamicBitset& nodes,
                                                    UnionFind& uf);

}  // namespace bcdb

#endif  // BCDB_CORE_IND_GRAPH_H_
