#include "core/tractable.h"

#include <algorithm>
#include <vector>

#include "core/dcsat.h"
#include "core/get_maximal.h"
#include "query/analysis.h"
#include "query/compiled_query.h"
#include "util/stopwatch.h"

namespace bcdb {

namespace {

/// Can the supported tuples all come from one consistent world? Each tuple
/// is contributed by the base state (free) or by pending transactions; we
/// search over the (constantly many) owner choices for a set that is
/// node-valid and pairwise adjacent in G^fd_T.
bool SupportRealizable(const Database& database, const FdGraph& fd_graph,
                       const std::vector<CompiledQuery::SupportEntry>& support,
                       std::vector<PendingId>* witness) {
  // Owner options per supported tuple; a base-owned tuple imposes nothing.
  std::vector<std::vector<TupleOwner>> options;
  for (const CompiledQuery::SupportEntry& entry : support) {
    const std::vector<TupleOwner>& owners =
        database.relation(entry.relation_id).owners(entry.tuple_id);
    if (std::find(owners.begin(), owners.end(), kBaseOwner) != owners.end()) {
      continue;  // Always present.
    }
    std::vector<TupleOwner> valid_owners;
    for (TupleOwner owner : owners) {
      if (fd_graph.valid_nodes().Test(static_cast<std::size_t>(owner))) {
        valid_owners.push_back(owner);
      }
    }
    if (valid_owners.empty()) return false;
    options.push_back(std::move(valid_owners));
  }

  // Backtracking over owner choices (at most |q| tuples, few owners each).
  std::vector<TupleOwner> chosen;
  std::function<bool(std::size_t)> pick = [&](std::size_t i) -> bool {
    if (i == options.size()) return true;
    for (TupleOwner candidate : options[i]) {
      bool compatible = true;
      for (TupleOwner prior : chosen) {
        if (prior != candidate &&
            !fd_graph.graph().HasEdge(static_cast<std::size_t>(prior),
                                      static_cast<std::size_t>(candidate))) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      chosen.push_back(candidate);
      if (pick(i + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  if (!pick(0)) return false;

  if (witness != nullptr) {
    witness->clear();
    for (TupleOwner owner : chosen) {
      witness->push_back(static_cast<PendingId>(owner));
    }
    std::sort(witness->begin(), witness->end());
    witness->erase(std::unique(witness->begin(), witness->end()),
                   witness->end());
  }
  return true;
}

}  // namespace

std::optional<DcSatResult> TryTractableDcSat(const BlockchainDatabase& db,
                                             const FdGraph& fd_graph,
                                             const DenialConstraint& q,
                                             const CompiledQuery* precompiled,
                                             std::size_t support_limit,
                                             const QueryAnalysis* preanalyzed) {
  const bool has_fds = !db.constraints().fds().empty();
  const bool has_inds = !db.constraints().inds().empty();
  if (has_fds && has_inds) return std::nullopt;  // CoNP-complete territory.

  Stopwatch watch;
  const QueryAnalysis analysis =
      preanalyzed != nullptr ? *preanalyzed : AnalyzeQuery(q, db.catalog());

  std::optional<CompiledQuery> owned;
  if (precompiled == nullptr) {
    StatusOr<CompiledQuery> fresh = CompiledQuery::Compile(q, &db.database());
    if (!fresh.ok()) return std::nullopt;  // Caller reports the error.
    owned = std::move(*fresh);
    precompiled = &*owned;
  }
  const CompiledQuery& compiled = *precompiled;

  // --- IND-only (or unconstrained): unique maximal world. ---
  if (!has_fds) {
    if (!analysis.monotone) return std::nullopt;
    DcSatResult result;
    result.stats.algorithm_used = DcSatAlgorithm::kTractable;
    result.stats.num_pending = db.PendingIds().size();
    const WorldView maximal = GetMaximal(db, db.PendingIds());
    result.stats.num_worlds_evaluated = 1;
    if (compiled.Evaluate(maximal)) {
      result.satisfied = false;
      result.witness = maximal.active_bits().ToVector();
    } else {
      result.satisfied = true;
    }
    result.stats.total_seconds = watch.ElapsedSeconds();
    return result;
  }

  // --- FD-only: assignment supports against G^fd_T. ---
  if (q.is_aggregate() || !q.negated_atoms.empty()) return std::nullopt;

  DcSatResult result;
  result.stats.algorithm_used = DcSatAlgorithm::kTractable;
  result.stats.num_pending = db.PendingIds().size();
  result.stats.num_valid_nodes = fd_graph.valid_nodes().Count();
  result.stats.fd_conflict_pairs = fd_graph.num_conflict_pairs();

  bool realizable = false;
  bool abstained = false;
  std::size_t supports_seen = 0;
  std::vector<PendingId> witness;
  compiled.EnumerateSupports(
      db.PendingUnionView(),
      [&](const std::vector<CompiledQuery::SupportEntry>& support) {
        if (++supports_seen > support_limit) {
          abstained = true;
          return false;
        }
        if (SupportRealizable(db.database(), fd_graph, support, &witness)) {
          realizable = true;
          return false;
        }
        return true;
      });
  if (abstained) return std::nullopt;

  result.stats.num_worlds_evaluated = supports_seen;
  if (realizable) {
    result.satisfied = false;
    result.witness = std::move(witness);
  } else {
    result.satisfied = true;
  }
  result.stats.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace bcdb
