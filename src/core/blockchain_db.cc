#include "core/blockchain_db.h"

namespace bcdb {

BlockchainDatabase::BlockchainDatabase(Catalog catalog,
                                       ConstraintSet constraints)
    : db_(std::make_unique<Database>(std::move(catalog))),
      constraints_(std::make_unique<ConstraintSet>(std::move(constraints))),
      checker_(std::make_unique<ConstraintChecker>(db_.get(),
                                                   constraints_.get())) {}

StatusOr<BlockchainDatabase> BlockchainDatabase::Create(
    Catalog catalog, ConstraintSet constraints) {
  // Constraints carry resolved relation ids; verify they are in range for
  // this catalog (defends against mixing catalogs).
  for (const FunctionalDependency& fd : constraints.fds()) {
    if (fd.relation_id() >= catalog.num_relations()) {
      return Status::InvalidArgument("FD references unknown relation id");
    }
  }
  for (const InclusionDependency& ind : constraints.inds()) {
    if (ind.lhs_relation_id() >= catalog.num_relations() ||
        ind.rhs_relation_id() >= catalog.num_relations()) {
      return Status::InvalidArgument("IND references unknown relation id");
    }
  }
  return BlockchainDatabase(std::move(catalog), std::move(constraints));
}

Status BlockchainDatabase::InsertCurrent(std::string_view relation,
                                         Tuple tuple) {
  ++version_;
  return db_->Insert(relation, std::move(tuple), kBaseOwner);
}

Status BlockchainDatabase::ValidateCurrentState() const {
  return checker_->CheckAll(db_->BaseView());
}

StatusOr<PendingId> BlockchainDatabase::AddPending(const Transaction& txn) {
  if (txn.empty()) {
    return Status::InvalidArgument("pending transaction has no tuples");
  }
  const TupleOwner owner = db_->RegisterOwner();
  for (const Transaction::Item& item : txn.items()) {
    Status status = db_->Insert(item.relation, item.tuple, owner);
    if (!status.ok()) {
      // Roll back the partial insert; the owner slot stays allocated but
      // owns nothing, so it can never surface tuples in any world.
      for (std::size_t r = 0; r < db_->num_relations(); ++r) {
        db_->relation(r).DropOwner(owner);
      }
      return status;
    }
  }
  pending_.push_back(txn);
  pending_state_.push_back(PendingState::kPending);
  ++version_;
  const PendingId id = pending_.size() - 1;
  // Owners are handed out only here, so owner tags == pending ids.
  if (static_cast<std::size_t>(owner) != id) {
    return Status::Internal("pending id / owner tag mismatch");
  }
  return id;
}

Status BlockchainDatabase::ApplyPending(PendingId id) {
  if (!IsPending(id)) {
    return Status::InvalidArgument("transaction is not pending");
  }
  // The append must preserve I over R.
  if (!checker_->CanAppendOwner(db_->BaseView(),
                                static_cast<TupleOwner>(id))) {
    return Status::ConstraintViolation(
        "appending pending transaction " + std::to_string(id) +
        " would violate the integrity constraints");
  }
  for (std::size_t r = 0; r < db_->num_relations(); ++r) {
    db_->relation(r).PromoteOwner(static_cast<TupleOwner>(id));
  }
  pending_state_[id] = PendingState::kApplied;
  ++version_;
  return Status::OK();
}

Status BlockchainDatabase::DiscardPending(PendingId id) {
  if (!IsPending(id)) {
    return Status::InvalidArgument("transaction is not pending");
  }
  for (std::size_t r = 0; r < db_->num_relations(); ++r) {
    db_->relation(r).DropOwner(static_cast<TupleOwner>(id));
  }
  pending_state_[id] = PendingState::kDiscarded;
  ++version_;
  return Status::OK();
}

std::vector<PendingId> BlockchainDatabase::PendingIds() const {
  std::vector<PendingId> ids;
  for (PendingId id = 0; id < pending_.size(); ++id) {
    if (pending_state_[id] == PendingState::kPending) ids.push_back(id);
  }
  return ids;
}

WorldView BlockchainDatabase::PendingUnionView() const {
  WorldView view = db_->BaseView();
  for (PendingId id : PendingIds()) {
    view.Activate(static_cast<TupleOwner>(id));
  }
  return view;
}

}  // namespace bcdb
