#include "core/blockchain_db.h"

#include <algorithm>

namespace bcdb {

BlockchainDatabase::BlockchainDatabase(Catalog catalog,
                                       ConstraintSet constraints)
    : db_(std::make_unique<Database>(std::move(catalog))),
      constraints_(std::make_unique<ConstraintSet>(std::move(constraints))),
      checker_(std::make_unique<ConstraintChecker>(db_.get(),
                                                   constraints_.get())),
      mutation_log_(std::make_unique<MutationLog>()),
      listeners_(std::make_unique<ListenerRegistry>()) {}

MutationListenerId BlockchainDatabase::AddMutationListener(
    MutationListener listener) {
  MutexLock lock(listeners_->mutex);
  listeners_->listeners.push_back(std::move(listener));
  return listeners_->listeners.size() - 1;
}

void BlockchainDatabase::RemoveMutationListener(MutationListenerId id) {
  MutexLock lock(listeners_->mutex);
  if (id < listeners_->listeners.size()) {
    listeners_->listeners[id] = nullptr;
  }
}

void BlockchainDatabase::Publish(MutationKind kind, PendingId id,
                                 std::vector<std::size_t> relation_ids,
                                 const MutationPayload& payload,
                                 Tuple event_tuple) {
  MutationEvent event;
  event.kind = kind;
  event.seq = mutation_log_->end_seq();  // Append re-stamps identically.
  event.version = version_;
  event.pending_id = id;
  event.relation_ids = std::move(relation_ids);
  event.tuple = std::move(event_tuple);
  mutation_log_->Append(event);
  // The durability sink runs first: the write-ahead record must exist
  // before any listener can act on (and externalize) the mutation.
  if (durability_sink_ != nullptr) durability_sink_->Persist(event, payload);
  // By index with the size snapshotted up front, invoking a copy with the
  // registry unlocked: a callback may register or remove listeners, which
  // reallocates or overwrites the vector (references into it would dangle,
  // even under the running callback itself) and re-acquires the registry
  // lock. A listener registered mid-publish starts with the next event; one
  // removed mid-publish may still receive this one.
  std::size_t num_listeners;
  {
    MutexLock lock(listeners_->mutex);
    num_listeners = listeners_->listeners.size();
  }
  for (std::size_t i = 0; i < num_listeners; ++i) {
    MutationListener listener;
    {
      MutexLock lock(listeners_->mutex);
      listener = listeners_->listeners[i];
    }
    if (listener) listener(event);
  }
}

StatusOr<BlockchainDatabase> BlockchainDatabase::Create(
    Catalog catalog, ConstraintSet constraints) {
  // Constraints carry resolved relation ids; verify they are in range for
  // this catalog (defends against mixing catalogs).
  for (const FunctionalDependency& fd : constraints.fds()) {
    if (fd.relation_id() >= catalog.num_relations()) {
      return Status::InvalidArgument("FD references unknown relation id");
    }
  }
  for (const InclusionDependency& ind : constraints.inds()) {
    if (ind.lhs_relation_id() >= catalog.num_relations() ||
        ind.rhs_relation_id() >= catalog.num_relations()) {
      return Status::InvalidArgument("IND references unknown relation id");
    }
  }
  return BlockchainDatabase(std::move(catalog), std::move(constraints));
}

Status BlockchainDatabase::InsertCurrent(std::string_view relation,
                                         Tuple tuple) {
  StatusOr<std::size_t> relation_id = db_->RelationId(relation);
  // The event (and durability sink) carry the tuple after the store has
  // consumed it; an id-array copy is cheap, and incremental engines probe
  // their determinant buckets with it instead of re-reading the store.
  Tuple persisted = tuple;
  Status status = db_->Insert(relation, std::move(tuple), kBaseOwner);
  if (!status.ok()) return status;
  ++version_;
  MutationPayload payload;
  payload.tuple = &persisted;
  payload.relation_id = relation_id.ok() ? *relation_id : ~std::size_t{0};
  Publish(MutationKind::kCurrentInserted, kNoPendingId,
          relation_id.ok() ? std::vector<std::size_t>{*relation_id}
                           : std::vector<std::size_t>{},
          payload, persisted);
  return status;
}

Status BlockchainDatabase::RemoveCurrent(std::string_view relation,
                                         const Tuple& tuple) {
  StatusOr<std::size_t> relation_id = db_->RelationId(relation);
  if (!relation_id.ok()) return relation_id.status();
  if (!db_->relation(*relation_id).RemoveTupleOwner(tuple, kBaseOwner)) {
    return Status::NotFound("tuple is not part of the current state of " +
                            std::string(relation));
  }
  ++version_;
  MutationPayload payload;
  payload.tuple = &tuple;
  payload.relation_id = *relation_id;
  Publish(MutationKind::kCurrentRemoved, kNoPendingId,
          std::vector<std::size_t>{*relation_id}, payload, tuple);
  return Status::OK();
}

Status BlockchainDatabase::ValidateCurrentState() const {
  return checker_->CheckAll(db_->BaseView());
}

StatusOr<PendingId> BlockchainDatabase::AddPending(const Transaction& txn) {
  if (txn.empty()) {
    return Status::InvalidArgument("pending transaction has no tuples");
  }
  // Owners are handed out only here, so owner tags == pending ids; verify
  // the invariant before touching any state, so a failed add leaves the
  // database exactly as it was (a leaked slot would poison every later add:
  // its owner tag would run one ahead of its pending id forever).
  const PendingId id = pending_.size();
  const TupleOwner owner = db_->RegisterOwner();
  if (static_cast<std::size_t>(owner) != id) {
    db_->ReleaseOwner(owner);
    return Status::Internal("pending id / owner tag mismatch");
  }
  for (const Transaction::Item& item : txn.items()) {
    Status status = db_->Insert(item.relation, item.tuple, owner);
    if (!status.ok()) {
      // Roll back the partial insert and reclaim the owner slot (it is the
      // top one — nothing else registers owners). Nothing was published and
      // the version is unchanged: the failed add never happened.
      for (std::size_t r = 0; r < db_->num_relations(); ++r) {
        db_->relation(r).DropOwner(owner);
      }
      db_->ReleaseOwner(owner);
      return status;
    }
  }
  pending_.push_back(txn);
  pending_state_.push_back(PendingState::kPending);
  // Distinct relation ids of the transaction, recorded while the tuples are
  // still resolvable (DiscardPending drops them from the store).
  std::vector<std::size_t> relation_ids;
  for (const Transaction::Item& item : txn.items()) {
    StatusOr<std::size_t> rid = db_->RelationId(item.relation);
    if (rid.ok() && std::find(relation_ids.begin(), relation_ids.end(),
                              *rid) == relation_ids.end()) {
      relation_ids.push_back(*rid);
    }
  }
  pending_relations_.push_back(relation_ids);
  ++version_;
  MutationPayload payload;
  payload.txn = &pending_.back();
  Publish(MutationKind::kPendingAdded, id, std::move(relation_ids), payload);
  return id;
}

Status BlockchainDatabase::ApplyPending(PendingId id) {
  if (!IsPending(id)) {
    return Status::InvalidArgument("transaction is not pending");
  }
  // The append must preserve I over R.
  if (!checker_->CanAppendOwner(db_->BaseView(),
                                static_cast<TupleOwner>(id))) {
    return Status::ConstraintViolation(
        "appending pending transaction " + std::to_string(id) +
        " would violate the integrity constraints");
  }
  // Capture the event's relation set before any tuple teardown: the event
  // must describe the transaction as it was registered, independent of what
  // the promote/drop loops below do to per-relation state. (Teardown does
  // not touch pending_relations_ today, but the capture-then-mutate order
  // is the invariant listeners rely on, so make it structural.)
  std::vector<std::size_t> event_relations = pending_relations_[id];
  for (std::size_t r = 0; r < db_->num_relations(); ++r) {
    db_->relation(r).PromoteOwner(static_cast<TupleOwner>(id));
  }
  pending_state_[id] = PendingState::kApplied;
  ++version_;
  Publish(MutationKind::kPendingApplied, id, std::move(event_relations));
  return Status::OK();
}

Status BlockchainDatabase::DiscardPending(PendingId id) {
  if (!IsPending(id)) {
    return Status::InvalidArgument("transaction is not pending");
  }
  // As in ApplyPending: snapshot the relation set before teardown drops the
  // transaction's tuples, so the published event always carries the
  // registration-time footprint.
  std::vector<std::size_t> event_relations = pending_relations_[id];
  for (std::size_t r = 0; r < db_->num_relations(); ++r) {
    db_->relation(r).DropOwner(static_cast<TupleOwner>(id));
  }
  pending_state_[id] = PendingState::kDiscarded;
  ++version_;
  Publish(MutationKind::kPendingDiscarded, id, std::move(event_relations));
  return Status::OK();
}

Status BlockchainDatabase::UnapplyPending(PendingId id) {
  if (id >= pending_state_.size() ||
      pending_state_[id] != PendingState::kApplied) {
    return Status::InvalidArgument("transaction is not applied");
  }
  // Demote by content: ApplyPending merged the transaction's tuples into
  // base ownership, so the promoted TupleIds are only recoverable through
  // the stored transaction itself. A duplicate item demotes its tuple once
  // (set semantics); see the header for the shared-base-ownership caveat.
  const TupleOwner owner = static_cast<TupleOwner>(id);
  for (const Transaction::Item& item : pending_[id].items()) {
    StatusOr<std::size_t> rid = db_->RelationId(item.relation);
    if (!rid.ok()) continue;  // Validated at AddPending; defensive.
    db_->relation(*rid).DemoteTuple(item.tuple, owner);
  }
  pending_state_[id] = PendingState::kPending;
  ++version_;
  Publish(MutationKind::kPendingRestored, id, pending_relations_[id]);
  return Status::OK();
}

std::vector<PendingId> BlockchainDatabase::PendingIds() const {
  std::vector<PendingId> ids;
  for (PendingId id = 0; id < pending_.size(); ++id) {
    if (pending_state_[id] == PendingState::kPending) ids.push_back(id);
  }
  return ids;
}

Status BlockchainDatabase::RestorePendingSlot(
    Transaction txn, PendingState state,
    std::vector<std::size_t> relation_ids) {
  if (txn.empty()) {
    return Status::InvalidArgument("restored pending transaction is empty");
  }
  for (std::size_t rid : relation_ids) {
    if (rid >= db_->num_relations()) {
      return Status::InvalidArgument(
          "restored pending slot references unknown relation id");
    }
  }
  const PendingId id = pending_.size();
  const TupleOwner owner = db_->RegisterOwner();
  if (static_cast<std::size_t>(owner) != id) {
    db_->ReleaseOwner(owner);
    return Status::Internal("pending id / owner tag mismatch during restore");
  }
  pending_.push_back(std::move(txn));
  pending_state_.push_back(state);
  pending_relations_.push_back(std::move(relation_ids));
  return Status::OK();
}

Status BlockchainDatabase::RestoreClock(std::uint64_t version,
                                        std::uint64_t next_seq) {
  if (version_ != 0 || mutation_log_->end_seq() != 0) {
    return Status::InvalidArgument(
        "RestoreClock requires a database that has never mutated");
  }
  version_ = version;
  mutation_log_->RestoreSeq(next_seq);
  return Status::OK();
}

WorldView BlockchainDatabase::PendingUnionView() const {
  WorldView view = db_->BaseView();
  for (PendingId id : PendingIds()) {
    view.Activate(static_cast<TupleOwner>(id));
  }
  return view;
}

}  // namespace bcdb
