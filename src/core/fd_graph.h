#ifndef BCDB_CORE_FD_GRAPH_H_
#define BCDB_CORE_FD_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/bit_graph.h"
#include "core/blockchain_db.h"
#include "relational/tuple.h"
#include "util/bitset.h"
#include "util/flat_table.h"

namespace bcdb {

/// The fd-transaction graph G^fd_T (paper Section 6.1): vertices are pending
/// transactions, with an edge (T, T') iff T ∪ T' satisfies the functional
/// dependencies. Every possible world is a clique of this graph.
///
/// Construction exploits that FD violations are *binary*: R ∪ T ∪ T' |= I_fd
/// decomposes into (a) R ∪ T |= I_fd per transaction (the `valid_nodes`
/// filter) and (b) T ∪ T' |= I_fd per pair. Pairs are found by hashing every
/// FD's determinant projection across all pending tuples — conflicts are
/// rare in practice, so the graph is "complete minus a few conflict pairs"
/// rather than the result of O(k²) pairwise checks.
///
/// In *tracked* mode the graph keeps those determinant buckets alive and can
/// be maintained incrementally under mempool churn (paper Section 6.3): one
/// AddPending / ApplyPending / DiscardPending mutates only the affected
/// node's edges and bucket entries, instead of rebuilding everything. The
/// maintained state is always bit-identical to a from-scratch build over the
/// same database (the differential tests assert exactly this).
class FdGraph {
 public:
  /// Builds the graph over all still-pending transactions of `db`. With
  /// `track_mutations`, retains the per-FD determinant buckets required by
  /// the incremental mutators below (~one map entry per pending tuple).
  explicit FdGraph(const BlockchainDatabase& db, bool track_mutations = false);

  /// Adjacency over the full pending-id space; only valid nodes carry edges.
  const BitGraph& graph() const { return graph_; }

  /// valid_nodes[i] = transaction i is still pending, internally consistent
  /// and FD-consistent with the current state (otherwise it can never be
  /// part of any possible world).
  const DynamicBitset& valid_nodes() const { return valid_nodes_; }

  /// Number of conflicting (non-adjacent valid) pairs — the paper's
  /// "contradictions" knob.
  std::size_t num_conflict_pairs() const { return num_conflict_pairs_; }

  // --- Incremental maintenance (requires track_mutations). -----------------

  /// Integrates the freshly registered pending transaction `id`
  /// (kPendingAdded): validity check against the base state, edges to every
  /// other valid node, conflict edges removed via determinant-bucket probes.
  /// Cost: O(pending + own tuples), vs O(pending² / 64 + all tuples) for a
  /// rebuild. Returns true when the node came out valid.
  bool AddPendingNode(PendingId id);

  /// Removes `id` from the graph (kPendingDiscarded): clears its validity,
  /// edges and bucket entries. Remaining pairwise conflicts are untouched.
  void RemovePendingNode(PendingId id);

  /// Applies `id` to the current state (kPendingApplied): removes the node
  /// like RemovePendingNode, and — because its tuples joined R — every
  /// still-valid node that FD-conflicted with it becomes inconsistent with
  /// the base state and is invalidated too. Returns those cascade-
  /// invalidated nodes (ascending); the caller must drop them from any
  /// structure keyed on valid nodes (Θ_I buckets).
  std::vector<PendingId> ApplyPendingNode(PendingId id);

  /// Integrates a direct base-state insert (kCurrentInserted) of `tuple`
  /// into relation `relation_id`: a valid node whose own tuple shares an FD
  /// determinant with the new base tuple but disagrees on the dependent is
  /// now inconsistent with R. Growing R is anti-monotone for validity —
  /// it can only invalidate, never revalidate — so one determinant-bucket
  /// probe per FD on the relation finds every affected node without
  /// rescanning. Returns the invalidated nodes (ascending, deduplicated);
  /// same caller contract as ApplyPendingNode's cascade.
  std::vector<PendingId> InsertBaseTuple(std::size_t relation_id,
                                         const Tuple& tuple);

  bool tracking_mutations() const { return tracked_; }

 private:
  /// One valid pending tuple in an FD's determinant bucket.
  struct BucketEntry {
    PendingId txn;
    Tuple dependent;
  };
  /// Flat open-addressing determinant table: probed once per pending tuple
  /// on every build and on every incremental add — the hottest map in the
  /// steady-state path.
  using FdBuckets =
      FlatIdMap<Tuple, std::vector<BucketEntry>, TupleHash, TupleEq>;

  /// Clears `id`'s validity bit, edges, and (tracked) bucket entries,
  /// keeping num_conflict_pairs_ consistent with the remaining valid set.
  void DetachNode(PendingId id);

  /// Inserts `id`'s determinant projections into the FD buckets, removing a
  /// conflict edge for every bucket neighbour with a differing dependent.
  void ProbeAndBucket(PendingId id);

  const BlockchainDatabase* db_ = nullptr;
  BitGraph graph_;
  DynamicBitset valid_nodes_;
  std::size_t num_conflict_pairs_ = 0;

  // Tracked mode only.
  bool tracked_ = false;
  /// Parallel to db constraints' fds(): determinant projection -> entries.
  std::vector<FdBuckets> fd_buckets_;
  /// Per pending id: the (fd ordinal, determinant key) pairs it bucketed
  /// under, so removal never needs the (possibly dropped) tuples.
  std::vector<std::vector<std::pair<std::size_t, Tuple>>> footprints_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_FD_GRAPH_H_
