#ifndef BCDB_CORE_FD_GRAPH_H_
#define BCDB_CORE_FD_GRAPH_H_

#include <cstddef>

#include "core/bit_graph.h"
#include "core/blockchain_db.h"
#include "util/bitset.h"

namespace bcdb {

/// The fd-transaction graph G^fd_T (paper Section 6.1): vertices are pending
/// transactions, with an edge (T, T') iff T ∪ T' satisfies the functional
/// dependencies. Every possible world is a clique of this graph.
///
/// Construction exploits that FD violations are *binary*: R ∪ T ∪ T' |= I_fd
/// decomposes into (a) R ∪ T |= I_fd per transaction (the `valid_nodes`
/// filter) and (b) T ∪ T' |= I_fd per pair. Pairs are found by hashing every
/// FD's determinant projection across all pending tuples — conflicts are
/// rare in practice, so the graph is "complete minus a few conflict pairs"
/// rather than the result of O(k²) pairwise checks.
class FdGraph {
 public:
  /// Builds the graph over all still-pending transactions of `db`.
  explicit FdGraph(const BlockchainDatabase& db);

  /// Adjacency over the full pending-id space; only valid nodes carry edges.
  const BitGraph& graph() const { return graph_; }

  /// valid_nodes[i] = transaction i is still pending, internally consistent
  /// and FD-consistent with the current state (otherwise it can never be
  /// part of any possible world).
  const DynamicBitset& valid_nodes() const { return valid_nodes_; }

  /// Number of conflicting (non-adjacent valid) pairs — the paper's
  /// "contradictions" knob.
  std::size_t num_conflict_pairs() const { return num_conflict_pairs_; }

 private:
  BitGraph graph_;
  DynamicBitset valid_nodes_;
  std::size_t num_conflict_pairs_ = 0;
};

}  // namespace bcdb

#endif  // BCDB_CORE_FD_GRAPH_H_
