#include "core/bron_kerbosch.h"

namespace bcdb {

namespace {

class Enumerator {
 public:
  Enumerator(const BitGraph& graph, bool use_pivot,
             const CliqueCallback& callback, const Budget* budget)
      : graph_(graph),
        use_pivot_(use_pivot),
        callback_(callback),
        budget_(budget) {}

  CliqueEnumerationStats Run(const DynamicBitset& subset) {
    DynamicBitset p = subset;
    DynamicBitset x(subset.size());
    Expand(p, x);
    return stats_;
  }

 private:
  /// Returns false if the callback requested an early stop.
  bool Expand(DynamicBitset& p, DynamicBitset& x) {
    // Cooperative preemption point: one probe per expansion keeps the
    // worst-case overshoot after expiry to a single recursion step.
    if (budget_ != nullptr && budget_->Expired()) {
      stats_.stopped_early = true;
      stats_.budget_expired = true;
      return false;
    }
    ++stats_.recursive_calls;
    if (p.None() && x.None()) {
      ++stats_.cliques_reported;
      if (!callback_(current_)) {
        stats_.stopped_early = true;
        return false;
      }
      return true;
    }

    // Candidates to branch on: P, or P \ N(pivot) with Tomita pivoting.
    DynamicBitset candidates = p;
    if (use_pivot_) {
      // Pivot u ∈ P ∪ X maximizing |P ∩ N(u)| minimizes branching.
      std::size_t best_u = p.size();
      std::size_t best_score = 0;
      auto consider = [&](std::size_t u) {
        const std::size_t score = p.IntersectionCount(graph_.Neighbors(u));
        if (best_u == p.size() || score > best_score) {
          best_u = u;
          best_score = score;
        }
      };
      p.ForEach(consider);
      x.ForEach(consider);
      if (best_u != p.size()) candidates -= graph_.Neighbors(best_u);
    }

    bool keep_going = true;
    candidates.ForEach([&](std::size_t v) {
      if (!keep_going) return;
      if (!p.Test(v)) return;  // Removed by an earlier iteration.
      current_.push_back(v);
      DynamicBitset next_p = p & graph_.Neighbors(v);
      DynamicBitset next_x = x & graph_.Neighbors(v);
      keep_going = Expand(next_p, next_x);
      current_.pop_back();
      p.Reset(v);
      x.Set(v);
    });
    return keep_going;
  }

  const BitGraph& graph_;
  const bool use_pivot_;
  const CliqueCallback& callback_;
  const Budget* budget_;
  std::vector<std::size_t> current_;
  CliqueEnumerationStats stats_;
};

}  // namespace

CliqueEnumerationStats EnumerateMaximalCliques(const BitGraph& graph,
                                               const DynamicBitset& subset,
                                               bool use_pivot,
                                               const CliqueCallback& callback,
                                               const Budget* budget) {
  Enumerator enumerator(graph, use_pivot, callback, budget);
  return enumerator.Run(subset);
}

}  // namespace bcdb
