#ifndef BCDB_CORE_MONITOR_H_
#define BCDB_CORE_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dcsat.h"
#include "query/ast.h"
#include "util/bitset.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace bcdb {

/// Opaque typed handle to a standing constraint of a ConstraintMonitor.
/// Default-constructed handles are invalid; valid handles come only from
/// ConstraintMonitor::Add and stay stable for the monitor's lifetime —
/// Remove tombstones the slot, it is never reused for a later Add.
class MonitorHandle {
 public:
  /// An invalid handle (valid() == false).
  MonitorHandle() = default;

  bool valid() const { return index_ != kInvalid; }
  /// The underlying slot index; meaningful only when valid().
  std::size_t value() const { return index_; }

  friend bool operator==(MonitorHandle a, MonitorHandle b) {
    return a.index_ == b.index_;
  }
  friend bool operator!=(MonitorHandle a, MonitorHandle b) {
    return a.index_ != b.index_;
  }

 private:
  friend class ConstraintMonitor;
  explicit MonitorHandle(std::size_t index) : index_(index) {}

  static constexpr std::size_t kInvalid = ~std::size_t{0};
  std::size_t index_ = kInvalid;
};

struct MonitorOptions {
  /// Steady-state maintenance policy for the embedded DcSatEngine.
  SteadyStateOptions steady;
  /// Track which relations the database mutations touched (via the
  /// mutation-delta subscription) and have Poll skip constraints whose
  /// referenced relations are untouched — their verdicts cannot have
  /// changed. Constraints not proved monotone are exempt from the
  /// per-relation filter — their verdict may shift even when no referenced
  /// relation changes directly (a conflict in an unrelated relation can
  /// alter which tuple combinations are jointly possible) — and re-check
  /// on *any* mutation, skipping only fully quiescent polls.
  bool dirty_tracking = true;
  /// Default per-constraint check budget applied by Poll whenever the
  /// caller's DcSatOptions leaves its own budget unlimited. With both
  /// unlimited (the default), checks run to completion exactly as before;
  /// with limits set, a check that cannot finish yields Verdict::kUndecided
  /// instead of stalling the poll (DCSat is CoNP-complete, so adversarial
  /// mempool shapes otherwise make one constraint blow up every Poll).
  /// Entries the static analyzer places in a proven-PTIME class
  /// (kPtimeFdOnly / kPtimeIndOnly / kTriviallyUnsat) are exempt from this
  /// *default* — their checks are polynomial, budgeting them only risks
  /// spurious kUndecided verdicts — while a budget set explicitly on the
  /// Poll call still applies to every entry.
  BudgetLimits budget;
  /// Escalation: each consecutive undecided verdict multiplies the entry's
  /// next budget by this factor (a later poll retries with more room), up
  /// to max_budget_scale. 1 disables growth.
  double budget_growth = 2.0;
  /// Ceiling on the cumulative escalation factor.
  double max_budget_scale = 64.0;
  /// Exponential backoff for repeat offenders: after the k-th consecutive
  /// undecided verdict the entry sits out min(2^(k-2), max_backoff_polls)
  /// polls (none after the first — the first retry is immediate, with a
  /// bigger budget) unless a mutation dirties it, which re-checks at once.
  std::size_t max_backoff_polls = 8;
};

/// Tracks standing denial constraints over one blockchain database and
/// reports verdict *transitions* as the database evolves (new pending
/// transactions, blocks applying, evictions) — the library form of a node
/// operator's dashboard: every bad outcome is, at any moment, either
/// already on the chain, still possible in some future, or impossible in
/// every future.
///
/// Poll evaluates independent constraints concurrently over a read-only
/// snapshot: the engine's steady-state caches are refreshed once
/// (single-threaded, incrementally from the mutation-delta log when
/// possible), every standing query is compiled once per database version
/// (the compiled-query cache — steady-state polling stops paying
/// compilation), only *dirty* constraints — those whose referenced
/// relations intersect the transactions changed since the previous poll —
/// are re-evaluated, and only then is the per-constraint work fanned out.
/// Concurrent Poll calls serialize on an internal mutex; mutating the
/// database concurrently with Poll is not supported.
class ConstraintMonitor {
 public:
  enum class Verdict {
    kUnknown,     // Not yet polled (or the handle is invalid/removed).
    kHappened,    // q is true over the current state R itself.
    kPossible,    // q holds in some possible world (DCSat: not satisfied).
    kImpossible,  // q holds in no possible world (DCSat: satisfied).
    kUndecided,   // The check's budget expired before the answer settled;
                  // later polls retry with an escalating budget.
  };

  static const char* VerdictToString(Verdict verdict);

  struct Change {
    MonitorHandle handle;
    std::string label;
    Verdict before;
    Verdict after;
  };

  /// Cumulative counters for the steady-state behaviour of Poll.
  struct PollStats {
    std::size_t polls = 0;
    std::size_t compile_cache_hits = 0;    // Query reused across polls.
    std::size_t compile_cache_misses = 0;  // Compiled (version changed).
    std::size_t constraints_evaluated = 0;  // Entries re-checked successfully.
    std::size_t constraints_skipped = 0;    // Entries clean — verdict kept.
    std::size_t threads_used = 1;     // Last poll's worker-pool width.
    std::size_t constraints_parallel = 0;  // Entries evaluated on the pool.
    std::size_t undecided_verdicts = 0;  // Checks whose budget expired.
    std::size_t budget_escalations = 0;  // Retries granted a larger budget.
    std::size_t backoff_skips = 0;  // Undecided entries sat out (backoff).
  };

  /// `db` must outlive the monitor. The monitor subscribes to the
  /// database's mutation events for the dirty-constraint bookkeeping and
  /// unsubscribes on destruction.
  explicit ConstraintMonitor(BlockchainDatabase* db,
                             MonitorOptions options = {});
  ~ConstraintMonitor();

  ConstraintMonitor(const ConstraintMonitor&) = delete;
  ConstraintMonitor& operator=(const ConstraintMonitor&) = delete;

  /// Registers a standing constraint; returns its handle. Registration-time
  /// rejection is the contract: the static analyzer runs here, and any
  /// error-severity diagnostic (unknown relation, arity mismatch, unsafe
  /// variable, ...) fails the Add with the full diagnostic summary — a
  /// malformed constraint never reaches Poll. The accepted entry keeps its
  /// AnalysisReport (see analysis()) and uses the inferred footprint,
  /// monotonicity, and tractability class for dirty tracking and dispatch.
  StatusOr<MonitorHandle> Add(std::string label, DenialConstraint q);

  /// Convenience overload: parses `query_text` first, so callers with
  /// textual constraints skip the parse boilerplate.
  StatusOr<MonitorHandle> Add(std::string label, std::string_view query_text);

  /// Unregisters a standing constraint. The slot is tombstoned, never
  /// reused: other handles stay valid, size() drops by one, and the removed
  /// handle reports kUnknown / an empty label from now on. Returns false
  /// when the handle is invalid, out of range, or already removed.
  bool Remove(MonitorHandle handle);

  /// Number of live (added and not removed) constraints.
  std::size_t size() const { return live_count_; }

  /// Verdict of `handle` as of the last Poll; kUnknown for invalid,
  /// out-of-range, removed, or never-polled handles.
  Verdict verdict(MonitorHandle handle) const {
    const Entry* entry = Find(handle);
    return entry != nullptr ? entry->verdict : Verdict::kUnknown;
  }

  /// Label of `handle`; the empty string for invalid, out-of-range, or
  /// removed handles.
  const std::string& label(MonitorHandle handle) const {
    static const std::string kNoLabel;
    const Entry* entry = Find(handle);
    return entry != nullptr ? entry->label : kNoLabel;
  }

  /// The static analysis the entry was admitted under (classification,
  /// footprint, diagnostics); nullptr for invalid or removed handles.
  const AnalysisReport* analysis(MonitorHandle handle) const {
    const Entry* entry = Find(handle);
    return entry != nullptr ? &entry->report : nullptr;
  }

  /// Re-evaluates the dirty standing constraints against the current
  /// database state and returns the transitions since the previous poll
  /// (first poll reports every constraint as a transition from kUnknown).
  /// `options.num_threads` picks the cross-constraint fan-out width
  /// (0 = hardware concurrency, 1 = serial); each constraint's own check
  /// runs serially — with many standing constraints, constraint-level
  /// parallelism subsumes component-level parallelism.
  StatusOr<std::vector<Change>> Poll(const DcSatOptions& options = {});

  const PollStats& poll_stats() const { return poll_stats_; }
  /// The embedded engine, for steady-state cache introspection.
  const DcSatEngine& engine() const { return engine_; }

 private:
  struct Entry {
    std::string label;
    DenialConstraint q;
    /// The admission-time static analysis: classification (drives the
    /// engine dispatch and the budget exemption), footprint, monotonicity.
    AnalysisReport report;
    Verdict verdict = Verdict::kUnknown;
    bool removed = false;
    /// Relations whose mutations can change q's verdict — the analyzer's
    /// IND-closed footprint: the relations q references (positive and
    /// negated atoms), closed under the coupling induced by the database's
    /// inclusion dependencies. An IND S[x] ⊆ R[a] lets a mutation in R
    /// change which worlds an S-tuple can inhabit, so an entry over S must
    /// also watch R.
    std::vector<std::size_t> relation_ids;
    /// Not proved monotone (from the report): never skipped by the dirty
    /// filter (see MonitorOptions::dirty_tracking).
    bool always_dirty = false;
    /// Budget escalation state (see MonitorOptions): consecutive undecided
    /// verdicts, the cumulative budget multiplier the next check gets, and
    /// how many polls the entry still sits out before being retried.
    std::size_t undecided_streak = 0;
    double budget_scale = 1.0;
    std::size_t backoff_remaining = 0;
    // Compiled-query cache, keyed on the database version at compile time.
    std::optional<CompiledQuery> compiled;
    std::uint64_t compiled_version = ~std::uint64_t{0};
  };

  /// The live entry behind `handle`, or nullptr.
  const Entry* Find(MonitorHandle handle) const {
    if (!handle.valid() || handle.value() >= entries_.size()) return nullptr;
    const Entry& entry = entries_[handle.value()];
    return entry.removed ? nullptr : &entry;
  }

  /// Whether `entry` must be re-evaluated this poll.
  bool IsDirty(const Entry& entry) const;

  /// Folds the relations of transactions whose validity changed since the
  /// previous poll into dirty_relations_ (covers cascade invalidations the
  /// mutation events alone cannot attribute), then snapshots the bits.
  void AbsorbValidityDiff(const DynamicBitset& valid);

  /// Marks `relation_id` dirty, growing the bitset on demand.
  void MarkRelationDirty(std::size_t relation_id);

  /// Verdict of one entry over the current (cache-fresh) database state.
  /// Thread-safe: touches only const state and the entry's compiled query.
  StatusOr<Verdict> EvaluateEntry(const Entry& entry,
                                  const DcSatOptions& options) const;

  BlockchainDatabase* db_;
  MonitorOptions options_;
  DcSatEngine engine_;
  std::vector<Entry> entries_;
  std::size_t live_count_ = 0;
  MutationListenerId listener_id_ = 0;
  /// Relations touched by mutations since the last completed poll.
  DynamicBitset dirty_relations_;
  /// Any mutation event at all since the last completed poll — the dirty
  /// signal for entries whose verdict can shift on unattributable churn
  /// (not proved monotone).
  bool mutated_since_poll_ = false;
  /// Engine validity bits as of the last poll, for cascade attribution.
  DynamicBitset prev_valid_;
  std::mutex poll_mutex_;  // Serializes concurrent Poll calls.
  std::shared_ptr<ThreadPool> pool_;
  PollStats poll_stats_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_MONITOR_H_
