#ifndef BCDB_CORE_MONITOR_H_
#define BCDB_CORE_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dcsat.h"
#include "query/ast.h"
#include "query/template.h"
#include "relational/tuple.h"
#include "util/bitset.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace bcdb {

/// Opaque typed handle to a standing constraint of a ConstraintMonitor.
/// Default-constructed handles are invalid; valid handles come only from
/// ConstraintMonitor::Add / Bind and stay stable for the monitor's lifetime —
/// Remove tombstones the slot, it is never reused for a later registration.
///
/// Handles carry the identity of the monitor that minted them: a handle
/// presented to a *different* monitor is rejected (and compares unequal to
/// that monitor's own handles) even when the slot indices collide, so the
/// classic mix-up — two monitors, both with an entry #3 — is caught instead
/// of silently reading the wrong constraint.
class MonitorHandle {
 public:
  /// An invalid handle (valid() == false).
  MonitorHandle() = default;

  bool valid() const { return index_ != kInvalid; }
  /// The underlying slot index; meaningful only when valid().
  std::size_t value() const { return index_; }

  friend bool operator==(MonitorHandle a, MonitorHandle b) {
    return a.index_ == b.index_ && a.owner_ == b.owner_;
  }
  friend bool operator!=(MonitorHandle a, MonitorHandle b) { return !(a == b); }

 private:
  friend class ConstraintMonitor;
  MonitorHandle(std::size_t index, std::uint64_t owner)
      : index_(index), owner_(owner) {}

  static constexpr std::size_t kInvalid = ~std::size_t{0};
  std::size_t index_ = kInvalid;
  std::uint64_t owner_ = 0;  // Minting monitor's uid; 0 = none.
};

/// Opaque typed handle to a registered constraint template (a *class* of
/// standing constraints). Same identity rules as MonitorHandle: owned by the
/// monitor that minted it, rejected elsewhere. Template classes are never
/// removed; the handle stays valid for the monitor's lifetime.
class TemplateHandle {
 public:
  TemplateHandle() = default;

  bool valid() const { return index_ != kInvalid; }
  std::size_t value() const { return index_; }

  friend bool operator==(TemplateHandle a, TemplateHandle b) {
    return a.index_ == b.index_ && a.owner_ == b.owner_;
  }
  friend bool operator!=(TemplateHandle a, TemplateHandle b) {
    return !(a == b);
  }

 private:
  friend class ConstraintMonitor;
  TemplateHandle(std::size_t index, std::uint64_t owner)
      : index_(index), owner_(owner) {}

  static constexpr std::size_t kInvalid = ~std::size_t{0};
  std::size_t index_ = kInvalid;
  std::uint64_t owner_ = 0;
};

struct MonitorOptions {
  /// Steady-state maintenance policy for the embedded DcSatEngine.
  SteadyStateOptions steady;
  /// Track which relations the database mutations touched (via the
  /// mutation-delta subscription) and have Poll skip constraints whose
  /// referenced relations are untouched — their verdicts cannot have
  /// changed. Constraints not proved monotone are exempt from the
  /// per-relation filter — their verdict may shift even when no referenced
  /// relation changes directly (a conflict in an unrelated relation can
  /// alter which tuple combinations are jointly possible) — and re-check
  /// on *any* mutation, skipping only fully quiescent polls.
  bool dirty_tracking = true;
  /// Evaluate every batch-admitted template class with one shared check per
  /// poll (DcSatEngine::CheckTemplateBatch) instead of one check per bound
  /// member: one compiled query, one component decomposition, one clique
  /// enumeration per class — per-member work shrinks to a hash lookup at the
  /// leaves, so per-poll cost tracks the number of *classes*, not members.
  /// Verdicts are identical to the per-member path (under unlimited budgets;
  /// a budget is shared per class, so *which* members come back kUndecided
  /// at expiry may differ). Polls that force an explicit algorithm
  /// (options.algorithm != kAuto) fall back to per-member evaluation, which
  /// honors the requested algorithm exactly.
  bool enable_template_batching = true;
  /// Default per-constraint check budget applied by Poll whenever the
  /// caller's DcSatOptions leaves its own budget unlimited. With both
  /// unlimited (the default), checks run to completion exactly as before;
  /// with limits set, a check that cannot finish yields Verdict::kUndecided
  /// instead of stalling the poll (DCSat is CoNP-complete, so adversarial
  /// mempool shapes otherwise make one constraint blow up every Poll).
  /// Entries the static analyzer places in a proven-PTIME class
  /// (kPtimeFdOnly / kPtimeIndOnly / kTriviallyUnsat) are exempt from this
  /// *default* — their checks are polynomial, budgeting them only risks
  /// spurious kUndecided verdicts — while a budget set explicitly on the
  /// Poll call still applies to every entry.
  BudgetLimits budget;
  /// Escalation: each consecutive undecided verdict multiplies the entry's
  /// next budget by this factor (a later poll retries with more room), up
  /// to max_budget_scale. 1 disables growth. A batched class runs under the
  /// largest participating member's scale.
  double budget_growth = 2.0;
  /// Ceiling on the cumulative escalation factor.
  double max_budget_scale = 64.0;
  /// Exponential backoff for repeat offenders: after the k-th consecutive
  /// undecided verdict the entry sits out min(2^(k-2), max_backoff_polls)
  /// polls (none after the first — the first retry is immediate, with a
  /// bigger budget) unless a mutation dirties it, which re-checks at once.
  std::size_t max_backoff_polls = 8;
};

/// Tracks standing denial constraints over one blockchain database and
/// reports verdict *transitions* as the database evolves (new pending
/// transactions, blocks applying, evictions) — the library form of a node
/// operator's dashboard: every bad outcome is, at any moment, either
/// already on the chain, still possible in some future, or impossible in
/// every future.
///
/// Registration is organized around *constraint templates*: a template is a
/// constraint with named constant placeholders (`$addr`, `$limit`, ...), and
/// each RegisterTemplate + Bind pair registers one ground member of that
/// class. Plain Add still accepts ground constraints and internally
/// canonicalizes them — constants are extracted into a binding and the
/// constant-free skeleton is hashed, so a million near-identical Adds
/// collapse onto one class. Poll exploits the grouping: a batch-admitted
/// class is decided by ONE shared check per poll regardless of how many
/// members are bound (see MonitorOptions::enable_template_batching).
///
/// Poll evaluates independent constraint classes concurrently over a
/// read-only snapshot: the engine's steady-state caches are refreshed once
/// (single-threaded, incrementally from the mutation-delta log when
/// possible), every standing query is compiled once per database version
/// (the compiled-query cache — steady-state polling stops paying
/// compilation), only *dirty* constraints — those whose referenced
/// relations intersect the transactions changed since the previous poll —
/// are re-evaluated, and only then is the per-class work fanned out.
///
/// Thread safety: every public method serializes on one internal lock
/// (LockRank::kMonitor), so concurrent Poll calls, registrations, and
/// accessor reads (verdict/label/poll_stats) are safe — an accessor racing
/// a Poll observes either the pre-poll or the committed post-poll state,
/// never a torn one. The fan-out inside Poll hands each worker an
/// immutable per-task view resolved under the lock, which the poll thread
/// keeps held until every worker has joined.
class ConstraintMonitor {
 public:
  enum class Verdict {
    kUnknown,     // Not yet polled (or the handle is invalid/removed).
    kHappened,    // q is true over the current state R itself.
    kPossible,    // q holds in some possible world (DCSat: not satisfied).
    kImpossible,  // q holds in no possible world (DCSat: satisfied).
    kUndecided,   // The check's budget expired before the answer settled;
                  // later polls retry with an escalating budget.
  };

  static const char* VerdictToString(Verdict verdict);

  struct Change {
    MonitorHandle handle;
    std::string label;
    Verdict before;
    Verdict after;
    /// Label of the template class the entry belongs to (the canonical
    /// skeleton for classes Add created implicitly) — a stable aggregation
    /// key: dashboards fold a million per-member changes into per-class
    /// rows without re-deriving the grouping.
    std::string template_label;
    /// Display form of the member's parameter binding, e.g. "(42, 'a1b2')";
    /// "()" for parameterless constraints.
    std::string binding_summary;
  };

  /// Cumulative counters for the steady-state behaviour of Poll.
  struct PollStats {
    std::size_t polls = 0;
    std::size_t compile_cache_hits = 0;    // Query reused across polls.
    std::size_t compile_cache_misses = 0;  // Compiled (version changed).
    std::size_t constraints_evaluated = 0;  // Entries re-checked successfully.
    std::size_t constraints_skipped = 0;    // Entries clean — verdict kept.
    std::size_t threads_used = 1;     // Last poll's worker-pool width.
    std::size_t constraints_parallel = 0;  // Entries evaluated on the pool.
    std::size_t undecided_verdicts = 0;  // Checks whose budget expired.
    std::size_t budget_escalations = 0;  // Retries granted a larger budget.
    std::size_t backoff_skips = 0;  // Undecided entries sat out (backoff).
    std::size_t classes_evaluated = 0;  // Shared batch checks run.
    std::size_t constraints_batched = 0;  // Entries decided by batch checks.
  };

  /// `db` must outlive the monitor. The monitor subscribes to the
  /// database's mutation events for the dirty-constraint bookkeeping and
  /// unsubscribes on destruction.
  explicit ConstraintMonitor(BlockchainDatabase* db,
                             MonitorOptions options = {});
  ~ConstraintMonitor();

  ConstraintMonitor(const ConstraintMonitor&) = delete;
  ConstraintMonitor& operator=(const ConstraintMonitor&) = delete;

  /// Registers a standing constraint; returns its handle. Registration-time
  /// rejection is the contract: the static analyzer runs here, and any
  /// error-severity diagnostic (unknown relation, arity mismatch, unsafe
  /// variable, ...) fails the Add with the full diagnostic summary — a
  /// malformed constraint never reaches Poll. The accepted entry keeps its
  /// AnalysisReport (see analysis()) and uses the inferred footprint,
  /// monotonicity, and tractability class for dirty tracking and dispatch.
  ///
  /// Internally the constraint is canonicalized: every constant is
  /// extracted into a parameter binding and the constant-free skeleton
  /// (plus IND-closed footprint) keys a template class, so structurally
  /// identical Adds share one class — and, when the class is batch
  /// admitted, one shared check per poll.
  StatusOr<MonitorHandle> Add(std::string label, DenialConstraint q);

  /// Convenience overload: parses `query_text` first, so callers with
  /// textual constraints skip the parse boilerplate.
  StatusOr<MonitorHandle> Add(std::string label, std::string_view query_text);

  /// Registers a constraint template — a constraint with `$name` constant
  /// placeholders — as a new class. The template analyzer runs here:
  /// binding-independent errors (unknown relation, arity mismatch, unsafe
  /// variable, ...) fail the registration, and the class is admitted for
  /// batch evaluation when the analysis proves it projectable (Boolean,
  /// non-aggregate, positive, every parameter in some positive atom).
  /// Each call creates a distinct class, even for an identical template —
  /// the label names the class in Change records and introspection.
  StatusOr<TemplateHandle> RegisterTemplate(std::string label,
                                            ConstraintTemplate tmpl);

  /// Convenience overload: parses `template_text` (placeholder syntax
  /// `$name`) first.
  StatusOr<TemplateHandle> RegisterTemplate(std::string label,
                                            std::string_view template_text);

  /// Binds one member of a template class: `binding[i]` substitutes the
  /// template's `param_names()[i]`. The member behaves exactly like an Add
  /// of the instantiated constraint — own handle, own verdict, own Change
  /// records — but is evaluated through the class's shared batch check when
  /// the class is admitted. Fails with InvalidArgument on a handle from
  /// another monitor, a binding of the wrong arity, or binding values whose
  /// types the instantiated constraint would be rejected for.
  StatusOr<MonitorHandle> Bind(TemplateHandle tmpl,
                               const std::vector<Value>& binding);

  /// Unregisters a standing constraint (an Add entry or a bound template
  /// member — removing one member leaves its class and siblings untouched).
  /// The slot is tombstoned, never reused: other handles stay valid, size()
  /// drops by one, and the removed handle reports kUnknown / an empty label
  /// from now on. Fails with InvalidArgument when the handle is invalid,
  /// out of range, or minted by a different monitor, and with NotFound when
  /// the entry was already removed.
  Status Remove(MonitorHandle handle);

  /// Number of live (added and not removed) constraints.
  std::size_t size() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return live_count_;
  }

  /// Number of template classes (explicitly registered plus those Add
  /// created by canonicalization). Classes are never removed.
  std::size_t num_classes() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return classes_.size();
  }

  /// Verdict of `handle` as of the last Poll; kUnknown for invalid,
  /// out-of-range, removed, or never-polled handles. Safe to call while
  /// another thread polls: the snapshot is taken under the monitor lock, so
  /// a caller sees either the pre-poll or the committed post-poll verdict,
  /// never a torn intermediate.
  Verdict verdict(MonitorHandle handle) const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const Entry* entry = Find(handle);
    return entry != nullptr ? entry->verdict : Verdict::kUnknown;
  }

  /// Label of `handle`; the empty string for invalid, out-of-range, or
  /// removed handles. Bound members are labeled
  /// "<template label>[<binding summary>]". Returned by value: a reference
  /// into the entry table would dangle the moment a concurrent Remove
  /// tombstones the slot.
  std::string label(MonitorHandle handle) const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const Entry* entry = Find(handle);
    return entry != nullptr ? entry->label : std::string();
  }

  /// The static analysis the entry was admitted under (classification,
  /// footprint, diagnostics); nullptr for invalid or removed handles.
  /// Add entries report their own grounded analysis; batch-evaluated
  /// template members report the class-level analysis (binding-independent
  /// by construction). The pointer borrows from the monitor and is valid
  /// only until the next registration or removal (the tables may grow) —
  /// the same single-threaded introspection contract as before; do not
  /// cache it across mutating calls.
  const AnalysisReport* analysis(MonitorHandle handle) const
      BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const Entry* entry = Find(handle);
    if (entry == nullptr) return nullptr;
    if (entry->report.has_value()) return &*entry->report;
    return &classes_[entry->class_id].report;
  }

  /// Label of a template class; empty for foreign/invalid handles.
  std::string template_label(TemplateHandle tmpl) const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const TemplateClass* cls = FindClass(tmpl);
    return cls != nullptr ? cls->label : std::string();
  }

  /// The class-level analysis a template was admitted under; nullptr for
  /// foreign/invalid handles. Borrows like analysis(): valid until the next
  /// registration.
  const AnalysisReport* template_analysis(TemplateHandle tmpl) const
      BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const TemplateClass* cls = FindClass(tmpl);
    return cls != nullptr ? &cls->report : nullptr;
  }

  /// Whether the class is admitted for shared batch evaluation.
  bool template_batchable(TemplateHandle tmpl) const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const TemplateClass* cls = FindClass(tmpl);
    return cls != nullptr && cls->batchable;
  }

  /// The class's canonicalization key (α-renamed skeleton + IND-closed
  /// footprint) — equal keys mean Add would have merged the classes.
  std::string class_key(TemplateHandle tmpl) const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const TemplateClass* cls = FindClass(tmpl);
    return cls != nullptr ? cls->key : std::string();
  }

  /// Re-evaluates the dirty standing constraints against the current
  /// database state and returns the transitions since the previous poll
  /// (first poll reports every constraint as a transition from kUnknown).
  /// `options.num_threads` picks the cross-class fan-out width
  /// (0 = hardware concurrency, 1 = serial); each class's own check runs
  /// serially — with many standing classes, class-level parallelism
  /// subsumes component-level parallelism.
  StatusOr<std::vector<Change>> Poll(const DcSatOptions& options = {});

  /// Snapshot of the cumulative poll counters, taken under the monitor
  /// lock. Returned by value: Poll mutates the counters in place, so a
  /// reference would let a caller race a concurrent poll field by field
  /// (the pre-snapshot bug this accessor replaces — counters could be read
  /// half from poll N, half from poll N+1, and tsan flagged the loads).
  PollStats poll_stats() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return poll_stats_;
  }
  /// The embedded engine, for steady-state cache introspection. Not
  /// synchronized: read it only while no Poll/Add/Bind is in flight (the
  /// monitor drives every engine call under its own lock, but this escape
  /// hatch hands out the engine without one).
  const DcSatEngine& engine() const { return engine_; }

 private:
  /// One template class: the unit of batch evaluation, dirty tracking, and
  /// compiled-query caching. Add-created classes are deduplicated by `key`;
  /// RegisterTemplate always creates a fresh class.
  struct TemplateClass {
    std::string label;
    ConstraintTemplate tmpl;
    /// Canonical skeleton + IND-closed footprint: the isomorphism key.
    std::string key;
    /// Class-level analysis: the generalized query's report for batchable
    /// classes (monotonicity, connectivity, tractability, and footprint are
    /// binding-independent facts), a dummy-typed instance's otherwise.
    AnalysisReport report;
    /// Admitted for the shared batch evaluator.
    bool batchable = false;
    /// The analyzer's IND-closed footprint — the dirty-filter key. A
    /// mutation in R can change the possible worlds of an S-tuple when
    /// S[x] ⊆ R[a] ties them together, so members over S must re-evaluate
    /// on R churn even though the constraint never mentions R.
    std::vector<std::size_t> relation_ids;
    /// Not proved monotone (class-level — monotonicity is structural, so
    /// it holds for every binding): never skipped by the dirty filter.
    bool always_dirty = false;
    /// Entry slots ever bound to this class (including removed ones).
    std::vector<std::size_t> members;
    std::size_t live_members = 0;
    // Batch machinery (batchable classes only): the generalized query —
    // parameters projected into head variables — its template-level
    // equality skeleton, and the per-version compiled form.
    DenialConstraint generalized;
    std::vector<EqualityConstraint> template_equalities;
    std::optional<CompiledQuery> compiled;
    std::uint64_t compiled_version = ~std::uint64_t{0};
    // Batch-poll cache: the live members' bindings, their entry slots, and
    // the dedup index CheckTemplateBatch consumes. Membership changes (Bind
    // / Remove) bump members_version; the cache is rebuilt lazily on the
    // next poll that selects the full live membership — the steady state —
    // making per-poll batch setup O(1) instead of re-copying and re-hashing
    // every binding. Polls that select a strict subset (members backing
    // off) bypass the cache and build their binding list ad hoc.
    std::uint64_t members_version = 0;
    std::uint64_t cached_members_version = ~std::uint64_t{0};
    std::vector<Tuple> cached_bindings;
    std::vector<std::size_t> cached_slots;  // Entry slot per cached binding.
    TemplateBindingIndex cached_index;
  };

  /// One standing constraint: a (class, binding) pair.
  struct Entry {
    std::size_t class_id = 0;
    std::string label;
    /// The member's parameter values (interned, template order); empty for
    /// parameterless constraints.
    Tuple binding;
    Verdict verdict = Verdict::kUnknown;
    bool removed = false;
    /// Budget escalation state (see MonitorOptions): consecutive undecided
    /// verdicts, the cumulative budget multiplier the next check gets, and
    /// how many polls the entry still sits out before being retried.
    std::size_t undecided_streak = 0;
    double budget_scale = 1.0;
    std::size_t backoff_remaining = 0;
    // Grounded machinery, used when the entry is evaluated individually
    // (non-batchable class, batching disabled, or an explicit-algorithm
    // poll): the instantiated constraint, its own analysis, and the
    // per-version compiled form. Materialized eagerly by Add and by Bind
    // into a non-batched class, lazily otherwise.
    std::optional<DenialConstraint> q;
    std::optional<AnalysisReport> report;
    std::optional<CompiledQuery> compiled;
    std::uint64_t compiled_version = ~std::uint64_t{0};
  };

  /// The live entry behind `handle`, or nullptr. Handles minted by a
  /// different monitor never resolve, whatever their index.
  const Entry* Find(MonitorHandle handle) const BCDB_REQUIRES(mutex_) {
    if (!handle.valid() || handle.owner_ != uid_ ||
        handle.value() >= entries_.size()) {
      return nullptr;
    }
    const Entry& entry = entries_[handle.value()];
    return entry.removed ? nullptr : &entry;
  }

  /// The class behind `tmpl`, or nullptr (foreign/invalid handles).
  const TemplateClass* FindClass(TemplateHandle tmpl) const
      BCDB_REQUIRES(mutex_) {
    if (!tmpl.valid() || tmpl.owner_ != uid_ ||
        tmpl.value() >= classes_.size()) {
      return nullptr;
    }
    return &classes_[tmpl.value()];
  }

  /// Builds a TemplateClass from an analyzed template; returns its id.
  std::size_t CreateClass(std::string label, ConstraintTemplate tmpl,
                          TemplateAnalysis analysis) BCDB_REQUIRES(mutex_);

  /// Appends a member entry of `class_id`; returns its handle.
  MonitorHandle AppendEntry(Entry entry) BCDB_REQUIRES(mutex_);

  /// Materializes the grounded machinery (instantiated constraint + its
  /// analysis) for an entry that so far only existed as a class binding.
  Status GroundEntry(Entry& entry) BCDB_REQUIRES(mutex_);

  /// "(v0, v1, ...)" display form of a binding tuple.
  static std::string BindingSummary(const Tuple& binding);

  /// Whether any of the class's footprint relations was dirtied.
  bool ClassIsDirty(const TemplateClass& cls) const BCDB_REQUIRES(mutex_);

  /// Folds the relations of transactions whose validity changed since the
  /// previous poll into dirty_relations_ (covers cascade invalidations the
  /// mutation events alone cannot attribute), then snapshots the bits.
  void AbsorbValidityDiff(const DynamicBitset& valid) BCDB_REQUIRES(mutex_);

  /// Marks `relation_id` dirty, growing the bitset on demand.
  void MarkRelationDirty(std::size_t relation_id) BCDB_REQUIRES(mutex_);

  /// Verdict of one entry over the current (cache-fresh) database state.
  /// Thread-safe: touches only const state and the entry's compiled query.
  /// Requires grounded machinery (see GroundEntry).
  StatusOr<Verdict> EvaluateEntry(const Entry& entry,
                                  const DcSatOptions& options) const;

  BlockchainDatabase* db_;
  MonitorOptions options_;
  /// Externally synchronized by mutex_: the monitor holds its lock across
  /// every engine call (Poll, Add's Analyze, GroundEntry). Not annotated
  /// because the engine() introspection accessor intentionally escapes it.
  DcSatEngine engine_;
  /// This monitor's process-unique identity, stamped into every handle.
  std::uint64_t uid_;
  /// The monitor's one big lock: registration tables, verdicts, dirty
  /// bookkeeping, and the poll machinery all move together (a poll reads
  /// the tables end to end), so finer locks would buy contention windows,
  /// not parallelism — the fan-out inside Poll is where the parallelism is.
  mutable Mutex mutex_{LockRank::kMonitor};
  std::vector<TemplateClass> classes_ BCDB_GUARDED_BY(mutex_);
  /// Canonicalization key -> class id, for the classes Add creates. Classes
  /// from RegisterTemplate are intentionally absent: each registration is
  /// its own class, owned by its label.
  std::map<std::string, std::size_t> class_by_key_ BCDB_GUARDED_BY(mutex_);
  std::vector<Entry> entries_ BCDB_GUARDED_BY(mutex_);
  std::size_t live_count_ BCDB_GUARDED_BY(mutex_) = 0;
  MutationListenerId listener_id_ = 0;
  /// Relations touched by mutations since the last completed poll.
  DynamicBitset dirty_relations_ BCDB_GUARDED_BY(mutex_);
  /// Any mutation event at all since the last completed poll — the dirty
  /// signal for entries whose verdict can shift on unattributable churn
  /// (not proved monotone).
  bool mutated_since_poll_ BCDB_GUARDED_BY(mutex_) = false;
  /// Engine validity bits as of the last poll, for cascade attribution.
  DynamicBitset prev_valid_ BCDB_GUARDED_BY(mutex_);
  std::shared_ptr<ThreadPool> pool_ BCDB_GUARDED_BY(mutex_);
  PollStats poll_stats_ BCDB_GUARDED_BY(mutex_);
};

}  // namespace bcdb

#endif  // BCDB_CORE_MONITOR_H_
