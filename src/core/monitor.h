#ifndef BCDB_CORE_MONITOR_H_
#define BCDB_CORE_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/dcsat.h"
#include "query/ast.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace bcdb {

/// Tracks standing denial constraints over one blockchain database and
/// reports verdict *transitions* as the database evolves (new pending
/// transactions, blocks applying, evictions) — the library form of a node
/// operator's dashboard: every bad outcome is, at any moment, either
/// already on the chain, still possible in some future, or impossible in
/// every future.
///
/// Poll evaluates independent constraints concurrently over a read-only
/// snapshot: the engine's steady-state caches are refreshed once
/// (single-threaded), every standing query is compiled once per database
/// version (the compiled-query cache — steady-state polling stops paying
/// compilation), and only then is the per-constraint work fanned out.
/// Concurrent Poll calls serialize on an internal mutex; mutating the
/// database concurrently with Poll is not supported.
class ConstraintMonitor {
 public:
  enum class Verdict {
    kUnknown,     // Not yet polled.
    kHappened,    // q is true over the current state R itself.
    kPossible,    // q holds in some possible world (DCSat: not satisfied).
    kImpossible,  // q holds in no possible world (DCSat: satisfied).
  };

  static const char* VerdictToString(Verdict verdict);

  struct Change {
    std::size_t handle;
    std::string label;
    Verdict before;
    Verdict after;
  };

  /// Cumulative counters for the steady-state behaviour of Poll.
  struct PollStats {
    std::size_t polls = 0;
    std::size_t compile_cache_hits = 0;    // Query reused across polls.
    std::size_t compile_cache_misses = 0;  // Compiled (version changed).
    std::size_t threads_used = 1;          // Last poll's fan-out width.
    std::size_t constraints_parallel = 0;  // Entries evaluated on the pool.
  };

  /// `db` must outlive the monitor.
  explicit ConstraintMonitor(BlockchainDatabase* db)
      : db_(db), engine_(db) {}

  /// Registers a standing constraint; returns its handle. The constraint is
  /// validated by compilation against the database schema.
  StatusOr<std::size_t> Add(std::string label, DenialConstraint q);

  std::size_t size() const { return entries_.size(); }
  Verdict verdict(std::size_t handle) const {
    return entries_[handle].verdict;
  }
  const std::string& label(std::size_t handle) const {
    return entries_[handle].label;
  }

  /// Re-evaluates every standing constraint against the current database
  /// state and returns the transitions since the previous poll (first poll
  /// reports every constraint as a transition from kUnknown).
  /// `options.num_threads` picks the cross-constraint fan-out width
  /// (0 = hardware concurrency, 1 = serial); each constraint's own check
  /// runs serially — with many standing constraints, constraint-level
  /// parallelism subsumes component-level parallelism.
  StatusOr<std::vector<Change>> Poll(const DcSatOptions& options = {});

  const PollStats& poll_stats() const { return poll_stats_; }

 private:
  struct Entry {
    std::string label;
    DenialConstraint q;
    Verdict verdict = Verdict::kUnknown;
    // Compiled-query cache, keyed on the database version at compile time.
    std::optional<CompiledQuery> compiled;
    std::uint64_t compiled_version = ~std::uint64_t{0};
  };

  /// Verdict of one entry over the current (cache-fresh) database state.
  /// Thread-safe: touches only const state and the entry's compiled query.
  StatusOr<Verdict> EvaluateEntry(const Entry& entry,
                                  const DcSatOptions& options) const;

  BlockchainDatabase* db_;
  DcSatEngine engine_;
  std::vector<Entry> entries_;
  std::mutex poll_mutex_;  // Serializes concurrent Poll calls.
  std::shared_ptr<ThreadPool> pool_;
  PollStats poll_stats_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_MONITOR_H_
