#ifndef BCDB_CORE_MONITOR_H_
#define BCDB_CORE_MONITOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dcsat.h"
#include "query/ast.h"
#include "util/status.h"

namespace bcdb {

/// Tracks standing denial constraints over one blockchain database and
/// reports verdict *transitions* as the database evolves (new pending
/// transactions, blocks applying, evictions) — the library form of a node
/// operator's dashboard: every bad outcome is, at any moment, either
/// already on the chain, still possible in some future, or impossible in
/// every future.
class ConstraintMonitor {
 public:
  enum class Verdict {
    kUnknown,     // Not yet polled.
    kHappened,    // q is true over the current state R itself.
    kPossible,    // q holds in some possible world (DCSat: not satisfied).
    kImpossible,  // q holds in no possible world (DCSat: satisfied).
  };

  static const char* VerdictToString(Verdict verdict);

  struct Change {
    std::size_t handle;
    std::string label;
    Verdict before;
    Verdict after;
  };

  /// `db` must outlive the monitor.
  explicit ConstraintMonitor(BlockchainDatabase* db)
      : db_(db), engine_(db) {}

  /// Registers a standing constraint; returns its handle. The constraint is
  /// validated by compilation against the database schema.
  StatusOr<std::size_t> Add(std::string label, DenialConstraint q);

  std::size_t size() const { return entries_.size(); }
  Verdict verdict(std::size_t handle) const {
    return entries_[handle].verdict;
  }
  const std::string& label(std::size_t handle) const {
    return entries_[handle].label;
  }

  /// Re-evaluates every standing constraint against the current database
  /// state and returns the transitions since the previous poll (first poll
  /// reports every constraint as a transition from kUnknown).
  StatusOr<std::vector<Change>> Poll(const DcSatOptions& options = {});

 private:
  struct Entry {
    std::string label;
    DenialConstraint q;
    Verdict verdict = Verdict::kUnknown;
  };

  BlockchainDatabase* db_;
  DcSatEngine engine_;
  std::vector<Entry> entries_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_MONITOR_H_
