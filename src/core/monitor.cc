#include "core/monitor.h"

#include <algorithm>
#include <future>

#include "query/analysis.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/union_find.h"

namespace bcdb {

const char* ConstraintMonitor::VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kHappened:
      return "happened";
    case Verdict::kPossible:
      return "possible";
    case Verdict::kImpossible:
      return "impossible";
    case Verdict::kUndecided:
      return "undecided";
  }
  return "?";
}

ConstraintMonitor::ConstraintMonitor(BlockchainDatabase* db,
                                     MonitorOptions options)
    : db_(db), options_(options), engine_(db, options.steady) {
  listener_id_ = db_->AddMutationListener([this](const MutationEvent& event) {
    // Any event at all (even one with no attributable relations) wakes the
    // always-dirty entries; per-relation bits drive the precise filter.
    mutated_since_poll_ = true;
    for (std::size_t relation_id : event.relation_ids) {
      MarkRelationDirty(relation_id);
    }
  });
}

ConstraintMonitor::~ConstraintMonitor() {
  db_->RemoveMutationListener(listener_id_);
}

void ConstraintMonitor::MarkRelationDirty(std::size_t relation_id) {
  if (relation_id >= dirty_relations_.size()) {
    dirty_relations_.Resize(relation_id + 1);
  }
  dirty_relations_.Set(relation_id);
}

StatusOr<MonitorHandle> ConstraintMonitor::Add(std::string label,
                                               DenialConstraint q) {
  // Registration-time rejection is the contract: the static analyzer runs
  // here, so a constraint Poll could never evaluate (unknown relation,
  // arity mismatch, unsafe variable, ...) fails the Add with every
  // diagnostic attached instead of surfacing at first poll.
  AnalysisReport report = engine_.Analyze(q);
  if (!report.ok()) {
    return Status::InvalidArgument("constraint '" + label +
                                   "' rejected by static analysis: " +
                                   report.ErrorSummary());
  }
  Entry entry;
  entry.label = std::move(label);
  // The dirty filter keys on the analyzer's IND-closed footprint: the
  // relations q references, closed under IND coupling — a mutation in R can
  // change the possible worlds of an S-tuple when S[x] ⊆ R[a] ties them
  // together, so q-over-S must re-evaluate on R churn even though q never
  // mentions R.
  entry.relation_ids = report.footprint;
  entry.always_dirty = !report.monotone;
  entry.report = std::move(report);
  entry.q = std::move(q);
  entries_.push_back(std::move(entry));
  ++live_count_;
  return MonitorHandle(entries_.size() - 1);
}

StatusOr<MonitorHandle> ConstraintMonitor::Add(std::string label,
                                               std::string_view query_text) {
  StatusOr<DenialConstraint> q = ParseDenialConstraint(query_text);
  if (!q.ok()) return q.status();
  return Add(std::move(label), *std::move(q));
}

bool ConstraintMonitor::Remove(MonitorHandle handle) {
  if (Find(handle) == nullptr) return false;
  Entry& entry = entries_[handle.value()];
  entry.removed = true;
  entry.verdict = Verdict::kUnknown;
  entry.compiled.reset();
  --live_count_;
  return true;
}

bool ConstraintMonitor::IsDirty(const Entry& entry) const {
  if (!options_.dirty_tracking) return true;
  if (entry.verdict == Verdict::kUnknown) return true;  // Never decided.
  // Not proved monotone: any mutation anywhere may flip the verdict, but a
  // fully quiescent database (no events since the last completed poll)
  // cannot change any verdict — not even a non-monotone one.
  if (entry.always_dirty) return mutated_since_poll_;
  for (std::size_t relation_id : entry.relation_ids) {
    if (relation_id < dirty_relations_.size() &&
        dirty_relations_.Test(relation_id)) {
      return true;
    }
  }
  return false;
}

void ConstraintMonitor::AbsorbValidityDiff(const DynamicBitset& valid) {
  // A transaction whose possible-world membership flipped dirties its
  // relations even when no mutation event names it — the cascade case:
  // applying T invalidates every still-pending FD-conflictor of T, whose
  // tuples may live in relations the apply event never touched.
  for (std::size_t id = 0; id < valid.size(); ++id) {
    const bool before = id < prev_valid_.size() && prev_valid_.Test(id);
    if (before == valid.Test(id)) continue;
    for (std::size_t relation_id : db_->PendingRelations(id)) {
      MarkRelationDirty(relation_id);
    }
  }
  prev_valid_ = valid;
}

StatusOr<ConstraintMonitor::Verdict> ConstraintMonitor::EvaluateEntry(
    const Entry& entry, const DcSatOptions& options) const {
  // Happened? Evaluate over the current state only.
  if (entry.compiled->Evaluate(db_->BaseView())) return Verdict::kHappened;
  StatusOr<DcSatResult> result =
      engine_.CheckPrepared(entry.q, *entry.compiled, entry.report, options);
  if (!result.ok()) return result.status();
  if (!result->decided) return Verdict::kUndecided;
  return result->satisfied ? Verdict::kImpossible : Verdict::kPossible;
}

StatusOr<std::vector<ConstraintMonitor::Change>> ConstraintMonitor::Poll(
    const DcSatOptions& options) {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  ++poll_stats_.polls;

  // Phase 1 (single-threaded): refresh the engine's steady-state caches
  // (incrementally when the mutation-delta path is eligible), settle the
  // dirty-relation set, and compile the standing queries that will run.
  // Compilation is what lazily builds hash indexes in the storage layer, so
  // doing it all here leaves the parallel phase below strictly read-only.
  const FdGraph& fd_graph = engine_.PrepareSteadyState();
  if (options_.dirty_tracking) AbsorbValidityDiff(fd_graph.valid_nodes());

  // The caller's explicit budget wins over the monitor's default and
  // applies to every entry; the monitor *default* only covers entries the
  // analyzer could not place in a proven-PTIME class — budgeting a
  // polynomial check risks nothing but spurious kUndecided verdicts. Each
  // entry's check then runs under its budget scaled by the escalation
  // factor (undecided verdicts earn a larger retry budget).
  auto base_budget_for = [&](const Entry& entry) -> BudgetLimits {
    if (!options.budget.unlimited()) return options.budget;
    switch (entry.report.tractability) {
      case TractabilityClass::kTriviallyUnsat:
      case TractabilityClass::kPtimeFdOnly:
      case TractabilityClass::kPtimeIndOnly:
        return BudgetLimits{};
      case TractabilityClass::kTriviallyViolated:
      case TractabilityClass::kCoNpMixed:
        break;
    }
    return options_.budget;
  };

  std::vector<std::size_t> to_evaluate;
  for (std::size_t handle = 0; handle < entries_.size(); ++handle) {
    Entry& entry = entries_[handle];
    if (entry.removed) continue;
    if (entry.verdict == Verdict::kUndecided) {
      // Unfinished business: retried even with no mutations — unless it is
      // backing off, and then only while the instance has not changed under
      // it (a genuinely dirty entry re-checks immediately).
      if (entry.backoff_remaining > 0 && !IsDirty(entry)) {
        --entry.backoff_remaining;
        ++poll_stats_.backoff_skips;
        continue;
      }
      to_evaluate.push_back(handle);
    } else if (IsDirty(entry)) {
      to_evaluate.push_back(handle);
    } else {
      ++poll_stats_.constraints_skipped;
    }
  }

  const std::uint64_t version = db_->version();
  for (std::size_t handle : to_evaluate) {
    Entry& entry = entries_[handle];
    if (entry.compiled.has_value() && entry.compiled_version == version) {
      ++poll_stats_.compile_cache_hits;
      continue;
    }
    StatusOr<CompiledQuery> compiled =
        CompiledQuery::Compile(entry.q, &db_->database());
    if (!compiled.ok()) return compiled.status();
    entry.compiled = std::move(*compiled);
    entry.compiled_version = version;
    ++poll_stats_.compile_cache_misses;
  }

  // Per-entry check options: serial (num_threads = 1 — with several
  // standing constraints the constraint-level fan-out already saturates
  // the workers, and the engine's component pool is not re-entrant), with
  // the entry's escalated budget.
  std::vector<DcSatOptions> entry_options(to_evaluate.size(), options);
  for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
    entry_options[i].num_threads = 1;
    const Entry& entry = entries_[to_evaluate[i]];
    const BudgetLimits base_budget = base_budget_for(entry);
    entry_options[i].budget = entry.budget_scale > 1.0
                                  ? base_budget.Scaled(entry.budget_scale)
                                  : base_budget;
  }

  // Phase 2: evaluate every dirty constraint over the shared read-only
  // snapshot. The pool is sized once to the requested width and reused
  // across polls — only the number of submitted tasks tracks the dirty
  // count, which fluctuates every poll in steady state.
  const std::size_t pool_width =
      ThreadPool::EffectiveThreads(options.num_threads);
  const std::size_t num_workers =
      to_evaluate.empty() ? 1 : std::min(pool_width, to_evaluate.size());
  std::vector<Verdict> verdicts(to_evaluate.size(), Verdict::kUnknown);
  std::vector<Status> statuses(to_evaluate.size());
  if (num_workers > 1) {
    if (pool_ == nullptr || pool_->num_threads() != pool_width) {
      pool_ = std::make_shared<ThreadPool>(pool_width);
    }
    std::vector<std::future<void>> futures;
    futures.reserve(to_evaluate.size());
    for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
      futures.push_back(pool_->Submit([this, i, &to_evaluate, &entry_options,
                                       &verdicts, &statuses] {
        StatusOr<Verdict> verdict =
            EvaluateEntry(entries_[to_evaluate[i]], entry_options[i]);
        if (verdict.ok()) {
          verdicts[i] = *verdict;
        } else {
          statuses[i] = verdict.status();
        }
      }));
    }
    // Join every future before an exception can propagate: rethrowing from
    // the first get() while sibling tasks still reference the stack-local
    // verdicts/statuses vectors would be use-after-scope UB.
    std::exception_ptr first_error;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
    poll_stats_.threads_used = pool_->num_threads();
    poll_stats_.constraints_parallel += to_evaluate.size();
  } else {
    for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
      StatusOr<Verdict> verdict =
          EvaluateEntry(entries_[to_evaluate[i]], entry_options[i]);
      if (verdict.ok()) {
        verdicts[i] = *verdict;
      } else {
        statuses[i] = verdict.status();
      }
    }
    poll_stats_.threads_used = 1;
  }

  // Phase 3 (single-threaded): every status is checked before any verdict
  // commits. Committing the leading entries and then erroring out would
  // swallow their transitions forever — the next poll sees the verdict
  // already updated and reports no Change. On error nothing commits and
  // the dirty set is retained, so the next poll re-runs everything.
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  std::vector<Change> changes;
  for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
    Entry& entry = entries_[to_evaluate[i]];
    ++poll_stats_.constraints_evaluated;
    const Verdict verdict = verdicts[i];
    if (verdict == Verdict::kUndecided) {
      ++poll_stats_.undecided_verdicts;
      ++entry.undecided_streak;
      if (options_.budget_growth > 1.0 &&
          entry.budget_scale < options_.max_budget_scale) {
        entry.budget_scale = std::min(
            entry.budget_scale * options_.budget_growth,
            options_.max_budget_scale);
        ++poll_stats_.budget_escalations;
      }
      // First retry is immediate (with the larger budget); repeat
      // offenders back off exponentially, capped.
      entry.backoff_remaining =
          entry.undecided_streak >= 2
              ? std::min<std::size_t>(
                    std::size_t{1}
                        << std::min<std::size_t>(entry.undecided_streak - 2,
                                                 20),
                    options_.max_backoff_polls)
              : 0;
    } else {
      entry.undecided_streak = 0;
      entry.budget_scale = 1.0;
      entry.backoff_remaining = 0;
    }
    if (verdict != entry.verdict) {
      changes.push_back(Change{MonitorHandle(to_evaluate[i]), entry.label,
                               entry.verdict, verdict});
      entry.verdict = verdict;
    }
  }
  if (options_.dirty_tracking) {
    dirty_relations_.Clear();
    mutated_since_poll_ = false;
  }
  return changes;
}

}  // namespace bcdb
