#include "core/monitor.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <utility>

#include "query/analysis.h"
#include "query/compiled_query.h"
#include "query/parser.h"
#include "util/union_find.h"

namespace bcdb {

namespace {

/// Process-wide monitor identity source. Handles are stamped with their
/// minting monitor's uid so a handle index colliding across monitors can
/// never resolve against the wrong one.
std::atomic<std::uint64_t> g_monitor_uid BCDB_LOCK_FREE(
    "relaxed fetch_add id mint; uniqueness is all that matters") {1};

ConstraintMonitor::Verdict FromOutcome(TemplateBatchOutcome outcome) {
  switch (outcome) {
    case TemplateBatchOutcome::kHappened:
      return ConstraintMonitor::Verdict::kHappened;
    case TemplateBatchOutcome::kPossible:
      return ConstraintMonitor::Verdict::kPossible;
    case TemplateBatchOutcome::kImpossible:
      return ConstraintMonitor::Verdict::kImpossible;
    case TemplateBatchOutcome::kUndecided:
      return ConstraintMonitor::Verdict::kUndecided;
  }
  return ConstraintMonitor::Verdict::kUndecided;
}

}  // namespace

const char* ConstraintMonitor::VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kHappened:
      return "happened";
    case Verdict::kPossible:
      return "possible";
    case Verdict::kImpossible:
      return "impossible";
    case Verdict::kUndecided:
      return "undecided";
  }
  return "?";
}

ConstraintMonitor::ConstraintMonitor(BlockchainDatabase* db,
                                     MonitorOptions options)
    : db_(db),
      options_(options),
      engine_(db, options.steady),
      uid_(g_monitor_uid.fetch_add(1, std::memory_order_relaxed)) {
  listener_id_ = db_->AddMutationListener([this](const MutationEvent& event) {
    // Any event at all (even one with no attributable relations) wakes the
    // always-dirty entries; per-relation bits drive the precise filter.
    // Publish invokes listeners with no lock held, so taking the monitor
    // lock here is hierarchy-clean from any mutating thread.
    MutexLock lock(mutex_);
    mutated_since_poll_ = true;
    for (std::size_t relation_id : event.relation_ids) {
      MarkRelationDirty(relation_id);
    }
  });
}

ConstraintMonitor::~ConstraintMonitor() {
  db_->RemoveMutationListener(listener_id_);
}

void ConstraintMonitor::MarkRelationDirty(std::size_t relation_id) {
  if (relation_id >= dirty_relations_.size()) {
    dirty_relations_.Resize(relation_id + 1);
  }
  dirty_relations_.Set(relation_id);
}

std::string ConstraintMonitor::BindingSummary(const Tuple& binding) {
  return binding.ToString();
}

std::size_t ConstraintMonitor::CreateClass(std::string label,
                                           ConstraintTemplate tmpl,
                                           TemplateAnalysis analysis) {
  TemplateClass cls;
  cls.label = std::move(label);
  cls.key = std::move(analysis.class_key);
  // The dirty filter keys on the analyzer's IND-closed footprint: the
  // relations the constraint references, closed under IND coupling — a
  // mutation in R can change the possible worlds of an S-tuple when
  // S[x] ⊆ R[a] ties them together, so members over S must re-evaluate on
  // R churn even though the constraint never mentions R.
  cls.relation_ids = analysis.report.footprint;
  cls.always_dirty = !analysis.report.monotone;
  cls.batchable = analysis.batchable;
  cls.report = std::move(analysis.report);
  if (cls.batchable) {
    cls.generalized = tmpl.Generalized();
    StatusOr<std::vector<EqualityConstraint>> equalities =
        TemplateEqualitiesFromQuery(cls.generalized, db_->database().catalog());
    if (equalities.ok()) {
      cls.template_equalities = std::move(*equalities);
    } else {
      // Admission should have caught anything that trips equality
      // derivation; fall back to per-member evaluation rather than fail.
      cls.batchable = false;
    }
  }
  cls.tmpl = std::move(tmpl);
  classes_.push_back(std::move(cls));
  return classes_.size() - 1;
}

MonitorHandle ConstraintMonitor::AppendEntry(Entry entry) {
  const std::size_t slot = entries_.size();
  TemplateClass& cls = classes_[entry.class_id];
  cls.members.push_back(slot);
  ++cls.live_members;
  ++cls.members_version;
  entries_.push_back(std::move(entry));
  ++live_count_;
  return MonitorHandle(slot, uid_);
}

StatusOr<MonitorHandle> ConstraintMonitor::Add(std::string label,
                                               DenialConstraint q) {
  MutexLock lock(mutex_);
  // Registration-time rejection is the contract: the static analyzer runs
  // here, so a constraint Poll could never evaluate (unknown relation,
  // arity mismatch, unsafe variable, ...) fails the Add with every
  // diagnostic attached instead of surfacing at first poll.
  AnalysisReport report = engine_.Analyze(q);
  if (!report.ok()) {
    return Status::InvalidArgument("constraint '" + label +
                                   "' rejected by static analysis: " +
                                   report.ErrorSummary());
  }

  // Canonicalize into (template, binding): constants become parameters, and
  // the α-renamed skeleton plus IND-closed footprint keys the class — a
  // million structurally identical Adds land in one class and, when batch
  // admitted, cost one shared check per poll. The grounded footprint equals
  // the class footprint (relations are binding-independent), so the key can
  // be built without re-running the template analyzer on every Add.
  StatusOr<CanonicalizedConstraint> canon = ConstraintTemplate::Canonicalize(q);
  if (!canon.ok()) return canon.status();
  std::string key = canon->tmpl.CanonicalSkeleton() + "#fp:";
  for (std::size_t i = 0; i < report.footprint.size(); ++i) {
    if (i > 0) key += ",";
    key += std::to_string(report.footprint[i]);
  }

  std::size_t class_id;
  auto it = class_by_key_.find(key);
  if (it != class_by_key_.end()) {
    class_id = it->second;
  } else {
    TemplateAnalysis analysis =
        AnalyzeTemplate(canon->tmpl, db_->database(), db_->constraints());
    std::string class_label = canon->tmpl.CanonicalSkeleton();
    class_id = CreateClass(std::move(class_label), std::move(canon->tmpl),
                           std::move(analysis));
    class_by_key_.emplace(std::move(key), class_id);
  }

  Entry entry;
  entry.class_id = class_id;
  entry.label = std::move(label);
  entry.binding = Tuple(canon->binding);
  entry.q = std::move(q);
  entry.report = std::move(report);
  return AppendEntry(std::move(entry));
}

StatusOr<MonitorHandle> ConstraintMonitor::Add(std::string label,
                                               std::string_view query_text) {
  StatusOr<DenialConstraint> q = ParseDenialConstraint(query_text);
  if (!q.ok()) return q.status();
  return Add(std::move(label), *std::move(q));
}

StatusOr<TemplateHandle> ConstraintMonitor::RegisterTemplate(
    std::string label, ConstraintTemplate tmpl) {
  MutexLock lock(mutex_);
  TemplateAnalysis analysis =
      AnalyzeTemplate(tmpl, db_->database(), db_->constraints());
  if (!analysis.report.ok()) {
    return Status::InvalidArgument("template '" + label +
                                   "' rejected by static analysis: " +
                                   analysis.report.ErrorSummary());
  }
  const std::size_t class_id =
      CreateClass(std::move(label), std::move(tmpl), std::move(analysis));
  return TemplateHandle(class_id, uid_);
}

StatusOr<TemplateHandle> ConstraintMonitor::RegisterTemplate(
    std::string label, std::string_view template_text) {
  StatusOr<ConstraintTemplate> tmpl = ConstraintTemplate::Parse(template_text);
  if (!tmpl.ok()) return tmpl.status();
  return RegisterTemplate(std::move(label), *std::move(tmpl));
}

StatusOr<MonitorHandle> ConstraintMonitor::Bind(
    TemplateHandle tmpl, const std::vector<Value>& binding) {
  MutexLock lock(mutex_);
  if (FindClass(tmpl) == nullptr) {
    return Status::InvalidArgument(
        tmpl.valid() && tmpl.owner_ != uid_
            ? "template handle belongs to a different monitor"
            : "invalid template handle");
  }
  const TemplateClass& cls = classes_[tmpl.value()];
  if (binding.size() != cls.tmpl.num_params()) {
    return Status::InvalidArgument(
        "binding has " + std::to_string(binding.size()) +
        " values but template '" + cls.label + "' has " +
        std::to_string(cls.tmpl.num_params()) + " parameters");
  }

  Entry entry;
  entry.class_id = tmpl.value();
  entry.binding = Tuple(binding);
  entry.label = cls.label + BindingSummary(entry.binding);
  if (cls.batchable && options_.enable_template_batching) {
    // Batch members skip per-member grounding; mirror the grounded
    // compiler's constant type check so a bad binding is rejected here,
    // not silently never matched at the leaves.
    const Catalog& catalog = db_->database().catalog();
    const DenialConstraint& q = cls.tmpl.constraint();
    for (std::size_t p = 0; p < cls.tmpl.param_sites().size(); ++p) {
      for (const ParamSite& site : cls.tmpl.param_sites()[p]) {
        if (site.kind != ParamSite::Kind::kPositiveAtom) continue;
        const Atom& atom = q.positive_atoms[site.element_index];
        StatusOr<std::size_t> rel_id = catalog.RelationId(atom.relation);
        if (!rel_id.ok()) continue;  // Admission already vetted the schema.
        const RelationSchema& schema = catalog.schema(*rel_id);
        if (site.arg_index >= schema.arity()) continue;
        const Value& v = binding[p];
        const ValueType expected = schema.attribute(site.arg_index).type;
        const bool numeric_ok =
            v.IsNumeric() && (expected == ValueType::kInt ||
                              expected == ValueType::kReal);
        if (v.type() != expected && !numeric_ok) {
          return Status::InvalidArgument(
              "binding value " + v.ToString() + " for parameter '$" +
              cls.tmpl.param_names()[p] + "' has wrong type (expected " +
              ValueTypeToString(expected) + " at position " +
              std::to_string(site.arg_index) + " of atom " + atom.ToString() +
              ")");
        }
      }
    }
  } else {
    // Per-member evaluation needs the grounded machinery up front; this
    // also gives Bind the same full-analysis rejection surface as Add.
    BCDB_RETURN_IF_ERROR(GroundEntry(entry));
  }
  return AppendEntry(std::move(entry));
}

Status ConstraintMonitor::GroundEntry(Entry& entry) {
  const TemplateClass& cls = classes_[entry.class_id];
  StatusOr<DenialConstraint> grounded =
      cls.tmpl.Instantiate(entry.binding.values());
  if (!grounded.ok()) return grounded.status();
  AnalysisReport report = engine_.Analyze(*grounded);
  if (!report.ok()) {
    return Status::InvalidArgument(
        "binding " + BindingSummary(entry.binding) + " for template '" +
        cls.label + "' rejected by static analysis: " + report.ErrorSummary());
  }
  entry.q = *std::move(grounded);
  entry.report = std::move(report);
  return Status::OK();
}

Status ConstraintMonitor::Remove(MonitorHandle handle) {
  MutexLock lock(mutex_);
  if (!handle.valid()) {
    return Status::InvalidArgument("invalid monitor handle");
  }
  if (handle.owner_ != uid_) {
    return Status::InvalidArgument(
        "monitor handle belongs to a different monitor");
  }
  if (handle.value() >= entries_.size()) {
    return Status::InvalidArgument("monitor handle out of range");
  }
  Entry& entry = entries_[handle.value()];
  if (entry.removed) {
    return Status::NotFound("constraint already removed");
  }
  entry.removed = true;
  entry.verdict = Verdict::kUnknown;
  entry.q.reset();
  entry.report.reset();
  entry.compiled.reset();
  --classes_[entry.class_id].live_members;
  ++classes_[entry.class_id].members_version;
  --live_count_;
  return Status::OK();
}

bool ConstraintMonitor::ClassIsDirty(const TemplateClass& cls) const {
  if (!options_.dirty_tracking) return true;
  // Not proved monotone: any mutation anywhere may flip the verdict, but a
  // fully quiescent database (no events since the last completed poll)
  // cannot change any verdict — not even a non-monotone one.
  if (cls.always_dirty) return mutated_since_poll_;
  for (std::size_t relation_id : cls.relation_ids) {
    if (relation_id < dirty_relations_.size() &&
        dirty_relations_.Test(relation_id)) {
      return true;
    }
  }
  return false;
}

void ConstraintMonitor::AbsorbValidityDiff(const DynamicBitset& valid) {
  // A transaction whose possible-world membership flipped dirties its
  // relations even when no mutation event names it — the cascade case:
  // applying T invalidates every still-pending FD-conflictor of T, whose
  // tuples may live in relations the apply event never touched.
  for (std::size_t id = 0; id < valid.size(); ++id) {
    const bool before = id < prev_valid_.size() && prev_valid_.Test(id);
    if (before == valid.Test(id)) continue;
    for (std::size_t relation_id : db_->PendingRelations(id)) {
      MarkRelationDirty(relation_id);
    }
  }
  prev_valid_ = valid;
}

StatusOr<ConstraintMonitor::Verdict> ConstraintMonitor::EvaluateEntry(
    const Entry& entry, const DcSatOptions& options) const {
  // Happened? Evaluate over the current state only.
  if (entry.compiled->Evaluate(db_->BaseView())) return Verdict::kHappened;
  StatusOr<DcSatResult> result =
      engine_.CheckPrepared(*entry.q, *entry.compiled, *entry.report, options);
  if (!result.ok()) return result.status();
  if (!result->decided) return Verdict::kUndecided;
  return result->satisfied ? Verdict::kImpossible : Verdict::kPossible;
}

StatusOr<std::vector<ConstraintMonitor::Change>> ConstraintMonitor::Poll(
    const DcSatOptions& options) {
  MutexLock lock(mutex_);
  ++poll_stats_.polls;

  // Phase 1 (single-threaded): refresh the engine's steady-state caches
  // (incrementally when the mutation-delta path is eligible), settle the
  // dirty-relation set, and compile the standing queries that will run.
  // Compilation is what lazily builds hash indexes in the storage layer, so
  // doing it all here leaves the parallel phase below strictly read-only.
  const FdGraph& fd_graph = engine_.PrepareSteadyState();
  if (options_.dirty_tracking) AbsorbValidityDiff(fd_graph.valid_nodes());

  // Batching only serves kAuto polls: an explicitly requested algorithm is
  // honored exactly by grounding each member and running the per-member
  // path (which validates the request against each instance).
  const bool batching = options_.enable_template_batching &&
                        options.algorithm == DcSatAlgorithm::kAuto;

  // The caller's explicit budget wins over the monitor's default and
  // applies to every entry; the monitor *default* only covers entries the
  // analyzer could not place in a proven-PTIME class — budgeting a
  // polynomial check risks nothing but spurious kUndecided verdicts. Each
  // check then runs under its budget scaled by the escalation factor
  // (undecided verdicts earn a larger retry budget).
  auto base_budget_for = [&](const AnalysisReport& report) -> BudgetLimits {
    if (!options.budget.unlimited()) return options.budget;
    switch (report.tractability) {
      case TractabilityClass::kTriviallyUnsat:
      case TractabilityClass::kPtimeFdOnly:
      case TractabilityClass::kPtimeIndOnly:
        return BudgetLimits{};
      case TractabilityClass::kTriviallyViolated:
      case TractabilityClass::kCoNpMixed:
        break;
    }
    return options_.budget;
  };

  // Dirtiness is a class-level fact (the footprint is binding-independent),
  // so it is decided once per class, not once per member.
  std::vector<char> class_dirty(classes_.size(), 0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    class_dirty[c] = ClassIsDirty(classes_[c]) ? 1 : 0;
  }

  std::vector<std::size_t> to_evaluate;
  for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
    Entry& entry = entries_[slot];
    if (entry.removed) continue;
    const bool dirty = entry.verdict == Verdict::kUnknown ||
                       class_dirty[entry.class_id] != 0;
    if (entry.verdict == Verdict::kUndecided) {
      // Unfinished business: retried even with no mutations — unless it is
      // backing off, and then only while the instance has not changed under
      // it (a genuinely dirty entry re-checks immediately).
      if (entry.backoff_remaining > 0 && !dirty) {
        --entry.backoff_remaining;
        ++poll_stats_.backoff_skips;
        continue;
      }
      to_evaluate.push_back(slot);
    } else if (dirty) {
      to_evaluate.push_back(slot);
    } else {
      ++poll_stats_.constraints_skipped;
    }
  }

  // Group the selected members into evaluation tasks: one shared task per
  // batch-admitted class (however many members), one task per remaining
  // member. `items` are indices into to_evaluate.
  //
  // The worker lambda below runs on pool threads while this thread keeps
  // the monitor lock held, so workers must never touch the guarded tables
  // directly. Each task therefore carries an immutable view — pointers to
  // the class's compiled query/equalities/binding cache (stable: nothing
  // mutates classes_/entries_ until every worker has joined) plus its
  // output slots — all resolved here under the lock.
  struct PollTask {
    bool batch = false;
    std::size_t class_id = 0;
    std::vector<std::size_t> items;
    // Batch tasks: the resolved batch inputs. `index` is non-null iff the
    // task evaluates through the class's cached binding list + dedup index
    // (full live membership — the steady state) instead of a fresh gather
    // (see TemplateClass::cached_bindings).
    const CompiledQuery* compiled = nullptr;
    const std::vector<EqualityConstraint>* equalities = nullptr;
    const std::vector<Tuple>* bindings = nullptr;
    const TemplateBindingIndex* index = nullptr;
    std::vector<Tuple> gathered_bindings;  // Backing store when not cached.
    std::vector<std::size_t> slots;  // Verdict slot per batch outcome.
    // Single tasks: the entry to evaluate and its verdict slot.
    const Entry* entry = nullptr;
    std::size_t slot = 0;
  };
  std::vector<PollTask> tasks;
  std::map<std::size_t, std::size_t> batch_task_of;
  for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
    const Entry& entry = entries_[to_evaluate[i]];
    const TemplateClass& cls = classes_[entry.class_id];
    if (batching && cls.batchable) {
      auto [it, inserted] = batch_task_of.emplace(entry.class_id, tasks.size());
      if (inserted) {
        tasks.push_back(
            PollTask{.batch = true, .class_id = entry.class_id, .items = {}});
      }
      tasks[it->second].items.push_back(i);
    } else {
      tasks.push_back(
          PollTask{.batch = false, .class_id = entry.class_id, .items = {i}});
    }
  }

  // Compile (and, for members falling back to per-member evaluation,
  // ground) everything that will run, and resolve each task's immutable
  // worker view. Batch classes compile the generalized query once per
  // database version; singles keep their own per-version compiled form.
  const std::uint64_t version = db_->version();
  for (PollTask& task : tasks) {
    if (task.batch) {
      TemplateClass& cls = classes_[task.class_id];
      // The binding cache serves full-membership selections only — the
      // steady state. A strict subset (some members backing off) keeps the
      // cache intact for later polls but evaluates off a fresh gather.
      if (task.items.size() == cls.live_members) {
        if (cls.cached_members_version != cls.members_version) {
          cls.cached_bindings.clear();
          cls.cached_slots.clear();
          cls.cached_bindings.reserve(cls.live_members);
          cls.cached_slots.reserve(cls.live_members);
          for (std::size_t slot : cls.members) {
            const Entry& member = entries_[slot];
            if (member.removed) continue;
            cls.cached_bindings.push_back(member.binding);
            cls.cached_slots.push_back(slot);
          }
          cls.cached_index = TemplateBindingIndex::Build(cls.cached_bindings);
          cls.cached_members_version = cls.members_version;
        }
        task.bindings = &cls.cached_bindings;
        task.index = &cls.cached_index;
        task.slots = cls.cached_slots;
      } else {
        task.gathered_bindings.reserve(task.items.size());
        task.slots.reserve(task.items.size());
        for (std::size_t i : task.items) {
          task.gathered_bindings.push_back(entries_[to_evaluate[i]].binding);
          task.slots.push_back(to_evaluate[i]);
        }
        task.bindings = &task.gathered_bindings;
      }
      task.equalities = &cls.template_equalities;
      if (cls.compiled.has_value() && cls.compiled_version == version) {
        ++poll_stats_.compile_cache_hits;
      } else {
        StatusOr<CompiledQuery> compiled =
            CompiledQuery::Compile(cls.generalized, &db_->database());
        if (!compiled.ok()) return compiled.status();
        cls.compiled = std::move(*compiled);
        cls.compiled_version = version;
        ++poll_stats_.compile_cache_misses;
      }
      task.compiled = &*cls.compiled;
    } else {
      Entry& entry = entries_[to_evaluate[task.items[0]]];
      if (!entry.q.has_value()) {
        // A batch member of a batchable class, selected while an explicit
        // algorithm is in force: materialize its grounded form now.
        BCDB_RETURN_IF_ERROR(GroundEntry(entry));
      }
      if (entry.compiled.has_value() && entry.compiled_version == version) {
        ++poll_stats_.compile_cache_hits;
      } else {
        StatusOr<CompiledQuery> compiled =
            CompiledQuery::Compile(*entry.q, &db_->database());
        if (!compiled.ok()) return compiled.status();
        entry.compiled = std::move(*compiled);
        entry.compiled_version = version;
        ++poll_stats_.compile_cache_misses;
      }
      task.entry = &entry;
      task.slot = to_evaluate[task.items[0]];
    }
  }

  // Per-task check options: serial (num_threads = 1 — with several standing
  // classes the class-level fan-out already saturates the workers, and the
  // engine's component pool is not re-entrant), with the escalated budget.
  // A batch task shares one budget across the class, scaled by the largest
  // participating member's escalation factor.
  std::vector<DcSatOptions> task_options(tasks.size(), options);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    task_options[t].num_threads = 1;
    double scale = 1.0;
    const AnalysisReport* report;
    if (tasks[t].batch) {
      report = &classes_[tasks[t].class_id].report;
      for (std::size_t i : tasks[t].items) {
        scale = std::max(scale, entries_[to_evaluate[i]].budget_scale);
      }
    } else {
      const Entry& entry = entries_[to_evaluate[tasks[t].items[0]]];
      report = &*entry.report;
      scale = entry.budget_scale;
    }
    const BudgetLimits base_budget = base_budget_for(*report);
    task_options[t].budget =
        scale > 1.0 ? base_budget.Scaled(scale) : base_budget;
  }

  // Phase 2: evaluate every task over the shared read-only snapshot. The
  // pool is sized once to the requested width and reused across polls —
  // only the number of submitted tasks tracks the dirty count, which
  // fluctuates every poll in steady state.
  // Verdicts are keyed by entry slot: a cached batch task reports outcomes
  // in its cached member order, which is a permutation of its selected
  // items — slot indexing makes the two meet without a per-poll remap.
  std::vector<Verdict> verdicts(entries_.size(), Verdict::kUnknown);
  std::vector<Status> statuses(tasks.size());
  // Workers read only the task's resolved view (plus the locals above and
  // the engine) — never the guarded tables, which stay under the monitor
  // lock this thread holds until the join below.
  auto run_task = [&](std::size_t t) {
    const PollTask& task = tasks[t];
    if (task.batch) {
      StatusOr<TemplateBatchResult> result =
          task.index != nullptr
              ? engine_.CheckTemplateBatch(*task.compiled, *task.equalities,
                                           *task.bindings, *task.index,
                                           task_options[t])
              : engine_.CheckTemplateBatch(*task.compiled, *task.equalities,
                                           *task.bindings, task_options[t]);
      if (!result.ok()) {
        statuses[t] = result.status();
        return;
      }
      for (std::size_t j = 0; j < task.slots.size(); ++j) {
        verdicts[task.slots[j]] = FromOutcome(result->outcomes[j]);
      }
    } else {
      StatusOr<Verdict> verdict = EvaluateEntry(*task.entry, task_options[t]);
      if (verdict.ok()) {
        verdicts[task.slot] = *verdict;
      } else {
        statuses[t] = verdict.status();
      }
    }
  };
  const std::size_t pool_width =
      ThreadPool::EffectiveThreads(options.num_threads);
  const std::size_t num_workers =
      tasks.empty() ? 1 : std::min(pool_width, tasks.size());
  if (num_workers > 1) {
    if (pool_ == nullptr || pool_->num_threads() != pool_width) {
      pool_ = std::make_shared<ThreadPool>(pool_width);
    }
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      futures.push_back(pool_->Submit([&run_task, t] { run_task(t); }));
    }
    // Join every future before an exception can propagate: rethrowing from
    // the first get() while sibling tasks still reference the stack-local
    // verdicts/statuses vectors would be use-after-scope UB.
    std::exception_ptr first_error;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
    poll_stats_.threads_used = pool_->num_threads();
    poll_stats_.constraints_parallel += to_evaluate.size();
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
    poll_stats_.threads_used = 1;
  }

  // Phase 3 (single-threaded): every status is checked before any verdict
  // commits. Committing the leading entries and then erroring out would
  // swallow their transitions forever — the next poll sees the verdict
  // already updated and reports no Change. On error nothing commits and
  // the dirty set is retained, so the next poll re-runs everything.
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  for (const PollTask& task : tasks) {
    if (!task.batch) continue;
    ++poll_stats_.classes_evaluated;
    poll_stats_.constraints_batched += task.items.size();
  }
  std::vector<Change> changes;
  for (std::size_t i = 0; i < to_evaluate.size(); ++i) {
    Entry& entry = entries_[to_evaluate[i]];
    ++poll_stats_.constraints_evaluated;
    const Verdict verdict = verdicts[to_evaluate[i]];
    if (verdict == Verdict::kUndecided) {
      ++poll_stats_.undecided_verdicts;
      ++entry.undecided_streak;
      if (options_.budget_growth > 1.0 &&
          entry.budget_scale < options_.max_budget_scale) {
        entry.budget_scale = std::min(
            entry.budget_scale * options_.budget_growth,
            options_.max_budget_scale);
        ++poll_stats_.budget_escalations;
      }
      // First retry is immediate (with the larger budget); repeat
      // offenders back off exponentially, capped.
      entry.backoff_remaining =
          entry.undecided_streak >= 2
              ? std::min<std::size_t>(
                    std::size_t{1}
                        << std::min<std::size_t>(entry.undecided_streak - 2,
                                                 20),
                    options_.max_backoff_polls)
              : 0;
    } else {
      entry.undecided_streak = 0;
      entry.budget_scale = 1.0;
      entry.backoff_remaining = 0;
    }
    if (verdict != entry.verdict) {
      changes.push_back(Change{MonitorHandle(to_evaluate[i], uid_),
                               entry.label, entry.verdict, verdict,
                               classes_[entry.class_id].label,
                               BindingSummary(entry.binding)});
      entry.verdict = verdict;
    }
  }
  if (options_.dirty_tracking) {
    dirty_relations_.Clear();
    mutated_since_poll_ = false;
  }
  return changes;
}

}  // namespace bcdb
