#include "core/monitor.h"

#include <algorithm>
#include <future>

#include "query/compiled_query.h"

namespace bcdb {

const char* ConstraintMonitor::VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kHappened:
      return "happened";
    case Verdict::kPossible:
      return "possible";
    case Verdict::kImpossible:
      return "impossible";
  }
  return "?";
}

StatusOr<std::size_t> ConstraintMonitor::Add(std::string label,
                                             DenialConstraint q) {
  // Validate now so Poll never trips over a malformed constraint.
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db_->database());
  if (!compiled.ok()) return compiled.status();
  Entry entry;
  entry.label = std::move(label);
  entry.q = std::move(q);
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

StatusOr<ConstraintMonitor::Verdict> ConstraintMonitor::EvaluateEntry(
    const Entry& entry, const DcSatOptions& options) const {
  // Happened? Evaluate over the current state only.
  if (entry.compiled->Evaluate(db_->BaseView())) return Verdict::kHappened;
  StatusOr<DcSatResult> result =
      engine_.CheckPrepared(entry.q, *entry.compiled, options);
  if (!result.ok()) return result.status();
  return result->satisfied ? Verdict::kImpossible : Verdict::kPossible;
}

StatusOr<std::vector<ConstraintMonitor::Change>> ConstraintMonitor::Poll(
    const DcSatOptions& options) {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  ++poll_stats_.polls;

  // Phase 1 (single-threaded): refresh the engine's steady-state caches and
  // the per-constraint compiled queries. Compilation is what lazily builds
  // hash indexes in the storage layer, so doing it all here leaves the
  // parallel phase below strictly read-only.
  engine_.PrepareSteadyState();
  const std::uint64_t version = db_->version();
  for (Entry& entry : entries_) {
    if (entry.compiled.has_value() && entry.compiled_version == version) {
      ++poll_stats_.compile_cache_hits;
      continue;
    }
    StatusOr<CompiledQuery> compiled =
        CompiledQuery::Compile(entry.q, &db_->database());
    if (!compiled.ok()) return compiled.status();
    entry.compiled = std::move(*compiled);
    entry.compiled_version = version;
    ++poll_stats_.compile_cache_misses;
  }

  // Phase 2: evaluate every constraint over the shared read-only snapshot.
  // Each task runs its check serially (num_threads = 1): with several
  // standing constraints, the constraint-level fan-out already saturates
  // the workers, and the engine's component pool is not re-entrant.
  const std::size_t num_workers =
      entries_.empty()
          ? 1
          : std::min(ThreadPool::EffectiveThreads(options.num_threads),
                     entries_.size());
  std::vector<Verdict> verdicts(entries_.size(), Verdict::kUnknown);
  std::vector<Status> statuses(entries_.size());
  DcSatOptions task_options = options;
  task_options.num_threads = 1;
  if (num_workers > 1) {
    if (pool_ == nullptr || pool_->num_threads() != num_workers) {
      pool_ = std::make_shared<ThreadPool>(num_workers);
    }
    std::vector<std::future<void>> futures;
    futures.reserve(entries_.size());
    for (std::size_t handle = 0; handle < entries_.size(); ++handle) {
      futures.push_back(pool_->Submit([this, handle, &task_options,
                                       &verdicts, &statuses] {
        StatusOr<Verdict> verdict =
            EvaluateEntry(entries_[handle], task_options);
        if (verdict.ok()) {
          verdicts[handle] = *verdict;
        } else {
          statuses[handle] = verdict.status();
        }
      }));
    }
    for (std::future<void>& future : futures) future.get();
    poll_stats_.threads_used = num_workers;
    poll_stats_.constraints_parallel = entries_.size();
  } else {
    for (std::size_t handle = 0; handle < entries_.size(); ++handle) {
      StatusOr<Verdict> verdict =
          EvaluateEntry(entries_[handle], task_options);
      if (verdict.ok()) {
        verdicts[handle] = *verdict;
      } else {
        statuses[handle] = verdict.status();
      }
    }
    poll_stats_.threads_used = 1;
  }

  // Phase 3 (single-threaded): apply transitions in handle order. On error,
  // entries before the failing handle keep their new verdicts — exactly the
  // observable state a serial scan would have left behind.
  std::vector<Change> changes;
  for (std::size_t handle = 0; handle < entries_.size(); ++handle) {
    if (!statuses[handle].ok()) return statuses[handle];
    Entry& entry = entries_[handle];
    if (verdicts[handle] != entry.verdict) {
      changes.push_back(
          Change{handle, entry.label, entry.verdict, verdicts[handle]});
      entry.verdict = verdicts[handle];
    }
  }
  return changes;
}

}  // namespace bcdb
