#include "core/monitor.h"

#include "query/compiled_query.h"

namespace bcdb {

const char* ConstraintMonitor::VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kHappened:
      return "happened";
    case Verdict::kPossible:
      return "possible";
    case Verdict::kImpossible:
      return "impossible";
  }
  return "?";
}

StatusOr<std::size_t> ConstraintMonitor::Add(std::string label,
                                             DenialConstraint q) {
  // Validate now so Poll never trips over a malformed constraint.
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db_->database());
  if (!compiled.ok()) return compiled.status();
  entries_.push_back(Entry{std::move(label), std::move(q)});
  return entries_.size() - 1;
}

StatusOr<std::vector<ConstraintMonitor::Change>> ConstraintMonitor::Poll(
    const DcSatOptions& options) {
  std::vector<Change> changes;
  for (std::size_t handle = 0; handle < entries_.size(); ++handle) {
    Entry& entry = entries_[handle];

    // Happened? Evaluate over the current state only; compile per poll so
    // schema-level index ids stay fresh after database mutations.
    StatusOr<CompiledQuery> compiled =
        CompiledQuery::Compile(entry.q, &db_->database());
    if (!compiled.ok()) return compiled.status();
    Verdict verdict;
    if (compiled->Evaluate(db_->BaseView())) {
      verdict = Verdict::kHappened;
    } else {
      StatusOr<DcSatResult> result = engine_.Check(entry.q, options);
      if (!result.ok()) return result.status();
      verdict =
          result->satisfied ? Verdict::kImpossible : Verdict::kPossible;
    }
    if (verdict != entry.verdict) {
      changes.push_back(Change{handle, entry.label, entry.verdict, verdict});
      entry.verdict = verdict;
    }
  }
  return changes;
}

}  // namespace bcdb
