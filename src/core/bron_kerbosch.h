#ifndef BCDB_CORE_BRON_KERBOSCH_H_
#define BCDB_CORE_BRON_KERBOSCH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/bit_graph.h"
#include "util/bitset.h"

namespace bcdb {

/// Receives one maximal clique (vertex ids, ascending). Return false to stop
/// the enumeration early — DCSat stops at the first world that violates the
/// denial constraint.
using CliqueCallback = std::function<bool(const std::vector<std::size_t>&)>;

struct CliqueEnumerationStats {
  std::size_t cliques_reported = 0;
  std::size_t recursive_calls = 0;
  bool stopped_early = false;
};

/// Enumerates all maximal cliques of `graph` restricted to the vertices in
/// `subset`, via Bron–Kerbosch (Algorithm 457) with the Tomita et al.
/// pivoting rule (`use_pivot`; without it the plain variant runs, kept for
/// the ablation benchmark).
///
/// If `subset` is empty the single (empty) maximal clique is reported — the
/// current state with no pending transactions is itself a possible world.
CliqueEnumerationStats EnumerateMaximalCliques(const BitGraph& graph,
                                               const DynamicBitset& subset,
                                               bool use_pivot,
                                               const CliqueCallback& callback);

}  // namespace bcdb

#endif  // BCDB_CORE_BRON_KERBOSCH_H_
