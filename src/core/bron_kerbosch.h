#ifndef BCDB_CORE_BRON_KERBOSCH_H_
#define BCDB_CORE_BRON_KERBOSCH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/bit_graph.h"
#include "util/bitset.h"
#include "util/deadline.h"

namespace bcdb {

/// Receives one maximal clique (vertex ids, ascending). Return false to stop
/// the enumeration early — DCSat stops at the first world that violates the
/// denial constraint.
using CliqueCallback = std::function<bool(const std::vector<std::size_t>&)>;

struct CliqueEnumerationStats {
  std::size_t cliques_reported = 0;
  std::size_t recursive_calls = 0;
  bool stopped_early = false;
  /// The enumeration was abandoned because `budget` expired (a strict
  /// subset of stopped_early).
  bool budget_expired = false;
};

/// Enumerates all maximal cliques of `graph` restricted to the vertices in
/// `subset`, via Bron–Kerbosch (Algorithm 457) with the Tomita et al.
/// pivoting rule (`use_pivot`; without it the plain variant runs, kept for
/// the ablation benchmark).
///
/// If `subset` is empty the single (empty) maximal clique is reported — the
/// current state with no pending transactions is itself a possible world.
///
/// `budget` (optional) is probed at every recursive expansion — the
/// enumeration's cooperative preemption point — and the search unwinds as
/// soon as it reports expiry, leaving `budget_expired` set. With a null or
/// never-expiring budget the enumeration order, the reported cliques, and
/// the stats are bit-identical to a run without budget probes.
CliqueEnumerationStats EnumerateMaximalCliques(const BitGraph& graph,
                                               const DynamicBitset& subset,
                                               bool use_pivot,
                                               const CliqueCallback& callback,
                                               const Budget* budget = nullptr);

}  // namespace bcdb

#endif  // BCDB_CORE_BRON_KERBOSCH_H_
