#ifndef BCDB_CORE_BLOCKCHAIN_DB_H_
#define BCDB_CORE_BLOCKCHAIN_DB_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "constraints/checker.h"
#include "constraints/constraint.h"
#include "core/mutation_log.h"
#include "core/transaction.h"
#include "relational/database.h"
#include "relational/world_view.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace bcdb {

/// Callback invoked synchronously after every database mutation, with the
/// event just appended to the mutation log. Listeners must not mutate the
/// database from inside the callback. Registering or removing listeners
/// from inside the callback is safe: a listener added mid-publish first
/// sees the *next* event, one removed mid-publish may still see this one.
using MutationListener = std::function<void(const MutationEvent&)>;
using MutationListenerId = std::size_t;

/// What a MutationEvent does not carry but a durable log must: the payload
/// needed to replay the mutation against a recovered database. Pointers
/// borrow from the database and are valid only for the duration of the
/// Persist call.
struct MutationPayload {
  /// kPendingAdded: the full transaction just registered.
  const Transaction* txn = nullptr;
  /// kCurrentInserted / kCurrentRemoved: the affected tuple and its relation.
  const Tuple* tuple = nullptr;
  std::size_t relation_id = ~std::size_t{0};
};

/// Write-ahead hook of the durable storage backend (src/storage). Attached
/// sinks observe every successful mutation synchronously — before regular
/// listeners — together with the replay payload. Persist must not mutate
/// the database; errors are latched inside the sink (mutations never fail
/// for durability reasons) and surface through the sink's own status/sync
/// API.
class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;
  virtual void Persist(const MutationEvent& event,
                       const MutationPayload& payload) = 0;
};

/// The paper's blockchain database D = (R, I, T): a current state R stored
/// in the relational substrate, integrity constraints I with R |= I, and a
/// set T of pending insert transactions that may or may not ever be
/// appended.
///
/// Mutations bump a version counter and append a typed MutationEvent to the
/// mutation log, so that derived steady-state structures (the
/// fd-transaction graph, Θ_I components, per-constraint verdicts) can be
/// maintained incrementally instead of rebuilt from scratch. Consumers
/// either pull deltas from `mutations()` with a seq cursor, or register a
/// push listener with AddMutationListener.
class BlockchainDatabase {
 public:
  /// Lifecycle of a pending-transaction slot. Slots are never reused:
  /// applied and discarded transactions keep their id (and owner tag)
  /// forever, so graphs and bitsets indexed by PendingId stay stable.
  /// kApplied is not terminal — a chain reorg may return the slot to
  /// kPending via UnapplyPending; kDiscarded is.
  enum class PendingState : std::uint8_t {
    kPending = 0,
    kApplied = 1,
    kDiscarded = 2,
  };

  /// Builds an empty database over `catalog` with constraints `I`.
  /// Fails if a constraint references a relation missing from the catalog
  /// (constraints are already resolved, so this only re-checks ids).
  static StatusOr<BlockchainDatabase> Create(Catalog catalog,
                                             ConstraintSet constraints);

  BlockchainDatabase(BlockchainDatabase&&) = default;
  BlockchainDatabase& operator=(BlockchainDatabase&&) = default;

  Database& database() { return *db_; }
  const Database& database() const { return *db_; }
  const ConstraintSet& constraints() const { return *constraints_; }
  const ConstraintChecker& checker() const { return *checker_; }
  const Catalog& catalog() const { return db_->catalog(); }

  /// Inserts a tuple directly into the current state R. The caller is
  /// responsible for R |= I (verify with ValidateCurrentState); bulk loaders
  /// use this to avoid per-tuple constraint checks.
  Status InsertCurrent(std::string_view relation, Tuple tuple);

  /// Retracts a tuple from the current state R (a chain reorg orphaned the
  /// block that carried it). Fails with NotFound unless an equal tuple is
  /// stored with base ownership. The stored tuple itself survives (possibly
  /// unowned and invisible) so TupleIds stay stable; shrinking R can only
  /// *revalidate* pending transactions, never invalidate them.
  Status RemoveCurrent(std::string_view relation, const Tuple& tuple);

  /// Full constraint check of the current state (R |= I must hold for the
  /// possible-worlds semantics to be meaningful).
  Status ValidateCurrentState() const;

  /// Registers `txn` as pending. Tuples become visible only in worlds that
  /// activate the returned id. Fails on schema violations; consistency with
  /// I is *not* required — mutually contradictory pending transactions are
  /// exactly what DCSat reasons about.
  StatusOr<PendingId> AddPending(const Transaction& txn);

  /// Total pending-id slots ever allocated (applied and discarded
  /// transactions keep their slots; use PendingIds() for the live set).
  /// This is the size of the id space every graph/bitset is indexed by.
  std::size_t num_pending() const { return pending_.size(); }
  const Transaction& pending(PendingId id) const { return pending_[id]; }

  /// Distinct relation ids touched by pending transaction `id` (recorded at
  /// AddPending time, so it stays available after apply/discard).
  const std::vector<std::size_t>& PendingRelations(PendingId id) const {
    return pending_relations_[id];
  }

  /// Appends pending transaction `id` permanently to R (it was accepted
  /// into the blockchain). Fails with ConstraintViolation if R ∪ T ⊭ I.
  /// Other pending transactions remain pending; derived caches invalidate.
  Status ApplyPending(PendingId id);

  /// Discards pending transaction `id` (e.g. it became permanently
  /// unappendable and the node evicted it). Its tuples disappear from all
  /// future worlds.
  Status DiscardPending(PendingId id);

  /// The UndoBlock half of a chain reorg: returns applied transaction `id`
  /// to the pending state, moving each of its tuples from base ownership
  /// back to the transaction's owner tag (by content — the inverse of
  /// ApplyPending's promote). Fails with InvalidArgument unless the slot is
  /// kApplied. Caveat (documented in DESIGN.md §15): a tuple the applied
  /// transaction shares with another still-applied source of base ownership
  /// (a second applied transaction carrying the equal tuple, or a direct
  /// InsertCurrent) has a single merged base ownership under set semantics,
  /// so unapplying removes it from R outright. The Bitcoin mapping never
  /// constructs that overlap (txids are unique per relation key).
  Status UnapplyPending(PendingId id);

  /// True if the transaction is still pending (not applied / discarded).
  bool IsPending(PendingId id) const {
    return id < pending_state_.size() &&
           pending_state_[id] == PendingState::kPending;
  }

  /// Lifecycle state of pending slot `id` (which must be < num_pending()).
  PendingState pending_state(PendingId id) const {
    return pending_state_[id];
  }

  /// All currently-pending ids (ascending).
  std::vector<PendingId> PendingIds() const;

  /// World view of the current state R only.
  WorldView BaseView() const { return db_->BaseView(); }
  /// World view of R plus all still-pending transactions (R ∪ T).
  WorldView PendingUnionView() const;

  /// Bumped by every mutation; derived structures cache against it.
  std::uint64_t version() const { return version_; }

  /// The mutation-delta log: one typed event per successful mutation, in
  /// order. Pull-style consumers keep a seq cursor and call
  /// mutations().ReadSince(cursor); a kTrimmed result means the cursor fell
  /// out of the retention window and the consumer must rebuild from scratch
  /// (kForeignCursor flags a cursor that never came from this log).
  const MutationLog& mutations() const { return *mutation_log_; }

  /// Registers a push listener notified synchronously after every mutation.
  /// Returns an id for RemoveMutationListener. Listener slots are never
  /// reused.
  MutationListenerId AddMutationListener(MutationListener listener);
  void RemoveMutationListener(MutationListenerId id);

  /// Attaches the write-ahead durability sink, which observes every
  /// subsequent mutation (with its replay payload) before any regular
  /// listener. At most one sink may be attached; pass nullptr to detach.
  void AttachDurabilitySink(DurabilitySink* sink) { durability_sink_ = sink; }
  DurabilitySink* durability_sink() const { return durability_sink_; }

  // ---- Restore hooks (durable storage backend) --------------------------
  // These rebuild a database to match a persisted image without publishing
  // events or bumping the version. Only src/storage recovery should call
  // them, on a freshly created database; relation contents are restored
  // separately through Relation::RestoreTuple.

  /// Appends one pending-transaction slot in its final lifecycle state.
  /// Registers the matching owner tag but does not insert the
  /// transaction's tuples (the segment records carry exact owner lists,
  /// including promoted and dropped states).
  Status RestorePendingSlot(Transaction txn, PendingState state,
                            std::vector<std::size_t> relation_ids);

  /// Overwrites the version counter and positions the (empty) mutation log
  /// at `next_seq`, so post-recovery mutations continue the persisted
  /// version/seq history exactly.
  Status RestoreClock(std::uint64_t version, std::uint64_t next_seq);

 private:
  BlockchainDatabase(Catalog catalog, ConstraintSet constraints);

  /// Appends the event (stamping the post-mutation version), hands it to
  /// the durability sink (if attached) with its replay payload, and
  /// notifies listeners. `event_tuple` is the base tuple the event carries
  /// (kCurrentInserted / kCurrentRemoved only; empty otherwise).
  void Publish(MutationKind kind, PendingId id,
               std::vector<std::size_t> relation_ids,
               const MutationPayload& payload = MutationPayload{},
               Tuple event_tuple = Tuple());

  std::unique_ptr<Database> db_;
  std::unique_ptr<ConstraintSet> constraints_;
  std::unique_ptr<ConstraintChecker> checker_;
  std::vector<Transaction> pending_;
  std::vector<PendingState> pending_state_;
  /// Parallel to pending_: distinct relation ids of each transaction.
  std::vector<std::vector<std::size_t>> pending_relations_;
  std::uint64_t version_ = 0;
  std::unique_ptr<MutationLog> mutation_log_;
  /// Listener slots behind their own lock (and behind unique_ptr so the
  /// database stays movable despite the non-movable Mutex). Publish copies
  /// each listener out under the lock and invokes it unlocked, so callbacks
  /// may re-enter Add/RemoveMutationListener. The lock is a near-top leaf
  /// (kMutationListeners = 75): mutations may run under caller locks (the
  /// durable store's during WAL replay), and snapshotting a listener must
  /// rank above all of them. The *callback* runs with this lock dropped,
  /// but under whatever the mutating caller still holds — so a mutation
  /// with a monitor attached must not hold locks at or above kMonitor.
  struct ListenerRegistry {
    Mutex mutex{LockRank::kMutationListeners};
    /// Slot per listener id; removed listeners leave an empty function.
    std::vector<MutationListener> listeners BCDB_GUARDED_BY(mutex);
  };
  std::unique_ptr<ListenerRegistry> listeners_;
  /// Non-owning write-ahead hook; nullptr when the database is volatile.
  DurabilitySink* durability_sink_ = nullptr;
};

}  // namespace bcdb

#endif  // BCDB_CORE_BLOCKCHAIN_DB_H_
