#include "core/fd_graph.h"

#include <unordered_map>
#include <vector>

#include "relational/tuple.h"

namespace bcdb {

FdGraph::FdGraph(const BlockchainDatabase& db)
    : graph_(db.num_pending()), valid_nodes_(db.num_pending()) {
  const ConstraintChecker& checker = db.checker();

  for (PendingId id : db.PendingIds()) {
    if (checker.FdConsistentWithBase(static_cast<TupleOwner>(id))) {
      valid_nodes_.Set(id);
    }
  }
  graph_.MakeCompleteOver(valid_nodes_);

  // For every FD, bucket the determinant projections of all valid pending
  // tuples; transactions in one bucket with differing dependents conflict.
  const std::vector<FunctionalDependency>& fds = db.constraints().fds();
  for (const FunctionalDependency& fd : fds) {
    const Relation& rel = db.database().relation(fd.relation_id());
    struct Entry {
      PendingId txn;
      Tuple dependent;
    };
    std::unordered_map<Tuple, std::vector<Entry>, TupleHash> buckets;
    valid_nodes_.ForEach([&](std::size_t id) {
      for (TupleId tuple_id : rel.TuplesOwnedBy(static_cast<TupleOwner>(id))) {
        const Tuple& t = rel.tuple(tuple_id);
        buckets[t.Project(fd.lhs())].push_back(Entry{id, t.Project(fd.rhs())});
      }
    });
    for (const auto& [key, entries] : buckets) {
      if (entries.size() < 2) continue;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
          if (entries[i].txn == entries[j].txn) continue;
          if (entries[i].dependent != entries[j].dependent &&
              graph_.HasEdge(entries[i].txn, entries[j].txn)) {
            graph_.RemoveEdge(entries[i].txn, entries[j].txn);
            ++num_conflict_pairs_;
          }
        }
      }
    }
  }
}

}  // namespace bcdb
