#include "core/fd_graph.h"

#include <algorithm>

namespace bcdb {

FdGraph::FdGraph(const BlockchainDatabase& db, bool track_mutations)
    : db_(&db),
      graph_(db.num_pending()),
      valid_nodes_(db.num_pending()),
      tracked_(track_mutations) {
  const ConstraintChecker& checker = db.checker();

  for (PendingId id : db.PendingIds()) {
    if (checker.FdConsistentWithBase(static_cast<TupleOwner>(id))) {
      valid_nodes_.Set(id);
    }
  }
  graph_.MakeCompleteOver(valid_nodes_);

  // For every FD, bucket the determinant projections of all valid pending
  // tuples; transactions in one bucket with differing dependents conflict.
  const std::vector<FunctionalDependency>& fds = db.constraints().fds();
  fd_buckets_.resize(fds.size());
  if (tracked_) footprints_.resize(db.num_pending());
  for (std::size_t ord = 0; ord < fds.size(); ++ord) {
    const FunctionalDependency& fd = fds[ord];
    const Relation& rel = db.database().relation(fd.relation_id());
    FdBuckets& buckets = fd_buckets_[ord];
    // Cardinality is known up front — one entry per valid pending tuple of
    // this relation; pre-sizing avoids every rehash of the build loop.
    std::size_t expected = 0;
    valid_nodes_.ForEach([&](std::size_t id) {
      expected += rel.TuplesOwnedBy(static_cast<TupleOwner>(id)).size();
    });
    buckets.reserve(expected);
    valid_nodes_.ForEach([&](std::size_t id) {
      for (TupleId tuple_id : rel.TuplesOwnedBy(static_cast<TupleOwner>(id))) {
        const Tuple& t = rel.tuple(tuple_id);
        Tuple key = t.Project(fd.lhs());
        if (tracked_) footprints_[id].emplace_back(ord, key);
        buckets[std::move(key)].push_back(BucketEntry{id, t.Project(fd.rhs())});
      }
    });
    for (const auto& [key, entries] : buckets) {
      if (entries.size() < 2) continue;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
          if (entries[i].txn == entries[j].txn) continue;
          if (entries[i].dependent != entries[j].dependent &&
              graph_.HasEdge(entries[i].txn, entries[j].txn)) {
            graph_.RemoveEdge(entries[i].txn, entries[j].txn);
            ++num_conflict_pairs_;
          }
        }
      }
    }
  }
  // The buckets exist only to serve the incremental mutators; an untracked
  // graph frees them.
  if (!tracked_) fd_buckets_.clear();
}

bool FdGraph::AddPendingNode(PendingId id) {
  const std::size_t n = db_->num_pending();
  graph_.Resize(n);
  valid_nodes_.Resize(n);
  footprints_.resize(n);
  // Idempotent on an already-integrated node: re-running the complete-graph
  // edge pass would resurrect its removed conflict edges, and the bucket
  // probe would then strip them again while incrementing
  // num_conflict_pairs_ a second time.
  if (id < valid_nodes_.size() && valid_nodes_.Test(id)) return true;
  if (!db_->IsPending(id) ||
      !db_->checker().FdConsistentWithBase(static_cast<TupleOwner>(id))) {
    // Invalid nodes carry no edges and no bucket entries — exactly how a
    // from-scratch build treats them.
    return false;
  }
  valid_nodes_.ForEach([&](std::size_t v) {
    if (v != id) graph_.AddEdge(id, v);
  });
  valid_nodes_.Set(id);
  ProbeAndBucket(id);
  return true;
}

void FdGraph::ProbeAndBucket(PendingId id) {
  const std::vector<FunctionalDependency>& fds = db_->constraints().fds();
  for (std::size_t ord = 0; ord < fds.size(); ++ord) {
    const FunctionalDependency& fd = fds[ord];
    const Relation& rel = db_->database().relation(fd.relation_id());
    FdBuckets& buckets = fd_buckets_[ord];
    for (TupleId tuple_id : rel.TuplesOwnedBy(static_cast<TupleOwner>(id))) {
      const Tuple& t = rel.tuple(tuple_id);
      Tuple key = t.Project(fd.lhs());
      Tuple dependent = t.Project(fd.rhs());
      std::vector<BucketEntry>& bucket = buckets[key];
      for (const BucketEntry& entry : bucket) {
        if (entry.txn != id && entry.dependent != dependent &&
            graph_.HasEdge(entry.txn, id)) {
          graph_.RemoveEdge(entry.txn, id);
          ++num_conflict_pairs_;
        }
      }
      footprints_[id].emplace_back(ord, key);
      bucket.push_back(BucketEntry{id, std::move(dependent)});
    }
  }
}

void FdGraph::DetachNode(PendingId id) {
  if (id >= valid_nodes_.size() || !valid_nodes_.Test(id)) return;
  // Conflicts involving a valid node are exactly its valid non-neighbours:
  // the graph is complete over valid nodes minus the conflict pairs.
  const std::size_t degree = graph_.Neighbors(id).Count();
  num_conflict_pairs_ -= (valid_nodes_.Count() - 1) - degree;
  graph_.IsolateVertex(id);
  valid_nodes_.Reset(id);
  for (const auto& [ord, key] : footprints_[id]) {
    auto it = fd_buckets_[ord].find(key);
    if (it == fd_buckets_[ord].end()) continue;  // Earlier duplicate entry.
    std::vector<BucketEntry>& bucket = it->second;
    bucket.erase(std::remove_if(
                     bucket.begin(), bucket.end(),
                     [id](const BucketEntry& e) { return e.txn == id; }),
                 bucket.end());
    if (bucket.empty()) fd_buckets_[ord].erase(it);
  }
  footprints_[id].clear();
}

void FdGraph::RemovePendingNode(PendingId id) { DetachNode(id); }

std::vector<PendingId> FdGraph::InsertBaseTuple(std::size_t relation_id,
                                                const Tuple& tuple) {
  std::vector<PendingId> invalidated;
  const std::vector<FunctionalDependency>& fds = db_->constraints().fds();
  for (std::size_t ord = 0; ord < fds.size(); ++ord) {
    const FunctionalDependency& fd = fds[ord];
    if (fd.relation_id() != relation_id) continue;
    const Tuple key = tuple.Project(fd.lhs());
    const Tuple dependent = tuple.Project(fd.rhs());
    auto it = fd_buckets_[ord].find(key);
    if (it == fd_buckets_[ord].end()) continue;
    for (const BucketEntry& entry : it->second) {
      if (entry.dependent != dependent) invalidated.push_back(entry.txn);
    }
  }
  std::sort(invalidated.begin(), invalidated.end());
  invalidated.erase(std::unique(invalidated.begin(), invalidated.end()),
                    invalidated.end());
  // Detach after the probes: DetachNode erases bucket entries, which would
  // invalidate the iteration above.
  for (PendingId id : invalidated) DetachNode(id);
  return invalidated;
}

std::vector<PendingId> FdGraph::ApplyPendingNode(PendingId id) {
  std::vector<PendingId> cascade;
  if (id < valid_nodes_.size() && valid_nodes_.Test(id)) {
    // The applied transaction's tuples joined R, so a still-pending node is
    // base-consistent iff it was and did not conflict with `id` — conflicts
    // are exactly the valid non-neighbours.
    DynamicBitset conflicted = valid_nodes_;
    conflicted -= graph_.Neighbors(id);
    conflicted.Reset(id);
    cascade = conflicted.ToVector();
  }
  DetachNode(id);
  for (PendingId j : cascade) DetachNode(j);
  return cascade;
}

}  // namespace bcdb
