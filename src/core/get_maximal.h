#ifndef BCDB_CORE_GET_MAXIMAL_H_
#define BCDB_CORE_GET_MAXIMAL_H_

#include <cstddef>
#include <vector>

#include "core/blockchain_db.h"
#include "relational/world_view.h"

namespace bcdb {

struct GetMaximalStats {
  std::size_t iterations = 0;
  std::size_t appended = 0;
};

/// The paper's getMaximal(R, I, T'): the unique maximal possible world over
/// the candidate transactions, built by a fixpoint that keeps appending any
/// candidate consistent with the world so far.
///
/// When the candidates are a clique of G^fd_T (mutually FD-consistent and
/// individually FD-consistent with R), the only reason a candidate stays out
/// is a missing inclusion-dependency witness, and the result is the unique
/// ⊆-maximal world over the candidate set.
WorldView GetMaximal(const BlockchainDatabase& db,
                     const std::vector<PendingId>& candidates,
                     GetMaximalStats* stats = nullptr);

}  // namespace bcdb

#endif  // BCDB_CORE_GET_MAXIMAL_H_
