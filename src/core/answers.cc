#include "core/answers.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/possible_worlds.h"
#include "query/analysis.h"
#include "query/compiled_query.h"

namespace bcdb {

namespace {

Status ValidateAnswerQuery(const DenialConstraint& q) {
  if (q.is_aggregate()) {
    return Status::InvalidArgument(
        "answer enumeration requires a non-aggregate query");
  }
  if (q.head_vars.empty()) {
    return Status::InvalidArgument(
        "answer enumeration requires head variables (q(x, ...) :- ...)");
  }
  return Status::OK();
}

std::vector<Tuple> Sorted(std::set<Tuple> tuples) {
  return std::vector<Tuple>(tuples.begin(), tuples.end());
}

}  // namespace

StatusOr<DenialConstraint> BindHead(const DenialConstraint& q,
                                    const Tuple& binding) {
  if (binding.arity() != q.head_vars.size()) {
    return Status::InvalidArgument("binding arity does not match query head");
  }
  std::map<std::string, Value> substitution;
  for (std::size_t i = 0; i < q.head_vars.size(); ++i) {
    if (!q.head_vars[i].is_variable()) {
      return Status::InvalidArgument("head arguments must be variables");
    }
    substitution[q.head_vars[i].name()] = binding[i];
  }
  auto rewrite = [&](Term& term) {
    if (!term.is_variable()) return;
    auto it = substitution.find(term.name());
    if (it != substitution.end()) term = Term::Const(it->second);
  };

  DenialConstraint bound = q;
  bound.head_vars.clear();
  bound.name = q.name + "_bound";
  for (Atom& atom : bound.positive_atoms) {
    for (Term& term : atom.args) rewrite(term);
  }
  for (Atom& atom : bound.negated_atoms) {
    for (Term& term : atom.args) rewrite(term);
  }
  for (Comparison& cmp : bound.comparisons) {
    rewrite(cmp.lhs);
    rewrite(cmp.rhs);
  }
  return bound;
}

StatusOr<std::vector<Tuple>> CertainAnswers(DcSatEngine& engine,
                                            const DenialConstraint& q,
                                            std::size_t world_limit) {
  BCDB_RETURN_IF_ERROR(ValidateAnswerQuery(q));
  const BlockchainDatabase& db = engine.db();
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db.database());
  if (!compiled.ok()) return compiled.status();

  const QueryAnalysis analysis = AnalyzeQuery(q, db.catalog());
  if (analysis.monotone) {
    // R is a possible world and q(R) ⊆ q(W) for every world W, so the
    // intersection over Poss(D) is exactly q(R).
    std::set<Tuple> answers;
    for (Tuple& t : compiled->Answers(db.BaseView())) {
      answers.insert(std::move(t));
    }
    return Sorted(std::move(answers));
  }

  // Non-monotone: intersect over all possible worlds.
  StatusOr<std::vector<WorldView>> worlds =
      EnumeratePossibleWorlds(db, world_limit);
  if (!worlds.ok()) return worlds.status();
  bool first = true;
  std::set<Tuple> certain;
  for (const WorldView& world : *worlds) {
    std::set<Tuple> here;
    for (Tuple& t : compiled->Answers(world)) here.insert(std::move(t));
    if (first) {
      certain = std::move(here);
      first = false;
    } else {
      std::set<Tuple> kept;
      std::set_intersection(certain.begin(), certain.end(), here.begin(),
                            here.end(), std::inserter(kept, kept.begin()));
      certain = std::move(kept);
    }
    if (certain.empty()) break;
  }
  return Sorted(std::move(certain));
}

StatusOr<std::vector<Tuple>> PossibleAnswers(DcSatEngine& engine,
                                             const DenialConstraint& q,
                                             std::size_t world_limit) {
  BCDB_RETURN_IF_ERROR(ValidateAnswerQuery(q));
  const BlockchainDatabase& db = engine.db();
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db.database());
  if (!compiled.ok()) return compiled.status();

  const QueryAnalysis analysis = AnalyzeQuery(q, db.catalog());
  if (analysis.monotone) {
    // Candidates are the answers over the (not necessarily consistent)
    // superset R ∪ T; a candidate is possible iff the head-bound Boolean
    // query can become true in some world — i.e. iff DCSat does NOT
    // certify the bound query as a satisfied denial constraint.
    std::set<Tuple> possible;
    for (const Tuple& candidate : compiled->Answers(db.PendingUnionView())) {
      StatusOr<DenialConstraint> bound = BindHead(q, candidate);
      if (!bound.ok()) return bound.status();
      StatusOr<DcSatResult> result = engine.Check(*bound);
      if (!result.ok()) return result.status();
      if (!result->satisfied) possible.insert(candidate);
    }
    return Sorted(std::move(possible));
  }

  // Non-monotone: union over all possible worlds.
  StatusOr<std::vector<WorldView>> worlds =
      EnumeratePossibleWorlds(db, world_limit);
  if (!worlds.ok()) return worlds.status();
  std::set<Tuple> possible;
  for (const WorldView& world : *worlds) {
    for (Tuple& t : compiled->Answers(world)) possible.insert(std::move(t));
  }
  return Sorted(std::move(possible));
}

}  // namespace bcdb
