#ifndef BCDB_CORE_MUTATION_LOG_H_
#define BCDB_CORE_MUTATION_LOG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "relational/tuple.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcdb {

/// Index of a pending transaction within a blockchain database. Equals the
/// TupleOwner tag of its tuples.
using PendingId = std::size_t;

/// Sentinel pending id of events that concern no pending transaction
/// (the base-state kinds kCurrentInserted / kCurrentRemoved).
inline constexpr PendingId kNoPendingId = ~std::size_t{0};

/// What a BlockchainDatabase mutation did. The six kinds are the full
/// lifecycle churn of a node: the mempool absorbing a transaction, a block
/// confirming one, the node evicting one, a direct insert into the current
/// state (bulk loading, orphan-free coinbases), a base-tuple retraction
/// (a reorg orphaning part of R), and a reorg returning a confirmed
/// transaction to pending.
enum class MutationKind : std::uint8_t {
  kPendingAdded,
  kPendingApplied,
  kPendingDiscarded,
  kCurrentInserted,
  kCurrentRemoved,
  kPendingRestored,
};

/// Number of MutationKind enumerators; codecs and exhaustiveness tests key
/// range checks on this so a new kind cannot silently pass as garbage.
inline constexpr std::size_t kNumMutationKinds = 6;

const char* MutationKindToString(MutationKind kind);

/// One entry of the database's mutation log. Consumers use the payload to
/// update derived structures (fd-transaction graph, Θ_I components,
/// constraint dirtiness) without rescanning the database.
struct MutationEvent {
  MutationKind kind = MutationKind::kPendingAdded;
  /// Position in the log (monotone, starts at 0).
  std::uint64_t seq = 0;
  /// Database version after the mutation.
  std::uint64_t version = 0;
  /// The affected pending transaction; kNoPendingId for the base-state
  /// kinds (kCurrentInserted / kCurrentRemoved).
  PendingId pending_id = kNoPendingId;
  /// Relation ids touched by the mutation (the pending transaction's tuple
  /// relations, or the inserted/removed tuple's relation). Recorded at event
  /// time so consumers can reason about a transaction even after
  /// DiscardPending has dropped its tuples from the store.
  std::vector<std::size_t> relation_ids;
  /// kCurrentInserted / kCurrentRemoved: the affected base tuple, so
  /// incremental consumers can probe their determinant buckets without
  /// re-reading the store. Empty (arity 0) for the pending kinds.
  Tuple tuple;
};

/// Bounded, append-only log of mutation events with sequence-number
/// addressing. Readers keep a cursor (the next seq they have not consumed)
/// and pull batches with ReadSince; a reader that lags behind the retention
/// window learns it missed events and must fall back to a full rebuild of
/// whatever it derives from the log.
class MutationLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Outcome of a ReadSince. The two failure modes demand opposite
  /// reactions, so they are distinct: kTrimmed is the legitimate "you
  /// lagged behind the retention window, rebuild from scratch" signal every
  /// incremental consumer must handle, while kForeignCursor means the
  /// cursor never came from this log at all — a caller bug (e.g. a cursor
  /// carried across databases), asserted on in debug builds.
  enum class ReadResult {
    kOk,
    kTrimmed,
    kForeignCursor,
  };

  explicit MutationLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends one event, stamping its seq; trims the oldest entry when the
  /// retention window is full.
  void Append(MutationEvent event) BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    event.seq = end_seq_;
    events_.push_back(std::move(event));
    ++end_seq_;
    if (events_.size() > capacity_) events_.pop_front();
  }

  /// Seq of the oldest retained event (== end_seq() when empty).
  std::uint64_t begin_seq() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return BeginSeqLocked();
  }
  /// Seq the next appended event will get; a fully-caught-up reader's cursor.
  std::uint64_t end_seq() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return end_seq_;
  }

  /// Copies all events with seq >= `from` into `out` (appending, ascending
  /// seq). Returns kTrimmed — with `out` untouched — when events in
  /// [from, end) have already fallen out of the retention window (the
  /// reader must rebuild), and kForeignCursor — also with `out` untouched —
  /// when `from` lies beyond end_seq() and therefore cannot be a cursor
  /// ever handed out by this log.
  ReadResult ReadSince(std::uint64_t from,
                       std::vector<MutationEvent>* out) const
      BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (from > end_seq_) {
      assert(false && "MutationLog::ReadSince: cursor beyond end_seq (from a "
                      "different log?)");
      return ReadResult::kForeignCursor;
    }
    if (from < BeginSeqLocked()) return ReadResult::kTrimmed;
    for (std::size_t i = from - BeginSeqLocked(); i < events_.size(); ++i) {
      out->push_back(events_[i]);
    }
    return ReadResult::kOk;
  }

  /// Restore hook for the durable storage backend: positions the next seq
  /// of a fresh, never-appended log so that cursors taken against a
  /// recovered database line up with the persisted history.
  void RestoreSeq(std::uint64_t next_seq) BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    assert(events_.empty() && end_seq_ == 0 &&
           "RestoreSeq on a log that has already seen events");
    end_seq_ = next_seq;
  }

 private:
  std::uint64_t BeginSeqLocked() const BCDB_REQUIRES(mutex_) {
    return end_seq_ - events_.size();
  }

  // The retention window is internally locked so that the WAL-absorbing
  // durability sink, a polling monitor, and an ingest thread can share one
  // log. kMutationLog sits above kDurableStore: a checkpoint holding the
  // store lock reads end_seq() here.
  mutable Mutex mutex_{LockRank::kMutationLog};
  std::size_t capacity_ BCDB_GUARDED_BY(mutex_);
  std::deque<MutationEvent> events_ BCDB_GUARDED_BY(mutex_);
  std::uint64_t end_seq_ BCDB_GUARDED_BY(mutex_) = 0;
};

inline const char* MutationKindToString(MutationKind kind) {
  switch (kind) {
    case MutationKind::kPendingAdded:
      return "pending-added";
    case MutationKind::kPendingApplied:
      return "pending-applied";
    case MutationKind::kPendingDiscarded:
      return "pending-discarded";
    case MutationKind::kCurrentInserted:
      return "current-inserted";
    case MutationKind::kCurrentRemoved:
      return "current-removed";
    case MutationKind::kPendingRestored:
      return "pending-restored";
  }
  return "?";
}

}  // namespace bcdb

#endif  // BCDB_CORE_MUTATION_LOG_H_
