#include "core/probability.h"

#include <cmath>

#include "query/compiled_query.h"
#include "util/rng.h"

namespace bcdb {

WorldView SampleWorld(const BlockchainDatabase& db,
                      const InclusionModel& model, Xoshiro256& rng) {
  std::vector<PendingId> order = db.PendingIds();
  // Fisher–Yates shuffle: arrival order of the offers.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  WorldView world = db.BaseView();
  bool progressed = true;
  std::vector<PendingId> offered;
  offered.reserve(order.size());
  for (PendingId id : order) {
    if (rng.NextBool(model.ProbabilityOf(id))) offered.push_back(id);
  }
  // Append offered transactions greedily; re-sweep so that dependants whose
  // parents appear later in arrival order still make it (nodes retry their
  // mempool every block).
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < offered.size();) {
      const TupleOwner owner = static_cast<TupleOwner>(offered[i]);
      if (!world.IsActive(owner) &&
          db.checker().CanAppendOwner(world, owner)) {
        world.Activate(owner);
        offered[i] = offered.back();
        offered.pop_back();
        progressed = true;
      } else if (world.IsActive(owner)) {
        offered[i] = offered.back();
        offered.pop_back();
      } else {
        ++i;
      }
    }
  }
  return world;
}

StatusOr<ViolationEstimate> EstimateViolationProbability(
    const BlockchainDatabase& db, const DenialConstraint& q,
    const InclusionModel& model, std::size_t samples, std::uint64_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(q, &db.database());
  if (!compiled.ok()) return compiled.status();

  Xoshiro256 rng(seed);
  ViolationEstimate estimate;
  estimate.samples = samples;
  for (std::size_t s = 0; s < samples; ++s) {
    const WorldView world = SampleWorld(db, model, rng);
    if (compiled->Evaluate(world)) ++estimate.violations;
  }
  estimate.probability =
      static_cast<double>(estimate.violations) / static_cast<double>(samples);
  estimate.standard_error =
      std::sqrt(estimate.probability * (1.0 - estimate.probability) /
                static_cast<double>(samples));
  return estimate;
}

}  // namespace bcdb
