#ifndef BCDB_CORE_POSSIBLE_WORLDS_H_
#define BCDB_CORE_POSSIBLE_WORLDS_H_

#include <cstddef>
#include <vector>

#include "core/blockchain_db.h"
#include "relational/world_view.h"
#include "util/deadline.h"
#include "util/status.h"

namespace bcdb {

/// Decides R' ∈ Poss(D) for R' = R ∪ (the given pending transactions)
/// — Proposition 1 of the paper, in PTIME.
///
/// Greedy: repeatedly append any transaction of `subset` that preserves I.
/// Complete because FD satisfaction is anti-monotone (any subset of an
/// FD-consistent set is FD-consistent) and IND witnesses persist under
/// insertion, so an appendable transaction never becomes unappendable.
bool IsPossibleWorld(const BlockchainDatabase& db,
                     const std::vector<PendingId>& subset);

/// Materializes Poss(D) exactly, as world views (the base world included),
/// by breadth-first search over the can-append relation. Exponential in
/// |T| in the worst case — this is the oracle for tests and for
/// ExhaustiveDcSat, not a production path. Fails with OutOfRange once more
/// than `limit` distinct worlds are found.
StatusOr<std::vector<WorldView>> EnumeratePossibleWorlds(
    const BlockchainDatabase& db, std::size_t limit);

/// EnumeratePossibleWorlds with graceful degradation: `budget` (may be
/// null = unlimited) is charged one world per BFS pop — the enumeration's
/// cooperative preemption point — and on expiry the search stops where it
/// is instead of erroring, returning the worlds found so far with
/// `complete == false`. A truncated enumeration is still a genuine subset
/// of Poss(D); it just cannot certify absence.
struct PossibleWorldsEnumeration {
  std::vector<WorldView> worlds;
  /// False: the budget expired before Poss(D) was exhausted.
  bool complete = true;
};
StatusOr<PossibleWorldsEnumeration> EnumeratePossibleWorldsWithin(
    const BlockchainDatabase& db, std::size_t limit, const Budget* budget);

}  // namespace bcdb

#endif  // BCDB_CORE_POSSIBLE_WORLDS_H_
