#ifndef BCDB_CORE_TRANSACTION_H_
#define BCDB_CORE_TRANSACTION_H_

#include <string>
#include <vector>

#include "relational/tuple.h"

namespace bcdb {

/// An insert transaction: a set of ground tuples destined for (some of) the
/// relations of a blockchain database. Transactions are append-only — the
/// only kind a blockchain database supports.
class Transaction {
 public:
  struct Item {
    std::string relation;
    Tuple tuple;
  };

  Transaction() = default;
  explicit Transaction(std::string label) : label_(std::move(label)) {}

  /// Adds one tuple for `relation`. Duplicates are tolerated (set semantics
  /// are enforced at insertion into the database).
  void Add(std::string relation, Tuple tuple) {
    items_.push_back(Item{std::move(relation), std::move(tuple)});
  }

  const std::vector<Item>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Optional display label ("T1", a Bitcoin txid, ...).
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

 private:
  std::string label_;
  std::vector<Item> items_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_TRANSACTION_H_
