#ifndef BCDB_CORE_TRACTABLE_H_
#define BCDB_CORE_TRACTABLE_H_

#include <optional>

#include "core/blockchain_db.h"
#include "core/fd_graph.h"
#include "query/ast.h"
#include "util/status.h"

// Forward declarations to avoid a core <-> core include cycle with dcsat.h
// and a heavyweight include of the query compiler.
namespace bcdb {
struct DcSatResult;
class CompiledQuery;
struct QueryAnalysis;
}

namespace bcdb {

/// Polynomial-time decision procedures for the tractable fragments of
/// Theorem 1 (and the monotone half of Theorem 2) — the cases where the
/// general clique search is provably unnecessary:
///
/// * **FD-only** (`∆ ⊆ {key, fd}`), positive conjunctive `q`: a world is
///   any FD-compatible transaction set (inclusion witnesses never gate
///   appends), so `q` is realizable iff some satisfying assignment over
///   R ∪ T is *supported* by transactions that are pairwise FD-consistent
///   and individually consistent with R. We enumerate assignment supports
///   and check their owner sets against G^fd_T — |q| is constant, so this
///   is polynomial data complexity (Theorem 1, case DCSat(Qc,{key,fd})).
///
/// * **IND-only** (`∆ ⊆ {ind}`), monotone `q`: without FDs no two
///   transactions conflict, so Poss(D) has a *unique maximal* world —
///   getMaximal over all of T — and a monotone constraint is satisfied iff
///   `q` is false there (Theorem 1 case DCSat(Qc,{ind}) restricted to
///   positive queries, and Theorem 2 case DCSat(Q+_{α,>},{ind})).
///
/// `TryTractableDcSat` returns nullopt when (q, I) falls outside these
/// fragments; the caller then runs the general algorithms. Results carry
/// `DcSatAlgorithm::kTractable` and a witness world when unsatisfied.
///
/// `fd_graph` must be current for `db` (the engine's cached one).
/// `precompiled`, when given, must be `q` compiled against `db`'s database;
/// it skips the internal recompilation, which also keeps the procedure free
/// of lazy index construction — a requirement for concurrent callers
/// (ConstraintMonitor::Poll runs one TryTractableDcSat per constraint in
/// parallel over a read-only snapshot).
/// `support_limit` bounds the assignment-support enumeration of the FD-only
/// path; if exceeded, the procedure abstains (nullopt) rather than risk a
/// pathological query shape.
/// `preanalyzed`, when given, must be AnalyzeQuery(q, db.catalog()) — the
/// engine's dispatch already has it in hand and skips the recomputation.
std::optional<DcSatResult> TryTractableDcSat(const BlockchainDatabase& db,
                                             const FdGraph& fd_graph,
                                             const DenialConstraint& q,
                                             const CompiledQuery* precompiled = nullptr,
                                             std::size_t support_limit = 100000,
                                             const QueryAnalysis* preanalyzed = nullptr);

}  // namespace bcdb

#endif  // BCDB_CORE_TRACTABLE_H_
