#ifndef BCDB_CORE_BIT_GRAPH_H_
#define BCDB_CORE_BIT_GRAPH_H_

#include <cstddef>
#include <vector>

#include "util/bitset.h"

namespace bcdb {

/// Undirected graph over [0, n) with bitset adjacency rows.
///
/// The fd-transaction graph G^fd_T is near-complete (conflicts are rare in
/// practice, as the paper notes), so Bron–Kerbosch needs fast row
/// intersections; a dense bitset representation gives them in n/64 words.
class BitGraph {
 public:
  explicit BitGraph(std::size_t n) : n_(n), rows_(n, DynamicBitset(n)) {}

  std::size_t num_vertices() const { return n_; }

  /// Extends the vertex space to `n`; new vertices start isolated, existing
  /// adjacency is preserved. No-op when already at least that large.
  void Resize(std::size_t n) {
    if (n <= n_) return;
    n_ = n;
    for (DynamicBitset& row : rows_) row.Resize(n);
    rows_.resize(n, DynamicBitset(n));
  }

  void AddEdge(std::size_t u, std::size_t v) {
    if (u == v) return;
    rows_[u].Set(v);
    rows_[v].Set(u);
  }

  void RemoveEdge(std::size_t u, std::size_t v) {
    if (u == v) return;
    rows_[u].Reset(v);
    rows_[v].Reset(u);
  }

  bool HasEdge(std::size_t u, std::size_t v) const {
    return u != v && rows_[u].Test(v);
  }

  const DynamicBitset& Neighbors(std::size_t v) const { return rows_[v]; }

  /// Makes every distinct pair adjacent (starting point for conflict-based
  /// construction: complete graph minus conflict pairs).
  void MakeComplete() {
    for (std::size_t v = 0; v < n_; ++v) {
      rows_[v].SetAll();
      rows_[v].Reset(v);
    }
  }

  /// Complete graph over `subset`: vertices in the subset become pairwise
  /// adjacent, all other vertices isolated.
  void MakeCompleteOver(const DynamicBitset& subset) {
    for (std::size_t v = 0; v < n_; ++v) {
      if (subset.Test(v)) {
        rows_[v] = subset;
        rows_[v].Reset(v);
      } else {
        rows_[v].Clear();
      }
    }
  }

  /// Removes every edge incident to `v` (the incremental fd-graph's node
  /// removal).
  void IsolateVertex(std::size_t v) {
    rows_[v].ForEach([&](std::size_t u) { rows_[u].Reset(v); });
    rows_[v].Clear();
  }

  std::size_t CountEdges() const {
    std::size_t twice = 0;
    for (const DynamicBitset& row : rows_) twice += row.Count();
    return twice / 2;
  }

 private:
  std::size_t n_;
  std::vector<DynamicBitset> rows_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_BIT_GRAPH_H_
