#ifndef BCDB_CORE_DCSAT_H_
#define BCDB_CORE_DCSAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "core/blockchain_db.h"
#include "util/flat_table.h"
#include "core/fd_graph.h"
#include "core/ind_graph.h"
#include "query/ast.h"
#include "query/compiled_query.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace bcdb {

/// Which search procedure decides D |= ¬q.
enum class DcSatAlgorithm {
  /// Pick automatically: OptDCSat for connected monotone conjunctive
  /// constraints, NaiveDCSat for other monotone constraints (e.g.
  /// aggregates), exhaustive possible-world search otherwise.
  kAuto,
  /// Paper Figure 4: maximal cliques of G^fd_T over all pending
  /// transactions. Requires a monotone constraint.
  kNaive,
  /// Paper Figure 5: split pending transactions into the connected
  /// components of G^{q,ind}_T, filter by constant coverage, then run the
  /// clique search per component. Requires a monotone, connected,
  /// non-aggregate constraint.
  kOpt,
  /// Exact enumeration of Poss(D) — exponential; correct for arbitrary
  /// (including non-monotone) constraints.
  kExhaustive,
  /// One of the Theorem-1 polynomial fragments engaged (FD-only support
  /// check or IND-only unique-maximal-world check); only ever *selected*
  /// automatically, never requested. See core/tractable.h.
  kTractable,
  /// The static analyzer decided the check without touching any data: the
  /// constraint is provably unsatisfiable in every world (kTriviallyUnsat),
  /// so D |= ¬q holds vacuously. Only ever selected automatically, and only
  /// on the report-carrying Check/CheckPrepared overloads.
  kStatic,
};

const char* DcSatAlgorithmToString(DcSatAlgorithm algorithm);

struct DcSatOptions {
  DcSatAlgorithm algorithm = DcSatAlgorithm::kAuto;
  /// With kAuto: try the Theorem-1 polynomial fragments first (FD-only /
  /// IND-only constraint sets) before the general clique search.
  bool use_tractable_fragments = true;
  /// Evaluate q over R ∪ T first; if false there, monotonicity makes the
  /// whole search unnecessary (paper Section 6.3, final optimization).
  bool use_precheck = true;
  /// OptDCSat only: skip components that cannot cover q's constants.
  bool use_covers = true;
  /// Tomita pivoting inside Bron–Kerbosch.
  bool use_pivot = true;
  /// Exhaustive only: abort after this many worlds.
  std::size_t exhaustive_world_limit = 1u << 20;
  /// Worker threads for the OptDCSat component-level clique search (and, via
  /// ConstraintMonitor::Poll, for cross-constraint evaluation). 0 = hardware
  /// concurrency; 1 = the exact serial reference path. Results (satisfied,
  /// witness, clique counts) are identical at every thread count: components
  /// are decided independently (Proposition 2) and the lowest violating
  /// component index wins, matching the serial scan order.
  std::size_t num_threads = 1;
  /// Time/work ceiling for this check (DCSat is CoNP-complete for
  /// {key, ind} constraint sets — paper Theorem 1 — so adversarial mempool
  /// shapes can make any exact check blow up). Default-constructed limits
  /// impose nothing and the check is bit-identical to an unbudgeted one;
  /// with limits set, an expiring check returns `DcSatResult::decided ==
  /// false` (with partial stats) instead of stalling or erroring. A
  /// violating world found before expiry still yields a decided unsat
  /// result — one counterexample is conclusive regardless of budget — but
  /// its witness need not be the canonical lowest-component one.
  BudgetLimits budget;
};

/// How the engine keeps its steady-state structures (paper Section 6.3)
/// fresh across mempool mutations.
struct SteadyStateOptions {
  /// Consume the database's mutation-delta log and patch the fd graph and
  /// Θ_I components in place, instead of rebuilding them on every version
  /// change. The maintained structures are bit-identical to a from-scratch
  /// build (differential-tested), so this is purely a performance knob.
  bool incremental = true;
  /// Fall back to a full rebuild when more than this many mutation events
  /// accumulated since the last refresh — beyond some churn volume, replay
  /// costs more than reconstruction.
  std::size_t max_delta_events = 256;
};

/// Cumulative refresh behaviour; how often the delta path engaged and why
/// it ever fell back to full rebuilds.
struct SteadyStateStats {
  std::size_t full_rebuilds = 0;
  std::size_t incremental_batches = 0;
  std::size_t incremental_events = 0;  // Mutation events applied as deltas.
  std::size_t fallbacks_batch_too_large = 0;  // > max_delta_events pending.
  std::size_t fallbacks_missed_events = 0;    // Mutation log trimmed past us.
  /// A base-state event (kCurrentInserted / kCurrentRemoved) arrived without
  /// its tuple payload, so the determinant-bucket probes cannot run. The
  /// public mutation API always attaches the payload — base churn is handled
  /// incrementally — so this counts only hand-built event streams.
  std::size_t fallbacks_base_insert = 0;
  /// One batch both integrated (added or restored) and applied a
  /// transaction; replay cannot reconstruct its cascade (see
  /// TryIncrementalRefresh).
  std::size_t fallbacks_applied_in_batch = 0;
};

/// What the most recent RefreshCaches (triggered by Check /
/// PrepareSteadyState) actually did.
struct SteadyStateRefresh {
  bool refreshed = false;     // false: caches were already fresh.
  bool full_rebuild = false;  // Meaningful only when refreshed.
  std::size_t events_applied = 0;
  /// Still-pending transactions invalidated because they FD-conflicted with
  /// a transaction the delta batch applied, or with a tuple it inserted
  /// directly into the current state.
  std::vector<PendingId> cascade_invalidated;
  /// Still-pending transactions that regained validity because the delta
  /// batch shrank the current state (kCurrentRemoved / kPendingRestored).
  std::vector<PendingId> revalidated;
};

struct DcSatStats {
  DcSatAlgorithm algorithm_used = DcSatAlgorithm::kAuto;
  bool precheck_decided = false;  // The R ∪ T pre-check settled the answer.
  std::size_t num_pending = 0;
  std::size_t num_valid_nodes = 0;
  std::size_t fd_conflict_pairs = 0;
  std::size_t num_components = 0;          // Opt only.
  std::size_t num_components_covered = 0;  // Opt only.
  /// Components whose search ran to completion (covered-and-searched or
  /// filtered by covers). With an expired budget this is how far the scan
  /// got; without one it equals num_components.
  std::size_t components_completed = 0;
  std::size_t num_cliques = 0;
  std::size_t num_worlds_evaluated = 0;
  /// The check's BudgetLimits tripped (deadline or a work ceiling). The
  /// result is still decided if a violating world was found first.
  bool budget_expired = false;
  std::size_t threads_used = 1;          // Worker-pool width (1 = serial).
  std::size_t components_parallel = 0;   // Components dispatched as pool tasks.
  std::size_t cancelled_tasks = 0;       // Tasks aborted by cooperative cancellation.
  bool steady_cache_hit = false;  // fd-graph/Θ_I caches were already fresh.
  double total_seconds = 0;
  double graph_seconds = 0;  // fd-graph + component construction.
};

struct DcSatResult {
  /// False: the check's budget (DcSatOptions::budget) expired before the
  /// answer settled — `satisfied`/`witness` are meaningless and the stats
  /// describe the partial search. Always true with unlimited budgets.
  bool decided = true;
  /// D |= ¬q: the denial constraint holds in every possible world.
  bool satisfied = false;
  /// When !satisfied: the pending transactions of one violating world.
  std::optional<std::vector<PendingId>> witness;
  DcSatStats stats;
};

/// Per-binding verdict of one CheckTemplateBatch call.
enum class TemplateBatchOutcome {
  /// The grounded constraint already holds over the current state R alone.
  kHappened,
  /// Some possible world satisfies the grounded constraint (but not R).
  kPossible,
  /// No possible world satisfies the grounded constraint: D |= ¬q_b.
  kImpossible,
  /// The shared budget expired before this binding settled.
  kUndecided,
};

struct TemplateBatchResult {
  /// One outcome per input binding, in input order (duplicates allowed;
  /// they share one evaluation and receive identical outcomes).
  std::vector<TemplateBatchOutcome> outcomes;
  DcSatStats stats;
};

/// Reusable dedup index over one class's binding list. At 10^5+ members the
/// dominant batch cost is re-hashing every binding tuple per call; a caller
/// holding a stable member list builds this once and passes it to
/// CheckTemplateBatch on every poll, reducing per-member setup to an array
/// read. Only valid for the exact binding vector it was built from —
/// rebuild whenever that list changes.
struct TemplateBindingIndex {
  /// Unique binding -> evaluation slot in [0, num_unique).
  FlatIdMap<Tuple, std::size_t, TupleHash, TupleEq> slot_of;
  /// Input position -> evaluation slot (duplicates share a slot).
  std::vector<std::size_t> slots;
  std::size_t num_unique = 0;

  static TemplateBindingIndex Build(const std::vector<Tuple>& bindings);
};

/// Decides denial-constraint satisfaction over one blockchain database,
/// owning the steady-state structures of paper Section 6.3: the
/// fd-transaction graph, the Θ_I part of the ind-graph components, and the
/// per-transaction validity bits. Caches are keyed on the database version;
/// after mutations they are patched from the database's mutation-delta log
/// (see SteadyStateOptions) — including direct base-state inserts,
/// retractions and reorg restores — or, when a delta batch is too large,
/// the log was trimmed past the engine's cursor, or one batch both
/// integrated and applied a transaction, rebuilt from scratch.
class DcSatEngine {
 public:
  /// `db` must outlive the engine.
  explicit DcSatEngine(const BlockchainDatabase* db,
                       SteadyStateOptions steady_options = {})
      : db_(db), steady_options_(steady_options) {}

  const BlockchainDatabase& db() const { return *db_; }

  /// Decides D |= ¬q. Fails if `q` does not compile against the database,
  /// or if an explicitly requested algorithm is unsound for `q` (kNaive/
  /// kOpt on a non-monotone constraint, kOpt on a disconnected or aggregate
  /// constraint). Keeps the steady-state caches fresh as a side effect.
  StatusOr<DcSatResult> Check(const DenialConstraint& q,
                              const DcSatOptions& options = {});

  /// Convenience overload: parses and compiles `query_text` internally, so
  /// callers with textual constraints skip the parse/compile boilerplate.
  /// Fails on syntax errors exactly like ParseDenialConstraint.
  StatusOr<DcSatResult> Check(std::string_view query_text,
                              const DcSatOptions& options = {});

  /// Classified check: dispatches on `report`'s tractability class instead
  /// of probing at runtime. `report` must be this database's analysis of
  /// `q` (see Analyze); the verdict and witness are bit-identical to the
  /// unclassified Check — classification only routes, never re-decides:
  /// kTriviallyUnsat short-circuits to a vacuous satisfied (the general
  /// path's pre-check would conclude the same), the PTIME classes run the
  /// Theorem-1 fragment they were proved to inhabit, and kCoNpMixed skips
  /// the fragment probe it could never pass. Fails with InvalidArgument on
  /// a report carrying errors.
  StatusOr<DcSatResult> Check(const DenialConstraint& q,
                              const AnalysisReport& report,
                              const DcSatOptions& options = {});

  /// Classified const-path check (see CheckPrepared below for the cache
  /// freshness contract and concurrency rules).
  StatusOr<DcSatResult> CheckPrepared(const DenialConstraint& q,
                                      const CompiledQuery& compiled,
                                      const AnalysisReport& report,
                                      const DcSatOptions& options = {}) const;

  /// Statically analyzes `q` against this database and its integrity
  /// constraints (no base-state probe: the engine re-checks R itself on
  /// every classified Check, so the cached class stays data-independent).
  AnalysisReport Analyze(const DenialConstraint& q) const;

  /// Const query path for concurrent callers (ConstraintMonitor::Poll):
  /// decides D |= ¬q with a query already compiled against the current
  /// database, without touching the engine's caches. Requires
  /// PrepareSteadyState (or any Check) to have run since the last database
  /// mutation; fails with Internal otherwise. Many threads may call this
  /// simultaneously as long as each call uses `num_threads` == 1 (the
  /// engine-owned pool is not re-entrant) and the database is not mutated
  /// concurrently.
  StatusOr<DcSatResult> CheckPrepared(const DenialConstraint& q,
                                      const CompiledQuery& compiled,
                                      const DcSatOptions& options = {}) const;

  /// Batch evaluation of one template class (paper Section 6 machinery run
  /// once per class instead of once per constraint): `generalized` is the
  /// class's generalized query — template parameters projected into head
  /// variables, compiled against the current database — and each `bindings`
  /// entry is one member's parameter tuple (interned ValueIds, in the
  /// template's parameter order). One answer enumeration over R classifies
  /// kHappened, one over R ∪ T eliminates the impossible (the query is
  /// monotone by admission), and one shared Θ_I ∪ Θ_template component
  /// decomposition plus clique enumeration decides the survivors — each
  /// evaluated world marks every binding it answers, so per-binding work is
  /// one hash lookup at the leaves. `template_equalities` must come from
  /// TemplateEqualitiesFromQuery on the generalized query (coarser than any
  /// member's Θ_q, which keeps the shared decomposition sound for every
  /// binding). Outcomes are bit-identical to running the serial grounded
  /// check per member under unlimited budgets.
  ///
  /// Same contract as CheckPrepared: requires fresh steady-state caches
  /// (Internal otherwise), const, callable concurrently for different
  /// classes as long as `options.num_threads` == 1 and the database is not
  /// mutated. The budget is shared across the whole class; bindings still
  /// unsettled at expiry come back kUndecided.
  StatusOr<TemplateBatchResult> CheckTemplateBatch(
      const CompiledQuery& generalized,
      const std::vector<EqualityConstraint>& template_equalities,
      const std::vector<Tuple>& bindings, const DcSatOptions& options) const;

  /// As above, with the binding dedup index prebuilt by the caller
  /// (TemplateBindingIndex::Build over the same `bindings` vector). This is
  /// the steady-state polling entry point: the index survives across polls
  /// while the member list is unchanged, so the batch pays no per-member
  /// hashing on the way in or out.
  StatusOr<TemplateBatchResult> CheckTemplateBatch(
      const CompiledQuery& generalized,
      const std::vector<EqualityConstraint>& template_equalities,
      const std::vector<Tuple>& bindings, const TemplateBindingIndex& index,
      const DcSatOptions& options) const;

  /// Forces cache (re)construction; returns the fd graph for inspection.
  const FdGraph& PrepareSteadyState();

  /// Cumulative steady-state cache behaviour across Check /
  /// PrepareSteadyState calls (a hit = the database version was unchanged).
  std::size_t steady_cache_hits() const { return cache_hits_; }
  std::size_t steady_cache_misses() const { return cache_misses_; }

  /// Capacity of the compiled-query cache (FIFO eviction beyond it).
  static constexpr std::size_t kCompiledCacheCapacity = 32;

  /// Compiled-query cache for the serial Check paths. Monitors, pollers and
  /// benchmark harnesses re-check the same constraints over an unchanged
  /// database; recompiling per check (plan construction, structural
  /// analysis, Θ_q derivation) is pure overhead there. Keyed by query text
  /// and database version — conservative, since plans are structural, but
  /// cover probes and size hints are only validated against the version
  /// they compiled at.
  ///
  /// Entries are shared-ownership: the returned query stays valid for as
  /// long as the caller holds the pointer, across arbitrary later compiles,
  /// cache growth, and FIFO eviction. (A previous revision returned a raw
  /// pointer into the cache vector, which a later GetOrCompile could
  /// reallocate — dangling every outstanding compiled query.)
  StatusOr<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      const DenialConstraint& q);

  const SteadyStateOptions& steady_state_options() const {
    return steady_options_;
  }
  const SteadyStateStats& steady_state_stats() const { return steady_stats_; }
  /// Describes the most recent cache refresh attempt (reset by every Check /
  /// PrepareSteadyState; `refreshed` is false after a version cache hit).
  const SteadyStateRefresh& last_refresh() const { return last_refresh_; }

 private:
  /// The whole decision procedure after compilation, against fresh caches.
  /// `scratch` (optional) is reused for the Θ_I ∪ Θ_q union-find instead of
  /// allocating per call; concurrent callers pass nullptr.
  /// `report` is the optional static classification: kTriviallyUnsat short-
  /// circuits, PTIME classes go straight to their fragment, kCoNpMixed
  /// skips the fragment probe. nullptr = the unclassified legacy path.
  StatusOr<DcSatResult> CheckImpl(const DenialConstraint& q,
                                  const CompiledQuery& compiled,
                                  const DcSatOptions& options,
                                  const AnalysisReport* report,
                                  UnionFind* scratch, bool cache_hit,
                                  const Stopwatch& total_watch) const;

  /// Runs the per-component clique searches on the worker pool. Returns the
  /// merged satisfied/witness/stats contribution into `result`. `budget`
  /// (may be null) is shared across every task.
  void ParallelComponentSearch(
      const CompiledQuery& compiled, const DcSatOptions& options,
      const std::vector<std::vector<PendingId>>& components,
      std::size_t num_workers, const Budget* budget,
      DcSatResult& result) const;

  void RefreshCaches();
  /// Patches fd_graph_/theta_i_ from the mutation events since
  /// consumed_seq_. Returns false — leaving the caches untouched, all
  /// eligibility checks run before the first mutation — when the delta path
  /// is ineligible (disabled, untracked graph, trimmed log, oversized
  /// batch, a payload-less base-state event, or an add-or-restore+apply of
  /// one transaction within the batch, whose cascade replay would be
  /// unsound).
  bool TryIncrementalRefresh();
  std::shared_ptr<ThreadPool> PoolFor(std::size_t num_workers) const;

  const BlockchainDatabase* db_;
  SteadyStateOptions steady_options_;
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  /// Mutation-log position up to which the caches have been maintained.
  std::uint64_t consumed_seq_ = 0;
  std::optional<FdGraph> fd_graph_;
  EqualityComponents theta_i_;
  SteadyStateStats steady_stats_;
  SteadyStateRefresh last_refresh_;
  // Scratch for the serial Check path only (never shared across threads).
  UnionFind uf_scratch_{0};
  /// The compiled query is held behind shared_ptr so that cache slots have
  /// no address or lifetime coupling to the vector: growth, FIFO eviction
  /// and shuffles only move the controlling pointers, never the queries
  /// callers may still hold.
  struct CompiledCacheEntry {
    std::string text;
    std::uint64_t version;
    std::shared_ptr<const CompiledQuery> compiled;
  };
  std::vector<CompiledCacheEntry> compiled_cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  // The only internally-synchronized state of the engine: PoolFor is called
  // from const Check paths that may race only with each other. Everything
  // above (fd_graph_, theta_i_, compiled_cache_, the stats) is externally
  // synchronized — a DcSatEngine belongs to one monitor/caller thread at a
  // time, which ConstraintMonitor enforces by holding its own mutex_ across
  // every engine call.
  mutable Mutex pool_mutex_{LockRank::kEnginePool};
  mutable std::shared_ptr<ThreadPool> pool_ BCDB_GUARDED_BY(pool_mutex_);
};

}  // namespace bcdb

#endif  // BCDB_CORE_DCSAT_H_
