#ifndef BCDB_CORE_DCSAT_H_
#define BCDB_CORE_DCSAT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/blockchain_db.h"
#include "core/fd_graph.h"
#include "query/ast.h"
#include "query/compiled_query.h"
#include "util/status.h"
#include "util/union_find.h"

namespace bcdb {

/// Which search procedure decides D |= ¬q.
enum class DcSatAlgorithm {
  /// Pick automatically: OptDCSat for connected monotone conjunctive
  /// constraints, NaiveDCSat for other monotone constraints (e.g.
  /// aggregates), exhaustive possible-world search otherwise.
  kAuto,
  /// Paper Figure 4: maximal cliques of G^fd_T over all pending
  /// transactions. Requires a monotone constraint.
  kNaive,
  /// Paper Figure 5: split pending transactions into the connected
  /// components of G^{q,ind}_T, filter by constant coverage, then run the
  /// clique search per component. Requires a monotone, connected,
  /// non-aggregate constraint.
  kOpt,
  /// Exact enumeration of Poss(D) — exponential; correct for arbitrary
  /// (including non-monotone) constraints.
  kExhaustive,
  /// One of the Theorem-1 polynomial fragments engaged (FD-only support
  /// check or IND-only unique-maximal-world check); only ever *selected*
  /// automatically, never requested. See core/tractable.h.
  kTractable,
};

const char* DcSatAlgorithmToString(DcSatAlgorithm algorithm);

struct DcSatOptions {
  DcSatAlgorithm algorithm = DcSatAlgorithm::kAuto;
  /// With kAuto: try the Theorem-1 polynomial fragments first (FD-only /
  /// IND-only constraint sets) before the general clique search.
  bool use_tractable_fragments = true;
  /// Evaluate q over R ∪ T first; if false there, monotonicity makes the
  /// whole search unnecessary (paper Section 6.3, final optimization).
  bool use_precheck = true;
  /// OptDCSat only: skip components that cannot cover q's constants.
  bool use_covers = true;
  /// Tomita pivoting inside Bron–Kerbosch.
  bool use_pivot = true;
  /// Exhaustive only: abort after this many worlds.
  std::size_t exhaustive_world_limit = 1u << 20;
};

struct DcSatStats {
  DcSatAlgorithm algorithm_used = DcSatAlgorithm::kAuto;
  bool precheck_decided = false;  // The R ∪ T pre-check settled the answer.
  std::size_t num_pending = 0;
  std::size_t num_valid_nodes = 0;
  std::size_t fd_conflict_pairs = 0;
  std::size_t num_components = 0;          // Opt only.
  std::size_t num_components_covered = 0;  // Opt only.
  std::size_t num_cliques = 0;
  std::size_t num_worlds_evaluated = 0;
  double total_seconds = 0;
  double graph_seconds = 0;  // fd-graph + component construction.
};

struct DcSatResult {
  /// D |= ¬q: the denial constraint holds in every possible world.
  bool satisfied = false;
  /// When !satisfied: the pending transactions of one violating world.
  std::optional<std::vector<PendingId>> witness;
  DcSatStats stats;
};

/// Decides denial-constraint satisfaction over one blockchain database,
/// owning the steady-state structures of paper Section 6.3: the
/// fd-transaction graph, the Θ_I part of the ind-graph components, and the
/// per-transaction validity bits. Caches are keyed on the database version
/// and rebuilt lazily after mutations.
class DcSatEngine {
 public:
  /// `db` must outlive the engine.
  explicit DcSatEngine(const BlockchainDatabase* db) : db_(db) {}

  const BlockchainDatabase& db() const { return *db_; }

  /// Decides D |= ¬q. Fails if `q` does not compile against the database,
  /// or if an explicitly requested algorithm is unsound for `q` (kNaive/
  /// kOpt on a non-monotone constraint, kOpt on a disconnected or aggregate
  /// constraint).
  StatusOr<DcSatResult> Check(const DenialConstraint& q,
                              const DcSatOptions& options = {});

  /// Forces cache (re)construction; returns the fd graph for inspection.
  const FdGraph& PrepareSteadyState();

 private:
  void RefreshCaches();

  const BlockchainDatabase* db_;
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  std::optional<FdGraph> fd_graph_;
  std::optional<UnionFind> theta_i_components_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_DCSAT_H_
