#ifndef BCDB_CORE_DCSAT_H_
#define BCDB_CORE_DCSAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/blockchain_db.h"
#include "core/fd_graph.h"
#include "query/ast.h"
#include "query/compiled_query.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace bcdb {

/// Which search procedure decides D |= ¬q.
enum class DcSatAlgorithm {
  /// Pick automatically: OptDCSat for connected monotone conjunctive
  /// constraints, NaiveDCSat for other monotone constraints (e.g.
  /// aggregates), exhaustive possible-world search otherwise.
  kAuto,
  /// Paper Figure 4: maximal cliques of G^fd_T over all pending
  /// transactions. Requires a monotone constraint.
  kNaive,
  /// Paper Figure 5: split pending transactions into the connected
  /// components of G^{q,ind}_T, filter by constant coverage, then run the
  /// clique search per component. Requires a monotone, connected,
  /// non-aggregate constraint.
  kOpt,
  /// Exact enumeration of Poss(D) — exponential; correct for arbitrary
  /// (including non-monotone) constraints.
  kExhaustive,
  /// One of the Theorem-1 polynomial fragments engaged (FD-only support
  /// check or IND-only unique-maximal-world check); only ever *selected*
  /// automatically, never requested. See core/tractable.h.
  kTractable,
};

const char* DcSatAlgorithmToString(DcSatAlgorithm algorithm);

struct DcSatOptions {
  DcSatAlgorithm algorithm = DcSatAlgorithm::kAuto;
  /// With kAuto: try the Theorem-1 polynomial fragments first (FD-only /
  /// IND-only constraint sets) before the general clique search.
  bool use_tractable_fragments = true;
  /// Evaluate q over R ∪ T first; if false there, monotonicity makes the
  /// whole search unnecessary (paper Section 6.3, final optimization).
  bool use_precheck = true;
  /// OptDCSat only: skip components that cannot cover q's constants.
  bool use_covers = true;
  /// Tomita pivoting inside Bron–Kerbosch.
  bool use_pivot = true;
  /// Exhaustive only: abort after this many worlds.
  std::size_t exhaustive_world_limit = 1u << 20;
  /// Worker threads for the OptDCSat component-level clique search (and, via
  /// ConstraintMonitor::Poll, for cross-constraint evaluation). 0 = hardware
  /// concurrency; 1 = the exact serial reference path. Results (satisfied,
  /// witness, clique counts) are identical at every thread count: components
  /// are decided independently (Proposition 2) and the lowest violating
  /// component index wins, matching the serial scan order.
  std::size_t num_threads = 1;
};

struct DcSatStats {
  DcSatAlgorithm algorithm_used = DcSatAlgorithm::kAuto;
  bool precheck_decided = false;  // The R ∪ T pre-check settled the answer.
  std::size_t num_pending = 0;
  std::size_t num_valid_nodes = 0;
  std::size_t fd_conflict_pairs = 0;
  std::size_t num_components = 0;          // Opt only.
  std::size_t num_components_covered = 0;  // Opt only.
  std::size_t num_cliques = 0;
  std::size_t num_worlds_evaluated = 0;
  std::size_t threads_used = 1;          // Pool workers engaged (1 = serial).
  std::size_t components_parallel = 0;   // Components dispatched as pool tasks.
  std::size_t cancelled_tasks = 0;       // Tasks aborted by cooperative cancellation.
  bool steady_cache_hit = false;  // fd-graph/Θ_I caches were already fresh.
  double total_seconds = 0;
  double graph_seconds = 0;  // fd-graph + component construction.
};

struct DcSatResult {
  /// D |= ¬q: the denial constraint holds in every possible world.
  bool satisfied = false;
  /// When !satisfied: the pending transactions of one violating world.
  std::optional<std::vector<PendingId>> witness;
  DcSatStats stats;
};

/// Decides denial-constraint satisfaction over one blockchain database,
/// owning the steady-state structures of paper Section 6.3: the
/// fd-transaction graph, the Θ_I part of the ind-graph components, and the
/// per-transaction validity bits. Caches are keyed on the database version
/// and rebuilt lazily after mutations.
class DcSatEngine {
 public:
  /// `db` must outlive the engine.
  explicit DcSatEngine(const BlockchainDatabase* db) : db_(db) {}

  const BlockchainDatabase& db() const { return *db_; }

  /// Decides D |= ¬q. Fails if `q` does not compile against the database,
  /// or if an explicitly requested algorithm is unsound for `q` (kNaive/
  /// kOpt on a non-monotone constraint, kOpt on a disconnected or aggregate
  /// constraint). Keeps the steady-state caches fresh as a side effect.
  StatusOr<DcSatResult> Check(const DenialConstraint& q,
                              const DcSatOptions& options = {});

  /// Const query path for concurrent callers (ConstraintMonitor::Poll):
  /// decides D |= ¬q with a query already compiled against the current
  /// database, without touching the engine's caches. Requires
  /// PrepareSteadyState (or any Check) to have run since the last database
  /// mutation; fails with Internal otherwise. Many threads may call this
  /// simultaneously as long as each call uses `num_threads` == 1 (the
  /// engine-owned pool is not re-entrant) and the database is not mutated
  /// concurrently.
  StatusOr<DcSatResult> CheckPrepared(const DenialConstraint& q,
                                      const CompiledQuery& compiled,
                                      const DcSatOptions& options = {}) const;

  /// Forces cache (re)construction; returns the fd graph for inspection.
  const FdGraph& PrepareSteadyState();

  /// Cumulative steady-state cache behaviour across Check /
  /// PrepareSteadyState calls (a hit = the database version was unchanged).
  std::size_t steady_cache_hits() const { return cache_hits_; }
  std::size_t steady_cache_misses() const { return cache_misses_; }

 private:
  /// The whole decision procedure after compilation, against fresh caches.
  /// `scratch` (optional) is reused for the Θ_I ∪ Θ_q union-find instead of
  /// allocating per call; concurrent callers pass nullptr.
  StatusOr<DcSatResult> CheckImpl(const DenialConstraint& q,
                                  const CompiledQuery& compiled,
                                  const DcSatOptions& options,
                                  UnionFind* scratch, bool cache_hit,
                                  const Stopwatch& total_watch) const;

  /// Runs the per-component clique searches on the worker pool. Returns the
  /// merged satisfied/witness/stats contribution into `result`.
  void ParallelComponentSearch(
      const CompiledQuery& compiled, const DcSatOptions& options,
      const std::vector<std::vector<PendingId>>& components,
      std::size_t num_workers, DcSatResult& result) const;

  void RefreshCaches();
  std::shared_ptr<ThreadPool> PoolFor(std::size_t num_workers) const;

  const BlockchainDatabase* db_;
  std::uint64_t cached_version_ = ~std::uint64_t{0};
  std::optional<FdGraph> fd_graph_;
  std::optional<UnionFind> theta_i_components_;
  // Scratch for the serial Check path only (never shared across threads).
  UnionFind uf_scratch_{0};
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  mutable std::mutex pool_mutex_;
  mutable std::shared_ptr<ThreadPool> pool_;
};

}  // namespace bcdb

#endif  // BCDB_CORE_DCSAT_H_
