#ifndef BCDB_UTIL_BYTES_H_
#define BCDB_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bcdb {

/// Little-endian byte packing shared by the durable-storage codec and the
/// block-file parser. Encoders append to a std::string buffer; the decoder
/// is a bounds-checked cursor over a read-only byte view (typically an
/// mmap'd file region), so a torn or corrupted tail turns into a clean
/// decode failure instead of an out-of-bounds read.

inline void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU16(std::string* out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendI64(std::string* out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

inline void AppendI32(std::string* out, std::int32_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v));
}

inline void AppendF64(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// u32 length prefix + raw bytes.
inline void AppendBytes(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

/// Bounds-checked little-endian reader. Every Read* returns false (leaving
/// the output untouched and the cursor unspecified-but-safe) once the view
/// is exhausted; callers check once per record, not per field.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  bool exhausted() const { return offset_ >= size_; }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(data_[offset_++]);
    return true;
  }

  bool ReadU16(std::uint16_t* v) {
    if (remaining() < 2) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(data_[offset_ + i]) << (8 * i));
    }
    offset_ += 2;
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(data_[offset_ + i]))
            << (8 * i);
    }
    offset_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(data_[offset_ + i]))
            << (8 * i);
    }
    offset_ += 8;
    return true;
  }

  bool ReadI64(std::int64_t* v) {
    std::uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool ReadI32(std::int32_t* v) {
    std::uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Reads a u32-length-prefixed byte string as a view into the underlying
  /// buffer (no copy; valid while the buffer is).
  bool ReadBytes(std::string_view* v) {
    std::uint32_t len;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return false;
    *v = std::string_view(data_ + offset_, len);
    offset_ += len;
    return true;
  }

  bool ReadString(std::string* v) {
    std::string_view view;
    if (!ReadBytes(&view)) return false;
    v->assign(view.data(), view.size());
    return true;
  }

  /// Reads exactly `n` raw bytes (no length prefix) as a view into the
  /// underlying buffer.
  bool ReadRaw(std::size_t n, std::string_view* v) {
    if (remaining() < n) return false;
    *v = std::string_view(data_ + offset_, n);
    offset_ += n;
    return true;
  }

  /// Skips `n` bytes.
  bool Skip(std::size_t n) {
    if (remaining() < n) return false;
    offset_ += n;
    return true;
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace bcdb

#endif  // BCDB_UTIL_BYTES_H_
