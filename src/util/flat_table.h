#ifndef BCDB_UTIL_FLAT_TABLE_H_
#define BCDB_UTIL_FLAT_TABLE_H_

/// Flat open-addressing hash tables for the DCSat hot paths.
///
/// Every hot container in the checker keys on dense 32-bit interned ids
/// (ValueId sequences inside Tuple/ProjectionKey, TupleOwner, union-find
/// roots). `std::unordered_map` stores each entry in its own heap node, so a
/// probe is hash → bucket head → pointer chase (a guaranteed cache miss per
/// element) and growth rehashes through the allocator. The tables here are
/// SwissTable-style instead:
///
///   * one contiguous allocation: a 1-byte control-tag array plus a flat
///     slot array — small keys *and* small values live inline in the slot;
///   * group probing: the control byte holds a 7-bit hash tag; lookups scan
///     `kGroupWidth` tags per step with SWAR 64-bit word tricks (or SSE2
///     `_mm_cmpeq_epi8` when available) and only touch a slot on a tag match;
///   * power-of-two capacity with a full-avalanche multiplicative mixer
///     (`HashMix64`) applied on top of the caller's hasher — identity-hashed
///     dense ids would otherwise cluster catastrophically;
///   * tombstone-free erase: backward-shift deletion restores the pure
///     linear-probing invariant, so probe sequences never lengthen with
///     churn (the distinct-set and fd-bucket workloads erase constantly);
///   * heterogeneous lookup throughout: any probe type the Hash/Eq functor
///     pair accepts works (`ProjectionKey` probes against `Tuple` keys — the
///     transparent contract the id-keyed substrate established).
///
/// `FlatIdMap` / `FlatIdSet` are the aliases the engine uses. Building with
/// `-DBCDB_USE_STD_HASH=ON` points them back at `std::unordered_map` /
/// `std::unordered_set` (same functors, same API subset) — the differential
/// escape hatch that proves verdicts and witnesses are bit-identical across
/// backends. Code therefore must not depend on iteration order; every
/// consumer either canonicalizes (GroupComponents) or is order-insensitive.
///
/// Not thread-safe for writes. Concurrent read-only probes of a quiescent
/// table are safe (no mutable state on the lookup path).

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

#include "util/hash.h"

#ifdef BCDB_USE_STD_HASH
#include <unordered_map>
#include <unordered_set>
#endif

// SSE2 group probing: 16 control bytes per compare via _mm_cmpeq_epi8.
// Define BCDB_FLAT_TABLE_NO_SSE2 to force the portable SWAR path (used by
// the shootout to measure the difference).
#if defined(__SSE2__) && !defined(BCDB_FLAT_TABLE_NO_SSE2)
#define BCDB_FLAT_TABLE_SSE2 1
#include <emmintrin.h>
#endif

namespace bcdb {
namespace flat_internal {

/// Control byte values. A full slot stores the hash's 7-bit tag (high bit
/// clear); `kEmpty` is the only value with the high bit set — there are no
/// tombstones, so "high bit set" ⟺ "slot free" and an empty byte in a probe
/// group terminates the scan.
inline constexpr std::uint8_t kEmpty = 0x80;

#ifdef BCDB_FLAT_TABLE_SSE2
inline constexpr std::size_t kGroupWidth = 16;

/// One probe group: 16 control bytes, compared in parallel.
struct Group {
  __m128i ctrl;

  explicit Group(const std::uint8_t* p)
      : ctrl(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))) {}

  /// Bit i set ⟺ byte i holds `tag`. Exact (no false positives).
  std::uint32_t Match(std::uint8_t tag) const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(ctrl, _mm_set1_epi8(static_cast<char>(tag)))));
  }

  /// Bit i set ⟺ byte i is empty (the only high-bit value).
  std::uint32_t MatchEmpty() const {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(ctrl));
  }

  static std::size_t BitToOffset(std::uint32_t mask) {
    return static_cast<std::size_t>(std::countr_zero(mask));
  }
  static std::uint32_t ClearLowest(std::uint32_t mask) {
    return mask & (mask - 1);
  }
};
#else
inline constexpr std::size_t kGroupWidth = 8;

/// One probe group: 8 control bytes in a 64-bit word, matched with the
/// classic SWAR zero-byte trick. Match() may report false positives on full
/// slots (resolved by the key compare) but never false negatives, and the
/// empty mask is exact because only kEmpty has the high bit set.
struct Group {
  std::uint64_t ctrl;

  explicit Group(const std::uint8_t* p) { std::memcpy(&ctrl, p, 8); }

  std::uint64_t Match(std::uint8_t tag) const {
    constexpr std::uint64_t kLsbs = 0x0101010101010101ULL;
    constexpr std::uint64_t kMsbs = 0x8080808080808080ULL;
    const std::uint64_t x = ctrl ^ (kLsbs * tag);
    // Borrow propagation can flag a byte *after* a true match; masking out
    // empty slots keeps those false positives away from destroyed slots.
    return (x - kLsbs) & ~x & kMsbs & ~(ctrl & kMsbs);
  }

  std::uint64_t MatchEmpty() const {
    return ctrl & 0x8080808080808080ULL;
  }

  static std::size_t BitToOffset(std::uint64_t mask) {
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
  }
  static std::uint64_t ClearLowest(std::uint64_t mask) {
    return mask & (mask - 1);
  }
};
#endif

/// The core open-addressing table. `Slot` is the stored element
/// (`std::pair<K, V>` for maps, `K` for sets); `GetKey` projects a slot to
/// its key; `Hash`/`Eq` may be transparent (templated call operators) for
/// heterogeneous probes.
template <typename Slot, typename GetKey, typename Hash, typename Eq>
class RawFlatTable {
 public:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  RawFlatTable() = default;

  RawFlatTable(const RawFlatTable& other) { CopyFrom(other); }
  RawFlatTable(RawFlatTable&& other) noexcept { StealFrom(other); }
  RawFlatTable& operator=(const RawFlatTable& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }
  RawFlatTable& operator=(RawFlatTable&& other) noexcept {
    if (this != &other) {
      Destroy();
      StealFrom(other);
    }
    return *this;
  }
  ~RawFlatTable() { Destroy(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  void clear() {
    if (capacity_ == 0) return;
    if (size_ != 0) {
      for (std::size_t i = 0; i < capacity_; ++i) {
        if (IsFull(i)) slots_[i].~Slot();
      }
      size_ = 0;
    }
    std::memset(ctrl_, kEmpty, capacity_ + kGroupWidth);
    growth_left_ = MaxSize(capacity_);
  }

  /// Pre-sizes so `n` elements fit without another rehash.
  void reserve(std::size_t n) {
    const std::size_t target = CapacityFor(n);
    if (target > capacity_) Rehash(target);
  }

  /// Index of the slot holding a key equal to `key`, or npos.
  template <typename K2>
  std::size_t FindIndex(const K2& key) const {
    if (capacity_ == 0) return npos;
    const std::uint64_t mixed = MixedHash(key);
    const std::uint8_t tag = H2(mixed);
    const std::size_t mask = capacity_ - 1;
    std::size_t group = mixed & mask;
    while (true) {
      const Group g(ctrl_ + group);
      for (auto m = g.Match(tag); m != 0; m = Group::ClearLowest(m)) {
        const std::size_t idx = (group + Group::BitToOffset(m)) & mask;
        if (eq_(GetKey{}(slots_[idx]), key)) return idx;
      }
      if (g.MatchEmpty() != 0) return npos;
      group = (group + kGroupWidth) & mask;
    }
  }

  /// Finds `key`, or claims the slot where it belongs. Returns
  /// {index, inserted}; on inserted the caller must construct the slot —
  /// the control byte is already set and size already counted.
  template <typename K2>
  std::pair<std::size_t, bool> FindOrPrepareInsert(const K2& key) {
    if (capacity_ == 0) Rehash(kMinCapacity);
    const std::uint64_t mixed = MixedHash(key);
    const std::uint8_t tag = H2(mixed);
    std::size_t mask = capacity_ - 1;
    std::size_t group = mixed & mask;
    std::size_t insert_at = npos;
    while (true) {
      const Group g(ctrl_ + group);
      for (auto m = g.Match(tag); m != 0; m = Group::ClearLowest(m)) {
        const std::size_t idx = (group + Group::BitToOffset(m)) & mask;
        if (eq_(GetKey{}(slots_[idx]), key)) return {idx, false};
      }
      if (const auto e = g.MatchEmpty(); e != 0) {
        insert_at = (group + Group::BitToOffset(e)) & mask;
        break;
      }
      group = (group + kGroupWidth) & mask;
    }
    if (growth_left_ == 0) {
      Rehash(capacity_ * 2);
      insert_at = FindFirstEmpty(mixed);
    }
    SetCtrl(insert_at, tag);
    ++size_;
    --growth_left_;
    return {insert_at, true};
  }

  /// Backward-shift erase: closes the hole by walking the cluster and
  /// pulling back every element whose home position allows it, preserving
  /// the "no key is separated from its home slot by an empty slot"
  /// invariant that lets lookups stop at the first empty byte.
  void EraseAt(std::size_t i) {
    assert(IsFull(i));
    const std::size_t mask = capacity_ - 1;
    slots_[i].~Slot();
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!IsFull(j)) break;
      const std::size_t home =
          static_cast<std::size_t>(MixedHash(GetKey{}(slots_[j]))) & mask;
      // Movable iff `home` is cyclically at or before the hole — i.e. the
      // hole lies within the element's probe path.
      if (((j - home) & mask) >= ((j - i) & mask)) {
        ::new (static_cast<void*>(slots_ + i)) Slot(std::move(slots_[j]));
        slots_[j].~Slot();
        SetCtrl(i, ctrl_[j]);
        i = j;
      }
    }
    SetCtrl(i, kEmpty);
    --size_;
    ++growth_left_;
  }

  bool IsFull(std::size_t i) const { return (ctrl_[i] & 0x80) == 0; }

  Slot* slots() { return slots_; }
  const Slot* slots() const { return slots_; }

  std::size_t NextFull(std::size_t i) const {
    for (; i < capacity_; ++i) {
      if (IsFull(i)) return i;
    }
    return capacity_;
  }

 private:
  template <typename K2>
  std::uint64_t MixedHash(const K2& key) const {
    return HashMix64(static_cast<std::uint64_t>(hash_(key)));
  }

  static std::uint8_t H2(std::uint64_t mixed) {
    return static_cast<std::uint8_t>(mixed >> 57);  // Top 7 bits.
  }

  static std::size_t MaxSize(std::size_t capacity) {
    return capacity - capacity / 8;  // 7/8 max load factor.
  }

  static std::size_t CapacityFor(std::size_t n) {
    std::size_t capacity = kMinCapacity;
    while (MaxSize(capacity) < n) capacity *= 2;
    return capacity;
  }

  void SetCtrl(std::size_t i, std::uint8_t v) {
    ctrl_[i] = v;
    // The first kGroupWidth bytes are mirrored past the end so unaligned
    // group loads never wrap.
    if (i < kGroupWidth) ctrl_[i + capacity_] = v;
  }

  std::size_t FindFirstEmpty(std::uint64_t mixed) const {
    const std::size_t mask = capacity_ - 1;
    std::size_t group = mixed & mask;
    while (true) {
      const Group g(ctrl_ + group);
      if (const auto e = g.MatchEmpty(); e != 0) {
        return (group + Group::BitToOffset(e)) & mask;
      }
      group = (group + kGroupWidth) & mask;
    }
  }

  void Allocate(std::size_t capacity) {
    capacity_ = capacity;
    const std::size_t ctrl_bytes = capacity + kGroupWidth;
    const std::size_t align = alignof(Slot) > alignof(std::max_align_t)
                                  ? alignof(Slot)
                                  : alignof(std::max_align_t);
    const std::size_t slots_offset = (ctrl_bytes + align - 1) / align * align;
    alloc_bytes_ = slots_offset + capacity * sizeof(Slot);
    auto* raw = static_cast<std::uint8_t*>(
        ::operator new(alloc_bytes_, std::align_val_t{align}));
    ctrl_ = raw;
    slots_ = reinterpret_cast<Slot*>(raw + slots_offset);
    std::memset(ctrl_, kEmpty, ctrl_bytes);
    growth_left_ = MaxSize(capacity) - size_;
  }

  void Free() {
    if (ctrl_ == nullptr) return;
    const std::size_t align = alignof(Slot) > alignof(std::max_align_t)
                                  ? alignof(Slot)
                                  : alignof(std::max_align_t);
    ::operator delete(ctrl_, alloc_bytes_, std::align_val_t{align});
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
    growth_left_ = 0;
  }

  void Destroy() {
    if (ctrl_ != nullptr && size_ != 0) {
      for (std::size_t i = 0; i < capacity_; ++i) {
        if (IsFull(i)) slots_[i].~Slot();
      }
    }
    size_ = 0;
    Free();
  }

  void Rehash(std::size_t new_capacity) {
    std::uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;
    const std::size_t old_capacity = capacity_;
    const std::size_t old_bytes = alloc_bytes_;
    ctrl_ = nullptr;
    Allocate(new_capacity);
    if (old_ctrl != nullptr) {
      for (std::size_t i = 0; i < old_capacity; ++i) {
        if ((old_ctrl[i] & 0x80) != 0) continue;
        const std::uint64_t mixed = MixedHash(GetKey{}(old_slots[i]));
        const std::size_t idx = FindFirstEmpty(mixed);
        SetCtrl(idx, H2(mixed));
        ::new (static_cast<void*>(slots_ + idx)) Slot(std::move(old_slots[i]));
        old_slots[i].~Slot();
      }
      const std::size_t align = alignof(Slot) > alignof(std::max_align_t)
                                    ? alignof(Slot)
                                    : alignof(std::max_align_t);
      ::operator delete(old_ctrl, old_bytes, std::align_val_t{align});
    }
  }

  void CopyFrom(const RawFlatTable& other) {
    hash_ = other.hash_;
    eq_ = other.eq_;
    if (other.capacity_ == 0) return;
    size_ = other.size_;
    Allocate(other.capacity_);
    std::memcpy(ctrl_, other.ctrl_, other.capacity_ + kGroupWidth);
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (IsFull(i)) {
        ::new (static_cast<void*>(slots_ + i)) Slot(other.slots_[i]);
      }
    }
  }

  void StealFrom(RawFlatTable& other) noexcept {
    hash_ = std::move(other.hash_);
    eq_ = std::move(other.eq_);
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    growth_left_ = other.growth_left_;
    alloc_bytes_ = other.alloc_bytes_;
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.growth_left_ = 0;
  }

  std::uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t growth_left_ = 0;
  std::size_t alloc_bytes_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

/// Forward iterator over the full slots of a RawFlatTable. Erase through
/// the owning container invalidates all iterators (backward-shift moves
/// elements); so does any insert that rehashes.
template <typename Table, typename ValueT>
class FlatIterator {
 public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = std::remove_const_t<ValueT>;
  using reference = ValueT&;
  using pointer = ValueT*;
  using difference_type = std::ptrdiff_t;

  FlatIterator() = default;
  FlatIterator(Table* table, std::size_t index)
      : table_(table), index_(index) {}

  reference operator*() const { return table_->slots()[index_]; }
  pointer operator->() const { return table_->slots() + index_; }

  FlatIterator& operator++() {
    index_ = table_->NextFull(index_ + 1);
    return *this;
  }
  FlatIterator operator++(int) {
    FlatIterator copy = *this;
    ++*this;
    return copy;
  }

  bool operator==(const FlatIterator& other) const {
    return index_ == other.index_;
  }
  bool operator!=(const FlatIterator& other) const {
    return index_ != other.index_;
  }

  std::size_t index() const { return index_; }

 private:
  Table* table_ = nullptr;
  std::size_t index_ = 0;
};

struct PairKey {
  template <typename P>
  const auto& operator()(const P& slot) const {
    return slot.first;
  }
};

struct SelfKey {
  template <typename K>
  const K& operator()(const K& slot) const {
    return slot;
  }
};

}  // namespace flat_internal

/// Open-addressing hash map over id-shaped keys. API: the subset of
/// `std::unordered_map` the engine uses (find/emplace/try_emplace/
/// operator[]/erase/clear/reserve/iteration), with heterogeneous lookups
/// whenever Hash/Eq accept the probe type. Iteration order is unspecified
/// and differs from `std::unordered_map` — consumers must not depend on it.
/// Note `value_type` is `std::pair<Key, Value>` (non-const key, required by
/// backward-shift erase); keys must not be mutated through iterators.
template <typename Key, typename Value, typename Hash = IdHash,
          typename Eq = std::equal_to<>>
class FlatHashMap {
  using Slot = std::pair<Key, Value>;
  using Raw =
      flat_internal::RawFlatTable<Slot, flat_internal::PairKey, Hash, Eq>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using value_type = Slot;
  using iterator = flat_internal::FlatIterator<Raw, Slot>;
  using const_iterator = flat_internal::FlatIterator<const Raw, const Slot>;

  FlatHashMap() = default;

  std::size_t size() const { return raw_.size(); }
  bool empty() const { return raw_.empty(); }
  std::size_t capacity() const { return raw_.capacity(); }
  void clear() { raw_.clear(); }
  void reserve(std::size_t n) { raw_.reserve(n); }

  iterator begin() { return {&raw_, raw_.NextFull(0)}; }
  iterator end() { return {&raw_, raw_.capacity()}; }
  const_iterator begin() const { return {&raw_, raw_.NextFull(0)}; }
  const_iterator end() const { return {&raw_, raw_.capacity()}; }

  template <typename K2>
  iterator find(const K2& key) {
    const std::size_t idx = raw_.FindIndex(key);
    return {&raw_, idx == Raw::npos ? raw_.capacity() : idx};
  }
  template <typename K2>
  const_iterator find(const K2& key) const {
    const std::size_t idx = raw_.FindIndex(key);
    return {&raw_, idx == Raw::npos ? raw_.capacity() : idx};
  }
  template <typename K2>
  bool contains(const K2& key) const {
    return raw_.FindIndex(key) != Raw::npos;
  }
  template <typename K2>
  std::size_t count(const K2& key) const {
    return contains(key) ? 1 : 0;
  }

  /// try_emplace semantics: the mapped value is constructed only when the
  /// key is absent (also how the engine uses unordered_map::emplace — the
  /// key is never present with different mapped-construction args).
  template <typename K2, typename... Args>
  std::pair<iterator, bool> emplace(K2&& key, Args&&... args) {
    return try_emplace(std::forward<K2>(key), std::forward<Args>(args)...);
  }

  template <typename K2, typename... Args>
  std::pair<iterator, bool> try_emplace(K2&& key, Args&&... args) {
    const auto [idx, inserted] = raw_.FindOrPrepareInsert(key);
    if (inserted) {
      ::new (static_cast<void*>(raw_.slots() + idx))
          Slot(std::piecewise_construct,
               std::forward_as_tuple(std::forward<K2>(key)),
               std::forward_as_tuple(std::forward<Args>(args)...));
    }
    return {iterator{&raw_, idx}, inserted};
  }

  template <typename K2>
  Value& operator[](K2&& key) {
    return try_emplace(std::forward<K2>(key)).first->second;
  }

  void erase(const_iterator it) { raw_.EraseAt(it.index()); }
  void erase(iterator it) { raw_.EraseAt(it.index()); }
  template <typename K2>
  std::size_t erase(const K2& key) {
    const std::size_t idx = raw_.FindIndex(key);
    if (idx == Raw::npos) return 0;
    raw_.EraseAt(idx);
    return 1;
  }

 private:
  Raw raw_;
};

/// Open-addressing hash set; same design notes as FlatHashMap.
template <typename Key, typename Hash = IdHash, typename Eq = std::equal_to<>>
class FlatHashSet {
  using Raw =
      flat_internal::RawFlatTable<Key, flat_internal::SelfKey, Hash, Eq>;

 public:
  using key_type = Key;
  using value_type = Key;
  using iterator = flat_internal::FlatIterator<const Raw, const Key>;
  using const_iterator = iterator;

  FlatHashSet() = default;

  std::size_t size() const { return raw_.size(); }
  bool empty() const { return raw_.empty(); }
  std::size_t capacity() const { return raw_.capacity(); }
  void clear() { raw_.clear(); }
  void reserve(std::size_t n) { raw_.reserve(n); }

  const_iterator begin() const { return {&raw_, raw_.NextFull(0)}; }
  const_iterator end() const { return {&raw_, raw_.capacity()}; }

  template <typename K2>
  const_iterator find(const K2& key) const {
    const std::size_t idx = raw_.FindIndex(key);
    return {&raw_, idx == Raw::npos ? raw_.capacity() : idx};
  }
  template <typename K2>
  bool contains(const K2& key) const {
    return raw_.FindIndex(key) != Raw::npos;
  }
  template <typename K2>
  std::size_t count(const K2& key) const {
    return contains(key) ? 1 : 0;
  }

  template <typename K2>
  std::pair<const_iterator, bool> insert(K2&& key) {
    const auto [idx, inserted] = raw_.FindOrPrepareInsert(key);
    if (inserted) {
      ::new (static_cast<void*>(raw_.slots() + idx))
          Key(std::forward<K2>(key));
    }
    return {const_iterator{&raw_, idx}, inserted};
  }
  template <typename K2>
  std::pair<const_iterator, bool> emplace(K2&& key) {
    return insert(std::forward<K2>(key));
  }

  void erase(const_iterator it) { raw_.EraseAt(it.index()); }
  template <typename K2>
  std::size_t erase(const K2& key) {
    const std::size_t idx = raw_.FindIndex(key);
    if (idx == Raw::npos) return 0;
    raw_.EraseAt(idx);
    return 1;
  }

 private:
  Raw raw_;
};

#ifdef BCDB_USE_STD_HASH

/// Escape hatch: the std::unordered containers with the same functors, for
/// differential testing of verdict/witness bit-identity across backends.
template <typename Key, typename Value, typename Hash = IdHash,
          typename Eq = std::equal_to<>>
using FlatIdMap = std::unordered_map<Key, Value, Hash, Eq>;

template <typename Key, typename Hash = IdHash, typename Eq = std::equal_to<>>
using FlatIdSet = std::unordered_set<Key, Hash, Eq>;

#else

/// The id-keyed hot-path table aliases the engine declares its containers
/// with. See the file comment for the backend switch.
template <typename Key, typename Value, typename Hash = IdHash,
          typename Eq = std::equal_to<>>
using FlatIdMap = FlatHashMap<Key, Value, Hash, Eq>;

template <typename Key, typename Hash = IdHash, typename Eq = std::equal_to<>>
using FlatIdSet = FlatHashSet<Key, Hash, Eq>;

#endif  // BCDB_USE_STD_HASH

}  // namespace bcdb

#endif  // BCDB_UTIL_FLAT_TABLE_H_
