#ifndef BCDB_UTIL_HASH_H_
#define BCDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace bcdb {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// Hashes `value` with std::hash and mixes it into `seed`.
template <typename T>
void HashCombineValue(std::size_t& seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

/// Full-avalanche 64-bit finalizer (splitmix64): every output bit depends on
/// every input bit. Dense sequential ids — ValueId, TupleId, PendingId,
/// union-find roots — hash to themselves under std::hash and therefore
/// cluster catastrophically in power-of-two open addressing (and degrade
/// `std::unordered_map` bucket spread the same way); running raw ids through
/// this mixer fixes the distribution for both table backends.
inline std::uint64_t HashMix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hasher for raw integral id keys (ValueId, TupleId, TupleOwner, roots):
/// applies the mixing finalizer so bucket/slot distribution is uniform even
/// for the dense sequential ids these types actually hold. Shared by the
/// flat open-addressing tables and the `std::unordered_map` escape hatch.
struct IdHash {
  using is_transparent = void;
  template <typename T>
  std::size_t operator()(T id) const {
    static_assert(std::is_integral_v<T>);
    return static_cast<std::size_t>(
        HashMix64(static_cast<std::uint64_t>(id)));
  }
};

}  // namespace bcdb

#endif  // BCDB_UTIL_HASH_H_
