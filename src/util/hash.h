#ifndef BCDB_UTIL_HASH_H_
#define BCDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace bcdb {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// Hashes `value` with std::hash and mixes it into `seed`.
template <typename T>
void HashCombineValue(std::size_t& seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace bcdb

#endif  // BCDB_UTIL_HASH_H_
