#ifndef BCDB_UTIL_STOPWATCH_H_
#define BCDB_UTIL_STOPWATCH_H_

#include <chrono>

namespace bcdb {

/// Monotonic wall-clock stopwatch used by the DCSat statistics and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bcdb

#endif  // BCDB_UTIL_STOPWATCH_H_
