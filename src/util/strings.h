#ifndef BCDB_UTIL_STRINGS_H_
#define BCDB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace bcdb {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep = ", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `input` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (e.g. "a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Thread-safe strerror: the message for `err` (an errno value) without
/// touching the static buffer std::strerror may return (which
/// concurrency-mt-unsafe rightly rejects — Persist can fail on one thread
/// while a recovery path formats an error on another).
std::string ErrnoString(int err);

}  // namespace bcdb

#endif  // BCDB_UTIL_STRINGS_H_
