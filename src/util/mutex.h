#ifndef BCDB_UTIL_MUTEX_H_
#define BCDB_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace bcdb {

/// The global lock hierarchy (DESIGN.md §16). Every bcdb::Mutex /
/// bcdb::SharedMutex is constructed with its rank, and a thread may only
/// acquire a lock whose rank is *strictly greater* than every rank it
/// already holds — so any cycle of waiting threads would require a rank
/// descent somewhere, which the debug-build checker (BCDB_DEBUG_LOCKS)
/// aborts on at the first wrong-order acquisition, on any schedule, not
/// just the unlucky interleaving that actually deadlocks.
///
/// Ranks are spaced by 10 so a future lock can slot between two layers
/// without renumbering. Two locks of the same rank must never be held
/// together (the ThreadPool worker queues rely on this: work stealing
/// locks its own queue and a victim's queue strictly one at a time).
enum class LockRank : int {
  /// ConstraintMonitor's entry-table lock — the outermost lock of a poll:
  /// held across steady-state refresh (kMutationLog), task fan-out
  /// (kThreadPoolQueue/Wake), and query compilation (kValuePool).
  kMonitor = 20,
  /// DurableStore's WAL/stats lock. Below kMutationLog: a checkpoint
  /// holding it reads the database's mutation-log clock.
  kDurableStore = 30,
  /// MutationLog's retention window (append/read cursors).
  kMutationLog = 40,
  /// DcSatEngine's worker-pool slot (PoolFor).
  kEnginePool = 50,
  /// One ThreadPool worker deque. Same-rank by design: own-queue pop and
  /// victim steal are strictly sequential, never nested.
  kThreadPoolQueue = 60,
  /// ThreadPool's sleep/wake lock, taken after a queue lock in Submit.
  kThreadPoolWake = 70,
  /// BlockchainDatabase's mutation-listener registry. Near the top: it is
  /// only ever held to snapshot one listener out of the vector — never
  /// across the callback, which runs with the registry lock dropped — so
  /// it is a leaf that must rank above any lock a mutating caller may
  /// already hold (DurableStore::Recover replays WAL records into the
  /// database while holding kDurableStore).
  kMutationListeners = 75,
  /// ValuePool's intern table. Highest: interning happens at the leaves of
  /// every path (query compilation, tuple construction) under any caller
  /// lock, and itself calls out to nothing.
  kValuePool = 80,
};

const char* LockRankName(LockRank rank);

namespace lock_debug {

#if defined(BCDB_DEBUG_LOCKS)
/// Hierarchy check, run BEFORE the underlying lock call so a violation
/// aborts with a diagnostic instead of deadlocking: aborts if the thread
/// already holds `mutex` (recursive acquisition) or any lock of rank >=
/// `rank`.
void PreAcquire(const void* mutex, LockRank rank);
/// Pushes `mutex` onto the calling thread's held-lock stack (after the
/// underlying lock call succeeded).
void OnAcquire(const void* mutex, LockRank rank);
/// Removes `mutex` from the calling thread's held-lock stack (aborts if it
/// was not held).
void OnRelease(const void* mutex);
/// Whether the calling thread's held-lock stack contains `mutex`.
bool HeldByCurrentThread(const void* mutex);
/// Number of locks the calling thread currently holds (test hook).
std::size_t NumHeldByCurrentThread();
#else
inline void PreAcquire(const void*, LockRank) {}
inline void OnAcquire(const void*, LockRank) {}
inline void OnRelease(const void*) {}
inline bool HeldByCurrentThread(const void*) { return true; }
inline std::size_t NumHeldByCurrentThread() { return 0; }
#endif

/// Abort with `message` (and the held-lock stack, in debug builds) — used
/// by AssertHeld and the hierarchy checker.
[[noreturn]] void Die(const char* message);

}  // namespace lock_debug

/// Annotated exclusive mutex: the only mutex type allowed in bcdb code
/// (tools/bcdb_locklint rejects raw std::mutex members). Construction
/// requires the lock's LockRank — there is no default, so every mutex
/// declares its place in the global hierarchy at the declaration site.
class BCDB_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BCDB_ACQUIRE() {
    // Check first: a recursive or wrong-order acquisition must abort with
    // a diagnostic, not block forever inside mu_.lock().
    lock_debug::PreAcquire(this, rank_);
    mu_.lock();
    lock_debug::OnAcquire(this, rank_);
  }

  /// Non-blocking acquire. A recursive TryLock simply fails (try_lock
  /// returns false on the owning thread) rather than aborting — the
  /// discipline check runs only once the lock is actually taken.
  bool TryLock() BCDB_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_debug::PreAcquire(this, rank_);
    lock_debug::OnAcquire(this, rank_);
    return true;
  }

  void Unlock() BCDB_RELEASE() {
    lock_debug::OnRelease(this);
    mu_.unlock();
  }

  /// Debug-build assertion that the *calling thread* holds this mutex; a
  /// no-op (beyond informing the static analysis) when BCDB_DEBUG_LOCKS is
  /// off. Use at the top of private helpers whose contract is "caller
  /// locks" when the static annotation alone cannot see the call site
  /// (e.g. across a std::function boundary).
  void AssertHeld() const BCDB_ASSERT_CAPABILITY(this) {
#if defined(BCDB_DEBUG_LOCKS)
    if (!lock_debug::HeldByCurrentThread(this)) {
      lock_debug::Die("Mutex::AssertHeld failed: not held by this thread");
    }
#endif
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_;
};

/// Annotated reader/writer mutex (same hierarchy rules as Mutex).
class BCDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() BCDB_ACQUIRE() {
    lock_debug::PreAcquire(this, rank_);
    mu_.lock();
    lock_debug::OnAcquire(this, rank_);
  }
  void Unlock() BCDB_RELEASE() {
    lock_debug::OnRelease(this);
    mu_.unlock();
  }

  void ReaderLock() BCDB_ACQUIRE_SHARED() {
    lock_debug::PreAcquire(this, rank_);
    mu_.lock_shared();
    lock_debug::OnAcquire(this, rank_);
  }
  void ReaderUnlock() BCDB_RELEASE_SHARED() {
    lock_debug::OnRelease(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const BCDB_ASSERT_CAPABILITY(this) {
#if defined(BCDB_DEBUG_LOCKS)
    if (!lock_debug::HeldByCurrentThread(this)) {
      lock_debug::Die(
          "SharedMutex::AssertHeld failed: not held by this thread");
    }
#endif
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

/// RAII exclusive lock over a Mutex.
class BCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BCDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() BCDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex.
class BCDB_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) BCDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() BCDB_RELEASE() { mu_.Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class BCDB_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) BCDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~SharedReaderLock() BCDB_RELEASE() { mu_.ReaderUnlock(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to bcdb::Mutex. Wait requires the mutex held
/// (the annotation enforces it); the native handoff inside wait releases
/// and re-acquires the underlying std::mutex without touching the
/// hierarchy bookkeeping — the capability is conceptually held across the
/// wait, and the blocked thread runs no code that could observe otherwise.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) BCDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();  // Ownership stays with the caller's scope.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bcdb

#endif  // BCDB_UTIL_MUTEX_H_
