#ifndef BCDB_UTIL_BITSET_H_
#define BCDB_UTIL_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bcdb {

/// Fixed-capacity dynamic bitset with the word-level operations needed by
/// Bron–Kerbosch (intersection, count, iteration) and by world activation
/// masks. std::vector<bool> lacks word access; std::bitset is compile-time
/// sized; hence this small purpose-built type.
class DynamicBitset {
 public:
  DynamicBitset() : num_bits_(0) {}
  explicit DynamicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size() const { return num_bits_; }

  void Set(std::size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void Reset(std::size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  bool Test(std::size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Clear() { words_.assign(words_.size(), 0); }

  /// Grows or shrinks to `num_bits`, preserving the bits below the new size
  /// (new bits start cleared). The incremental fd-graph uses this to extend
  /// its node space as pending ids are allocated.
  void Resize(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
    TrimTail();
  }

  void SetAll() {
    words_.assign(words_.size(), ~std::uint64_t{0});
    TrimTail();
  }

  bool Any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool None() const { return !Any(); }

  std::size_t Count() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  /// In-place intersection. Requires equal sizes.
  DynamicBitset& operator&=(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place union. Requires equal sizes.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place difference (this \ other). Requires equal sizes.
  DynamicBitset& operator-=(const DynamicBitset& other) {
    assert(num_bits_ == other.num_bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
    return *this;
  }

  friend DynamicBitset operator&(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs &= rhs;
    return lhs;
  }

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Size of the intersection, without materializing it.
  std::size_t IntersectionCount(const DynamicBitset& other) const {
    assert(num_bits_ == other.num_bits_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += std::popcount(words_[i] & other.words_[i]);
    }
    return total;
  }

  /// Index of the lowest set bit, or size() if none.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= `from`, or size() if none.
  std::size_t FindNext(std::size_t from) const {
    if (from >= num_bits_) return num_bits_;
    std::size_t word_idx = from >> 6;
    std::uint64_t word = words_[word_idx] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) {
        const std::size_t bit =
            (word_idx << 6) + static_cast<std::size_t>(std::countr_zero(word));
        return bit < num_bits_ ? bit : num_bits_;
      }
      if (++word_idx == words_.size()) return num_bits_;
      word = words_[word_idx];
    }
  }

  /// Hash over size and bit contents (for deduplicating world bitsets).
  std::size_t Hash() const {
    std::size_t seed = num_bits_;
    for (std::uint64_t w : words_) {
      seed ^= static_cast<std::size_t>(w) + 0x9e3779b97f4a7c15ULL +
              (seed << 12) + (seed >> 4);
    }
    return seed;
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ToVector() const {
    std::vector<std::size_t> result;
    ForEach([&](std::size_t i) { result.push_back(i); });
    return result;
  }

  /// Invokes `fn(i)` for every set bit i in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn((w << 6) + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  void TrimTail() {
    const std::size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t num_bits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bcdb

#endif  // BCDB_UTIL_BITSET_H_
