#ifndef BCDB_UTIL_STATUS_H_
#define BCDB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace bcdb {

/// Error category for a failed operation. Mirrors the coarse categories used
/// by database engines (Arrow/RocksDB style); the library never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// All fallible APIs in this library return `Status` or `StatusOr<T>`;
/// exceptions are not used. A `Status` is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Never both.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversions from values and statuses keep call sites terse,
  /// matching the Arrow/absl idiom.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define BCDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::bcdb::Status _bcdb_status = (expr);     \
    if (!_bcdb_status.ok()) return _bcdb_status; \
  } while (0)

}  // namespace bcdb

#endif  // BCDB_UTIL_STATUS_H_
