#ifndef BCDB_UTIL_DEADLINE_H_
#define BCDB_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/thread_annotations.h"

namespace bcdb {

/// Declarative ceilings for one DCSat check. Every field treats 0 as
/// "unlimited"; a default-constructed BudgetLimits imposes nothing, and the
/// engine then runs the exact reference algorithms with zero budget
/// bookkeeping on any hot path (the decided results are bit-identical to a
/// build without this header).
///
/// The limits bound the three quantities that blow up in the CoNP-hard
/// cases (paper Theorem 1): wall-clock time, maximal cliques enumerated
/// (the monotone algorithms), and possible worlds materialized/evaluated
/// (the exhaustive algorithm). `max_components` additionally caps how many
/// connected components OptDCSat searches, which bounds the *breadth* of a
/// check the way `max_cliques` bounds its depth.
struct BudgetLimits {
  /// Wall-clock ceiling per check, monotonic clock. 0 = unlimited.
  double deadline_ms = 0;
  /// Maximal cliques enumerated across all components. 0 = unlimited.
  std::size_t max_cliques = 0;
  /// Possible worlds evaluated (exhaustive + clique paths). 0 = unlimited.
  std::size_t max_worlds = 0;
  /// Connected components searched (OptDCSat). 0 = unlimited.
  std::size_t max_components = 0;

  bool unlimited() const {
    return deadline_ms <= 0 && max_cliques == 0 && max_worlds == 0 &&
           max_components == 0;
  }

  /// The same limits multiplied by `factor` (>= 1), for escalating retries:
  /// unlimited fields stay unlimited, bounded ones grow proportionally.
  BudgetLimits Scaled(double factor) const {
    BudgetLimits scaled = *this;
    if (scaled.deadline_ms > 0) scaled.deadline_ms *= factor;
    auto scale = [factor](std::size_t limit) -> std::size_t {
      if (limit == 0) return 0;
      const double grown = static_cast<double>(limit) * factor;
      return grown >= static_cast<double>(SIZE_MAX)
                 ? SIZE_MAX
                 : static_cast<std::size_t>(grown);
    };
    scaled.max_cliques = scale(scaled.max_cliques);
    scaled.max_worlds = scale(scaled.max_worlds);
    scaled.max_components = scale(scaled.max_components);
    return scaled;
  }
};

/// Runtime tracker for one check's BudgetLimits, shared by every worker the
/// check fans out to (all members are atomics; charging is thread-safe).
///
/// The deadline is enforced cooperatively: search loops call Expired() (or
/// one of the Charge functions, which call it) at their preemption points —
/// between Bron–Kerbosch expansions, between worlds, between components.
/// Reading the monotonic clock on every probe would dominate those
/// fine-grained loops, so the clock is polled once every
/// `kTicksPerClockPoll` probes; with preemption points microseconds apart
/// this bounds the overshoot far below the 10x-budget envelope the monitor
/// promises. Once any limit trips, the expired flag latches and every
/// subsequent probe returns true immediately.
class Budget {
 public:
  explicit Budget(const BudgetLimits& limits)
      : limits_(limits),
        has_deadline_(limits.deadline_ms > 0),
        deadline_(has_deadline_
                      ? Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                                           std::chrono::duration<double,
                                                                 std::milli>(
                                               limits.deadline_ms))
                      : Clock::time_point::max()) {}

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  const BudgetLimits& limits() const { return limits_; }

  /// Cooperative preemption probe: true once the deadline or any work limit
  /// has been exceeded. Cheap (one relaxed load) except for the amortized
  /// clock poll.
  bool Expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ &&
        ticks_.fetch_add(1, std::memory_order_relaxed) %
                kTicksPerClockPoll ==
            0 &&
        Clock::now() >= deadline_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // The Charge functions are const so read-only search paths can hold
  // `const Budget*`: charging mutates only atomic accounting state and is
  // thread-safe, never observable through the search's own data.
  /// Charge one enumerated maximal clique; false once over budget.
  bool ChargeClique() const {
    return Charge(cliques_, limits_.max_cliques) && !Expired();
  }
  /// Charge one evaluated possible world; false once over budget.
  bool ChargeWorld() const {
    return Charge(worlds_, limits_.max_worlds) && !Expired();
  }
  /// Charge one searched component; false once over budget.
  bool ChargeComponent() const {
    return Charge(components_, limits_.max_components) && !Expired();
  }

  std::size_t cliques_charged() const {
    return cliques_.load(std::memory_order_relaxed);
  }
  std::size_t worlds_charged() const {
    return worlds_.load(std::memory_order_relaxed);
  }
  std::size_t components_charged() const {
    return components_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::uint64_t kTicksPerClockPoll = 64;

  bool Charge(std::atomic<std::size_t>& counter, std::size_t limit) const {
    const std::size_t charged =
        counter.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limit != 0 && charged > limit) {
      expired_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  const BudgetLimits limits_;
  const bool has_deadline_;
  const Clock::time_point deadline_;
  // All accounting is intentionally lock-free: Charge sits on the innermost
  // search loops, shared by every worker of a fan-out check, and a mutex
  // here would serialize the very parallelism the pool exists for.
  mutable std::atomic<std::size_t> cliques_ BCDB_LOCK_FREE(
      "relaxed fetch_add counter; the limit comparison tolerates a small"
      " overshoot (several workers can each pass the limit once)") {0};
  mutable std::atomic<std::size_t> worlds_ BCDB_LOCK_FREE(
      "relaxed fetch_add counter; same overshoot tolerance as cliques_") {0};
  mutable std::atomic<std::size_t> components_ BCDB_LOCK_FREE(
      "relaxed fetch_add counter; same overshoot tolerance as cliques_") {0};
  mutable std::atomic<std::uint64_t> ticks_ BCDB_LOCK_FREE(
      "probe counter used only to amortize clock polls (every 64th probe);"
      " no decision rides on its exact value") {0};
  mutable std::atomic<bool> expired_ BCDB_LOCK_FREE(
      "monotone latch: set-once-true, read relaxed on every probe; a worker"
      " observing it late only does bounded extra work") {false};
};

}  // namespace bcdb

#endif  // BCDB_UTIL_DEADLINE_H_
