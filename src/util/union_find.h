#ifndef BCDB_UTIL_UNION_FIND_H_
#define BCDB_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace bcdb {

/// Disjoint-set forest with union by size and path halving.
///
/// Used to compute the connected components of the ind-q-transaction graph
/// G^{q,ind}_T without materializing its edges.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  /// Reinitializes to `n` singleton sets, reusing existing capacity.
  void Reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    size_.assign(n, 1);
  }

  /// Extends the element space to `n`, keeping existing sets and adding the
  /// new elements as singletons. No-op when already at least that large.
  void Grow(std::size_t n) {
    const std::size_t old = parent_.size();
    if (n <= old) return;
    parent_.resize(n);
    std::iota(parent_.begin() + old, parent_.end(), old);
    size_.resize(n, 1);
  }

  /// Becomes a copy of `other`, reusing existing capacity. The OptDCSat hot
  /// path re-seeds one scratch instance from the cached Θ_I components on
  /// every check instead of allocating a fresh deep copy per query.
  void CopyFrom(const UnionFind& other) {
    parent_.assign(other.parent_.begin(), other.parent_.end());
    size_.assign(other.size_.begin(), other.size_.end());
  }

  /// Returns the representative of `x`'s set.
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of `a` and `b`. Returns true if they were distinct.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }

  /// Size of the set containing `x`.
  std::size_t SetSize(std::size_t x) { return size_[Find(x)]; }

  std::size_t num_elements() const { return parent_.size(); }

  /// Groups element ids by component; every returned group is non-empty and
  /// the groups partition [0, n).
  std::vector<std::vector<std::size_t>> Components() {
    std::vector<std::vector<std::size_t>> by_root(parent_.size());
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      by_root[Find(i)].push_back(i);
    }
    std::vector<std::vector<std::size_t>> result;
    for (auto& group : by_root) {
      if (!group.empty()) result.push_back(std::move(group));
    }
    return result;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace bcdb

#endif  // BCDB_UTIL_UNION_FIND_H_
