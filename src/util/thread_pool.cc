#include "util/thread_pool.h"

#include "util/mutex.h"

namespace bcdb {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  const std::size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    MutexLock lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(packaged));
  }
  {
    MutexLock lock(wake_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.NotifyOne();
  return future;
}

bool ThreadPool::TryPop(std::size_t worker_index,
                        std::packaged_task<void()>& task) {
  {
    WorkerQueue& own = *queues_[worker_index];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim =
        *queues_[(worker_index + offset) % queues_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  for (;;) {
    std::packaged_task<void()> task;
    if (TryPop(worker_index, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    {
      MutexLock lock(wake_mutex_);
      wake_cv_.Wait(wake_mutex_, [this] {
        return stop_.load(std::memory_order_relaxed) ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_.load(std::memory_order_relaxed) &&
          queued_.load(std::memory_order_relaxed) <= 0) {
        return;
      }
    }
  }
}

std::size_t ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::EffectiveThreads(std::size_t requested) {
  return requested == 0 ? HardwareConcurrency() : requested;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareConcurrency());
  return pool;
}

}  // namespace bcdb
