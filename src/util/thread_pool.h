#ifndef BCDB_UTIL_THREAD_POOL_H_
#define BCDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bcdb {

/// Cooperative cancellation shared between the submitter and in-flight pool
/// tasks. Two modes compose:
///
/// * `RequestStop()` — cancel every observer.
/// * `CancelRanksAbove(r)` — cancel observers whose rank is *greater* than
///   `r`, leaving lower ranks running. This is the determinism rule of the
///   parallel DCSat component search: when component `r` finds a violating
///   world, components with larger indices become irrelevant (the lowest
///   violating index wins), but smaller indices must run to completion
///   because the serial algorithm would have reported one of *them* first.
///
/// Tasks poll `ShouldStop(rank)` at convenient preemption points; the token
/// never interrupts anything by force.
class CancellationToken {
 public:
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Lowers the rank limit to `rank` (monotone: limits only ever decrease).
  void CancelRanksAbove(std::size_t rank) {
    std::size_t current = rank_limit_.load(std::memory_order_relaxed);
    while (rank < current && !rank_limit_.compare_exchange_weak(
                                 current, rank, std::memory_order_relaxed)) {
    }
  }

  bool ShouldStop(std::size_t rank = 0) const {
    return stop_.load(std::memory_order_relaxed) ||
           rank > rank_limit_.load(std::memory_order_relaxed);
  }

  /// Lowest rank passed to CancelRanksAbove so far (SIZE_MAX if none).
  std::size_t rank_limit() const {
    return rank_limit_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> rank_limit_{SIZE_MAX};
};

/// Fixed-size worker pool with per-worker task deques and work stealing.
///
/// Submitted tasks are distributed round-robin across the worker deques; an
/// idle worker first drains its own deque front-to-back, then steals from
/// the *back* of a sibling's deque, so large task batches balance across
/// workers even when component sizes are skewed (the DCSat case: one giant
/// connected component next to hundreds of singletons).
///
/// Tasks must not block on other tasks of the same pool (no nested Submit +
/// wait), which the DCSat/monitor callers respect by running nested checks
/// serially. Destruction drains every queued task, then joins the workers.
class ThreadPool {
 public:
  /// `num_threads` == 0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task`; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t HardwareConcurrency();

  /// Resolves the DcSatOptions::num_threads convention: 0 → hardware
  /// concurrency, anything else → itself.
  static std::size_t EffectiveThreads(std::size_t requested);

  /// Process-wide pool sized to the hardware, for callers without their own.
  static ThreadPool& Shared();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void WorkerLoop(std::size_t worker_index);
  bool TryPop(std::size_t worker_index, std::packaged_task<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  // Guarded by wake_mutex_ on increment so sleeping workers never miss a
  // submission; decremented lock-free after a successful pop (a transiently
  // negative value only causes a spurious wake).
  std::atomic<std::ptrdiff_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace bcdb

#endif  // BCDB_UTIL_THREAD_POOL_H_
