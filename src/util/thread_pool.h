#ifndef BCDB_UTIL_THREAD_POOL_H_
#define BCDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcdb {

/// Cooperative cancellation shared between the submitter and in-flight pool
/// tasks. Two modes compose:
///
/// * `RequestStop()` — cancel every observer.
/// * `CancelRanksAbove(r)` — cancel observers whose rank is *greater* than
///   `r`, leaving lower ranks running. This is the determinism rule of the
///   parallel DCSat component search: when component `r` finds a violating
///   world, components with larger indices become irrelevant (the lowest
///   violating index wins), but smaller indices must run to completion
///   because the serial algorithm would have reported one of *them* first.
///
/// Tasks poll `ShouldStop(rank)` at convenient preemption points; the token
/// never interrupts anything by force.
class CancellationToken {
 public:
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Lowers the rank limit to `rank` (monotone: limits only ever decrease).
  void CancelRanksAbove(std::size_t rank) {
    std::size_t current = rank_limit_.load(std::memory_order_relaxed);
    while (rank < current && !rank_limit_.compare_exchange_weak(
                                 current, rank, std::memory_order_relaxed)) {
    }
  }

  bool ShouldStop(std::size_t rank = 0) const {
    return stop_.load(std::memory_order_relaxed) ||
           rank > rank_limit_.load(std::memory_order_relaxed);
  }

  /// Lowest rank passed to CancelRanksAbove so far (SIZE_MAX if none).
  std::size_t rank_limit() const {
    return rank_limit_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_ BCDB_LOCK_FREE(
      "monotone flag; relaxed is enough because cancellation is advisory —"
      " observers only ever poll it") {false};
  std::atomic<std::size_t> rank_limit_ BCDB_LOCK_FREE(
      "monotone-decreasing watermark maintained by a relaxed CAS loop;"
      " readers tolerate staleness (a late cancel only wastes work)") {
      SIZE_MAX};
};

/// Fixed-size worker pool with per-worker task deques and work stealing.
///
/// Submitted tasks are distributed round-robin across the worker deques; an
/// idle worker first drains its own deque front-to-back, then steals from
/// the *back* of a sibling's deque, so large task batches balance across
/// workers even when component sizes are skewed (the DCSat case: one giant
/// connected component next to hundreds of singletons).
///
/// Tasks must not block on other tasks of the same pool (no nested Submit +
/// wait), which the DCSat/monitor callers respect by running nested checks
/// serially. Destruction drains every queued task, then joins the workers.
class ThreadPool {
 public:
  /// `num_threads` == 0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task`; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t HardwareConcurrency();

  /// Resolves the DcSatOptions::num_threads convention: 0 → hardware
  /// concurrency, anything else → itself.
  static std::size_t EffectiveThreads(std::size_t requested);

  /// Process-wide pool sized to the hardware, for callers without their own.
  static ThreadPool& Shared();

 private:
  /// One worker's deque. All WorkerQueue mutexes share kThreadPoolQueue:
  /// own-queue pop and victim steal each lock exactly one queue at a time,
  /// never two (the hierarchy checker would reject a same-rank nesting).
  struct WorkerQueue {
    Mutex mutex{LockRank::kThreadPoolQueue};
    std::deque<std::packaged_task<void()>> tasks BCDB_GUARDED_BY(mutex);
  };

  void WorkerLoop(std::size_t worker_index);
  bool TryPop(std::size_t worker_index, std::packaged_task<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  Mutex wake_mutex_{LockRank::kThreadPoolWake};
  CondVar wake_cv_;
  std::atomic<std::ptrdiff_t> queued_ BCDB_LOCK_FREE(
      "incremented under wake_mutex_ so sleeping workers never miss a"
      " submission; decremented lock-free after a successful pop (a"
      " transiently negative value only causes a spurious wake)") {0};
  std::atomic<bool> stop_ BCDB_LOCK_FREE(
      "set once under wake_mutex_ at shutdown (pairs with the cv wait);"
      " read relaxed in the worker loop's fast path") {false};
  std::atomic<std::size_t> next_queue_ BCDB_LOCK_FREE(
      "round-robin submission cursor; relaxed fetch_add — distribution"
      " quality, not correctness, is all that rides on it") {0};
};

}  // namespace bcdb

#endif  // BCDB_UTIL_THREAD_POOL_H_
