#include "util/mutex.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace bcdb {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kMutationListeners:
      return "kMutationListeners";
    case LockRank::kMonitor:
      return "kMonitor";
    case LockRank::kDurableStore:
      return "kDurableStore";
    case LockRank::kMutationLog:
      return "kMutationLog";
    case LockRank::kEnginePool:
      return "kEnginePool";
    case LockRank::kThreadPoolQueue:
      return "kThreadPoolQueue";
    case LockRank::kThreadPoolWake:
      return "kThreadPoolWake";
    case LockRank::kValuePool:
      return "kValuePool";
  }
  return "<unknown rank>";
}

namespace lock_debug {
namespace {

#if defined(BCDB_DEBUG_LOCKS)
struct HeldLock {
  const void* mutex;
  LockRank rank;
};

// The calling thread's currently-held bcdb locks, in acquisition order.
// Deliberately a trivially-destructible fixed-size array, NOT a vector: a
// heap-backed thread_local registers a TLS destructor, and on glibc the
// main thread's TLS destructors run *before* atexit handlers — so a
// function-local-static pool (ThreadPool::Shared) locking its wake mutex
// during exit teardown would push onto a freed buffer. POD storage also
// never allocates under a lock acquisition path, which would perturb the
// very interleavings tsan is hunting.
constexpr std::size_t kMaxHeldLocks = 16;
struct HeldStackStorage {
  HeldLock locks[kMaxHeldLocks];
  std::size_t size = 0;
};
static_assert(std::is_trivially_destructible_v<HeldStackStorage>,
              "held stack must not register a TLS destructor (see above)");

HeldStackStorage& HeldStack() {
  thread_local HeldStackStorage stack;
  return stack;
}

void DumpHeldStack() {
  const auto& stack = HeldStack();
  std::fprintf(stderr, "  held locks (oldest first):\n");
  for (std::size_t i = 0; i < stack.size; ++i) {
    const HeldLock& held = stack.locks[i];
    std::fprintf(stderr, "    %p rank %d (%s)\n", held.mutex,
                 static_cast<int>(held.rank), LockRankName(held.rank));
  }
}
#endif  // BCDB_DEBUG_LOCKS

}  // namespace

[[noreturn]] void Die(const char* message) {
  std::fprintf(stderr, "bcdb lock discipline violation: %s\n", message);
#if defined(BCDB_DEBUG_LOCKS)
  DumpHeldStack();
#endif
  std::fprintf(stderr, "  see DESIGN.md section 16 for the lock hierarchy\n");
  std::abort();
}

#if defined(BCDB_DEBUG_LOCKS)

void PreAcquire(const void* mutex, LockRank rank) {
  const auto& stack = HeldStack();
  for (std::size_t i = 0; i < stack.size; ++i) {
    const HeldLock& held = stack.locks[i];
    if (held.mutex == mutex) {
      std::fprintf(stderr,
                   "bcdb lock discipline violation: recursive acquisition of "
                   "%p rank %d (%s)\n",
                   mutex, static_cast<int>(rank), LockRankName(rank));
      DumpHeldStack();
      std::fprintf(stderr,
                   "  see DESIGN.md section 16 for the lock hierarchy\n");
      std::abort();
    }
    if (held.rank >= rank) {
      std::fprintf(stderr,
                   "bcdb lock discipline violation: acquiring %p rank %d (%s) "
                   "while holding %p rank %d (%s); ranks must strictly "
                   "increase along any acquisition chain\n",
                   mutex, static_cast<int>(rank), LockRankName(rank),
                   held.mutex, static_cast<int>(held.rank),
                   LockRankName(held.rank));
      DumpHeldStack();
      std::fprintf(stderr,
                   "  see DESIGN.md section 16 for the lock hierarchy\n");
      std::abort();
    }
  }
}

void OnAcquire(const void* mutex, LockRank rank) {
  auto& stack = HeldStack();
  if (stack.size >= kMaxHeldLocks) {
    Die("held-lock stack overflow: more than 16 locks held by one thread");
  }
  stack.locks[stack.size++] = HeldLock{mutex, rank};
}

void OnRelease(const void* mutex) {
  auto& stack = HeldStack();
  for (std::size_t i = stack.size; i > 0; --i) {
    if (stack.locks[i - 1].mutex == mutex) {
      for (std::size_t j = i - 1; j + 1 < stack.size; ++j) {
        stack.locks[j] = stack.locks[j + 1];
      }
      --stack.size;
      return;
    }
  }
  std::fprintf(stderr,
               "bcdb lock discipline violation: releasing %p which this "
               "thread does not hold\n",
               mutex);
  DumpHeldStack();
  std::fprintf(stderr, "  see DESIGN.md section 16 for the lock hierarchy\n");
  std::abort();
}

bool HeldByCurrentThread(const void* mutex) {
  const auto& stack = HeldStack();
  for (std::size_t i = 0; i < stack.size; ++i) {
    if (stack.locks[i].mutex == mutex) return true;
  }
  return false;
}

std::size_t NumHeldByCurrentThread() { return HeldStack().size; }

#endif  // BCDB_DEBUG_LOCKS

}  // namespace lock_debug
}  // namespace bcdb
