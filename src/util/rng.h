#ifndef BCDB_UTIL_RNG_H_
#define BCDB_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace bcdb {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// Every source of randomness in the library (workload generation,
/// contradiction injection, test fuzzing) flows through a seeded instance so
/// datasets and experiments are reproducible bit-for-bit across platforms,
/// unlike std::mt19937 + std::uniform_int_distribution whose outputs are
/// implementation-defined.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(NextBelow(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace bcdb

#endif  // BCDB_UTIL_RNG_H_
