#ifndef BCDB_UTIL_THREAD_ANNOTATIONS_H_
#define BCDB_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
///
/// The concurrency discipline of this codebase is *compiler-enforced*: every
/// lock is a bcdb::Mutex/SharedMutex (util/mutex.h) declared as a
/// BCDB_CAPABILITY, every field a lock protects carries BCDB_GUARDED_BY, and
/// every function that expects a lock held carries BCDB_REQUIRES. Under
/// clang, `-Wthread-safety` then rejects unlocked accesses at build time (the
/// CI `clang-threadsafety` job runs it as -Werror); under other compilers
/// the macros vanish and the same source builds unchanged.
///
/// Intentionally lock-free state (atomics with a documented protocol) is
/// tagged BCDB_LOCK_FREE("why") instead — the tag expands to nothing, but
/// tools/bcdb_locklint fails the build when a raw std::atomic member lacks
/// it, so "no annotation" can never silently mean "nobody thought about it".
///
/// Macro reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define BCDB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define BCDB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a class to be a capability (lockable) type.
#define BCDB_CAPABILITY(x) BCDB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime equals a capability hold.
#define BCDB_SCOPED_CAPABILITY BCDB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The field may be read/written only while holding the given capability.
#define BCDB_GUARDED_BY(x) BCDB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointee may be dereferenced only while holding the given capability.
#define BCDB_PT_GUARDED_BY(x) BCDB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Static acquisition-order edges between capabilities (checked under
/// -Wthread-safety-beta; the runtime LockRank checker in util/mutex.h covers
/// the same hierarchy dynamically).
#define BCDB_ACQUIRED_BEFORE(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define BCDB_ACQUIRED_AFTER(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function may be called only while holding the given capabilities.
#define BCDB_REQUIRES(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define BCDB_REQUIRES_SHARED(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the given capabilities.
#define BCDB_ACQUIRE(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define BCDB_ACQUIRE_SHARED(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define BCDB_RELEASE(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define BCDB_RELEASE_SHARED(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define BCDB_TRY_ACQUIRE(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function may be called only while NOT holding the capabilities
/// (deadlock guard for functions that acquire them internally).
#define BCDB_EXCLUDES(...) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (Mutex::AssertHeld).
#define BCDB_ASSERT_CAPABILITY(x) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the given capability.
#define BCDB_RETURN_CAPABILITY(x) \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Every use must
/// explain why in a comment.
#define BCDB_NO_THREAD_SAFETY_ANALYSIS \
  BCDB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Tags a std::atomic (or other deliberately unguarded) declaration as an
/// intentional lock-free protocol. Expands to nothing; the string argument
/// is the one-line protocol rationale, kept next to the declaration.
/// tools/bcdb_locklint requires this tag on every raw std::atomic declared
/// outside util/mutex.h — an untagged atomic fails the lint CI job.
#define BCDB_LOCK_FREE(...)

#endif  // BCDB_UTIL_THREAD_ANNOTATIONS_H_
