#include "util/strings.h"

#include <string.h>

#include <cctype>

namespace bcdb {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string_view TrimWhitespace(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view input, char sep) {
  std::vector<std::string> result;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      result.emplace_back(TrimWhitespace(input.substr(start, i - start)));
      start = i + 1;
    }
  }
  return result;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string ErrnoString(int err) {
  char buf[256];
#if defined(_GNU_SOURCE) && defined(__GLIBC__)
  // GNU flavor: returns the message, which may live in `buf` or in static
  // immutable storage — either way, safe to copy from any thread.
  return strerror_r(err, buf, sizeof(buf));
#else
  // XSI flavor: fills `buf`, non-zero on failure.
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace bcdb
