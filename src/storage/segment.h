#ifndef BCDB_STORAGE_SEGMENT_H_
#define BCDB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace bcdb {
namespace storage {

/// Append-only checkpoint segment files.
///
/// Layout (all integers little-endian):
///
///   +-----------------------------------------------------------+
///   | magic "BCDBSEG1" (8)                                      |
///   | format_version u32 | block_size u32                       |
///   | checkpoint_seq u64  (mutation-log end_seq at snapshot)    |
///   | db_version u64                                            |
///   | schema_fingerprint u64                                    |
///   | payload_size u64                                          |
///   | header_crc u32 (masked CRC32C of all preceding bytes)     |
///   +-----------------------------------------------------------+
///   | block: len u32 | masked CRC32C u32 | payload bytes        |
///   | ... ceil(payload_size / block_size) blocks ...            |
///   +-----------------------------------------------------------+
///
/// Per-block checksums localize corruption: a flipped bit invalidates one
/// block (and hence the whole segment — snapshots are all-or-nothing) while
/// still letting the verifier report *where*. Segments commit atomically:
/// the writer streams to `<path>.tmp`, fsyncs, renames onto `<path>`, and
/// fsyncs the directory; a crash mid-write leaves only a `.tmp` orphan that
/// recovery ignores.
struct SegmentHeader {
  static constexpr char kMagic[9] = "BCDBSEG1";
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::uint32_t kDefaultBlockSize = 64 * 1024;

  std::uint32_t block_size = kDefaultBlockSize;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t db_version = 0;
  std::uint64_t schema_fingerprint = 0;
  std::uint64_t payload_size = 0;
};

/// Writes a complete segment (tmp + fsync + rename). Returns the physical
/// bytes written via `*physical_bytes` when non-null.
Status WriteSegment(const std::string& path, const SegmentHeader& header,
                    std::string_view payload,
                    std::uint64_t* physical_bytes = nullptr);

/// A fully-validated segment: header plus reassembled payload.
struct SegmentContents {
  SegmentHeader header;
  std::string payload;
};

/// Maps the file read-only and validates the header CRC and every block
/// CRC against the mapped bytes; any mismatch, truncation, or trailing
/// garbage fails the whole read. The payload is reassembled from the
/// validated blocks (block payloads are interleaved with framing, so the
/// contiguous copy is unavoidable); all decoding up to that point runs
/// over the mapping itself.
StatusOr<SegmentContents> ReadSegment(const std::string& path);

/// Header-only probe (for inspection tools): validates just the fixed
/// header, not the blocks.
StatusOr<SegmentHeader> ReadSegmentHeader(const std::string& path);

/// Read-only mmap of a whole file, shared by the segment reader and the
/// WAL recovery scan. An empty file maps to a null region of size 0.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static StatusOr<MappedFile> Open(const std::string& path);

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data_, size_); }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// fsyncs the directory containing `path` (making a rename durable).
Status SyncParentDir(const std::string& path);

}  // namespace storage
}  // namespace bcdb

#endif  // BCDB_STORAGE_SEGMENT_H_
