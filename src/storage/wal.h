#ifndef BCDB_STORAGE_WAL_H_
#define BCDB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bcdb {
namespace storage {

/// When appended WAL records reach the disk.
enum class SyncPolicy {
  /// Never fsync (OS page cache only) — the fastest and weakest option;
  /// durable only across process crashes, not power loss.
  kNone,
  /// Group commit: fsync once at least `group_bytes` are pending (and on
  /// Sync()/Close()). Amortizes the fsync over many records.
  kGroup,
  /// fsync after every record — the strongest and slowest option.
  kEveryRecord,
};

const char* SyncPolicyToString(SyncPolicy policy);

/// Append-only write-ahead log of framed records:
///
///   record := magic u32 ("WALR") | len u32 | masked CRC32C u32 | payload
///
/// A torn tail (crash mid-append) shows up as a record whose magic, length
/// bound, or checksum fails; the recovery scan stops there and truncates
/// the file back to the last whole record.
///
/// Externally synchronized by design: the writer stays a plain movable
/// value type (rotation hands whole writers around — `wal_ = Open(...)`),
/// which a member bcdb::Mutex would forbid. Its one owner, DurableStore,
/// holds its kDurableStore lock around every call, and declares its
/// WalWriter member GUARDED_BY that lock.
class WalWriter {
 public:
  static constexpr std::uint32_t kRecordMagic = 0x574C4152u;  // "RALW" LE

  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creating it if missing).
  static StatusOr<WalWriter> Open(const std::string& path, SyncPolicy policy,
                                  std::size_t group_bytes = 256 * 1024);

  /// Frames and appends one record, then applies the sync policy.
  Status Append(std::string_view payload);

  /// Forces everything appended so far to disk.
  Status Sync();

  /// Syncs and closes. Further appends fail.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t physical_bytes() const { return physical_bytes_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t syncs() const { return syncs_; }

 private:
  int fd_ = -1;
  std::string path_;
  SyncPolicy policy_ = SyncPolicy::kGroup;
  std::size_t group_bytes_ = 0;
  std::size_t unsynced_bytes_ = 0;
  std::uint64_t physical_bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t syncs_ = 0;
};

/// Result of scanning one WAL file.
struct WalScan {
  /// Payloads of every whole, checksum-valid record, in append order.
  std::vector<std::string> records;
  /// Byte offset just past the last valid record — where a torn tail (if
  /// any) starts.
  std::uint64_t valid_prefix = 0;
  /// True if bytes past valid_prefix exist (torn or corrupted tail).
  bool tail_corrupt = false;
};

/// Scans `path` front to back, stopping at the first framing or checksum
/// failure. A missing file scans as empty.
StatusOr<WalScan> ScanWal(const std::string& path);

/// Truncates `path` to `size` bytes (recovery chopping a torn tail).
Status TruncateWal(const std::string& path, std::uint64_t size);

}  // namespace storage
}  // namespace bcdb

#endif  // BCDB_STORAGE_WAL_H_
