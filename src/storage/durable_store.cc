#include "storage/durable_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "storage/record_codec.h"
#include "storage/segment.h"
#include "util/strings.h"

namespace bcdb {
namespace storage {

namespace {

constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".seg";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";

std::string SeqName(const char* prefix, std::uint64_t seq,
                    const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016" PRIx64 "%s", prefix, seq, suffix);
  return buf;
}

/// Parses "<prefix><16 hex digits><suffix>" names; returns false otherwise.
bool ParseSeqName(const std::string& name, const char* prefix,
                  const char* suffix, std::uint64_t* seq) {
  const std::size_t prefix_len = std::strlen(prefix);
  const std::size_t suffix_len = std::strlen(suffix);
  if (name.size() != prefix_len + 16 + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(prefix_len + 16, suffix_len, suffix) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = prefix_len; i < prefix_len + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *seq = value;
  return true;
}

/// Seqs of all files in `dir` matching the prefix/suffix pattern.
std::vector<std::uint64_t> ListSeqs(const std::string& dir, const char* prefix,
                                    const char* suffix) {
  std::vector<std::uint64_t> seqs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (struct dirent* entry = ::readdir(d)) {
    std::uint64_t seq;
    if (ParseSeqName(entry->d_name, prefix, suffix, &seq)) {
      seqs.push_back(seq);
    }
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

DurableStore::DurableStore(std::string dir, Catalog catalog,
                           DurableStoreOptions options)
    : dir_(std::move(dir)),
      catalog_(std::move(catalog)),
      options_(options),
      schema_fingerprint_(SchemaFingerprint(catalog_)) {}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    std::string dir, Catalog catalog, DurableStoreOptions options) {
  if (dir.empty()) return Status::InvalidArgument("empty store directory");
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir " + dir + ": " + ErrnoString(errno));
  }
  return std::unique_ptr<DurableStore>(
      new DurableStore(std::move(dir), std::move(catalog), options));
}

std::string DurableStore::CheckpointPath(std::uint64_t seq) const {
  return dir_ + "/" + SeqName(kCheckpointPrefix, seq, kCheckpointSuffix);
}

std::string DurableStore::WalPath(std::uint64_t start_seq) const {
  return dir_ + "/" + SeqName(kWalPrefix, start_seq, kWalSuffix);
}

std::vector<std::string> DurableStore::ListCheckpoints() const {
  std::vector<std::uint64_t> seqs =
      ListSeqs(dir_, kCheckpointPrefix, kCheckpointSuffix);
  std::vector<std::string> paths;
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    paths.push_back(CheckpointPath(*it));
  }
  return paths;
}

std::vector<std::string> DurableStore::ListWalFiles() const {
  std::vector<std::string> paths;
  for (std::uint64_t seq : ListSeqs(dir_, kWalPrefix, kWalSuffix)) {
    paths.push_back(WalPath(seq));
  }
  return paths;
}

Status DurableStore::OpenActiveWal(std::uint64_t start_seq, bool fresh) {
  AbsorbWalCounters();
  const std::string path = WalPath(start_seq);
  if (fresh) ::unlink(path.c_str());
  StatusOr<WalWriter> writer =
      WalWriter::Open(path, options_.sync, options_.group_bytes);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  wal_start_seq_ = start_seq;
  return Status::OK();
}

void DurableStore::AbsorbWalCounters() {
  absorbed_wal_bytes_ += wal_.physical_bytes();
  absorbed_wal_records_ += wal_.records();
  absorbed_wal_syncs_ += wal_.syncs();
  stats_.wal_bytes = absorbed_wal_bytes_;
  stats_.wal_records = absorbed_wal_records_;
  stats_.wal_syncs = absorbed_wal_syncs_;
}

StatusOr<BlockchainDatabase> DurableStore::Recover(ConstraintSet constraints) {
  MutexLock lock(mutex_);
  if (recovered_) {
    return Status::InvalidArgument("Recover may only be called once");
  }

  // 1. Base image: the newest checkpoint that reads back clean and matches
  // the catalog; older retained checkpoints are fallbacks. No checkpoint
  // (fresh directory, or all corrupt) starts from empty.
  StatusOr<BlockchainDatabase> db =
      BlockchainDatabase::Create(catalog_, std::move(constraints));
  if (!db.ok()) return db.status();
  const std::vector<std::uint64_t> checkpoint_seqs =
      ListSeqs(dir_, kCheckpointPrefix, kCheckpointSuffix);
  bool restored = false;
  for (auto it = checkpoint_seqs.rbegin();
       !restored && it != checkpoint_seqs.rend(); ++it) {
    StatusOr<SegmentContents> segment = ReadSegment(CheckpointPath(*it));
    if (!segment.ok()) {
      stats_.degraded_recovery = true;  // A persisted checkpoint is unusable.
      continue;
    }
    if (segment->header.schema_fingerprint != schema_fingerprint_) {
      return Status::InvalidArgument(
          "checkpoint " + CheckpointPath(*it) +
          " was written under a different schema");
    }
    // Rehydrate into a throwaway database so a half-restored image from a
    // corrupt payload never becomes the fallback base.
    StatusOr<BlockchainDatabase> candidate =
        BlockchainDatabase::Create(catalog_, db->constraints());
    if (!candidate.ok()) return candidate.status();
    Status restore =
        RestoreSnapshot(segment->payload, segment->header.db_version,
                        segment->header.checkpoint_seq, &*candidate);
    if (!restore.ok()) {
      stats_.degraded_recovery = true;
      continue;
    }
    db = std::move(candidate);
    restored = true;
    for (std::size_t r = 0; r < db->database().num_relations(); ++r) {
      stats_.recovered_snapshot_tuples += db->database().relation(r).num_tuples();
    }
  }

  // 2. Roll the WAL forward. Files partition the seq space by rotation
  // point, so replaying them oldest-first and skipping already-covered
  // seqs applies exactly the suffix after the recovered base. The final
  // file may have a torn tail (crash mid-append): truncate it back to the
  // last whole record. A seq gap or a corrupt non-final file means the
  // remaining records can never apply (double-fault past the retention
  // horizon): recovery stops there, flags degradation, and discards the
  // poisoned files.
  const std::vector<std::uint64_t> wal_seqs =
      ListSeqs(dir_, kWalPrefix, kWalSuffix);
  bool replay_poisoned = false;
  for (std::size_t i = 0; i < wal_seqs.size() && !replay_poisoned; ++i) {
    const std::string path = WalPath(wal_seqs[i]);
    const bool is_last = i + 1 == wal_seqs.size();
    StatusOr<WalScan> scan = ScanWal(path);
    if (!scan.ok()) return scan.status();
    for (const std::string& record : scan->records) {
      StatusOr<PersistedMutation> mutation = DecodeMutation(record, catalog_);
      if (!mutation.ok()) {
        replay_poisoned = true;
        break;
      }
      const std::uint64_t next_seq = db->mutations().end_seq();
      if (mutation->event.seq < next_seq) continue;  // Checkpoint-covered.
      if (mutation->event.seq > next_seq) {          // Gap: cannot apply.
        replay_poisoned = true;
        break;
      }
      Status applied = Status::OK();
      switch (mutation->event.kind) {
        case MutationKind::kPendingAdded: {
          StatusOr<PendingId> id = db->AddPending(mutation->txn);
          if (!id.ok()) {
            applied = id.status();
          } else if (*id != mutation->event.pending_id) {
            applied = Status::Internal("replayed pending id mismatch");
          }
          break;
        }
        case MutationKind::kPendingApplied:
          applied = db->ApplyPending(mutation->event.pending_id);
          break;
        case MutationKind::kPendingDiscarded:
          applied = db->DiscardPending(mutation->event.pending_id);
          break;
        case MutationKind::kCurrentInserted:
          applied = db->InsertCurrent(
              catalog_.schema(mutation->relation_id).name(),
              std::move(mutation->tuple));
          break;
        case MutationKind::kCurrentRemoved:
          applied = db->RemoveCurrent(
              catalog_.schema(mutation->relation_id).name(), mutation->tuple);
          break;
        case MutationKind::kPendingRestored:
          applied = db->UnapplyPending(mutation->event.pending_id);
          break;
      }
      if (!applied.ok()) {
        return Status::Internal("WAL replay of seq " +
                                std::to_string(mutation->event.seq) +
                                " failed: " + applied.message());
      }
      if (db->version() != mutation->event.version) {
        return Status::Internal("WAL replay diverged from recorded version");
      }
      ++stats_.recovered_wal_records;
    }
    if (replay_poisoned) break;
    if (scan->tail_corrupt) {
      if (!is_last) {
        replay_poisoned = true;  // Interior corruption: later files can't apply.
        break;
      }
      BCDB_RETURN_IF_ERROR(TruncateWal(path, scan->valid_prefix));
    }
  }

  // 3. Position the store for appends. In the normal case the last WAL
  // file simply continues; after a poisoned replay the unappliable files
  // are dropped and a fresh file starts at the recovered seq.
  const std::uint64_t end_seq = db->mutations().end_seq();
  if (replay_poisoned) {
    stats_.degraded_recovery = true;
    // Persist the salvaged prefix as a checkpoint BEFORE discarding the
    // poisoned WAL files: the salvage otherwise exists only in this
    // process, and a second open would come up empty.
    SegmentHeader salvage;
    salvage.checkpoint_seq = end_seq;
    salvage.db_version = db->version();
    salvage.schema_fingerprint = schema_fingerprint_;
    std::uint64_t physical = 0;
    BCDB_RETURN_IF_ERROR(WriteSegment(CheckpointPath(end_seq), salvage,
                                      EncodeSnapshot(*db), &physical));
    stats_.segment_bytes += physical;
    ++stats_.checkpoints;
    for (std::uint64_t seq : wal_seqs) ::unlink(WalPath(seq).c_str());
    BCDB_RETURN_IF_ERROR(OpenActiveWal(end_seq, /*fresh=*/true));
  } else if (!wal_seqs.empty()) {
    BCDB_RETURN_IF_ERROR(OpenActiveWal(wal_seqs.back(), /*fresh=*/false));
  } else {
    BCDB_RETURN_IF_ERROR(OpenActiveWal(end_seq, /*fresh=*/true));
  }
  recovered_ = true;
  return db;
}

void DurableStore::Persist(const MutationEvent& event,
                           const MutationPayload& payload) {
  MutexLock lock(mutex_);
  if (!status_.ok()) return;  // Latched: later mutations are not durable.
  if (!recovered_) {
    status_ = Status::Internal("Persist before Recover positioned the store");
    return;
  }
  std::string record;
  Status encoded = EncodeMutation(event, payload, catalog_, &record);
  if (!encoded.ok()) {
    status_ = std::move(encoded);
    return;
  }
  stats_.logical_bytes += record.size();
  Status appended = wal_.Append(record);
  if (!appended.ok()) {
    status_ = std::move(appended);
    return;
  }
  stats_.wal_bytes = absorbed_wal_bytes_ + wal_.physical_bytes();
  stats_.wal_records = absorbed_wal_records_ + wal_.records();
  stats_.wal_syncs = absorbed_wal_syncs_ + wal_.syncs();
}

Status DurableStore::Sync() {
  MutexLock lock(mutex_);
  BCDB_RETURN_IF_ERROR(status_);
  Status synced = wal_.Sync();
  stats_.wal_syncs = absorbed_wal_syncs_ + wal_.syncs();
  return synced;
}

Status DurableStore::Checkpoint(const BlockchainDatabase& db) {
  // Holds the store lock (kDurableStore) across the snapshot; reading the
  // database's mutation-log clock below acquires kMutationLog, the one
  // cross-module nesting in the hierarchy (see DESIGN.md §16).
  MutexLock lock(mutex_);
  BCDB_RETURN_IF_ERROR(status_);
  if (!recovered_) {
    return Status::Internal("Checkpoint before Recover positioned the store");
  }
  // The WAL must be durable before the checkpoint claims to cover it:
  // otherwise a crash between rename and fsync could leave a checkpoint
  // whose fallback records were never written.
  BCDB_RETURN_IF_ERROR(wal_.Sync());

  const std::uint64_t seq = db.mutations().end_seq();
  SegmentHeader header;
  header.checkpoint_seq = seq;
  header.db_version = db.version();
  header.schema_fingerprint = schema_fingerprint_;
  const std::string payload = EncodeSnapshot(db);
  std::uint64_t physical = 0;
  BCDB_RETURN_IF_ERROR(
      WriteSegment(CheckpointPath(seq), header, payload, &physical));
  stats_.segment_bytes += physical;
  ++stats_.checkpoints;

  // Rotate the WAL at the checkpoint boundary, then prune everything the
  // retention policy no longer needs.
  BCDB_RETURN_IF_ERROR(wal_.Close());
  BCDB_RETURN_IF_ERROR(OpenActiveWal(seq, /*fresh=*/true));
  Prune();
  return Status::OK();
}

void DurableStore::Prune() {
  std::vector<std::uint64_t> checkpoint_seqs =
      ListSeqs(dir_, kCheckpointPrefix, kCheckpointSuffix);
  if (checkpoint_seqs.size() > options_.retained_checkpoints) {
    const std::size_t drop =
        checkpoint_seqs.size() - options_.retained_checkpoints;
    for (std::size_t i = 0; i < drop; ++i) {
      ::unlink(CheckpointPath(checkpoint_seqs[i]).c_str());
    }
    checkpoint_seqs.erase(checkpoint_seqs.begin(),
                          checkpoint_seqs.begin() + drop);
  }
  // Until the full complement of checkpoints exists, the empty database
  // is the implicit oldest fallback: keep every WAL span so recovery can
  // still replay from the origin if all on-disk checkpoints turn out
  // corrupt.
  if (checkpoint_seqs.size() < options_.retained_checkpoints) return;
  // Every retained checkpoint must stay roll-forwardable: keep WAL files
  // from the oldest retained checkpoint's rotation point onward. A WAL
  // file starting below the horizon but still feeding it (the one that
  // *contains* the horizon seq) can only exist transiently; rotation
  // always cuts exactly at checkpoint seqs, so strict < is safe.
  const std::uint64_t horizon = checkpoint_seqs.front();
  for (std::uint64_t seq : ListSeqs(dir_, kWalPrefix, kWalSuffix)) {
    if (seq < horizon) ::unlink(WalPath(seq).c_str());
  }
}

}  // namespace storage
}  // namespace bcdb
