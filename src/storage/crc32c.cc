#include "storage/crc32c.h"

#include <array>

namespace bcdb {
namespace storage {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

constexpr std::uint32_t kMaskDelta = 0xa282ead8u;

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const std::array<std::uint32_t, 256>& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t MaskCrc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

std::uint32_t UnmaskCrc(std::uint32_t masked) {
  const std::uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace storage
}  // namespace bcdb
