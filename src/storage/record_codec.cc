#include "storage/record_codec.h"

#include <unordered_map>
#include <vector>

#include "relational/value_pool.h"
#include "util/hash.h"

namespace bcdb {
namespace storage {

namespace {

/// Sentinel for "no relation id" (kCurrentInserted with an unresolvable
/// relation never reaches the codec — EncodeMutation rejects it first).
constexpr std::uint32_t kNoRelationId = ~std::uint32_t{0};

void MixU64(std::uint64_t* state, std::uint64_t v) {
  *state = HashMix64(*state ^ HashMix64(v + 0x9e3779b97f4a7c15ULL));
}

void MixString(std::uint64_t* state, std::string_view s) {
  MixU64(state, s.size());
  for (char c : s) MixU64(state, static_cast<unsigned char>(c));
}

/// First-use-ordered value dictionary for segment payloads.
class ValueDictBuilder {
 public:
  std::uint32_t DiskId(ValueId id) {
    auto it = disk_ids_.find(id);
    if (it != disk_ids_.end()) return it->second;
    const std::uint32_t disk_id = static_cast<std::uint32_t>(order_.size());
    disk_ids_.emplace(id, disk_id);
    order_.push_back(id);
    return disk_id;
  }

  void AddTuple(const Tuple& t) {
    for (std::size_t i = 0; i < t.arity(); ++i) DiskId(t.id_at(i));
  }

  void Encode(std::string* out) const {
    const ValuePool& pool = ValuePool::Global();
    AppendU32(out, static_cast<std::uint32_t>(order_.size()));
    for (ValueId id : order_) EncodeValue(out, pool.value(id));
  }

 private:
  std::unordered_map<ValueId, std::uint32_t, IdHash> disk_ids_;
  std::vector<ValueId> order_;
};

void EncodeDictTuple(std::string* out, const Tuple& t, ValueDictBuilder* dict) {
  AppendU16(out, static_cast<std::uint16_t>(t.arity()));
  for (std::size_t i = 0; i < t.arity(); ++i) {
    AppendU32(out, dict->DiskId(t.id_at(i)));
  }
}

bool DecodeDictTuple(ByteReader* in, const std::vector<ValueId>& dict,
                     Tuple* t) {
  std::uint16_t arity;
  if (!in->ReadU16(&arity)) return false;
  // Gather in-memory ids through the dictionary; the tuple is built from
  // ids directly (FromIds), no per-value re-interning.
  ValueId ids[Tuple::kInlineArity];
  std::vector<ValueId> heap_ids;
  ValueId* slot = ids;
  if (arity > Tuple::kInlineArity) {
    heap_ids.resize(arity);
    slot = heap_ids.data();
  }
  for (std::uint16_t i = 0; i < arity; ++i) {
    std::uint32_t disk_id;
    if (!in->ReadU32(&disk_id) || disk_id >= dict.size()) return false;
    slot[i] = dict[disk_id];
  }
  *t = Tuple::FromIds(slot, arity);
  return true;
}

void EncodeEvent(std::string* out, const MutationEvent& event) {
  AppendU8(out, static_cast<std::uint8_t>(event.kind));
  AppendU64(out, event.seq);
  AppendU64(out, event.version);
  AppendU64(out, static_cast<std::uint64_t>(event.pending_id));
  AppendU32(out, static_cast<std::uint32_t>(event.relation_ids.size()));
  for (std::size_t rid : event.relation_ids) {
    AppendU32(out, static_cast<std::uint32_t>(rid));
  }
}

bool DecodeEvent(ByteReader* in, MutationEvent* event) {
  std::uint8_t kind;
  std::uint64_t pending_id;
  std::uint32_t num_relations;
  if (!in->ReadU8(&kind) || kind >= kNumMutationKinds) return false;
  event->kind = static_cast<MutationKind>(kind);
  if (!in->ReadU64(&event->seq) || !in->ReadU64(&event->version) ||
      !in->ReadU64(&pending_id) || !in->ReadU32(&num_relations)) {
    return false;
  }
  event->pending_id = static_cast<PendingId>(pending_id);
  event->relation_ids.clear();
  event->relation_ids.reserve(num_relations);
  for (std::uint32_t i = 0; i < num_relations; ++i) {
    std::uint32_t rid;
    if (!in->ReadU32(&rid)) return false;
    event->relation_ids.push_back(rid);
  }
  return true;
}

}  // namespace

std::uint64_t SchemaFingerprint(const Catalog& catalog) {
  std::uint64_t state = 0x42434442u;  // "BCDB"
  MixU64(&state, catalog.num_relations());
  for (std::size_t r = 0; r < catalog.num_relations(); ++r) {
    const RelationSchema& schema = catalog.schema(r);
    MixString(&state, schema.name());
    MixU64(&state, schema.arity());
    for (const Attribute& attr : schema.attributes()) {
      MixString(&state, attr.name);
      MixU64(&state, static_cast<std::uint64_t>(attr.type));
      MixU64(&state, attr.non_negative ? 1 : 0);
    }
  }
  return state;
}

void EncodeValue(std::string* out, const Value& v) {
  AppendU8(out, static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      AppendI64(out, v.AsInt());
      break;
    case ValueType::kReal:
      AppendF64(out, v.AsReal());
      break;
    case ValueType::kString:
      AppendBytes(out, v.AsString());
      break;
  }
}

bool DecodeValue(ByteReader* in, Value* v) {
  std::uint8_t tag;
  if (!in->ReadU8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kInt: {
      std::int64_t i;
      if (!in->ReadI64(&i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case ValueType::kReal: {
      double d;
      if (!in->ReadF64(&d)) return false;
      *v = Value::Real(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!in->ReadString(&s)) return false;
      *v = Value::Str(std::move(s));
      return true;
    }
  }
  return false;
}

void EncodeTupleValues(std::string* out, const Tuple& t) {
  AppendU16(out, static_cast<std::uint16_t>(t.arity()));
  for (std::size_t i = 0; i < t.arity(); ++i) EncodeValue(out, t.at(i));
}

bool DecodeTupleValues(ByteReader* in, Tuple* t) {
  std::uint16_t arity;
  if (!in->ReadU16(&arity)) return false;
  std::vector<Value> values(arity);
  for (std::uint16_t i = 0; i < arity; ++i) {
    if (!DecodeValue(in, &values[i])) return false;
  }
  *t = Tuple(values);
  return true;
}

Status EncodeMutation(const MutationEvent& event,
                      const MutationPayload& payload, const Catalog& catalog,
                      std::string* out) {
  EncodeEvent(out, event);
  switch (event.kind) {
    case MutationKind::kPendingAdded: {
      if (payload.txn == nullptr) {
        return Status::InvalidArgument(
            "kPendingAdded mutation carries no transaction payload");
      }
      AppendBytes(out, payload.txn->label());
      AppendU32(out, static_cast<std::uint32_t>(payload.txn->size()));
      for (const Transaction::Item& item : payload.txn->items()) {
        StatusOr<std::size_t> rid = catalog.RelationId(item.relation);
        if (!rid.ok()) return rid.status();
        AppendU32(out, static_cast<std::uint32_t>(*rid));
        EncodeTupleValues(out, item.tuple);
      }
      return Status::OK();
    }
    case MutationKind::kCurrentInserted:
    case MutationKind::kCurrentRemoved: {
      // Both base-state kinds are self-contained: relation plus full tuple
      // values, so replay never depends on surviving store contents.
      if (payload.tuple == nullptr ||
          payload.relation_id >= catalog.num_relations()) {
        return Status::InvalidArgument(
            "base-state mutation carries no resolvable tuple payload");
      }
      AppendU32(out, static_cast<std::uint32_t>(payload.relation_id));
      EncodeTupleValues(out, *payload.tuple);
      return Status::OK();
    }
    case MutationKind::kPendingApplied:
    case MutationKind::kPendingDiscarded:
    case MutationKind::kPendingRestored:
      return Status::OK();  // The event alone replays.
  }
  return Status::Internal("unknown mutation kind");
}

StatusOr<PersistedMutation> DecodeMutation(std::string_view payload,
                                           const Catalog& catalog) {
  ByteReader in(payload);
  PersistedMutation out;
  if (!DecodeEvent(&in, &out.event)) {
    return Status::InvalidArgument("mutation record: truncated event header");
  }
  for (std::size_t rid : out.event.relation_ids) {
    if (rid >= catalog.num_relations()) {
      return Status::InvalidArgument(
          "mutation record references unknown relation id");
    }
  }
  switch (out.event.kind) {
    case MutationKind::kPendingAdded: {
      std::string label;
      std::uint32_t num_items;
      if (!in.ReadString(&label) || !in.ReadU32(&num_items)) {
        return Status::InvalidArgument(
            "mutation record: truncated transaction payload");
      }
      out.txn = Transaction(std::move(label));
      for (std::uint32_t i = 0; i < num_items; ++i) {
        std::uint32_t rid;
        Tuple tuple;
        if (!in.ReadU32(&rid) || rid >= catalog.num_relations() ||
            !DecodeTupleValues(&in, &tuple)) {
          return Status::InvalidArgument(
              "mutation record: malformed transaction item");
        }
        out.txn.Add(catalog.schema(rid).name(), std::move(tuple));
      }
      break;
    }
    case MutationKind::kCurrentInserted:
    case MutationKind::kCurrentRemoved: {
      std::uint32_t rid;
      if (!in.ReadU32(&rid) || rid >= catalog.num_relations() ||
          !DecodeTupleValues(&in, &out.tuple)) {
        return Status::InvalidArgument(
            "mutation record: malformed base-tuple payload");
      }
      out.relation_id = rid;
      break;
    }
    case MutationKind::kPendingApplied:
    case MutationKind::kPendingDiscarded:
    case MutationKind::kPendingRestored:
      break;
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("mutation record: trailing bytes");
  }
  return out;
}

std::string EncodeSnapshot(const BlockchainDatabase& db) {
  const Database& store = db.database();
  // Pass 1: the dictionary must be complete before any record that
  // references it is written, and it is encoded first in the payload — so
  // collect ids over everything up front.
  ValueDictBuilder dict;
  for (std::size_t r = 0; r < store.num_relations(); ++r) {
    const Relation& rel = store.relation(r);
    for (TupleId id = 0; id < rel.num_tuples(); ++id) dict.AddTuple(rel.tuple(id));
  }
  for (PendingId id = 0; id < db.num_pending(); ++id) {
    for (const Transaction::Item& item : db.pending(id).items()) {
      dict.AddTuple(item.tuple);
    }
  }

  std::string out;
  dict.Encode(&out);

  // Relation contents: packed records in TupleId order — fixed-width
  // header (arity, owner count) followed by fixed-width dictionary-id and
  // owner cells, so a record's size is known from its first four bytes.
  AppendU32(&out, static_cast<std::uint32_t>(store.num_relations()));
  for (std::size_t r = 0; r < store.num_relations(); ++r) {
    const Relation& rel = store.relation(r);
    AppendU64(&out, rel.num_tuples());
    for (TupleId id = 0; id < rel.num_tuples(); ++id) {
      const Tuple& tuple = rel.tuple(id);
      const std::vector<TupleOwner>& owners = rel.owners(id);
      AppendU16(&out, static_cast<std::uint16_t>(tuple.arity()));
      AppendU16(&out, static_cast<std::uint16_t>(owners.size()));
      for (std::size_t i = 0; i < tuple.arity(); ++i) {
        AppendU32(&out, dict.DiskId(tuple.id_at(i)));
      }
      for (TupleOwner owner : owners) AppendI32(&out, owner);
    }
  }

  // Pending slots in id order, each in its final lifecycle state.
  AppendU32(&out, static_cast<std::uint32_t>(db.num_pending()));
  for (PendingId id = 0; id < db.num_pending(); ++id) {
    const Transaction& txn = db.pending(id);
    AppendU8(&out, static_cast<std::uint8_t>(db.pending_state(id)));
    AppendBytes(&out, txn.label());
    AppendU32(&out, static_cast<std::uint32_t>(txn.size()));
    for (const Transaction::Item& item : txn.items()) {
      // Pending items were validated against the catalog at AddPending.
      StatusOr<std::size_t> rid = store.RelationId(item.relation);
      AppendU32(&out, rid.ok() ? static_cast<std::uint32_t>(*rid)
                               : kNoRelationId);
      EncodeDictTuple(&out, item.tuple, &dict);
    }
    const std::vector<std::size_t>& rel_ids = db.PendingRelations(id);
    AppendU32(&out, static_cast<std::uint32_t>(rel_ids.size()));
    for (std::size_t rid : rel_ids) {
      AppendU32(&out, static_cast<std::uint32_t>(rid));
    }
  }
  return out;
}

Status RestoreSnapshot(std::string_view payload, std::uint64_t db_version,
                       std::uint64_t end_seq, BlockchainDatabase* db) {
  Database& store = db->database();
  ByteReader in(payload);

  // Dictionary: intern every persisted value into the process-wide pool,
  // mapping dense disk ids to whatever in-memory ids this process uses.
  std::uint32_t dict_size;
  if (!in.ReadU32(&dict_size)) {
    return Status::InvalidArgument("snapshot: truncated dictionary header");
  }
  std::vector<ValueId> dict;
  dict.reserve(dict_size);
  ValuePool& pool = ValuePool::Global();
  for (std::uint32_t i = 0; i < dict_size; ++i) {
    Value v;
    if (!DecodeValue(&in, &v)) {
      return Status::InvalidArgument("snapshot: truncated dictionary value");
    }
    dict.push_back(pool.Intern(v));
  }

  // Decode relation sections into memory before touching the database, so
  // a malformed payload leaves it untouched (the caller discards on error
  // anyway, but cheap decode-then-apply keeps the error paths simple).
  std::uint32_t num_relations;
  if (!in.ReadU32(&num_relations) || num_relations != store.num_relations()) {
    return Status::InvalidArgument(
        "snapshot relation count does not match the catalog");
  }
  struct TupleRecord {
    Tuple tuple;
    std::vector<TupleOwner> owners;
  };
  std::vector<std::vector<TupleRecord>> relations(num_relations);
  for (std::uint32_t r = 0; r < num_relations; ++r) {
    std::uint64_t num_tuples;
    if (!in.ReadU64(&num_tuples)) {
      return Status::InvalidArgument("snapshot: truncated relation header");
    }
    relations[r].reserve(num_tuples);
    for (std::uint64_t t = 0; t < num_tuples; ++t) {
      std::uint16_t arity_probe;
      std::uint16_t num_owners;
      // Peek arity via the shared tuple decoder: re-frame manually since
      // owners follow the id cells.
      if (!in.ReadU16(&arity_probe) || !in.ReadU16(&num_owners)) {
        return Status::InvalidArgument("snapshot: truncated tuple record");
      }
      TupleRecord record;
      std::vector<ValueId> ids(arity_probe);
      for (std::uint16_t i = 0; i < arity_probe; ++i) {
        std::uint32_t disk_id;
        if (!in.ReadU32(&disk_id) || disk_id >= dict.size()) {
          return Status::InvalidArgument("snapshot: bad dictionary reference");
        }
        ids[i] = dict[disk_id];
      }
      record.tuple = Tuple::FromIds(ids.data(), ids.size());
      record.owners.resize(num_owners);
      for (std::uint16_t i = 0; i < num_owners; ++i) {
        if (!in.ReadI32(&record.owners[i])) {
          return Status::InvalidArgument("snapshot: truncated owner list");
        }
      }
      relations[r].push_back(std::move(record));
    }
  }

  struct PendingRecord {
    Transaction txn;
    BlockchainDatabase::PendingState state;
    std::vector<std::size_t> relation_ids;
  };
  std::uint32_t num_pending;
  if (!in.ReadU32(&num_pending)) {
    return Status::InvalidArgument("snapshot: truncated pending header");
  }
  std::vector<PendingRecord> pending;
  pending.reserve(num_pending);
  for (std::uint32_t p = 0; p < num_pending; ++p) {
    PendingRecord record;
    std::uint8_t state;
    std::string label;
    std::uint32_t num_items;
    if (!in.ReadU8(&state) || state > 2 || !in.ReadString(&label) ||
        !in.ReadU32(&num_items)) {
      return Status::InvalidArgument("snapshot: truncated pending slot");
    }
    record.state = static_cast<BlockchainDatabase::PendingState>(state);
    record.txn = Transaction(std::move(label));
    for (std::uint32_t i = 0; i < num_items; ++i) {
      std::uint32_t rid;
      Tuple tuple;
      if (!in.ReadU32(&rid) || rid >= num_relations ||
          !DecodeDictTuple(&in, dict, &tuple)) {
        return Status::InvalidArgument("snapshot: malformed pending item");
      }
      record.txn.Add(store.catalog().schema(rid).name(), std::move(tuple));
    }
    std::uint32_t num_rel_ids;
    if (!in.ReadU32(&num_rel_ids)) {
      return Status::InvalidArgument("snapshot: truncated pending footprint");
    }
    for (std::uint32_t i = 0; i < num_rel_ids; ++i) {
      std::uint32_t rid;
      if (!in.ReadU32(&rid) || rid >= num_relations) {
        return Status::InvalidArgument("snapshot: bad pending footprint id");
      }
      record.relation_ids.push_back(rid);
    }
    pending.push_back(std::move(record));
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }

  // Apply: pending slots first (re-registering owner tags 0..n-1 in id
  // order), then relation contents whose owner lists may reference those
  // tags, then the clock.
  for (PendingRecord& record : pending) {
    BCDB_RETURN_IF_ERROR(db->RestorePendingSlot(std::move(record.txn),
                                                record.state,
                                                std::move(record.relation_ids)));
  }
  for (std::uint32_t r = 0; r < num_relations; ++r) {
    for (TupleRecord& record : relations[r]) {
      for (TupleOwner owner : record.owners) {
        if (owner != kBaseOwner &&
            (owner < 0 || static_cast<std::size_t>(owner) >= num_pending)) {
          return Status::InvalidArgument(
              "snapshot: tuple owner references unknown pending slot");
        }
      }
      BCDB_RETURN_IF_ERROR(store.relation(r).RestoreTuple(
          std::move(record.tuple), record.owners));
    }
  }
  return db->RestoreClock(db_version, end_seq);
}

}  // namespace storage
}  // namespace bcdb
