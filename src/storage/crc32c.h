#ifndef BCDB_STORAGE_CRC32C_H_
#define BCDB_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bcdb {
namespace storage {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected), the checksum
/// every segment block and WAL record carries. Software slice-by-one table
/// implementation — storage integrity checks are I/O bound, not CRC bound.
///
/// Incremental use: crc = Crc32c(data2, Crc32c(data1)). The known-answer
/// vector Crc32c("123456789") == 0xE3069283 is pinned by a test.
std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

inline std::uint32_t Crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

/// A checksum stored on disk is masked (rotated + offset, the
/// LevelDB/RocksDB trick) so that a block whose payload is itself a CRC —
/// or a run of zero bytes — does not checksum to its own stored value.
std::uint32_t MaskCrc(std::uint32_t crc);
std::uint32_t UnmaskCrc(std::uint32_t masked);

}  // namespace storage
}  // namespace bcdb

#endif  // BCDB_STORAGE_CRC32C_H_
