#ifndef BCDB_STORAGE_RECORD_CODEC_H_
#define BCDB_STORAGE_RECORD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/blockchain_db.h"
#include "core/mutation_log.h"
#include "core/transaction.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "util/bytes.h"
#include "util/status.h"

namespace bcdb {
namespace storage {

/// Wire encodings of the durable store, shared by the WAL (self-contained
/// per-record coding) and checkpoint segments (dictionary coding).
///
/// In-memory `ValueId`s are dense per *process* — the global ValuePool
/// assigns them in first-intern order — so they are never written to disk.
/// WAL records inline full values; segments carry a value dictionary (disk
/// ids dense in first-use order) that the reader interns back into the
/// ValuePool, rebuilding tuples id-for-id equivalent to the persisted image
/// regardless of what else the recovering process interned first.

/// Order-sensitive digest of a catalog: relation names, arities, attribute
/// names/types/non-negativity. A segment written under one schema refuses to
/// rehydrate into another.
std::uint64_t SchemaFingerprint(const Catalog& catalog);

/// Self-contained value coding: u8 type tag + payload.
void EncodeValue(std::string* out, const Value& v);
bool DecodeValue(ByteReader* in, Value* v);

/// Self-contained tuple coding: u16 arity + values. Decoding interns into
/// the global ValuePool.
void EncodeTupleValues(std::string* out, const Tuple& t);
bool DecodeTupleValues(ByteReader* in, Tuple* t);

/// One durable WAL record: the MutationEvent plus the payload needed to
/// replay it against a recovered database through the public mutation API.
struct PersistedMutation {
  MutationEvent event;
  /// kPendingAdded: the registered transaction (relation names resolved
  /// from the catalog).
  Transaction txn;
  /// kCurrentInserted / kCurrentRemoved: the affected tuple and relation.
  std::size_t relation_id = ~std::size_t{0};
  Tuple tuple;
};

/// Encodes one mutation (appending to `*out`). Fails if a payload
/// transaction references a relation missing from `catalog`.
Status EncodeMutation(const MutationEvent& event,
                      const MutationPayload& payload, const Catalog& catalog,
                      std::string* out);

/// Inverse of EncodeMutation over one framed WAL payload.
StatusOr<PersistedMutation> DecodeMutation(std::string_view payload,
                                           const Catalog& catalog);

/// Serializes the full database image — value dictionary, per-relation
/// tuple records with exact owner lists in TupleId order, pending slots in
/// id order — as a checkpoint-segment payload. The version / end-seq clock
/// travels in the segment header, not the payload.
std::string EncodeSnapshot(const BlockchainDatabase& db);

/// Rehydrates `payload` into `db`, which must be freshly created over the
/// same catalog (fingerprint-checked by the segment reader) and never
/// mutated. Restores pending slots first (owner tags re-registered in id
/// order), then relation contents, then the version/seq clock.
Status RestoreSnapshot(std::string_view payload, std::uint64_t db_version,
                       std::uint64_t end_seq, BlockchainDatabase* db);

}  // namespace storage
}  // namespace bcdb

#endif  // BCDB_STORAGE_RECORD_CODEC_H_
