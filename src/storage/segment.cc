#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/crc32c.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace bcdb {
namespace storage {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + ErrnoString(errno));
}

std::string EncodeHeader(const SegmentHeader& header) {
  std::string out;
  out.append(SegmentHeader::kMagic, 8);
  AppendU32(&out, SegmentHeader::kFormatVersion);
  AppendU32(&out, header.block_size);
  AppendU64(&out, header.checkpoint_seq);
  AppendU64(&out, header.db_version);
  AppendU64(&out, header.schema_fingerprint);
  AppendU64(&out, header.payload_size);
  AppendU32(&out, MaskCrc(Crc32c(out)));
  return out;
}

Status DecodeHeader(ByteReader* in, std::string_view raw,
                    SegmentHeader* header) {
  if (raw.size() < 8 || raw.substr(0, 8) != SegmentHeader::kMagic) {
    return Status::InvalidArgument("segment: bad magic");
  }
  in->Skip(8);
  std::uint32_t format_version;
  std::uint32_t stored_crc;
  if (!in->ReadU32(&format_version) || !in->ReadU32(&header->block_size) ||
      !in->ReadU64(&header->checkpoint_seq) ||
      !in->ReadU64(&header->db_version) ||
      !in->ReadU64(&header->schema_fingerprint) ||
      !in->ReadU64(&header->payload_size)) {
    return Status::InvalidArgument("segment: truncated header");
  }
  const std::size_t crc_offset = in->offset();
  if (!in->ReadU32(&stored_crc)) {
    return Status::InvalidArgument("segment: truncated header");
  }
  if (UnmaskCrc(stored_crc) != Crc32c(raw.substr(0, crc_offset))) {
    return Status::InvalidArgument("segment: header checksum mismatch");
  }
  if (format_version != SegmentHeader::kFormatVersion) {
    return Status::InvalidArgument("segment: unsupported format version");
  }
  if (header->block_size == 0) {
    return Status::InvalidArgument("segment: zero block size");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync dir", dir);
  return Status::OK();
}

Status WriteSegment(const std::string& path, const SegmentHeader& header,
                    std::string_view payload, std::uint64_t* physical_bytes) {
  SegmentHeader stamped = header;
  stamped.payload_size = payload.size();
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return IoError("open", tmp_path);

  std::uint64_t written = 0;
  Status status = Status::OK();
  {
    const std::string raw_header = EncodeHeader(stamped);
    status = WriteAll(fd, raw_header, tmp_path);
    written += raw_header.size();
  }
  for (std::size_t off = 0; status.ok() && off < payload.size();
       off += stamped.block_size) {
    const std::size_t len =
        std::min<std::size_t>(stamped.block_size, payload.size() - off);
    const std::string_view block = payload.substr(off, len);
    std::string frame;
    AppendU32(&frame, static_cast<std::uint32_t>(len));
    AppendU32(&frame, MaskCrc(Crc32c(block)));
    status = WriteAll(fd, frame, tmp_path);
    if (status.ok()) status = WriteAll(fd, block, tmp_path);
    written += frame.size() + block.size();
  }
  if (status.ok() && ::fsync(fd) != 0) status = IoError("fsync", tmp_path);
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status rename_status = IoError("rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return rename_status;
  }
  BCDB_RETURN_IF_ERROR(SyncParentDir(path));
  if (physical_bytes != nullptr) *physical_bytes = written;
  return Status::OK();
}

StatusOr<SegmentContents> ReadSegment(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const std::string_view raw = mapped->view();

  SegmentContents contents;
  ByteReader in(raw);
  BCDB_RETURN_IF_ERROR(DecodeHeader(&in, raw, &contents.header));

  contents.payload.reserve(contents.header.payload_size);
  while (contents.payload.size() < contents.header.payload_size) {
    std::uint32_t len;
    std::uint32_t stored_crc;
    if (!in.ReadU32(&len) || !in.ReadU32(&stored_crc)) {
      return Status::InvalidArgument("segment: truncated block header");
    }
    if (len == 0 || len > contents.header.block_size ||
        in.remaining() < len) {
      return Status::InvalidArgument("segment: truncated block payload");
    }
    const std::string_view block = raw.substr(in.offset(), len);
    if (UnmaskCrc(stored_crc) != Crc32c(block)) {
      return Status::InvalidArgument(
          "segment: block checksum mismatch at offset " +
          std::to_string(in.offset()));
    }
    contents.payload.append(block.data(), block.size());
    in.Skip(len);
  }
  if (contents.payload.size() != contents.header.payload_size ||
      !in.exhausted()) {
    return Status::InvalidArgument("segment: payload size mismatch");
  }
  return contents;
}

StatusOr<SegmentHeader> ReadSegmentHeader(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  SegmentHeader header;
  ByteReader in(mapped->view());
  BCDB_RETURN_IF_ERROR(DecodeHeader(&in, mapped->view(), &header));
  return header;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + path)
                           : IoError("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = IoError("fstat", path);
    ::close(fd);
    return status;
  }
  MappedFile mapped;
  mapped.size_ = static_cast<std::size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = IoError("mmap", path);
      ::close(fd);
      return status;
    }
    mapped.data_ = static_cast<const char*>(addr);
  }
  ::close(fd);
  return mapped;
}

}  // namespace storage
}  // namespace bcdb
