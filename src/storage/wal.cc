#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/crc32c.h"
#include "storage/segment.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace bcdb {
namespace storage {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + ErrnoString(errno));
}

}  // namespace

const char* SyncPolicyToString(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kGroup:
      return "group";
    case SyncPolicy::kEveryRecord:
      return "every-record";
  }
  return "?";
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::fsync(fd_);
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    policy_ = other.policy_;
    group_bytes_ = other.group_bytes_;
    unsynced_bytes_ = other.unsynced_bytes_;
    physical_bytes_ = other.physical_bytes_;
    records_ = other.records_;
    syncs_ = other.syncs_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<WalWriter> WalWriter::Open(const std::string& path, SyncPolicy policy,
                                    std::size_t group_bytes) {
  WalWriter writer;
  writer.fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (writer.fd_ < 0) return IoError("open", path);
  writer.path_ = path;
  writer.policy_ = policy;
  writer.group_bytes_ = group_bytes == 0 ? 1 : group_bytes;
  return writer;
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  std::string frame;
  frame.reserve(12 + payload.size());
  AppendU32(&frame, kRecordMagic);
  AppendU32(&frame, static_cast<std::uint32_t>(payload.size()));
  AppendU32(&frame, MaskCrc(Crc32c(payload)));
  frame.append(payload.data(), payload.size());

  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  physical_bytes_ += frame.size();
  unsynced_bytes_ += frame.size();
  ++records_;

  switch (policy_) {
    case SyncPolicy::kNone:
      return Status::OK();
    case SyncPolicy::kGroup:
      return unsynced_bytes_ >= group_bytes_ ? Sync() : Status::OK();
    case SyncPolicy::kEveryRecord:
      return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  if (unsynced_bytes_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) return IoError("fsync", path_);
  unsynced_bytes_ = 0;
  ++syncs_;
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status status = Sync();
  if (::close(fd_) != 0 && status.ok()) status = IoError("close", path_);
  fd_ = -1;
  return status;
}

StatusOr<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) {
    if (mapped.status().code() == StatusCode::kNotFound) return scan;
    return mapped.status();
  }
  const std::string_view raw = mapped->view();
  ByteReader in(raw);
  while (!in.exhausted()) {
    const std::size_t record_start = in.offset();
    std::uint32_t magic;
    std::uint32_t len;
    std::uint32_t stored_crc;
    if (!in.ReadU32(&magic) || magic != WalWriter::kRecordMagic ||
        !in.ReadU32(&len) || !in.ReadU32(&stored_crc) ||
        in.remaining() < len) {
      scan.valid_prefix = record_start;
      scan.tail_corrupt = true;
      return scan;
    }
    const std::string_view payload = raw.substr(in.offset(), len);
    if (UnmaskCrc(stored_crc) != Crc32c(payload)) {
      scan.valid_prefix = record_start;
      scan.tail_corrupt = true;
      return scan;
    }
    in.Skip(len);
    scan.records.emplace_back(payload);
    scan.valid_prefix = in.offset();
  }
  scan.valid_prefix = raw.size();
  return scan;
}

Status TruncateWal(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return IoError("truncate", path);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace bcdb
