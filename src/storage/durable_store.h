#ifndef BCDB_STORAGE_DURABLE_STORE_H_
#define BCDB_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/blockchain_db.h"
#include "relational/schema.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace bcdb {
namespace storage {

struct DurableStoreOptions {
  SyncPolicy sync = SyncPolicy::kGroup;
  /// Group-commit threshold (SyncPolicy::kGroup only).
  std::size_t group_bytes = 256 * 1024;
  /// Checkpoint segments kept on disk. The newest one is the recovery
  /// base; older ones are fallbacks if it turns out corrupted. WAL files
  /// are retained back to the oldest kept checkpoint so every retained
  /// segment can still be rolled forward to the present.
  std::size_t retained_checkpoints = 2;
};

/// Counters for write amplification and recovery reporting. "Logical"
/// bytes are the encoded mutation payloads; physical bytes include all
/// framing, checksums, and checkpoint snapshots actually written.
struct DurableStoreStats {
  std::uint64_t logical_bytes = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t segment_bytes = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recovered_snapshot_tuples = 0;
  std::uint64_t recovered_wal_records = 0;
  /// Recovery fell back past unusable state (corrupt newest checkpoint, a
  /// WAL gap): some persisted suffix could not be applied.
  bool degraded_recovery = false;

  double WriteAmplification() const {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(wal_bytes + segment_bytes) /
                     static_cast<double>(logical_bytes);
  }
};

/// The durable backend of a BlockchainDatabase: an on-disk directory of
/// checksummed checkpoint segments plus a write-ahead log of mutation
/// records, attachable to a live database as its DurabilitySink.
///
/// Usage:
///
///   auto store = DurableStore::Open(dir, MakeBitcoinCatalog());
///   auto db = store->Recover(constraints);         // empty on first open
///   db->AttachDurabilitySink(store->get());        // stream from now on
///   ... mutations ...
///   store->Checkpoint(*db);                        // bound replay time
///
/// Persist never fails the mutation: I/O errors latch into status() and
/// every later Persist is a no-op, so the in-memory database stays usable
/// (and the caller decides whether a cold store is fatal).
///
/// The WAL/stats state is behind an internal lock (LockRank::kDurableStore)
/// so status()/stats() introspection can race the sink path safely, but the
/// store still expects the same single-threaded *mutation* discipline as
/// the database it backs — two threads mutating (and hence Persisting)
/// concurrently would interleave WAL records against log order.
class DurableStore : public DurabilitySink {
 public:
  /// Opens (creating if needed) the store directory. The catalog is the
  /// codec's name/id map and schema fingerprint; Recover validates it
  /// against what segments were written under.
  static StatusOr<std::unique_ptr<DurableStore>> Open(
      std::string dir, Catalog catalog, DurableStoreOptions options = {});

  /// Rebuilds the database from the newest valid checkpoint plus the WAL
  /// suffix, truncating any torn WAL tail, and leaves the store positioned
  /// to append. Call once, before attaching the sink; the returned
  /// database has no sink attached.
  StatusOr<BlockchainDatabase> Recover(ConstraintSet constraints);

  /// DurabilitySink: encode + append to the WAL under the sync policy.
  void Persist(const MutationEvent& event,
               const MutationPayload& payload) override;

  /// First I/O error hit by Persist (mutations after it are NOT durable).
  /// Returned by value: a snapshot under the store lock, safe against a
  /// concurrent Persist latching an error.
  Status status() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return status_;
  }

  /// Forces all appended records to disk regardless of policy.
  Status Sync();

  /// Snapshots `db` into a new checkpoint segment, rotates the WAL, and
  /// prunes segments/WAL files past the retention horizon. `db` must be
  /// the database this store was recovered into / attached to, quiescent
  /// for the duration of the call.
  Status Checkpoint(const BlockchainDatabase& db);

  /// Snapshot of the durability counters, taken under the store lock
  /// (Persist updates them on every mutation).
  DurableStoreStats stats() const BCDB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }
  const Catalog& catalog() const { return catalog_; }
  const std::string& dir() const { return dir_; }

  /// Checkpoint segment paths currently on disk, newest first.
  std::vector<std::string> ListCheckpoints() const;
  /// WAL file paths currently on disk, oldest first.
  std::vector<std::string> ListWalFiles() const;

 private:
  DurableStore(std::string dir, Catalog catalog, DurableStoreOptions options);

  std::string CheckpointPath(std::uint64_t seq) const;
  std::string WalPath(std::uint64_t start_seq) const;
  /// Opens the active WAL file (appending); `fresh` truncates leftovers.
  Status OpenActiveWal(std::uint64_t start_seq, bool fresh)
      BCDB_REQUIRES(mutex_);
  /// Absorbs the active writer's counters into stats_ (on rotation/close).
  void AbsorbWalCounters() BCDB_REQUIRES(mutex_);
  /// Deletes checkpoints/WAL files behind the retention horizon.
  void Prune();

  std::string dir_;
  Catalog catalog_;
  DurableStoreOptions options_;
  std::uint64_t schema_fingerprint_ = 0;
  /// Guards the append path and counters. kDurableStore sits *below*
  /// kMutationLog: Checkpoint/Recover read the database's mutation-log
  /// clock while holding this lock. The WalWriter itself stays a plain
  /// externally-synchronized type (it must remain movable for rotation);
  /// this lock is its external synchronization.
  mutable Mutex mutex_{LockRank::kDurableStore};
  WalWriter wal_ BCDB_GUARDED_BY(mutex_);
  std::uint64_t wal_start_seq_ BCDB_GUARDED_BY(mutex_) = 0;
  bool recovered_ BCDB_GUARDED_BY(mutex_) = false;
  Status status_ BCDB_GUARDED_BY(mutex_);
  DurableStoreStats stats_ BCDB_GUARDED_BY(mutex_);
  /// Counters already absorbed from rotated-away WAL writers.
  std::uint64_t absorbed_wal_bytes_ BCDB_GUARDED_BY(mutex_) = 0;
  std::uint64_t absorbed_wal_records_ BCDB_GUARDED_BY(mutex_) = 0;
  std::uint64_t absorbed_wal_syncs_ BCDB_GUARDED_BY(mutex_) = 0;
};

}  // namespace storage
}  // namespace bcdb

#endif  // BCDB_STORAGE_DURABLE_STORE_H_
