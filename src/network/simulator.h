#ifndef BCDB_NETWORK_SIMULATOR_H_
#define BCDB_NETWORK_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitcoin/node.h"
#include "util/rng.h"
#include "util/status.h"

namespace bcdb {
namespace net {

using NodeId = std::size_t;

/// Topology and timing of the simulated P2P network.
struct NetworkParams {
  std::size_t num_nodes = 5;
  /// Extra random edges on top of the ring that guarantees connectivity.
  std::size_t extra_edges = 3;
  /// Per-hop propagation delay is uniform in [min_latency, max_latency]
  /// (seconds of simulated time).
  double min_latency = 0.05;
  double max_latency = 0.40;
  std::uint64_t seed = 1;
};

/// Discrete-event gossip simulation of a small Bitcoin-style P2P network.
///
/// Each node is a full `SimulatedNode` (chain + mempool + miner).
/// Transactions and blocks injected at one node flood-fill to peers with
/// randomized per-hop latency; nodes deduplicate by id and hold
/// out-of-order arrivals (a child transaction before its parent, a block
/// before its predecessor) in orphan buffers that are retried as context
/// arrives.
///
/// This models the paper's observation (footnote 6) that T is not
/// necessarily identical across nodes at a given instant: two nodes may
/// answer the same denial constraint differently until gossip converges.
/// Mining is serialized by the caller (no forks — see the paper's Remark 1).
class NetworkSimulator {
 public:
  explicit NetworkSimulator(const NetworkParams& params);

  std::size_t num_nodes() const { return nodes_.size(); }
  const bitcoin::SimulatedNode& node(NodeId id) const { return nodes_[id]; }
  const std::vector<NodeId>& peers(NodeId id) const { return peers_[id]; }

  /// Current simulated time (advances as events are processed).
  double now() const { return now_; }
  std::size_t events_processed() const { return events_processed_; }

  /// Injects `tx` at `origin` (as if a wallet broadcast it there) and
  /// schedules gossip. Fails only if the origin node itself rejects the
  /// transaction outright.
  Status BroadcastTransaction(NodeId origin, bitcoin::BitcoinTransaction tx);

  /// `origin` mines a block from *its* view and announces it. The block
  /// propagates to every node as events are processed.
  StatusOr<bitcoin::Block> MineAt(NodeId origin,
                                  const bitcoin::MinerPolicy& policy);

  /// Processes events until the queue drains.
  void Run();
  /// Processes events with timestamp <= `time`, then sets now() = time.
  void RunUntil(double time);

  /// |mempool(a) ∩ mempool(b)| / |mempool(a) ∪ mempool(b)|; 1.0 when both
  /// are empty. The convergence metric.
  double MempoolJaccard(NodeId a, NodeId b) const;

  /// True when every node's tip equals node 0's tip.
  bool ChainsConsistent() const;

 private:
  struct Event {
    double time;
    std::uint64_t sequence;  // Deterministic FIFO tie-break.
    NodeId target;
    bool is_block;
    std::size_t payload;  // Index into tx_payloads_ / block_payloads_.
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void GossipTransaction(NodeId from, const bitcoin::BitcoinTransaction& tx);
  void GossipBlock(NodeId from, const bitcoin::Block& block);
  void Deliver(const Event& event);
  void AcceptTransaction(NodeId target, const bitcoin::BitcoinTransaction& tx);
  void AcceptBlock(NodeId target, const bitcoin::Block& block);
  /// Retries orphaned transactions/blocks of `target` after new context.
  void DrainOrphans(NodeId target);

  double Latency() { return params_.min_latency +
                            rng_.NextDouble() *
                                (params_.max_latency - params_.min_latency); }

  NetworkParams params_;
  Xoshiro256 rng_;
  std::vector<bitcoin::SimulatedNode> nodes_;
  std::vector<std::vector<NodeId>> peers_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_sequence_ = 0;
  double now_ = 0;
  std::size_t events_processed_ = 0;

  // Payload stores (events reference by index to keep Event POD-ish).
  std::vector<bitcoin::BitcoinTransaction> tx_payloads_;
  std::vector<bitcoin::Block> block_payloads_;

  // Per-node gossip dedup and orphan buffers.
  std::vector<std::unordered_set<bitcoin::TxId>> seen_txs_;
  std::vector<std::unordered_set<bitcoin::BlockHash>> seen_blocks_;
  std::vector<std::vector<std::size_t>> orphan_txs_;    // Payload indexes.
  std::vector<std::vector<std::size_t>> orphan_blocks_;  // Payload indexes.
};

}  // namespace net
}  // namespace bcdb

#endif  // BCDB_NETWORK_SIMULATOR_H_
