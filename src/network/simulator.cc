#include "network/simulator.h"

#include <algorithm>

namespace bcdb {
namespace net {

using bitcoin::BitcoinTransaction;
using bitcoin::Block;
using bitcoin::MinerPolicy;

NetworkSimulator::NetworkSimulator(const NetworkParams& params)
    : params_(params), rng_(params.seed) {
  const std::size_t n = std::max<std::size_t>(params.num_nodes, 1);
  nodes_.resize(n);
  peers_.resize(n);
  seen_txs_.resize(n);
  seen_blocks_.resize(n);
  orphan_txs_.resize(n);
  orphan_blocks_.resize(n);

  auto connect = [&](NodeId a, NodeId b) {
    if (a == b) return;
    if (std::find(peers_[a].begin(), peers_[a].end(), b) != peers_[a].end()) {
      return;
    }
    peers_[a].push_back(b);
    peers_[b].push_back(a);
  };
  // Ring for connectivity, plus random chords.
  for (NodeId i = 0; i < n; ++i) connect(i, (i + 1) % n);
  for (std::size_t e = 0; e < params.extra_edges && n > 2; ++e) {
    connect(rng_.NextBelow(n), rng_.NextBelow(n));
  }
}

Status NetworkSimulator::BroadcastTransaction(NodeId origin,
                                              BitcoinTransaction tx) {
  if (origin >= nodes_.size()) {
    return Status::InvalidArgument("no such node");
  }
  const bitcoin::TxId txid = tx.txid();
  BCDB_RETURN_IF_ERROR(nodes_[origin].SubmitTransaction(tx));
  seen_txs_[origin].insert(txid);
  DrainOrphans(origin);
  GossipTransaction(origin, tx);
  return Status::OK();
}

StatusOr<Block> NetworkSimulator::MineAt(NodeId origin,
                                         const MinerPolicy& policy) {
  if (origin >= nodes_.size()) {
    return Status::InvalidArgument("no such node");
  }
  StatusOr<std::size_t> mined = nodes_[origin].MineBlock(policy);
  if (!mined.ok()) return mined.status();
  const Block block = nodes_[origin].chain().tip();
  seen_blocks_[origin].insert(block.hash());
  GossipBlock(origin, block);
  return block;
}

void NetworkSimulator::GossipTransaction(NodeId from,
                                         const BitcoinTransaction& tx) {
  const std::size_t payload = tx_payloads_.size();
  tx_payloads_.push_back(tx);
  for (NodeId peer : peers_[from]) {
    events_.push(Event{now_ + Latency(), next_sequence_++, peer,
                       /*is_block=*/false, payload});
  }
}

void NetworkSimulator::GossipBlock(NodeId from, const Block& block) {
  const std::size_t payload = block_payloads_.size();
  block_payloads_.push_back(block);
  for (NodeId peer : peers_[from]) {
    events_.push(Event{now_ + Latency(), next_sequence_++, peer,
                       /*is_block=*/true, payload});
  }
}

void NetworkSimulator::Run() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    now_ = std::max(now_, event.time);
    Deliver(event);
  }
}

void NetworkSimulator::RunUntil(double time) {
  while (!events_.empty() && events_.top().time <= time) {
    const Event event = events_.top();
    events_.pop();
    now_ = std::max(now_, event.time);
    Deliver(event);
  }
  now_ = std::max(now_, time);
}

void NetworkSimulator::Deliver(const Event& event) {
  ++events_processed_;
  if (event.is_block) {
    AcceptBlock(event.target, block_payloads_[event.payload]);
  } else {
    AcceptTransaction(event.target, tx_payloads_[event.payload]);
  }
}

void NetworkSimulator::AcceptTransaction(NodeId target,
                                         const BitcoinTransaction& tx) {
  if (!seen_txs_[target].insert(tx.txid()).second) return;  // Duplicate.
  const Status status = nodes_[target].SubmitTransaction(tx);
  if (status.ok()) {
    DrainOrphans(target);
    GossipTransaction(target, tx);
    return;
  }
  if (status.code() == StatusCode::kNotFound) {
    // Parent unknown yet (gossip raced): hold and retry later. Keep it
    // marked seen so repeated gossip doesn't duplicate the orphan.
    tx_payloads_.push_back(tx);
    orphan_txs_[target].push_back(tx_payloads_.size() - 1);
  }
  // Other rejections (confirmed spend, bad signature): drop silently, as a
  // real node would.
}

void NetworkSimulator::AcceptBlock(NodeId target, const Block& block) {
  if (!seen_blocks_[target].insert(block.hash()).second) return;
  const bitcoin::Blockchain& chain = nodes_[target].chain();
  if (block.prev_hash() == chain.tip().hash()) {
    if (nodes_[target].ReceiveBlock(block).ok()) {
      DrainOrphans(target);
      GossipBlock(target, block);
    }
    return;
  }
  if (block.height() > chain.height() + 1) {
    // Ahead of us: a predecessor is still in flight.
    block_payloads_.push_back(block);
    orphan_blocks_[target].push_back(block_payloads_.size() - 1);
  }
  // Old or already-known heights: ignore (single-chain model, no forks).
}

void NetworkSimulator::DrainOrphans(NodeId target) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Blocks first: they may unlock many orphaned transactions.
    std::vector<std::size_t> blocks = std::move(orphan_blocks_[target]);
    orphan_blocks_[target].clear();
    for (std::size_t payload : blocks) {
      const Block& block = block_payloads_[payload];
      const bitcoin::Blockchain& chain = nodes_[target].chain();
      if (block.prev_hash() == chain.tip().hash() &&
          nodes_[target].ReceiveBlock(block).ok()) {
        GossipBlock(target, block);
        progressed = true;
      } else if (block.height() > chain.height() + 1) {
        orphan_blocks_[target].push_back(payload);  // Still waiting.
      }
    }
    std::vector<std::size_t> txs = std::move(orphan_txs_[target]);
    orphan_txs_[target].clear();
    for (std::size_t payload : txs) {
      const BitcoinTransaction& tx = tx_payloads_[payload];
      const Status status = nodes_[target].SubmitTransaction(tx);
      if (status.ok()) {
        GossipTransaction(target, tx);
        progressed = true;
      } else if (status.code() == StatusCode::kNotFound) {
        orphan_txs_[target].push_back(payload);  // Still waiting.
      }
      // Other rejections: drop.
    }
  }
}

double NetworkSimulator::MempoolJaccard(NodeId a, NodeId b) const {
  std::unordered_set<bitcoin::TxId> in_a;
  for (const BitcoinTransaction& tx : nodes_[a].mempool().transactions()) {
    in_a.insert(tx.txid());
  }
  std::size_t intersection = 0;
  std::size_t union_size = in_a.size();
  for (const BitcoinTransaction& tx : nodes_[b].mempool().transactions()) {
    if (in_a.count(tx.txid()) > 0) {
      ++intersection;
    } else {
      ++union_size;
    }
  }
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

bool NetworkSimulator::ChainsConsistent() const {
  for (const bitcoin::SimulatedNode& node : nodes_) {
    if (node.chain().tip().hash() != nodes_[0].chain().tip().hash()) {
      return false;
    }
  }
  return true;
}

}  // namespace net
}  // namespace bcdb
