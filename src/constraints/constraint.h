#ifndef BCDB_CONSTRAINTS_CONSTRAINT_H_
#define BCDB_CONSTRAINTS_CONSTRAINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/status.h"

namespace bcdb {

/// A functional dependency X -> Y over one relation. A *key constraint* is
/// the special case Y = all attributes (with set semantics this makes X a
/// unique key).
class FunctionalDependency {
 public:
  /// Builds an FD `relation: lhs -> rhs` with attributes resolved against
  /// `catalog`. Fails on unknown relation/attribute names or empty lhs.
  static StatusOr<FunctionalDependency> Create(
      const Catalog& catalog, const std::string& relation,
      const std::vector<std::string>& lhs, const std::vector<std::string>& rhs);

  /// Builds the key constraint `relation: key_attrs -> all attributes`.
  static StatusOr<FunctionalDependency> Key(
      const Catalog& catalog, const std::string& relation,
      const std::vector<std::string>& key_attrs);

  std::size_t relation_id() const { return relation_id_; }
  /// Determinant positions, sorted ascending (index-friendly).
  const std::vector<std::size_t>& lhs() const { return lhs_; }
  /// Dependent positions, sorted ascending.
  const std::vector<std::size_t>& rhs() const { return rhs_; }
  bool is_key() const { return is_key_; }

  /// "R: [a, b] -> [c]" (display only).
  std::string ToString(const Catalog& catalog) const;

 private:
  FunctionalDependency(std::size_t relation_id, std::vector<std::size_t> lhs,
                       std::vector<std::size_t> rhs, bool is_key)
      : relation_id_(relation_id),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        is_key_(is_key) {}

  std::size_t relation_id_;
  std::vector<std::size_t> lhs_;
  std::vector<std::size_t> rhs_;
  bool is_key_;
};

/// An inclusion dependency R[X] ⊆ S[Y]: every visible R-tuple's X-projection
/// must appear as the Y-projection of some visible S-tuple. X and Y are
/// parallel position lists of equal length (order significant).
class InclusionDependency {
 public:
  static StatusOr<InclusionDependency> Create(
      const Catalog& catalog, const std::string& lhs_relation,
      const std::vector<std::string>& lhs_attrs,
      const std::string& rhs_relation,
      const std::vector<std::string>& rhs_attrs);

  std::size_t lhs_relation_id() const { return lhs_relation_id_; }
  std::size_t rhs_relation_id() const { return rhs_relation_id_; }
  const std::vector<std::size_t>& lhs_positions() const {
    return lhs_positions_;
  }
  const std::vector<std::size_t>& rhs_positions() const {
    return rhs_positions_;
  }

  std::string ToString(const Catalog& catalog) const;

 private:
  InclusionDependency(std::size_t lhs_relation_id,
                      std::vector<std::size_t> lhs_positions,
                      std::size_t rhs_relation_id,
                      std::vector<std::size_t> rhs_positions)
      : lhs_relation_id_(lhs_relation_id),
        rhs_relation_id_(rhs_relation_id),
        lhs_positions_(std::move(lhs_positions)),
        rhs_positions_(std::move(rhs_positions)) {}

  std::size_t lhs_relation_id_;
  std::size_t rhs_relation_id_;
  std::vector<std::size_t> lhs_positions_;
  std::vector<std::size_t> rhs_positions_;
};

/// The integrity constraints `I` of a blockchain database.
class ConstraintSet {
 public:
  void AddFd(FunctionalDependency fd) { fds_.push_back(std::move(fd)); }
  void AddInd(InclusionDependency ind) { inds_.push_back(std::move(ind)); }

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const std::vector<InclusionDependency>& inds() const { return inds_; }

  bool empty() const { return fds_.empty() && inds_.empty(); }

  /// FDs whose relation is `relation_id`.
  std::vector<const FunctionalDependency*> FdsFor(
      std::size_t relation_id) const;
  /// INDs whose left-hand (contained) relation is `relation_id`.
  std::vector<const InclusionDependency*> IndsWithLhs(
      std::size_t relation_id) const;

 private:
  std::vector<FunctionalDependency> fds_;
  std::vector<InclusionDependency> inds_;
};

}  // namespace bcdb

#endif  // BCDB_CONSTRAINTS_CONSTRAINT_H_
