#include "constraints/constraint.h"

#include <algorithm>

namespace bcdb {

namespace {

std::string PositionsToString(const Catalog& catalog, std::size_t relation_id,
                              const std::vector<std::size_t>& positions) {
  const RelationSchema& schema = catalog.schema(relation_id);
  std::string result = "[";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) result += ", ";
    result += schema.attribute(positions[i]).name;
  }
  result += "]";
  return result;
}

StatusOr<std::vector<std::size_t>> ResolveSorted(
    const RelationSchema& schema, const std::vector<std::string>& names) {
  StatusOr<std::vector<std::size_t>> positions = schema.AttributeIndexes(names);
  if (!positions.ok()) return positions.status();
  std::sort(positions->begin(), positions->end());
  positions->erase(std::unique(positions->begin(), positions->end()),
                   positions->end());
  return positions;
}

}  // namespace

StatusOr<FunctionalDependency> FunctionalDependency::Create(
    const Catalog& catalog, const std::string& relation,
    const std::vector<std::string>& lhs, const std::vector<std::string>& rhs) {
  StatusOr<std::size_t> relation_id = catalog.RelationId(relation);
  if (!relation_id.ok()) return relation_id.status();
  const RelationSchema& schema = catalog.schema(*relation_id);
  if (lhs.empty()) {
    return Status::InvalidArgument("FD over " + relation +
                                   " has an empty determinant");
  }
  StatusOr<std::vector<std::size_t>> lhs_pos = ResolveSorted(schema, lhs);
  if (!lhs_pos.ok()) return lhs_pos.status();
  StatusOr<std::vector<std::size_t>> rhs_pos = ResolveSorted(schema, rhs);
  if (!rhs_pos.ok()) return rhs_pos.status();
  const bool is_key = rhs_pos->size() == schema.arity();
  return FunctionalDependency(*relation_id, std::move(*lhs_pos),
                              std::move(*rhs_pos), is_key);
}

StatusOr<FunctionalDependency> FunctionalDependency::Key(
    const Catalog& catalog, const std::string& relation,
    const std::vector<std::string>& key_attrs) {
  StatusOr<std::size_t> relation_id = catalog.RelationId(relation);
  if (!relation_id.ok()) return relation_id.status();
  const RelationSchema& schema = catalog.schema(*relation_id);
  std::vector<std::string> all_attrs;
  all_attrs.reserve(schema.arity());
  for (const Attribute& attr : schema.attributes()) {
    all_attrs.push_back(attr.name);
  }
  return Create(catalog, relation, key_attrs, all_attrs);
}

std::string FunctionalDependency::ToString(const Catalog& catalog) const {
  return catalog.schema(relation_id_).name() + ": " +
         PositionsToString(catalog, relation_id_, lhs_) + " -> " +
         PositionsToString(catalog, relation_id_, rhs_) +
         (is_key_ ? " (key)" : "");
}

StatusOr<InclusionDependency> InclusionDependency::Create(
    const Catalog& catalog, const std::string& lhs_relation,
    const std::vector<std::string>& lhs_attrs, const std::string& rhs_relation,
    const std::vector<std::string>& rhs_attrs) {
  StatusOr<std::size_t> lhs_id = catalog.RelationId(lhs_relation);
  if (!lhs_id.ok()) return lhs_id.status();
  StatusOr<std::size_t> rhs_id = catalog.RelationId(rhs_relation);
  if (!rhs_id.ok()) return rhs_id.status();
  if (lhs_attrs.empty() || lhs_attrs.size() != rhs_attrs.size()) {
    return Status::InvalidArgument(
        "inclusion dependency attribute lists must be non-empty and of equal "
        "length");
  }
  StatusOr<std::vector<std::size_t>> lhs_pos =
      catalog.schema(*lhs_id).AttributeIndexes(lhs_attrs);
  if (!lhs_pos.ok()) return lhs_pos.status();
  StatusOr<std::vector<std::size_t>> rhs_pos =
      catalog.schema(*rhs_id).AttributeIndexes(rhs_attrs);
  if (!rhs_pos.ok()) return rhs_pos.status();
  return InclusionDependency(*lhs_id, std::move(*lhs_pos), *rhs_id,
                             std::move(*rhs_pos));
}

std::string InclusionDependency::ToString(const Catalog& catalog) const {
  return catalog.schema(lhs_relation_id_).name() +
         PositionsToString(catalog, lhs_relation_id_, lhs_positions_) +
         " ⊆ " + catalog.schema(rhs_relation_id_).name() +
         PositionsToString(catalog, rhs_relation_id_, rhs_positions_);
}

std::vector<const FunctionalDependency*> ConstraintSet::FdsFor(
    std::size_t relation_id) const {
  std::vector<const FunctionalDependency*> result;
  for (const FunctionalDependency& fd : fds_) {
    if (fd.relation_id() == relation_id) result.push_back(&fd);
  }
  return result;
}

std::vector<const InclusionDependency*> ConstraintSet::IndsWithLhs(
    std::size_t relation_id) const {
  std::vector<const InclusionDependency*> result;
  for (const InclusionDependency& ind : inds_) {
    if (ind.lhs_relation_id() == relation_id) result.push_back(&ind);
  }
  return result;
}

}  // namespace bcdb
