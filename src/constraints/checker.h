#ifndef BCDB_CONSTRAINTS_CHECKER_H_
#define BCDB_CONSTRAINTS_CHECKER_H_

#include <cstddef>
#include <vector>

#include "constraints/constraint.h"
#include "relational/database.h"
#include "relational/world_view.h"
#include "util/status.h"

namespace bcdb {

/// Index-backed satisfaction checks of a `ConstraintSet` over the possible
/// worlds of a `Database`.
///
/// The checker prepares one hash index per FD determinant and per IND
/// right-hand side at construction; all subsequent checks are lookups.
/// The incremental check `CanAppendOwner` is the workhorse of `getMaximal`:
/// given a world that already satisfies `I`, it decides whether activating
/// one more pending transaction preserves `I`, in time proportional to the
/// transaction's size (not the database's).
class ConstraintChecker {
 public:
  /// `db` and `constraints` must outlive the checker.
  ConstraintChecker(const Database* db, const ConstraintSet* constraints);

  const ConstraintSet& constraints() const { return *constraints_; }

  /// Full check: do the tuples visible in `view` satisfy every constraint?
  /// Returns OK or a ConstraintViolation status naming the first violation.
  Status CheckAll(const WorldView& view) const;

  bool Satisfies(const WorldView& view) const { return CheckAll(view).ok(); }

  /// Incremental check: assuming the world `view` satisfies `I`, would the
  /// world `view + {owner}` still satisfy it? Sound and complete because
  /// appended tuples can only (a) collide on FD determinants — checked
  /// against all tuples visible in the extended world — or (b) require IND
  /// witnesses — which, for already-visible tuples, persist under insertion.
  bool CanAppendOwner(const WorldView& view, TupleOwner owner) const;

  /// Do the tuples of `a` and `b` together satisfy all FDs? This is the edge
  /// predicate of the fd-transaction graph G^fd_T (pairwise check only;
  /// conflicts against the base state are covered by FdConsistentWithBase).
  bool FdConsistentPair(TupleOwner a, TupleOwner b) const;

  /// Do `owner`'s tuples, together with the base state, satisfy all FDs?
  /// (Node-level filter: FD violations are binary, so base-vs-owner and
  /// owner-vs-owner conflicts decompose the full check.)
  bool FdConsistentWithBase(TupleOwner owner) const;

  /// Precomputed index id for `fd`'s determinant in its relation.
  std::size_t FdIndexId(std::size_t fd_ordinal) const {
    return fd_index_ids_[fd_ordinal];
  }

 private:
  // True if the FD holds across `ids` (tuples of one relation) plus,
  // when `against_base` is set, the base-visible tuples sharing determinants.
  bool FdHoldsOverOwners(const FunctionalDependency& fd, std::size_t fd_ordinal,
                         const std::vector<TupleOwner>& owners,
                         bool against_base) const;

  const Database* db_;
  const ConstraintSet* constraints_;
  // Parallel to constraints_->fds(): index over the FD's lhs positions.
  std::vector<std::size_t> fd_index_ids_;
  // Parallel to constraints_->inds(): index over the IND's rhs positions
  // (sorted), plus the lhs positions permuted to match.
  struct IndPlan {
    std::size_t rhs_index_id;
    std::vector<std::size_t> sorted_rhs_positions;
    std::vector<std::size_t> permuted_lhs_positions;
  };
  std::vector<IndPlan> ind_plans_;
};

}  // namespace bcdb

#endif  // BCDB_CONSTRAINTS_CHECKER_H_
