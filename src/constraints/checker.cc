#include "constraints/checker.h"

#include <algorithm>
#include <numeric>

#include "util/flat_table.h"

namespace bcdb {

ConstraintChecker::ConstraintChecker(const Database* db,
                                     const ConstraintSet* constraints)
    : db_(db), constraints_(constraints) {
  fd_index_ids_.reserve(constraints_->fds().size());
  for (const FunctionalDependency& fd : constraints_->fds()) {
    fd_index_ids_.push_back(
        db_->relation(fd.relation_id()).GetOrBuildIndex(fd.lhs()));
  }
  ind_plans_.reserve(constraints_->inds().size());
  for (const InclusionDependency& ind : constraints_->inds()) {
    // Index positions must be sorted; permute the (parallel) lhs positions
    // with the same permutation so projections stay aligned.
    std::vector<std::size_t> perm(ind.rhs_positions().size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return ind.rhs_positions()[a] < ind.rhs_positions()[b];
    });
    IndPlan plan;
    plan.sorted_rhs_positions.reserve(perm.size());
    plan.permuted_lhs_positions.reserve(perm.size());
    for (std::size_t p : perm) {
      plan.sorted_rhs_positions.push_back(ind.rhs_positions()[p]);
      plan.permuted_lhs_positions.push_back(ind.lhs_positions()[p]);
    }
    plan.rhs_index_id = db_->relation(ind.rhs_relation_id())
                            .GetOrBuildIndex(plan.sorted_rhs_positions);
    ind_plans_.push_back(std::move(plan));
  }
}

Status ConstraintChecker::CheckAll(const WorldView& view) const {
  const Catalog& catalog = db_->catalog();
  for (const FunctionalDependency& fd : constraints_->fds()) {
    const Relation& rel = db_->relation(fd.relation_id());
    FlatIdMap<Tuple, TupleId, TupleHash, TupleEq> seen;
    seen.reserve(rel.num_tuples());
    Status violation = Status::OK();
    rel.ForEachVisible(view, [&](TupleId id) {
      if (!violation.ok()) return;
      Tuple key = rel.tuple(id).Project(fd.lhs());
      auto [it, inserted] = seen.emplace(std::move(key), id);
      if (!inserted) {
        const Tuple& other = rel.tuple(it->second);
        if (rel.tuple(id).Project(fd.rhs()) != other.Project(fd.rhs())) {
          violation = Status::ConstraintViolation(
              "FD " + fd.ToString(catalog) + " violated by " +
              rel.tuple(id).ToString() + " and " + other.ToString());
        }
      }
    });
    if (!violation.ok()) return violation;
  }
  for (std::size_t i = 0; i < constraints_->inds().size(); ++i) {
    const InclusionDependency& ind = constraints_->inds()[i];
    const IndPlan& plan = ind_plans_[i];
    const Relation& lhs_rel = db_->relation(ind.lhs_relation_id());
    const Relation& rhs_rel = db_->relation(ind.rhs_relation_id());
    Status violation = Status::OK();
    lhs_rel.ForEachVisible(view, [&](TupleId id) {
      if (!violation.ok()) return;
      const ProjectionKey key =
          lhs_rel.tuple(id).ProjectKey(plan.permuted_lhs_positions);
      bool found = false;
      for (TupleId rhs_id : rhs_rel.IndexLookup(plan.rhs_index_id, key)) {
        if (rhs_rel.IsVisible(rhs_id, view)) {
          found = true;
          break;
        }
      }
      if (!found) {
        violation = Status::ConstraintViolation(
            "IND " + ind.ToString(catalog) + " violated by " +
            lhs_rel.tuple(id).ToString() + ": no witness");
      }
    });
    if (!violation.ok()) return violation;
  }
  return Status::OK();
}

bool ConstraintChecker::CanAppendOwner(const WorldView& view,
                                       TupleOwner owner) const {
  WorldView extended = view;
  extended.Activate(owner);
  // FDs: every tuple contributed by `owner` must agree with all visible
  // tuples sharing its determinant (including the owner's own tuples,
  // which are visible in `extended`).
  for (std::size_t i = 0; i < constraints_->fds().size(); ++i) {
    const FunctionalDependency& fd = constraints_->fds()[i];
    const Relation& rel = db_->relation(fd.relation_id());
    for (TupleId id : rel.TuplesOwnedBy(owner)) {
      const ProjectionKey key = rel.tuple(id).ProjectKey(fd.lhs());
      const Tuple dependent = rel.tuple(id).Project(fd.rhs());
      for (TupleId other : rel.IndexLookup(fd_index_ids_[i], key)) {
        if (other == id || !rel.IsVisible(other, extended)) continue;
        if (rel.tuple(other).Project(fd.rhs()) != dependent) return false;
      }
    }
  }
  // INDs: new lhs tuples need a visible witness; existing visible tuples
  // keep theirs (insertion never removes witnesses).
  for (std::size_t i = 0; i < constraints_->inds().size(); ++i) {
    const InclusionDependency& ind = constraints_->inds()[i];
    const IndPlan& plan = ind_plans_[i];
    const Relation& lhs_rel = db_->relation(ind.lhs_relation_id());
    const Relation& rhs_rel = db_->relation(ind.rhs_relation_id());
    for (TupleId id : lhs_rel.TuplesOwnedBy(owner)) {
      if (lhs_rel.IsVisible(id, view)) continue;  // Already present before.
      const ProjectionKey key =
          lhs_rel.tuple(id).ProjectKey(plan.permuted_lhs_positions);
      bool found = false;
      for (TupleId rhs_id : rhs_rel.IndexLookup(plan.rhs_index_id, key)) {
        if (rhs_rel.IsVisible(rhs_id, extended)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

bool ConstraintChecker::FdConsistentPair(TupleOwner a, TupleOwner b) const {
  for (std::size_t i = 0; i < constraints_->fds().size(); ++i) {
    if (!FdHoldsOverOwners(constraints_->fds()[i], i, {a, b},
                           /*against_base=*/false)) {
      return false;
    }
  }
  return true;
}

bool ConstraintChecker::FdConsistentWithBase(TupleOwner owner) const {
  for (std::size_t i = 0; i < constraints_->fds().size(); ++i) {
    if (!FdHoldsOverOwners(constraints_->fds()[i], i, {owner},
                           /*against_base=*/true)) {
      return false;
    }
  }
  return true;
}

bool ConstraintChecker::FdHoldsOverOwners(const FunctionalDependency& fd,
                                          std::size_t fd_ordinal,
                                          const std::vector<TupleOwner>& owners,
                                          bool against_base) const {
  const Relation& rel = db_->relation(fd.relation_id());
  const WorldView base = db_->BaseView();
  FlatIdMap<Tuple, Tuple, TupleHash, TupleEq> determinant_to_dependent;
  std::size_t expected = 0;
  for (TupleOwner owner : owners) expected += rel.TuplesOwnedBy(owner).size();
  determinant_to_dependent.reserve(expected);
  for (TupleOwner owner : owners) {
    for (TupleId id : rel.TuplesOwnedBy(owner)) {
      Tuple key = rel.tuple(id).Project(fd.lhs());
      Tuple dependent = rel.tuple(id).Project(fd.rhs());
      if (against_base) {
        for (TupleId other : rel.IndexLookup(fd_index_ids_[fd_ordinal], key)) {
          if (other == id || !rel.IsVisible(other, base)) continue;
          if (rel.tuple(other).Project(fd.rhs()) != dependent) return false;
        }
      }
      auto [it, inserted] =
          determinant_to_dependent.emplace(std::move(key), dependent);
      if (!inserted && it->second != dependent) return false;
    }
  }
  return true;
}

}  // namespace bcdb
