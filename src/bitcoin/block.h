#ifndef BCDB_BITCOIN_BLOCK_H_
#define BCDB_BITCOIN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "bitcoin/transaction.h"

namespace bcdb {
namespace bitcoin {

/// Hash of a block (same 63-bit compact form as transaction ids).
using BlockHash = std::int64_t;

/// A block: an ordered batch of transactions committed together, chained to
/// its predecessor by hash.
class Block {
 public:
  Block(std::uint64_t height, BlockHash prev_hash,
        std::vector<BitcoinTransaction> transactions);

  std::uint64_t height() const { return height_; }
  BlockHash prev_hash() const { return prev_hash_; }
  BlockHash hash() const { return hash_; }
  /// Pairwise SHA-256 Merkle tree over the transaction ids.
  BlockHash merkle_root() const { return merkle_root_; }
  const std::vector<BitcoinTransaction>& transactions() const {
    return transactions_;
  }

  std::size_t CountInputs() const;
  std::size_t CountOutputs() const;

 private:
  std::uint64_t height_;
  BlockHash prev_hash_;
  BlockHash merkle_root_;
  BlockHash hash_;
  std::vector<BitcoinTransaction> transactions_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_BLOCK_H_
