#ifndef BCDB_BITCOIN_SCRIPT_H_
#define BCDB_BITCOIN_SCRIPT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Output locking conditions — Section 2 of the paper: "The typical script
/// in Bitcoin requires the spender to present a valid cryptographic
/// signature ..., but other scripts are also possible, e.g., requiring a
/// preimage to a cryptographic hash to free funds, or several signatures
/// matching different public keys."
///
/// Scripts are encoded as the `pk` string of an output, so they flow
/// through the relational schema unchanged:
///   "U1Pk"                     pay-to-pubkey (the default; bare key)
///   "hash:<hex-sha256>"        hash lock — witness is the preimage
///   "msig:<k>:<pk1>,<pk2>,..." k-of-n multisig — witness is a comma-
///                              joined list of k signatures
/// The witness travels in the input's `sig` column (for pay-to-pubkey it
/// is the classic "U1Sig" signature).
class Script {
 public:
  enum class Kind { kPayToPubkey, kHashLock, kMultiSig };

  /// Parses an output's `pk` string. Never fails: anything that is not a
  /// recognized "hash:"/"msig:" form is a bare pay-to-pubkey key.
  static Script Parse(const std::string& encoded);

  /// Builders (return the encoded `pk` string for an output).
  static std::string PayToPubkey(const std::string& pubkey) { return pubkey; }
  static std::string HashLock(const std::string& secret);
  static StatusOr<std::string> MultiSig(std::size_t required,
                                        const std::vector<std::string>& keys);

  /// The witness a rightful owner puts into the spending input's `sig`
  /// column: the signature, the preimage, or `required` joined signatures
  /// (for multisig, signers must hold the first `required` listed keys;
  /// pass a different selection via MultiSigWitness).
  static std::string WitnessFor(const std::string& encoded_script,
                                const std::string& secret_or_unused = "");

  /// Multisig witness by an explicit signer subset (indices into the key
  /// list, ascending).
  static StatusOr<std::string> MultiSigWitness(
      const std::string& encoded_script,
      const std::vector<std::size_t>& signer_indexes);

  Kind kind() const { return kind_; }
  /// kPayToPubkey: the key. kHashLock: the hex digest. kMultiSig: unused.
  const std::string& payload() const { return payload_; }
  std::size_t required_signatures() const { return required_; }
  const std::vector<std::string>& keys() const { return keys_; }

  /// Does `witness` unlock this script? (signature match / preimage hashes
  /// to the digest / >= k distinct valid signatures of listed keys).
  bool SatisfiedBy(const std::string& witness) const;

 private:
  Kind kind_ = Kind::kPayToPubkey;
  std::string payload_;
  std::size_t required_ = 0;
  std::vector<std::string> keys_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_SCRIPT_H_
