#include "bitcoin/chain.h"

#include "bitcoin/script.h"

#include <unordered_set>

namespace bcdb {
namespace bitcoin {

Blockchain::Blockchain() {
  blocks_.emplace_back(/*height=*/0, /*prev_hash=*/0,
                       std::vector<BitcoinTransaction>{});
  stats_.blocks = 1;
}

Status Blockchain::ValidateTransaction(
    const BitcoinTransaction& tx,
    const std::unordered_map<OutPoint, Utxo, OutPointHash>& available) {
  std::unordered_set<OutPoint, OutPointHash> spent_here;
  for (const TxInput& input : tx.inputs()) {
    if (!spent_here.insert(input.prev).second) {
      return Status::ConstraintViolation(
          "transaction spends the same output twice");
    }
    auto it = available.find(input.prev);
    if (it == available.end()) {
      return Status::NotFound("input spends a missing or spent output (txid " +
                              std::to_string(input.prev.txid) + ", ser " +
                              std::to_string(input.prev.index) + ")");
    }
    if (it->second.pubkey != input.pubkey ||
        it->second.amount != input.amount) {
      return Status::ConstraintViolation(
          "input pubkey/amount does not match the referenced output");
    }
    if (!Script::Parse(input.pubkey).SatisfiedBy(input.signature)) {
      return Status::ConstraintViolation(
          "witness does not satisfy the output script of " + input.pubkey);
    }
  }
  for (const TxOutput& output : tx.outputs()) {
    if (output.amount < 0) {
      return Status::ConstraintViolation("negative output amount");
    }
  }
  if (!tx.is_coinbase() && tx.Fee() < 0) {
    return Status::ConstraintViolation("outputs exceed inputs");
  }
  return Status::OK();
}

Status Blockchain::AppendBlock(const Block& block) {
  if (block.prev_hash() != tip().hash()) {
    return Status::InvalidArgument("block does not extend the current tip");
  }
  if (block.height() != height() + 1) {
    return Status::InvalidArgument("block height must be tip height + 1");
  }

  // Validate transactions against the UTXO set, letting later transactions
  // spend outputs created earlier in the same block.
  std::unordered_map<OutPoint, Utxo, OutPointHash> available = utxos_;
  Satoshi fees = 0;
  const BitcoinTransaction* coinbase = nullptr;
  for (std::size_t i = 0; i < block.transactions().size(); ++i) {
    const BitcoinTransaction& tx = block.transactions()[i];
    if (tx.is_coinbase()) {
      if (i != 0) {
        return Status::ConstraintViolation(
            "coinbase must be the first transaction of the block");
      }
      coinbase = &tx;
    } else {
      BCDB_RETURN_IF_ERROR(ValidateTransaction(tx, available));
      fees += tx.Fee();
    }
    if (confirmed_txids_.count(tx.txid()) > 0) {
      return Status::AlreadyExists("transaction " + std::to_string(tx.txid()) +
                                   " already confirmed");
    }
    // Apply: consume inputs, create outputs.
    for (const TxInput& input : tx.inputs()) available.erase(input.prev);
    for (std::size_t o = 0; o < tx.outputs().size(); ++o) {
      available[OutPoint{tx.txid(), static_cast<std::int32_t>(o + 1)}] =
          Utxo{tx.outputs()[o].pubkey, tx.outputs()[o].amount};
    }
  }
  if (coinbase != nullptr && coinbase->OutputTotal() > kBlockReward + fees) {
    return Status::ConstraintViolation(
        "coinbase claims more than subsidy plus fees");
  }

  // Commit.
  utxos_ = std::move(available);
  for (const BitcoinTransaction& tx : block.transactions()) {
    confirmed_txids_.emplace(tx.txid(), block.height());
    stats_.transactions += 1;
    stats_.inputs += tx.inputs().size();
    stats_.outputs += tx.outputs().size();
  }
  stats_.blocks += 1;
  blocks_.push_back(block);
  return Status::OK();
}

Status Blockchain::MineAndAppend(std::vector<BitcoinTransaction> transactions) {
  Block block(height() + 1, tip().hash(), std::move(transactions));
  return AppendBlock(block);
}

}  // namespace bitcoin
}  // namespace bcdb
