#include "bitcoin/chain.h"

#include "bitcoin/script.h"

#include <algorithm>
#include <unordered_set>

namespace bcdb {
namespace bitcoin {

Blockchain::Blockchain() {
  blocks_.emplace_back(/*height=*/0, /*prev_hash=*/0,
                       std::vector<BitcoinTransaction>{});
  block_tree_.emplace(blocks_.back().hash(), blocks_.back());
  stats_.blocks = 1;
}

Status Blockchain::ValidateTransaction(
    const BitcoinTransaction& tx,
    const std::unordered_map<OutPoint, Utxo, OutPointHash>& available) {
  std::unordered_set<OutPoint, OutPointHash> spent_here;
  for (const TxInput& input : tx.inputs()) {
    if (!spent_here.insert(input.prev).second) {
      return Status::ConstraintViolation(
          "transaction spends the same output twice");
    }
    auto it = available.find(input.prev);
    if (it == available.end()) {
      return Status::NotFound("input spends a missing or spent output (txid " +
                              std::to_string(input.prev.txid) + ", ser " +
                              std::to_string(input.prev.index) + ")");
    }
    if (it->second.pubkey != input.pubkey ||
        it->second.amount != input.amount) {
      return Status::ConstraintViolation(
          "input pubkey/amount does not match the referenced output");
    }
    if (!Script::Parse(input.pubkey).SatisfiedBy(input.signature)) {
      return Status::ConstraintViolation(
          "witness does not satisfy the output script of " + input.pubkey);
    }
  }
  for (const TxOutput& output : tx.outputs()) {
    if (output.amount < 0) {
      return Status::ConstraintViolation("negative output amount");
    }
  }
  if (!tx.is_coinbase() && tx.Fee() < 0) {
    return Status::ConstraintViolation("outputs exceed inputs");
  }
  return Status::OK();
}

Status Blockchain::AppendBlock(const Block& block) {
  if (block.prev_hash() != tip().hash()) {
    return Status::InvalidArgument("block does not extend the current tip");
  }
  if (block.height() != height() + 1) {
    return Status::InvalidArgument("block height must be tip height + 1");
  }

  // Validate transactions against the UTXO set, letting later transactions
  // spend outputs created earlier in the same block.
  std::unordered_map<OutPoint, Utxo, OutPointHash> available = utxos_;
  Satoshi fees = 0;
  const BitcoinTransaction* coinbase = nullptr;
  for (std::size_t i = 0; i < block.transactions().size(); ++i) {
    const BitcoinTransaction& tx = block.transactions()[i];
    if (tx.is_coinbase()) {
      if (i != 0) {
        return Status::ConstraintViolation(
            "coinbase must be the first transaction of the block");
      }
      coinbase = &tx;
    } else {
      BCDB_RETURN_IF_ERROR(ValidateTransaction(tx, available));
      fees += tx.Fee();
    }
    if (confirmed_txids_.count(tx.txid()) > 0) {
      return Status::AlreadyExists("transaction " + std::to_string(tx.txid()) +
                                   " already confirmed");
    }
    // Apply: consume inputs, create outputs.
    for (const TxInput& input : tx.inputs()) available.erase(input.prev);
    for (std::size_t o = 0; o < tx.outputs().size(); ++o) {
      available[OutPoint{tx.txid(), static_cast<std::int32_t>(o + 1)}] =
          Utxo{tx.outputs()[o].pubkey, tx.outputs()[o].amount};
    }
  }
  if (coinbase != nullptr && coinbase->OutputTotal() > kBlockReward + fees) {
    return Status::ConstraintViolation(
        "coinbase claims more than subsidy plus fees");
  }

  // Commit.
  utxos_ = std::move(available);
  for (const BitcoinTransaction& tx : block.transactions()) {
    confirmed_txids_.emplace(tx.txid(), block.height());
    stats_.transactions += 1;
    stats_.inputs += tx.inputs().size();
    stats_.outputs += tx.outputs().size();
  }
  stats_.blocks += 1;
  blocks_.push_back(block);
  block_tree_.emplace(block.hash(), block);
  return Status::OK();
}

StatusOr<ChainUpdate> Blockchain::AcceptBlock(const Block& block) {
  if (block_tree_.count(block.hash()) > 0) {
    return Status::AlreadyExists("block already known");
  }
  if (block.prev_hash() == tip().hash()) {
    BCDB_RETURN_IF_ERROR(AppendBlock(block));
    ChainUpdate update;
    update.kind = ChainUpdate::Kind::kExtendedTip;
    update.connected_blocks = 1;
    return update;
  }

  const Block* parent = FindBlock(block.prev_hash());
  if (parent == nullptr) {
    return Status::NotFound("block's parent is unknown");
  }
  if (block.height() != parent->height() + 1) {
    return Status::InvalidArgument("block height must be parent height + 1");
  }

  // Collect the branch from the fork point (exclusive) down to `block`.
  // Every tracked block's ancestry is closed under block_tree_ (a block is
  // only admitted once its parent is known), so the walk always reaches the
  // active chain.
  std::vector<Block> branch{block};
  const Block* cursor = &block;
  while (!IsActive(cursor->prev_hash(), cursor->height() - 1)) {
    cursor = FindBlock(cursor->prev_hash());
    branch.push_back(*cursor);
  }
  std::reverse(branch.begin(), branch.end());
  const std::uint64_t fork_height = branch.front().height() - 1;

  if (block.height() <= height()) {
    // Not longer than the active chain: track it, change nothing.
    block_tree_.emplace(block.hash(), block);
    ChainUpdate update;
    update.kind = ChainUpdate::Kind::kSideChain;
    return update;
  }

  // Strictly longer: fully validate the candidate chain by replaying it from
  // genesis on a scratch instance. The shared prefix is already validated;
  // replaying it rebuilds the UTXO set the branch must be judged against
  // (and keeps re-confirmations of rolled-back transactions legal, since the
  // scratch chain never saw the abandoned suffix).
  Blockchain candidate;
  for (std::uint64_t h = 1; h <= fork_height; ++h) {
    Status replayed = candidate.AppendBlock(blocks_[h]);
    if (!replayed.ok()) {
      return Status::Internal("active chain prefix failed to replay: " +
                              replayed.message());
    }
  }
  for (const Block& b : branch) {
    Status applied = candidate.AppendBlock(b);
    if (!applied.ok()) {
      // Invalid branch: reject the new block and keep the active chain.
      return applied;
    }
  }

  ChainUpdate update;
  update.kind = ChainUpdate::Kind::kReorged;
  update.connected_blocks = branch.size();
  update.disconnected_blocks = height() - fork_height;
  for (std::uint64_t h = fork_height + 1; h < blocks_.size(); ++h) {
    for (const BitcoinTransaction& tx : blocks_[h].transactions()) {
      update.disconnected.push_back(tx);
    }
  }

  // Adopt the candidate's state; the abandoned suffix stays in the tree as a
  // side branch (a further reorg may return to it).
  block_tree_.emplace(block.hash(), block);
  blocks_ = std::move(candidate.blocks_);
  utxos_ = std::move(candidate.utxos_);
  confirmed_txids_ = std::move(candidate.confirmed_txids_);
  stats_ = candidate.stats_;
  return update;
}

Status Blockchain::MineAndAppend(std::vector<BitcoinTransaction> transactions) {
  Block block(height() + 1, tip().hash(), std::move(transactions));
  return AppendBlock(block);
}

}  // namespace bitcoin
}  // namespace bcdb
