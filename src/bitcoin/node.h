#ifndef BCDB_BITCOIN_NODE_H_
#define BCDB_BITCOIN_NODE_H_

#include <cstddef>

#include "bitcoin/chain.h"
#include "bitcoin/mempool.h"
#include "bitcoin/miner.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// One simulated full node: the authoritative chain, a mempool of pending
/// transactions, and a miner. This is the substrate that replaces the real
/// Bitcoin node the paper ran — the DCSat implementation sits at a node and
/// sees both the accepted transactions R and the pending transactions T.
class SimulatedNode {
 public:
  SimulatedNode() = default;

  /// Adopts an existing chain with an empty mempool (snapshot restore,
  /// bootstrapping from a peer).
  explicit SimulatedNode(Blockchain chain) : chain_(std::move(chain)) {}

  const Blockchain& chain() const { return chain_; }
  const Mempool& mempool() const { return mempool_; }
  Mempool& mempool() { return mempool_; }

  /// Accepts a broadcast transaction into the mempool (see Mempool::Add for
  /// the validation performed; conflicting pending transactions are kept).
  Status SubmitTransaction(BitcoinTransaction tx) {
    return mempool_.Add(chain_, std::move(tx));
  }

  /// Mines one block under `policy`, appends it, and evicts confirmed /
  /// invalidated mempool entries. Returns the number of non-coinbase
  /// transactions confirmed.
  StatusOr<std::size_t> MineBlock(const MinerPolicy& policy);

  /// Accepts a block mined elsewhere (received via gossip): validates and
  /// appends it, then evicts confirmed / invalidated mempool entries.
  /// Fork-aware (delegates to AcceptBlock); only the status survives.
  Status ReceiveBlock(const Block& block);

  /// Fork-aware block intake. On a reorg, every disconnected non-coinbase
  /// transaction is re-broadcast into the mempool (best-effort — ones
  /// re-confirmed on the new branch or stripped of their funding stay out),
  /// then the pool is resynced against the new active chain. The returned
  /// update tells database-layer callers which confirmations to retract.
  StatusOr<ChainUpdate> AcceptBlock(const Block& block);

 private:
  Blockchain chain_;
  Mempool mempool_;
  Miner miner_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_NODE_H_
