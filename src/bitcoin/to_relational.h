#ifndef BCDB_BITCOIN_TO_RELATIONAL_H_
#define BCDB_BITCOIN_TO_RELATIONAL_H_

#include "bitcoin/node.h"
#include "bitcoin/transaction.h"
#include "core/blockchain_db.h"
#include "core/transaction.h"

namespace bcdb {
namespace bitcoin {

/// Relation names of the paper's Example 1 schema.
inline constexpr const char* kTxOut = "TxOut";
inline constexpr const char* kTxIn = "TxIn";

/// The Example-1 catalog:
///   TxOut(txId, ser, pk, amount)                        key (txId, ser)
///   TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)   key (prevTxId, prevSer)
/// txId / prevTxId / newTxId are 63-bit ints, ser 1-based, pk/sig strings,
/// amount non-negative satoshis (the non_negative hint feeds the sum-
/// aggregate monotonicity analysis).
Catalog MakeBitcoinCatalog();

/// The keys above plus the paper's two inclusion dependencies:
///   TxIn[prevTxId, prevSer, pk, amount] ⊆ TxOut[txId, ser, pk, amount]
///   TxIn[newTxId] ⊆ TxOut[txId]
StatusOr<ConstraintSet> MakeBitcoinConstraints(const Catalog& catalog);

/// The relational image of one Bitcoin transaction: one TxIn row per input
/// and one TxOut row per output (labelled with the txid).
Transaction ToRelationalTransaction(const BitcoinTransaction& tx);

/// Builds the blockchain database D = (R, I, T) a DCSat-running node sees:
/// R = the relational image of every confirmed transaction, I = the
/// Example-1 constraints, T = one pending transaction per mempool entry.
StatusOr<BlockchainDatabase> BuildBlockchainDatabase(const SimulatedNode& node);

/// Same, but with `sink` attached before the first insert, so the entire
/// ingest streams through the durability hook (a dataset imported this way
/// is already persisted when the call returns). `sink` may be null.
StatusOr<BlockchainDatabase> BuildBlockchainDatabase(const SimulatedNode& node,
                                                     DurabilitySink* sink);

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_TO_RELATIONAL_H_
