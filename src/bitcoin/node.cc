#include "bitcoin/node.h"

namespace bcdb {
namespace bitcoin {

StatusOr<std::size_t> SimulatedNode::MineBlock(const MinerPolicy& policy) {
  Block block = miner_.BuildBlock(chain_, mempool_, policy);
  const std::size_t confirmed = block.transactions().size() - 1;
  BCDB_RETURN_IF_ERROR(chain_.AppendBlock(block));
  mempool_.RemoveConfirmedAndInvalid(chain_, block);
  return confirmed;
}

Status SimulatedNode::ReceiveBlock(const Block& block) {
  return AcceptBlock(block).status();
}

StatusOr<ChainUpdate> SimulatedNode::AcceptBlock(const Block& block) {
  StatusOr<ChainUpdate> update = chain_.AcceptBlock(block);
  if (!update.ok()) return update;
  if (update->kind == ChainUpdate::Kind::kReorged) {
    // Disconnected transactions come back in block order, so parents are
    // re-admitted before the children that spend them.
    for (const BitcoinTransaction& tx : update->disconnected) {
      if (tx.is_coinbase()) continue;
      Status readmitted = mempool_.Add(chain_, tx);
      (void)readmitted;  // Best-effort: re-confirmed or defunded txs stay out.
    }
  }
  if (update->kind != ChainUpdate::Kind::kSideChain) {
    mempool_.Resync(chain_);
  }
  return update;
}

}  // namespace bitcoin
}  // namespace bcdb
