#include "bitcoin/node.h"

namespace bcdb {
namespace bitcoin {

StatusOr<std::size_t> SimulatedNode::MineBlock(const MinerPolicy& policy) {
  Block block = miner_.BuildBlock(chain_, mempool_, policy);
  const std::size_t confirmed = block.transactions().size() - 1;
  BCDB_RETURN_IF_ERROR(chain_.AppendBlock(block));
  mempool_.RemoveConfirmedAndInvalid(chain_, block);
  return confirmed;
}

Status SimulatedNode::ReceiveBlock(const Block& block) {
  BCDB_RETURN_IF_ERROR(chain_.AppendBlock(block));
  mempool_.RemoveConfirmedAndInvalid(chain_, block);
  return Status::OK();
}

}  // namespace bitcoin
}  // namespace bcdb
