#ifndef BCDB_BITCOIN_CHAIN_H_
#define BCDB_BITCOIN_CHAIN_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Default mining subsidy per block (before halvings, which the simulation
/// ignores): 50 BTC.
inline constexpr Satoshi kBlockReward = 50 * kCoin;

/// An unspent output as tracked by the UTXO set.
struct Utxo {
  std::string pubkey;
  Satoshi amount = 0;
};

/// Aggregate counters for Table 1.
struct ChainStats {
  std::size_t blocks = 0;
  std::size_t transactions = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
};

/// Outcome of offering one block to the chain (AcceptBlock).
struct ChainUpdate {
  enum class Kind {
    /// The block extended the active tip; one block connected.
    kExtendedTip,
    /// The block forked off a non-tip ancestor but its branch is not longer
    /// than the active chain; it is tracked but nothing changed.
    kSideChain,
    /// The block completed a strictly-longer branch; the node switched to
    /// it, rolling back every active block above the fork point.
    kReorged,
  };

  Kind kind = Kind::kExtendedTip;
  /// kReorged only: transactions of the rolled-back blocks in block order
  /// (coinbases included — callers decide what to re-broadcast). Their
  /// confirmations are undone; any of them not re-confirmed on the new
  /// branch is pending again from the node's point of view.
  std::vector<BitcoinTransaction> disconnected;
  std::size_t disconnected_blocks = 0;
  std::size_t connected_blocks = 0;
};

/// The chain state of one node: the active block sequence plus the UTXO set
/// it induces, and a tree of every structurally-linked block ever offered
/// (side branches included). The paper's Remark 1 treats fork resolution as
/// protocol-specific; here we model the common heaviest-chain rule —
/// AcceptBlock switches to a strictly longer branch and reports the
/// disconnected transactions so the database layer can retract their
/// confirmations (kCurrentRemoved / kPendingRestored events).
class Blockchain {
 public:
  /// Starts from an empty genesis block.
  Blockchain();

  std::size_t height() const { return blocks_.size() - 1; }
  const std::vector<Block>& blocks() const { return blocks_; }
  const Block& tip() const { return blocks_.back(); }

  const std::unordered_map<OutPoint, Utxo, OutPointHash>& utxos() const {
    return utxos_;
  }

  /// Validates `block` (chain linkage, at most one leading coinbase with
  /// reward ≤ subsidy + fees, every input spends an existing unspent output
  /// with matching pubkey/amount and a valid signature, no double spends)
  /// and applies it to the UTXO set. Only extends the active tip; use
  /// AcceptBlock for blocks that may fork.
  Status AppendBlock(const Block& block);

  /// Offers a block that may extend the tip, start/extend a side branch, or
  /// complete a strictly-longer branch (heaviest-chain reorg). Side blocks
  /// are linkage-checked on arrival (known parent, consecutive height) and
  /// fully validated when their branch is adopted: adoption replays the
  /// candidate chain from genesis, and an invalid branch leaves the active
  /// chain untouched. Equal-length competitors are kept as side chains
  /// (first-seen wins, like Bitcoin Core).
  StatusOr<ChainUpdate> AcceptBlock(const Block& block);

  /// Convenience: builds a block at the current tip from `transactions`
  /// (already including any coinbase) and appends it.
  Status MineAndAppend(std::vector<BitcoinTransaction> transactions);

  /// Validates one transaction against an arbitrary view of available
  /// outputs (shared by block validation and the mempool): signatures,
  /// matching pubkey/amount, non-negative fee, no within-tx double spends.
  static Status ValidateTransaction(
      const BitcoinTransaction& tx,
      const std::unordered_map<OutPoint, Utxo, OutPointHash>& available);

  /// True if the transaction was confirmed in some *active* block (reorgs
  /// un-confirm the rolled-back branch's transactions).
  bool ContainsTransaction(TxId txid) const {
    return confirmed_txids_.count(txid) > 0;
  }

  /// True if `hash` is the hash of the active block at `height`.
  bool IsActive(BlockHash hash, std::uint64_t height) const {
    return height < blocks_.size() && blocks_[height].hash() == hash;
  }

  /// Looks up any known block (active or side branch) by hash.
  const Block* FindBlock(BlockHash hash) const {
    auto it = block_tree_.find(hash);
    return it == block_tree_.end() ? nullptr : &it->second;
  }

  ChainStats Stats() const { return stats_; }

 private:
  std::vector<Block> blocks_;
  /// Every structurally-linked block ever offered, active or not, by hash.
  std::unordered_map<BlockHash, Block> block_tree_;
  std::unordered_map<OutPoint, Utxo, OutPointHash> utxos_;
  std::unordered_map<TxId, std::uint64_t> confirmed_txids_;  // txid -> height
  ChainStats stats_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_CHAIN_H_
