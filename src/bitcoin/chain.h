#ifndef BCDB_BITCOIN_CHAIN_H_
#define BCDB_BITCOIN_CHAIN_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Default mining subsidy per block (before halvings, which the simulation
/// ignores): 50 BTC.
inline constexpr Satoshi kBlockReward = 50 * kCoin;

/// An unspent output as tracked by the UTXO set.
struct Utxo {
  std::string pubkey;
  Satoshi amount = 0;
};

/// Aggregate counters for Table 1.
struct ChainStats {
  std::size_t blocks = 0;
  std::size_t transactions = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
};

/// The authoritative chain of one node: an append-only block sequence plus
/// the UTXO set it induces. Forks are not modeled (see the paper's Remark 1:
/// fork handling is protocol-specific and resolved data is what enters the
/// database).
class Blockchain {
 public:
  /// Starts from an empty genesis block.
  Blockchain();

  std::size_t height() const { return blocks_.size() - 1; }
  const std::vector<Block>& blocks() const { return blocks_; }
  const Block& tip() const { return blocks_.back(); }

  const std::unordered_map<OutPoint, Utxo, OutPointHash>& utxos() const {
    return utxos_;
  }

  /// Validates `block` (chain linkage, at most one leading coinbase with
  /// reward ≤ subsidy + fees, every input spends an existing unspent output
  /// with matching pubkey/amount and a valid signature, no double spends)
  /// and applies it to the UTXO set.
  Status AppendBlock(const Block& block);

  /// Convenience: builds a block at the current tip from `transactions`
  /// (already including any coinbase) and appends it.
  Status MineAndAppend(std::vector<BitcoinTransaction> transactions);

  /// Validates one transaction against an arbitrary view of available
  /// outputs (shared by block validation and the mempool): signatures,
  /// matching pubkey/amount, non-negative fee, no within-tx double spends.
  static Status ValidateTransaction(
      const BitcoinTransaction& tx,
      const std::unordered_map<OutPoint, Utxo, OutPointHash>& available);

  /// True if the transaction was confirmed in some block.
  bool ContainsTransaction(TxId txid) const {
    return confirmed_txids_.count(txid) > 0;
  }

  ChainStats Stats() const { return stats_; }

 private:
  std::vector<Block> blocks_;
  std::unordered_map<OutPoint, Utxo, OutPointHash> utxos_;
  std::unordered_map<TxId, std::uint64_t> confirmed_txids_;  // txid -> height
  ChainStats stats_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_CHAIN_H_
