#include "bitcoin/script.h"

#include <algorithm>
#include <set>

#include "bitcoin/sha256.h"
#include "bitcoin/transaction.h"
#include "util/strings.h"

namespace bcdb {
namespace bitcoin {

namespace {
constexpr const char* kHashPrefix = "hash:";
constexpr const char* kMultiSigPrefix = "msig:";
}  // namespace

Script Script::Parse(const std::string& encoded) {
  Script script;
  if (StartsWith(encoded, kHashPrefix)) {
    script.kind_ = Kind::kHashLock;
    script.payload_ = encoded.substr(5);
    return script;
  }
  if (StartsWith(encoded, kMultiSigPrefix)) {
    // msig:<k>:<pk1>,<pk2>,...
    const std::size_t second_colon = encoded.find(':', 5);
    if (second_colon != std::string::npos) {
      const std::string count = encoded.substr(5, second_colon - 5);
      char* end = nullptr;
      const long required = std::strtol(count.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && required > 0) {
        script.kind_ = Kind::kMultiSig;
        script.required_ = static_cast<std::size_t>(required);
        script.keys_ = SplitAndTrim(encoded.substr(second_colon + 1), ',');
        return script;
      }
    }
    // Malformed multisig encodings fall through to pay-to-pubkey, which can
    // never be satisfied by accident (no one signs for the raw string).
  }
  script.kind_ = Kind::kPayToPubkey;
  script.payload_ = encoded;
  return script;
}

std::string Script::HashLock(const std::string& secret) {
  return std::string(kHashPrefix) + Sha256::ToHex(Sha256::Hash(secret));
}

StatusOr<std::string> Script::MultiSig(std::size_t required,
                                       const std::vector<std::string>& keys) {
  if (required == 0 || required > keys.size()) {
    return Status::InvalidArgument("multisig requires 1 <= k <= #keys");
  }
  for (const std::string& key : keys) {
    if (key.empty() || key.find(',') != std::string::npos ||
        key.find(':') != std::string::npos) {
      return Status::InvalidArgument("multisig keys must be plain tokens");
    }
  }
  return std::string(kMultiSigPrefix) + std::to_string(required) + ":" +
         Join(keys, ",");
}

std::string Script::WitnessFor(const std::string& encoded_script,
                               const std::string& secret_or_unused) {
  const Script script = Parse(encoded_script);
  switch (script.kind()) {
    case Kind::kPayToPubkey:
      return SignatureFor(script.payload());
    case Kind::kHashLock:
      return secret_or_unused;
    case Kind::kMultiSig: {
      std::vector<std::string> signatures;
      for (std::size_t i = 0;
           i < script.required_signatures() && i < script.keys().size(); ++i) {
        signatures.push_back(SignatureFor(script.keys()[i]));
      }
      return Join(signatures, ",");
    }
  }
  return "";
}

StatusOr<std::string> Script::MultiSigWitness(
    const std::string& encoded_script,
    const std::vector<std::size_t>& signer_indexes) {
  const Script script = Parse(encoded_script);
  if (script.kind() != Kind::kMultiSig) {
    return Status::InvalidArgument("not a multisig script");
  }
  std::vector<std::string> signatures;
  for (std::size_t index : signer_indexes) {
    if (index >= script.keys().size()) {
      return Status::OutOfRange("signer index out of range");
    }
    signatures.push_back(SignatureFor(script.keys()[index]));
  }
  return Join(signatures, ",");
}

bool Script::SatisfiedBy(const std::string& witness) const {
  switch (kind_) {
    case Kind::kPayToPubkey:
      return witness == SignatureFor(payload_);
    case Kind::kHashLock:
      return Sha256::ToHex(Sha256::Hash(witness)) == payload_;
    case Kind::kMultiSig: {
      // Distinct valid signatures of listed keys, at least `required_`.
      const std::vector<std::string> provided = SplitAndTrim(witness, ',');
      std::set<std::string> valid;
      for (const std::string& signature : provided) {
        for (const std::string& key : keys_) {
          if (signature == SignatureFor(key)) {
            valid.insert(signature);
            break;
          }
        }
      }
      return valid.size() >= required_;
    }
  }
  return false;
}

}  // namespace bitcoin
}  // namespace bcdb
