#include "bitcoin/block_file.h"

#include <cstdio>
#include <string_view>
#include <utility>

#include "util/bytes.h"

namespace bcdb {
namespace bitcoin {
namespace {

constexpr std::uint32_t kBlockEntryKind = 1;
constexpr std::uint32_t kTxEntryKind = 2;

void EncodeTransactionInto(std::string* out, const BitcoinTransaction& tx) {
  AppendI64(out, tx.txid());
  AppendU8(out, tx.is_coinbase() ? 1 : 0);
  AppendU32(out, static_cast<std::uint32_t>(tx.inputs().size()));
  for (const TxInput& input : tx.inputs()) {
    AppendI64(out, input.prev.txid);
    AppendI32(out, input.prev.index);
    AppendBytes(out, input.pubkey);
    AppendI64(out, input.amount);
    AppendBytes(out, input.signature);
  }
  AppendU32(out, static_cast<std::uint32_t>(tx.outputs().size()));
  for (const TxOutput& output : tx.outputs()) {
    AppendBytes(out, output.pubkey);
    AppendI64(out, output.amount);
  }
}

StatusOr<BitcoinTransaction> DecodeTransactionFrom(ByteReader* in,
                                                   std::uint64_t salt) {
  std::int64_t stored_txid = 0;
  std::uint8_t is_coinbase = 0;
  std::uint32_t num_inputs = 0;
  if (!in->ReadI64(&stored_txid) || !in->ReadU8(&is_coinbase) ||
      !in->ReadU32(&num_inputs)) {
    return Status::InvalidArgument("block file: truncated transaction");
  }
  std::vector<TxInput> inputs;
  inputs.reserve(num_inputs);
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    TxInput input;
    std::string pubkey, signature;
    if (!in->ReadI64(&input.prev.txid) || !in->ReadI32(&input.prev.index) ||
        !in->ReadString(&pubkey) || !in->ReadI64(&input.amount) ||
        !in->ReadString(&signature)) {
      return Status::InvalidArgument("block file: truncated input");
    }
    input.pubkey = std::move(pubkey);
    input.signature = std::move(signature);
    inputs.push_back(std::move(input));
  }
  std::uint32_t num_outputs = 0;
  if (!in->ReadU32(&num_outputs)) {
    return Status::InvalidArgument("block file: truncated transaction");
  }
  std::vector<TxOutput> outputs;
  outputs.reserve(num_outputs);
  for (std::uint32_t o = 0; o < num_outputs; ++o) {
    TxOutput output;
    std::string pubkey;
    if (!in->ReadString(&pubkey) || !in->ReadI64(&output.amount)) {
      return Status::InvalidArgument("block file: truncated output");
    }
    output.pubkey = std::move(pubkey);
    outputs.push_back(std::move(output));
  }

  // Rebuild from content; coinbases re-derive their height salt, everything
  // else serializes identically by construction.
  BitcoinTransaction tx =
      is_coinbase
          ? BitcoinTransaction::Coinbase(
                outputs.empty() ? std::string() : outputs[0].pubkey,
                outputs.empty() ? 0 : outputs[0].amount, salt)
          : BitcoinTransaction(std::move(inputs), std::move(outputs));
  if (is_coinbase && (num_inputs != 0 || num_outputs != 1)) {
    return Status::InvalidArgument(
        "block file: coinbase must have no inputs and one output");
  }
  if (tx.txid() != stored_txid) {
    return Status::InvalidArgument(
        "block file: transaction id mismatch (content was altered)");
  }
  return tx;
}

/// Reads the whole file into a string (block files are bounded by the
/// export they came from; no need to stream).
StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read error on " + path);
  return data;
}

Status WriteFramedFile(const std::string& path, std::uint32_t kind,
                       const std::vector<std::string>& payloads) {
  std::string data;
  for (const std::string& payload : payloads) {
    AppendU32(&data, kBlockFileMagic);
    AppendU32(&data, static_cast<std::uint32_t>(payload.size() + 4));
    AppendU32(&data, kind);
    data.append(payload);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot create " + path);
  const bool failed =
      std::fwrite(data.data(), 1, data.size(), f) != data.size();
  if (std::fclose(f) != 0 || failed) {
    return Status::Internal("write error on " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> ReadFramedFile(const std::string& path,
                                                  std::uint32_t kind) {
  StatusOr<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();
  std::vector<std::string> payloads;
  ByteReader in(*data);
  while (!in.exhausted()) {
    std::uint32_t magic = 0;
    if (!in.ReadU32(&magic)) {
      return Status::InvalidArgument(path + ": truncated entry header");
    }
    if (magic == 0) {
      // Preallocation padding after the last entry: the rest must be zeros.
      std::uint8_t byte = 0;
      while (in.ReadU8(&byte)) {
        if (byte != 0) {
          return Status::InvalidArgument(path + ": garbage after entries");
        }
      }
      break;
    }
    if (magic != kBlockFileMagic) {
      return Status::InvalidArgument(path + ": bad network magic");
    }
    std::uint32_t size = 0;
    std::uint32_t entry_kind = 0;
    if (!in.ReadU32(&size) || size < 4 || !in.ReadU32(&entry_kind)) {
      return Status::InvalidArgument(path + ": truncated entry");
    }
    if (entry_kind != kind) {
      return Status::InvalidArgument(path + ": unexpected entry kind");
    }
    std::string_view payload;
    if (!in.ReadRaw(size - 4, &payload)) {
      return Status::InvalidArgument(path + ": truncated entry payload");
    }
    payloads.emplace_back(payload);
  }
  return payloads;
}

}  // namespace

std::string EncodeBlockPayload(const Block& block) {
  std::string out;
  AppendU64(&out, block.height());
  AppendI64(&out, block.prev_hash());
  AppendI64(&out, block.hash());
  AppendU32(&out, static_cast<std::uint32_t>(block.transactions().size()));
  for (const BitcoinTransaction& tx : block.transactions()) {
    EncodeTransactionInto(&out, tx);
  }
  return out;
}

StatusOr<Block> DecodeBlockPayload(std::string_view payload) {
  ByteReader in(payload);
  std::uint64_t height = 0;
  std::int64_t prev_hash = 0;
  std::int64_t stored_hash = 0;
  std::uint32_t num_txs = 0;
  if (!in.ReadU64(&height) || !in.ReadI64(&prev_hash) ||
      !in.ReadI64(&stored_hash) || !in.ReadU32(&num_txs)) {
    return Status::InvalidArgument("block file: truncated block header");
  }
  std::vector<BitcoinTransaction> transactions;
  transactions.reserve(num_txs);
  for (std::uint32_t i = 0; i < num_txs; ++i) {
    // Coinbase salt == block height (BitcoinTransaction::Coinbase).
    StatusOr<BitcoinTransaction> tx = DecodeTransactionFrom(&in, height);
    if (!tx.ok()) return tx.status();
    transactions.push_back(std::move(*tx));
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("block file: trailing bytes in block");
  }
  Block block(height, prev_hash, std::move(transactions));
  if (block.hash() != stored_hash) {
    return Status::InvalidArgument(
        "block file: block hash mismatch (content was altered)");
  }
  return block;
}

std::string EncodeTransactionPayload(const BitcoinTransaction& tx) {
  std::string out;
  EncodeTransactionInto(&out, tx);
  return out;
}

StatusOr<BitcoinTransaction> DecodeTransactionPayload(
    std::string_view payload) {
  ByteReader in(payload);
  // Mempool transactions are never coinbases, so the salt is irrelevant.
  StatusOr<BitcoinTransaction> tx = DecodeTransactionFrom(&in, 0);
  if (!tx.ok()) return tx.status();
  if (!in.exhausted()) {
    return Status::InvalidArgument("block file: trailing bytes after tx");
  }
  return tx;
}

Status WriteBlockFile(const std::string& path,
                      const std::vector<Block>& blocks) {
  std::vector<std::string> payloads;
  payloads.reserve(blocks.size());
  for (const Block& block : blocks) {
    payloads.push_back(EncodeBlockPayload(block));
  }
  return WriteFramedFile(path, kBlockEntryKind, payloads);
}

StatusOr<std::vector<Block>> ReadBlockFile(const std::string& path) {
  StatusOr<std::vector<std::string>> payloads =
      ReadFramedFile(path, kBlockEntryKind);
  if (!payloads.ok()) return payloads.status();
  std::vector<Block> blocks;
  blocks.reserve(payloads->size());
  for (const std::string& payload : *payloads) {
    StatusOr<Block> block = DecodeBlockPayload(payload);
    if (!block.ok()) return block.status();
    blocks.push_back(std::move(*block));
  }
  return blocks;
}

Status WriteMempoolFile(const std::string& path,
                        const std::vector<BitcoinTransaction>& transactions) {
  std::vector<std::string> payloads;
  payloads.reserve(transactions.size());
  for (const BitcoinTransaction& tx : transactions) {
    payloads.push_back(EncodeTransactionPayload(tx));
  }
  return WriteFramedFile(path, kTxEntryKind, payloads);
}

StatusOr<std::vector<BitcoinTransaction>> ReadMempoolFile(
    const std::string& path) {
  StatusOr<std::vector<std::string>> payloads =
      ReadFramedFile(path, kTxEntryKind);
  if (!payloads.ok()) return payloads.status();
  std::vector<BitcoinTransaction> transactions;
  transactions.reserve(payloads->size());
  for (const std::string& payload : *payloads) {
    StatusOr<BitcoinTransaction> tx = DecodeTransactionPayload(payload);
    if (!tx.ok()) return tx.status();
    transactions.push_back(std::move(*tx));
  }
  return transactions;
}

Status ExportNode(const SimulatedNode& node, const std::string& block_path,
                  const std::string& mempool_path) {
  const std::vector<Block>& chain = node.chain().blocks();
  // blocks[0] is the implicit genesis: never exported, never replayed.
  std::vector<Block> blocks(chain.begin() + (chain.empty() ? 0 : 1),
                            chain.end());
  BCDB_RETURN_IF_ERROR(WriteBlockFile(block_path, blocks));
  if (!mempool_path.empty()) {
    BCDB_RETURN_IF_ERROR(
        WriteMempoolFile(mempool_path, node.mempool().transactions()));
  }
  return Status::OK();
}

StatusOr<SimulatedNode> LoadNode(const std::vector<std::string>& block_paths,
                                 const std::string& mempool_path) {
  SimulatedNode node;
  for (const std::string& path : block_paths) {
    StatusOr<std::vector<Block>> blocks = ReadBlockFile(path);
    if (!blocks.ok()) return blocks.status();
    for (const Block& block : *blocks) {
      BCDB_RETURN_IF_ERROR(node.ReceiveBlock(block));
    }
  }
  if (!mempool_path.empty()) {
    StatusOr<std::vector<BitcoinTransaction>> txs =
        ReadMempoolFile(mempool_path);
    if (!txs.ok()) return txs.status();
    for (BitcoinTransaction& tx : *txs) {
      BCDB_RETURN_IF_ERROR(node.SubmitTransaction(std::move(tx)));
    }
  }
  return node;
}

}  // namespace bitcoin
}  // namespace bcdb
