#ifndef BCDB_BITCOIN_MEMPOOL_H_
#define BCDB_BITCOIN_MEMPOOL_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "bitcoin/chain.h"
#include "bitcoin/transaction.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// The set of broadcast-but-unconfirmed transactions known to a node.
///
/// Unlike a production relay policy, the mempool deliberately *keeps*
/// conflicting transactions (double spends of the same output): once signed,
/// a transaction can be rebroadcast by anyone and may confirm at any time,
/// and reasoning about exactly such conflicts is the point of the paper.
/// Transactions may spend outputs of other mempool transactions (dependency
/// chains).
class Mempool {
 public:
  /// Validates `tx` shape against the chain + mempool outputs (signature,
  /// pubkey/amount matching, non-negative fee, referenced output exists
  /// somewhere) and admits it. Conflicts with existing mempool entries are
  /// allowed; spending an output already spent *on the chain* is rejected
  /// (such a transaction can never confirm).
  Status Add(const Blockchain& chain, BitcoinTransaction tx);

  const std::vector<BitcoinTransaction>& transactions() const {
    return transactions_;
  }
  std::size_t size() const { return transactions_.size(); }
  bool Contains(TxId txid) const { return by_txid_.count(txid) > 0; }
  const BitcoinTransaction* Find(TxId txid) const;

  /// Indices of mempool transaction pairs that spend a common output —
  /// the paper's "contradictions".
  std::vector<std::pair<std::size_t, std::size_t>> ConflictPairs() const;

  /// Evicts transactions confirmed by `block` and every mempool transaction
  /// that became permanently invalid (an input it references was spent by
  /// the block, directly or transitively through an evicted parent).
  /// Returns the number of evicted transactions.
  std::size_t RemoveConfirmedAndInvalid(const Blockchain& chain,
                                        const Block& block);

  ChainStats Stats() const;

 private:
  std::vector<BitcoinTransaction> transactions_;
  std::unordered_map<TxId, std::size_t> by_txid_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_MEMPOOL_H_
