#ifndef BCDB_BITCOIN_MEMPOOL_H_
#define BCDB_BITCOIN_MEMPOOL_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitcoin/chain.h"
#include "bitcoin/transaction.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// The set of broadcast-but-unconfirmed transactions known to a node.
///
/// Unlike a production relay policy, the mempool deliberately *keeps*
/// conflicting transactions (double spends of the same output): once signed,
/// a transaction can be rebroadcast by anyone and may confirm at any time,
/// and reasoning about exactly such conflicts is the point of the paper.
/// Transactions may spend outputs of other mempool transactions (dependency
/// chains).
class Mempool {
 public:
  /// Validates `tx` shape against the chain + mempool outputs (signature,
  /// pubkey/amount matching, non-negative fee, referenced output exists
  /// somewhere) and admits it. Conflicts with existing mempool entries are
  /// allowed; spending an output already spent *on the chain* is rejected
  /// (such a transaction can never confirm).
  Status Add(const Blockchain& chain, BitcoinTransaction tx);

  const std::vector<BitcoinTransaction>& transactions() const {
    return transactions_;
  }
  std::size_t size() const { return transactions_.size(); }
  bool Contains(TxId txid) const { return by_txid_.count(txid) > 0; }
  const BitcoinTransaction* Find(TxId txid) const;

  /// Indices of mempool transaction pairs that spend a common output —
  /// the paper's "contradictions".
  std::vector<std::pair<std::size_t, std::size_t>> ConflictPairs() const;

  /// Evicts transactions confirmed by `block` and every mempool transaction
  /// that became permanently invalid (an input it references was spent by
  /// the block, directly or transitively through an evicted parent).
  /// Returns the number of evicted transactions.
  std::size_t RemoveConfirmedAndInvalid(const Blockchain& chain,
                                        const Block& block);

  /// Reconciles the pool against an arbitrary chain state — the general form
  /// of RemoveConfirmedAndInvalid, usable after a reorg switched the active
  /// chain underneath the pool. Drops every transaction that is confirmed on
  /// the (new) active chain or whose inputs are no longer satisfiable from
  /// chain UTXOs / surviving mempool parents. Returns the dropped txids in
  /// pool order per cascade round.
  std::vector<TxId> Resync(const Blockchain& chain);

  /// Fee-capped admission: while the pool holds more than `max_transactions`
  /// entries, evicts the lowest-fee transaction (txid breaks ties, so
  /// eviction is deterministic) together with every dependant that loses its
  /// funding. Returns the evicted txids in eviction order.
  std::vector<TxId> EvictToCapacity(const Blockchain& chain,
                                    std::size_t max_transactions);

  /// Replace-by-fee: admits `tx` after evicting every mempool transaction
  /// that directly conflicts with it (spends one of its inputs) plus their
  /// dependants — but only if tx's fee strictly exceeds the summed fees of
  /// the direct conflicts (BIP 125's core rule). With no conflicts this is
  /// plain Add. Returns the evicted txids; the pool is unchanged on error.
  StatusOr<std::vector<TxId>> ReplaceByFee(const Blockchain& chain,
                                           BitcoinTransaction tx);

  ChainStats Stats() const;

 private:
  /// Removes `victims` plus, transitively, every transaction that is
  /// confirmed on the chain or whose inputs can no longer be resolved.
  /// Returns all removed txids.
  std::vector<TxId> EvictSet(const Blockchain& chain,
                             const std::unordered_set<TxId>& victims);

  std::vector<BitcoinTransaction> transactions_;
  std::unordered_map<TxId, std::size_t> by_txid_;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_MEMPOOL_H_
