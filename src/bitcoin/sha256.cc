#include "bitcoin/sha256.h"

#include <cstring>

namespace bcdb {

namespace {

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t Rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(const void* data, std::size_t size) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  total_bytes_ += size;
  while (size > 0) {
    const std::size_t take =
        size < (64 - buffer_len_) ? size : (64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    size -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Sha256::Digest Sha256::Finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  Update(&pad_byte, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  Update(length_bytes, 8);

  Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256::Digest Sha256::Hash(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::string Sha256::ToHex(const Digest& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(64);
  for (std::uint8_t byte : digest) {
    hex += kHex[byte >> 4];
    hex += kHex[byte & 0xf];
  }
  return hex;
}

std::int64_t Sha256::ToId63(const Digest& digest) {
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id = (id << 8) | digest[i];
  }
  return static_cast<std::int64_t>(id & 0x7fffffffffffffffULL);
}

}  // namespace bcdb
