#include "bitcoin/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace bcdb {
namespace bitcoin {

namespace {

/// Bookkeeping the generator keeps alongside the node: who owns which
/// spendable confirmed output. Kept in sync incrementally from each mined
/// block (the chain's UTXO set is authoritative; this adds the by-owner
/// index and the "reserved by a pending transaction" marks).
class WalletBook {
 public:
  void ApplyBlock(const Block& block) {
    for (const BitcoinTransaction& tx : block.transactions()) {
      for (const TxInput& input : tx.inputs()) {
        spendable_.erase(input.prev);
      }
      for (std::size_t o = 0; o < tx.outputs().size(); ++o) {
        const OutPoint point{tx.txid(), static_cast<std::int32_t>(o + 1)};
        spendable_[point] = tx.outputs()[o];
        by_owner_[tx.outputs()[o].pubkey].push_back(point);
      }
    }
  }

  /// A spendable, unreserved confirmed output of `owner` worth at least
  /// `min_amount`; reserves it. Null on failure.
  const TxOutput* TakeOutput(const std::string& owner, Satoshi min_amount,
                             OutPoint* point) {
    auto it = by_owner_.find(owner);
    if (it == by_owner_.end()) return nullptr;
    std::vector<OutPoint>& candidates = it->second;
    for (std::size_t i = 0; i < candidates.size();) {
      auto found = spendable_.find(candidates[i]);
      if (found == spendable_.end() || reserved_.count(candidates[i]) > 0) {
        candidates[i] = candidates.back();  // Stale or reserved: prune.
        candidates.pop_back();
        continue;
      }
      if (found->second.amount >= min_amount) {
        *point = candidates[i];
        reserved_.insert(candidates[i]);
        last_taken_ = found->second;
        return &last_taken_;
      }
      ++i;
    }
    return nullptr;
  }

  /// Releases a reservation (used when re-spending an output on purpose to
  /// craft a contradiction).
  void Unreserve(const OutPoint& point) { reserved_.erase(point); }

  bool HasSpendable(const std::string& owner) {
    OutPoint unused;
    return PeekHasOutput(owner, &unused);
  }

 private:
  bool PeekHasOutput(const std::string& owner, OutPoint* point) {
    auto it = by_owner_.find(owner);
    if (it == by_owner_.end()) return false;
    for (const OutPoint& candidate : it->second) {
      if (spendable_.count(candidate) > 0 && reserved_.count(candidate) == 0) {
        *point = candidate;
        return true;
      }
    }
    return false;
  }

  std::unordered_map<OutPoint, TxOutput, OutPointHash> spendable_;
  std::unordered_map<std::string, std::vector<OutPoint>> by_owner_;
  std::unordered_set<OutPoint, OutPointHash> reserved_;
  TxOutput last_taken_;
};

/// One-input payment: `amount` to `to_pk`, change (if any) back to the
/// sender, `fee` left for the miner.
BitcoinTransaction MakePayment(const OutPoint& source, const TxOutput& utxo,
                               const std::string& to_pk, Satoshi amount,
                               Satoshi fee) {
  std::vector<TxInput> inputs{TxInput{source, utxo.pubkey, utxo.amount,
                                      SignatureFor(utxo.pubkey)}};
  std::vector<TxOutput> outputs{TxOutput{to_pk, amount}};
  const Satoshi change = utxo.amount - amount - fee;
  if (change > 0) outputs.push_back(TxOutput{utxo.pubkey, change});
  return BitcoinTransaction(std::move(inputs), std::move(outputs));
}

class Generator {
 public:
  explicit Generator(const GeneratorParams& params)
      : params_(params), rng_(params.seed) {
    users_.reserve(params.num_users);
    for (std::size_t i = 0; i < params.num_users; ++i) {
      users_.push_back("U" + std::to_string(i) + "Pk");
    }
  }

  StatusOr<GeneratedWorkload> Run() {
    BCDB_RETURN_IF_ERROR(BuildChain());
    BCDB_RETURN_IF_ERROR(SetupLandmarks());
    BCDB_RETURN_IF_ERROR(BroadcastDesignatedPending());
    BCDB_RETURN_IF_ERROR(BroadcastBulkPending());
    BCDB_RETURN_IF_ERROR(InjectContradictions());
    BCDB_RETURN_IF_ERROR(ReplacePendingByFee());
    BCDB_RETURN_IF_ERROR(EnforceMempoolCapacity());
    BCDB_RETURN_IF_ERROR(SimulateReorg());
    return GeneratedWorkload{std::move(node_), std::move(metadata_)};
  }

 private:
  MinerPolicy PolicyFor(std::size_t height) {
    MinerPolicy policy;
    policy.miner_pubkey = users_[height % users_.size()];
    policy.max_transactions = 1u << 20;  // Mine everything submitted.
    return policy;
  }

  Status MineOne() {
    const std::size_t height = node_.chain().height() + 1;
    StatusOr<std::size_t> mined = node_.MineBlock(PolicyFor(height));
    if (!mined.ok()) return mined.status();
    wallets_.ApplyBlock(node_.chain().tip());
    return Status::OK();
  }

  /// Submits one random confirmed-funds payment; false if no sender with
  /// sufficient funds was found.
  StatusOr<bool> SubmitRandomPayment() {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const std::string& sender = users_[rng_.NextBelow(users_.size())];
      OutPoint point;
      const TxOutput* utxo =
          wallets_.TakeOutput(sender, 3 * params_.fee, &point);
      if (utxo == nullptr) continue;
      const std::string& receiver = users_[rng_.NextBelow(users_.size())];
      const Satoshi spendable = utxo->amount - params_.fee;
      const Satoshi amount =
          std::max<Satoshi>(1, (spendable * rng_.NextInRange(30, 70)) / 100);
      BCDB_RETURN_IF_ERROR(node_.SubmitTransaction(
          MakePayment(point, *utxo, receiver, amount, params_.fee)));
      return true;
    }
    return false;
  }

  Status BuildChain() {
    for (std::size_t h = 1; h <= params_.num_blocks; ++h) {
      const std::size_t target = std::min<std::size_t>(
          params_.txs_per_block_cap,
          static_cast<std::size_t>(params_.txs_per_block_base +
                                   params_.txs_per_block_slope *
                                       static_cast<double>(h)));
      for (std::size_t t = 0; t < target; ++t) {
        StatusOr<bool> submitted = SubmitRandomPayment();
        if (!submitted.ok()) return submitted.status();
        if (!*submitted) break;  // Liquidity shortage; coinbases refill.
      }
      BCDB_RETURN_IF_ERROR(MineOne());
    }
    return Status::OK();
  }

  /// Pays `amount` from some funded user to `to_pk`; the payment is
  /// submitted (not yet mined).
  Status SubmitFundedPayment(const std::string& to_pk, Satoshi amount) {
    for (int attempt = 0; attempt < 256; ++attempt) {
      const std::string& sender = users_[rng_.NextBelow(users_.size())];
      OutPoint point;
      const TxOutput* utxo =
          wallets_.TakeOutput(sender, amount + params_.fee, &point);
      if (utxo == nullptr) continue;
      return node_.SubmitTransaction(
          MakePayment(point, *utxo, to_pk, amount, params_.fee));
    }
    return Status::Internal("no user holds a UTXO worth " +
                            std::to_string(amount) + " satoshi");
  }

  Status SetupLandmarks() {
    // Fund the landmark addresses with confirmed outputs over two blocks.
    metadata_.chain_pks.push_back("ChainA0Pk");
    BCDB_RETURN_IF_ERROR(
        SubmitFundedPayment(metadata_.chain_pks[0],
                            (params_.pending_chain_depth + 2) *
                                (kCoin / 10 + params_.fee)));
    metadata_.star_pk = "StarPk";
    for (std::size_t k = 0; k < params_.star_size; ++k) {
      BCDB_RETURN_IF_ERROR(SubmitFundedPayment(metadata_.star_pk, kCoin / 10));
    }
    metadata_.rich_pk = "RichPk";
    metadata_.rich_base_total = kCoin;
    BCDB_RETURN_IF_ERROR(
        SubmitFundedPayment(metadata_.rich_pk, metadata_.rich_base_total));
    metadata_.quiet_pk = "QuietPk";
    metadata_.quiet_pk2 = "Quiet2Pk";
    BCDB_RETURN_IF_ERROR(SubmitFundedPayment(metadata_.quiet_pk, kCoin / 20));
    BCDB_RETURN_IF_ERROR(SubmitFundedPayment(metadata_.quiet_pk2, kCoin / 20));
    return MineOne();
  }

  Status BroadcastDesignatedPending() {
    // --- The dependency chain C1..Cd: Cj spends Cj-1's output. ---
    OutPoint point;
    const TxOutput* head =
        wallets_.TakeOutput(metadata_.chain_pks[0], 0, &point);
    if (head == nullptr) {
      return Status::Internal("chain head landmark lost its funding");
    }
    TxOutput current = *head;
    OutPoint current_point = point;
    for (std::size_t depth = 1; depth <= params_.pending_chain_depth;
         ++depth) {
      const std::string next_pk =
          "ChainA" + std::to_string(depth) + "Pk";
      metadata_.chain_pks.push_back(next_pk);
      const Satoshi amount = current.amount - params_.fee;
      if (amount <= 0) {
        return Status::Internal("chain landmark ran out of satoshi");
      }
      BitcoinTransaction link = MakePayment(current_point, current, next_pk,
                                            amount, params_.fee);
      BCDB_RETURN_IF_ERROR(node_.SubmitTransaction(link));
      current_point = OutPoint{link.txid(), 1};
      current = TxOutput{next_pk, amount};
    }

    // --- The star: each of star_pk's UTXOs spent by its own pending tx. ---
    for (std::size_t k = 0; k < params_.star_size; ++k) {
      OutPoint star_point;
      const TxOutput* utxo =
          wallets_.TakeOutput(metadata_.star_pk, 0, &star_point);
      if (utxo == nullptr) {
        return Status::Internal("star landmark lost a funding output");
      }
      BCDB_RETURN_IF_ERROR(node_.SubmitTransaction(
          MakePayment(star_point, *utxo, "StarRcpt" + std::to_string(k) + "Pk",
                      utxo->amount - params_.fee, params_.fee)));
    }

    // --- Rich: independent pending payments into rich_pk. ---
    for (std::size_t k = 0; k < params_.rich_payments; ++k) {
      const Satoshi amount = kCoin / 4;
      BCDB_RETURN_IF_ERROR(SubmitFundedPayment(metadata_.rich_pk, amount));
      metadata_.rich_pending_total += amount;
    }
    return Status::OK();
  }

  Status BroadcastBulkPending() {
    std::size_t submitted = 0;
    std::size_t failures = 0;
    while (submitted < params_.num_pending && failures < 64) {
      StatusOr<bool> ok = SubmitRandomPayment();
      if (!ok.ok()) return ok.status();
      if (*ok) {
        ++submitted;
        failures = 0;
      } else {
        ++failures;
      }
    }
    if (submitted < params_.num_pending) {
      return Status::Internal(
          "insufficient confirmed liquidity for the requested pending set (" +
          std::to_string(submitted) + "/" +
          std::to_string(params_.num_pending) + ")");
    }
    return Status::OK();
  }

  Status InjectContradictions() {
    // Each contradiction re-spends the input of an existing bulk pending
    // payment toward a different recipient — a signed double spend, exactly
    // the key violation on TxIn(prevTxId, prevSer) the paper counts.
    const std::vector<BitcoinTransaction>& pool =
        node_.mempool().transactions();
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      // Only user-to-user bulk payments: the designated chain/star/rich
      // transactions must stay conflict-free so the landmark constraints
      // remain realizable.
      if (pool[i].inputs().size() == 1 &&
          pool[i].inputs()[0].pubkey.rfind("U", 0) == 0 &&
          !pool[i].outputs().empty() &&
          pool[i].outputs()[0].pubkey.rfind("U", 0) == 0) {
        candidates.push_back(i);
      }
    }
    if (candidates.size() < params_.num_contradictions) {
      return Status::Internal("not enough bulk pending payments to inject " +
                              std::to_string(params_.num_contradictions) +
                              " contradictions");
    }
    // Deterministic choice of distinct victims.
    for (std::size_t c = 0; c < params_.num_contradictions; ++c) {
      const std::size_t pick = c * candidates.size() /
                               std::max<std::size_t>(
                                   params_.num_contradictions, 1);
      const BitcoinTransaction& victim = pool[candidates[pick]];
      const TxInput& input = victim.inputs()[0];
      const std::string rival =
          "DoubleSpendRcpt" + std::to_string(c) + "Pk";
      const TxOutput utxo{input.pubkey, input.amount};
      BCDB_RETURN_IF_ERROR(node_.SubmitTransaction(MakePayment(
          input.prev, utxo, rival, input.amount - params_.fee, params_.fee)));
    }
    return Status::OK();
  }

  /// Bulk user-to-user single-input payments are the only safe churn
  /// victims: the designated chain/star/rich transactions must survive so
  /// the landmark constraints stay realizable.
  std::vector<std::size_t> BulkPaymentIndices() const {
    const std::vector<BitcoinTransaction>& pool = node_.mempool().transactions();
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].inputs().size() == 1 &&
          pool[i].inputs()[0].pubkey.rfind("U", 0) == 0 &&
          !pool[i].outputs().empty() &&
          pool[i].outputs()[0].pubkey.rfind("U", 0) == 0) {
        candidates.push_back(i);
      }
    }
    return candidates;
  }

  Status ReplacePendingByFee() {
    if (params_.num_replacements == 0) return Status::OK();
    const std::vector<std::size_t> candidates = BulkPaymentIndices();
    if (candidates.size() < params_.num_replacements) {
      return Status::Internal("not enough bulk pending payments to replace " +
                              std::to_string(params_.num_replacements));
    }
    // Collect the victims' inputs up front: each replacement evicts its
    // victim (and any double spend of the same output), shifting pool
    // indices.
    std::vector<TxInput> victim_inputs;
    for (std::size_t c = 0; c < params_.num_replacements; ++c) {
      // Walk from the back so the contradiction victims (chosen from the
      // front by InjectContradictions) mostly keep their conflict pairs.
      const std::size_t pick = candidates[candidates.size() - 1 - c];
      victim_inputs.push_back(node_.mempool().transactions()[pick].inputs()[0]);
    }
    for (std::size_t c = 0; c < victim_inputs.size(); ++c) {
      const TxInput& input = victim_inputs[c];
      // A replacement can displace the victim plus one double spend of the
      // same output; tripling the fee beats their summed fees.
      const Satoshi bumped_fee = 3 * params_.fee;
      if (input.amount <= bumped_fee) continue;
      const TxOutput utxo{input.pubkey, input.amount};
      StatusOr<std::vector<TxId>> evicted = node_.mempool().ReplaceByFee(
          node_.chain(),
          MakePayment(input.prev, utxo, "RbfRcpt" + std::to_string(c) + "Pk",
                      input.amount - bumped_fee, bumped_fee));
      if (!evicted.ok()) return evicted.status();
      metadata_.replaced_by_fee += evicted->size();
    }
    return Status::OK();
  }

  Status EnforceMempoolCapacity() {
    if (params_.mempool_capacity == 0) return Status::OK();
    metadata_.evicted_by_capacity =
        node_.mempool()
            .EvictToCapacity(node_.chain(), params_.mempool_capacity)
            .size();
    return Status::OK();
  }

  Status SimulateReorg() {
    if (params_.reorg_depth == 0) return Status::OK();
    const BlockHash fork_tip = node_.chain().tip().hash();
    const std::uint64_t fork_height = node_.chain().height();
    // Confirm pending transactions on what will become the losing branch.
    for (std::size_t d = 0; d < params_.reorg_depth; ++d) {
      BCDB_RETURN_IF_ERROR(MineOne());
    }
    // A rival miner extends the old tip with a strictly longer empty branch.
    BlockHash prev = fork_tip;
    for (std::size_t d = 1; d <= params_.reorg_depth + 1; ++d) {
      const std::uint64_t h = fork_height + d;
      Block rival(h, prev,
                  {BitcoinTransaction::Coinbase("ForkMinerPk", kBlockReward,
                                                h)});
      prev = rival.hash();
      StatusOr<ChainUpdate> update = node_.AcceptBlock(rival);
      if (!update.ok()) return update.status();
      if (d <= params_.reorg_depth) {
        if (update->kind != ChainUpdate::Kind::kSideChain) {
          return Status::Internal("rival branch switched the chain early");
        }
      } else {
        if (update->kind != ChainUpdate::Kind::kReorged) {
          return Status::Internal("rival branch failed to trigger the reorg");
        }
        for (const BitcoinTransaction& tx : update->disconnected) {
          if (!tx.is_coinbase()) ++metadata_.disconnected_by_reorg;
        }
      }
    }
    // The wallet book is stale past this point (it tracked the abandoned
    // branch); churn phases must run before the reorg.
    return Status::OK();
  }

  GeneratorParams params_;
  Xoshiro256 rng_;
  std::vector<std::string> users_;
  SimulatedNode node_;
  WalletBook wallets_;
  WorkloadMetadata metadata_;
};

}  // namespace

StatusOr<GeneratedWorkload> GenerateWorkload(const GeneratorParams& params) {
  Generator generator(params);
  return generator.Run();
}

}  // namespace bitcoin
}  // namespace bcdb
