#include "bitcoin/block.h"

#include "bitcoin/sha256.h"

namespace bcdb {
namespace bitcoin {

namespace {

BlockHash HashPair(BlockHash a, BlockHash b) {
  const std::string data =
      "node:" + std::to_string(a) + "," + std::to_string(b);
  return Sha256::ToId63(Sha256::Hash(data));
}

BlockHash ComputeMerkleRoot(const std::vector<BitcoinTransaction>& txs) {
  if (txs.empty()) return 0;
  std::vector<BlockHash> level;
  level.reserve(txs.size());
  for (const BitcoinTransaction& tx : txs) level.push_back(tx.txid());
  while (level.size() > 1) {
    std::vector<BlockHash> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      // Odd trailing node pairs with itself (Bitcoin convention).
      const BlockHash right = i + 1 < level.size() ? level[i + 1] : level[i];
      next.push_back(HashPair(level[i], right));
    }
    level = std::move(next);
  }
  return level.front();
}

}  // namespace

Block::Block(std::uint64_t height, BlockHash prev_hash,
             std::vector<BitcoinTransaction> transactions)
    : height_(height),
      prev_hash_(prev_hash),
      transactions_(std::move(transactions)) {
  merkle_root_ = ComputeMerkleRoot(transactions_);
  const std::string header = "block:h=" + std::to_string(height_) +
                             ";prev=" + std::to_string(prev_hash_) +
                             ";merkle=" + std::to_string(merkle_root_);
  hash_ = Sha256::ToId63(Sha256::Hash(header));
}

std::size_t Block::CountInputs() const {
  std::size_t count = 0;
  for (const BitcoinTransaction& tx : transactions_) {
    count += tx.inputs().size();
  }
  return count;
}

std::size_t Block::CountOutputs() const {
  std::size_t count = 0;
  for (const BitcoinTransaction& tx : transactions_) {
    count += tx.outputs().size();
  }
  return count;
}

}  // namespace bitcoin
}  // namespace bcdb
