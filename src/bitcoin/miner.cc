#include "bitcoin/miner.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace bcdb {
namespace bitcoin {

Block Miner::BuildBlock(const Blockchain& chain, const Mempool& mempool,
                        const MinerPolicy& policy) const {
  // Candidate order: fee descending, txid as a deterministic tie-break.
  std::vector<std::size_t> order(mempool.transactions().size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const BitcoinTransaction& ta = mempool.transactions()[a];
    const BitcoinTransaction& tb = mempool.transactions()[b];
    if (ta.Fee() != tb.Fee()) return ta.Fee() > tb.Fee();
    return ta.txid() < tb.txid();
  });

  std::unordered_map<OutPoint, Utxo, OutPointHash> available = chain.utxos();
  std::unordered_set<std::size_t> selected;
  std::vector<const BitcoinTransaction*> included;
  Satoshi fees = 0;

  bool progressed = true;
  while (progressed && included.size() < policy.max_transactions) {
    progressed = false;
    for (std::size_t idx : order) {
      if (included.size() >= policy.max_transactions) break;
      if (selected.count(idx) > 0) continue;
      const BitcoinTransaction& tx = mempool.transactions()[idx];
      if (tx.Fee() < policy.min_fee) continue;
      if (!Blockchain::ValidateTransaction(tx, available).ok()) continue;
      // Take it: consume inputs, expose outputs for dependants.
      for (const TxInput& input : tx.inputs()) available.erase(input.prev);
      for (std::size_t o = 0; o < tx.outputs().size(); ++o) {
        available[OutPoint{tx.txid(), static_cast<std::int32_t>(o + 1)}] =
            Utxo{tx.outputs()[o].pubkey, tx.outputs()[o].amount};
      }
      selected.insert(idx);
      included.push_back(&tx);
      fees += tx.Fee();
      progressed = true;
    }
  }

  std::vector<BitcoinTransaction> block_txs;
  block_txs.reserve(included.size() + 1);
  block_txs.push_back(BitcoinTransaction::Coinbase(
      policy.miner_pubkey, policy.block_reward + fees, chain.height() + 1));
  for (const BitcoinTransaction* tx : included) block_txs.push_back(*tx);
  return Block(chain.height() + 1, chain.tip().hash(), std::move(block_txs));
}

}  // namespace bitcoin
}  // namespace bcdb
