#ifndef BCDB_BITCOIN_TRANSACTION_H_
#define BCDB_BITCOIN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/hash.h"

namespace bcdb {
namespace bitcoin {

/// Amounts are integer satoshis; 1 bitcoin = 10^8 satoshi.
using Satoshi = std::int64_t;
inline constexpr Satoshi kCoin = 100'000'000;

/// Compact 63-bit transaction id (derived from the SHA-256 of the
/// serialized transaction; stored as the txId / prevTxId / newTxId columns
/// of the relational schema).
using TxId = std::int64_t;

/// Reference to the `index`-th output (1-based, matching the paper's `ser`
/// column) of transaction `txid`.
struct OutPoint {
  TxId txid = 0;
  std::int32_t index = 0;

  bool operator==(const OutPoint& other) const {
    return txid == other.txid && index == other.index;
  }
  bool operator<(const OutPoint& other) const {
    return txid != other.txid ? txid < other.txid : index < other.index;
  }
};

struct OutPointHash {
  std::size_t operator()(const OutPoint& p) const {
    std::size_t seed = std::hash<std::int64_t>{}(p.txid);
    HashCombineValue(seed, p.index);
    return seed;
  }
};

/// A transaction output: an amount locked to a public key.
struct TxOutput {
  std::string pubkey;
  Satoshi amount = 0;
};

/// A transaction input: fully consumes a previous output, presenting the
/// owner's public key, the consumed amount, and a signature.
struct TxInput {
  OutPoint prev;
  std::string pubkey;
  Satoshi amount = 0;
  std::string signature;
};

/// The deterministic stand-in for a cryptographic signature by the holder of
/// `pubkey` ("U1Pk" signs as "U1Sig", following the paper's Figure 2).
std::string SignatureFor(const std::string& pubkey);

/// A Bitcoin-style transaction: a many-to-many transfer that fully spends
/// its inputs and redistributes them to its outputs. Immutable once built;
/// the txid is the truncated SHA-256 of the serialization.
class BitcoinTransaction {
 public:
  /// Builds a regular transaction. Inputs must carry correct signatures for
  /// chain validation to accept it (use SignatureFor).
  BitcoinTransaction(std::vector<TxInput> inputs, std::vector<TxOutput> outputs);

  /// A coinbase transaction (no inputs) minting `reward` to `miner_pubkey`.
  /// `height` salts the serialization so equal-looking coinbases at
  /// different heights get distinct txids.
  static BitcoinTransaction Coinbase(const std::string& miner_pubkey,
                                     Satoshi reward, std::uint64_t height);

  TxId txid() const { return txid_; }
  const std::vector<TxInput>& inputs() const { return inputs_; }
  const std::vector<TxOutput>& outputs() const { return outputs_; }
  bool is_coinbase() const { return inputs_.empty(); }

  Satoshi InputTotal() const;
  Satoshi OutputTotal() const;
  /// InputTotal - OutputTotal; the miner's incentive. 0 for coinbases.
  Satoshi Fee() const;

  /// Deterministic canonical serialization (txid preimage).
  std::string Serialize() const;

 private:
  std::vector<TxInput> inputs_;
  std::vector<TxOutput> outputs_;
  std::uint64_t salt_ = 0;  // Coinbase height salt.
  TxId txid_ = 0;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_TRANSACTION_H_
