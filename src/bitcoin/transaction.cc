#include "bitcoin/transaction.h"

#include "bitcoin/sha256.h"

namespace bcdb {
namespace bitcoin {

std::string SignatureFor(const std::string& pubkey) {
  if (pubkey.size() >= 2 && pubkey.substr(pubkey.size() - 2) == "Pk") {
    return pubkey.substr(0, pubkey.size() - 2) + "Sig";
  }
  return pubkey + "Sig";
}

BitcoinTransaction::BitcoinTransaction(std::vector<TxInput> inputs,
                                       std::vector<TxOutput> outputs)
    : inputs_(std::move(inputs)), outputs_(std::move(outputs)) {
  txid_ = Sha256::ToId63(Sha256::Hash(Serialize()));
}

BitcoinTransaction BitcoinTransaction::Coinbase(const std::string& miner_pubkey,
                                                Satoshi reward,
                                                std::uint64_t height) {
  BitcoinTransaction tx({}, {TxOutput{miner_pubkey, reward}});
  tx.salt_ = height;
  tx.txid_ = Sha256::ToId63(Sha256::Hash(tx.Serialize()));
  return tx;
}

Satoshi BitcoinTransaction::InputTotal() const {
  Satoshi total = 0;
  for (const TxInput& input : inputs_) total += input.amount;
  return total;
}

Satoshi BitcoinTransaction::OutputTotal() const {
  Satoshi total = 0;
  for (const TxOutput& output : outputs_) total += output.amount;
  return total;
}

Satoshi BitcoinTransaction::Fee() const {
  return is_coinbase() ? 0 : InputTotal() - OutputTotal();
}

std::string BitcoinTransaction::Serialize() const {
  std::string data = "tx:v1;salt=" + std::to_string(salt_) + ";in=";
  for (const TxInput& input : inputs_) {
    data += std::to_string(input.prev.txid) + ":" +
            std::to_string(input.prev.index) + ":" + input.pubkey + ":" +
            std::to_string(input.amount) + ":" + input.signature + ",";
  }
  data += ";out=";
  for (const TxOutput& output : outputs_) {
    data += output.pubkey + ":" + std::to_string(output.amount) + ",";
  }
  return data;
}

}  // namespace bitcoin
}  // namespace bcdb
