#ifndef BCDB_BITCOIN_BLOCK_FILE_H_
#define BCDB_BITCOIN_BLOCK_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/node.h"
#include "bitcoin/transaction.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Bitcoin-shaped binary block files (the `blk*.dat` idiom): a flat
/// sequence of framed entries
///
///   entry := network_magic u32 | size u32 | payload (size bytes)
///
/// where each payload is one binary-encoded block (or, in mempool files,
/// one transaction). As on real nodes, a run of zero bytes after the last
/// entry is treated as preallocation padding and ends the scan; anything
/// else trailing is corruption.
///
/// Payloads carry the content needed to *rebuild* blocks and transactions
/// — heights, previous-output references, pubkeys, amounts, signatures —
/// plus the writer's block hash and txids, which the reader recomputes
/// from content and cross-checks. Loading replays everything through full
/// chain/mempool validation (SimulatedNode::ReceiveBlock / Mempool::Add),
/// so a block file that would not validate as a live history fails to
/// load, exactly like the text snapshots in bitcoin/serialize.h.
inline constexpr std::uint32_t kBlockFileMagic = 0xD9B4BEF9u;

/// Serializes one block / transaction payload (no framing).
std::string EncodeBlockPayload(const Block& block);
std::string EncodeTransactionPayload(const BitcoinTransaction& tx);

/// Decodes and verifies one payload (recomputed ids must match the stored
/// ones).
StatusOr<Block> DecodeBlockPayload(std::string_view payload);
StatusOr<BitcoinTransaction> DecodeTransactionPayload(std::string_view payload);

/// Writes `blocks` as one framed block file. The genesis block is the
/// chain's implicit origin and is never written; pass blocks from height 1
/// up (ExportNode does this for you).
Status WriteBlockFile(const std::string& path, const std::vector<Block>& blocks);

/// Reads every framed block payload in `path`, verifying framing and ids.
StatusOr<std::vector<Block>> ReadBlockFile(const std::string& path);

/// Mempool files: the same framing, one transaction per entry.
Status WriteMempoolFile(const std::string& path,
                        const std::vector<BitcoinTransaction>& transactions);
StatusOr<std::vector<BitcoinTransaction>> ReadMempoolFile(
    const std::string& path);

/// Exports `node` as `<block_path>` plus (if non-empty) `<mempool_path>`.
Status ExportNode(const SimulatedNode& node, const std::string& block_path,
                  const std::string& mempool_path);

/// Rebuilds a validating node by replaying block files in order through
/// ReceiveBlock, then broadcasting the mempool file (if non-empty) through
/// SubmitTransaction. Files must jointly form a contiguous chain from
/// height 1.
StatusOr<SimulatedNode> LoadNode(const std::vector<std::string>& block_paths,
                                 const std::string& mempool_path = "");

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_BLOCK_FILE_H_
