#include "bitcoin/to_relational.h"

namespace bcdb {
namespace bitcoin {

Catalog MakeBitcoinCatalog() {
  Catalog catalog;
  Status status = catalog.AddRelation(RelationSchema(
      kTxOut, {Attribute{"txId", ValueType::kInt, false},
               Attribute{"ser", ValueType::kInt, false},
               Attribute{"pk", ValueType::kString, false},
               Attribute{"amount", ValueType::kInt, /*non_negative=*/true}}));
  if (status.ok()) {
    status = catalog.AddRelation(RelationSchema(
        kTxIn, {Attribute{"prevTxId", ValueType::kInt, false},
                Attribute{"prevSer", ValueType::kInt, false},
                Attribute{"pk", ValueType::kString, false},
                Attribute{"amount", ValueType::kInt, /*non_negative=*/true},
                Attribute{"newTxId", ValueType::kInt, false},
                Attribute{"sig", ValueType::kString, false}}));
  }
  // Both additions succeed by construction (fresh catalog, distinct names).
  (void)status;
  return catalog;
}

StatusOr<ConstraintSet> MakeBitcoinConstraints(const Catalog& catalog) {
  ConstraintSet constraints;
  StatusOr<FunctionalDependency> txout_key =
      FunctionalDependency::Key(catalog, kTxOut, {"txId", "ser"});
  if (!txout_key.ok()) return txout_key.status();
  constraints.AddFd(std::move(*txout_key));

  StatusOr<FunctionalDependency> txin_key =
      FunctionalDependency::Key(catalog, kTxIn, {"prevTxId", "prevSer"});
  if (!txin_key.ok()) return txin_key.status();
  constraints.AddFd(std::move(*txin_key));

  StatusOr<InclusionDependency> spend_ind = InclusionDependency::Create(
      catalog, kTxIn, {"prevTxId", "prevSer", "pk", "amount"}, kTxOut,
      {"txId", "ser", "pk", "amount"});
  if (!spend_ind.ok()) return spend_ind.status();
  constraints.AddInd(std::move(*spend_ind));

  StatusOr<InclusionDependency> has_output_ind = InclusionDependency::Create(
      catalog, kTxIn, {"newTxId"}, kTxOut, {"txId"});
  if (!has_output_ind.ok()) return has_output_ind.status();
  constraints.AddInd(std::move(*has_output_ind));

  return constraints;
}

Transaction ToRelationalTransaction(const BitcoinTransaction& tx) {
  // The Tuple constructors intern every value into the process-wide
  // ValuePool here, at ingest — evaluation paths only ever resolve ids.
  Transaction result(std::to_string(tx.txid()));
  for (const TxInput& input : tx.inputs()) {
    result.Add(kTxIn, Tuple({Value::Int(input.prev.txid),
                             Value::Int(input.prev.index),
                             Value::Str(input.pubkey),
                             Value::Int(input.amount), Value::Int(tx.txid()),
                             Value::Str(input.signature)}));
  }
  for (std::size_t o = 0; o < tx.outputs().size(); ++o) {
    result.Add(kTxOut,
               Tuple({Value::Int(tx.txid()),
                      Value::Int(static_cast<std::int64_t>(o + 1)),
                      Value::Str(tx.outputs()[o].pubkey),
                      Value::Int(tx.outputs()[o].amount)}));
  }
  return result;
}

StatusOr<BlockchainDatabase> BuildBlockchainDatabase(
    const SimulatedNode& node) {
  return BuildBlockchainDatabase(node, /*sink=*/nullptr);
}

StatusOr<BlockchainDatabase> BuildBlockchainDatabase(const SimulatedNode& node,
                                                     DurabilitySink* sink) {
  Catalog catalog = MakeBitcoinCatalog();
  StatusOr<ConstraintSet> constraints = MakeBitcoinConstraints(catalog);
  if (!constraints.ok()) return constraints.status();
  StatusOr<BlockchainDatabase> db =
      BlockchainDatabase::Create(std::move(catalog), std::move(*constraints));
  if (!db.ok()) return db.status();
  if (sink != nullptr) db->AttachDurabilitySink(sink);

  // The chain is fully materialized here, so both relation cardinalities are
  // known exactly before the first insert — pre-size the tuple arrays and
  // owner tables once instead of growing them through ~20 doublings.
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  for (const Block& block : node.chain().blocks()) {
    for (const BitcoinTransaction& tx : block.transactions()) {
      num_inputs += tx.inputs().size();
      num_outputs += tx.outputs().size();
    }
  }
  StatusOr<std::size_t> txin_id = db->database().RelationId(kTxIn);
  StatusOr<std::size_t> txout_id = db->database().RelationId(kTxOut);
  if (!txin_id.ok()) return txin_id.status();
  if (!txout_id.ok()) return txout_id.status();
  db->database().relation(*txin_id).Reserve(num_inputs);
  db->database().relation(*txout_id).Reserve(num_outputs);

  for (const Block& block : node.chain().blocks()) {
    for (const BitcoinTransaction& tx : block.transactions()) {
      const Transaction relational = ToRelationalTransaction(tx);
      for (const Transaction::Item& item : relational.items()) {
        BCDB_RETURN_IF_ERROR(db->InsertCurrent(item.relation, item.tuple));
      }
    }
  }
  for (const BitcoinTransaction& tx : node.mempool().transactions()) {
    StatusOr<PendingId> id = db->AddPending(ToRelationalTransaction(tx));
    if (!id.ok()) return id.status();
  }
  return db;
}

}  // namespace bitcoin
}  // namespace bcdb
