#ifndef BCDB_BITCOIN_MINER_H_
#define BCDB_BITCOIN_MINER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bitcoin/chain.h"
#include "bitcoin/mempool.h"

namespace bcdb {
namespace bitcoin {

/// Block-construction policy for the simulated miner.
struct MinerPolicy {
  std::string miner_pubkey = "MinerPk";
  /// Upper bound on non-coinbase transactions per block (the paper's
  /// "blocks have a maximum length" knapsack constraint).
  std::size_t max_transactions = 4096;
  Satoshi block_reward = kBlockReward;
  /// Skip transactions paying less than this fee.
  Satoshi min_fee = 0;
};

/// Fee-greedy transaction selection: the intractable fee-maximization
/// problem (a dependency-and-conflict constrained knapsack, as the paper
/// notes) approximated the way real miners do — highest fee first, taking a
/// transaction only when its inputs are available (chain UTXO or an already
/// selected transaction) and it conflicts with nothing selected. Repeated
/// passes pick up dependants of transactions selected later.
class Miner {
 public:
  /// Builds (but does not append) the next block on `chain` from `mempool`.
  Block BuildBlock(const Blockchain& chain, const Mempool& mempool,
                   const MinerPolicy& policy) const;
};

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_MINER_H_
