#include "bitcoin/mempool.h"

#include "bitcoin/script.h"

#include <unordered_set>

namespace bcdb {
namespace bitcoin {

Status Mempool::Add(const Blockchain& chain, BitcoinTransaction tx) {
  if (by_txid_.count(tx.txid()) > 0) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  if (chain.ContainsTransaction(tx.txid())) {
    return Status::AlreadyExists("transaction already confirmed");
  }
  if (tx.is_coinbase()) {
    return Status::InvalidArgument("coinbases cannot be broadcast");
  }
  // Resolve each referenced output against the chain's UTXO set or the
  // outputs of mempool transactions (dependency chains).
  std::unordered_set<OutPoint, OutPointHash> spent_here;
  for (const TxInput& input : tx.inputs()) {
    if (!spent_here.insert(input.prev).second) {
      return Status::ConstraintViolation(
          "transaction spends the same output twice");
    }
    const Utxo* resolved = nullptr;
    Utxo from_mempool;
    auto it = chain.utxos().find(input.prev);
    if (it != chain.utxos().end()) {
      resolved = &it->second;
    } else if (const BitcoinTransaction* parent = Find(input.prev.txid)) {
      const std::size_t index = static_cast<std::size_t>(input.prev.index);
      if (index < 1 || index > parent->outputs().size()) {
        return Status::NotFound("referenced output serial out of range");
      }
      from_mempool = Utxo{parent->outputs()[index - 1].pubkey,
                          parent->outputs()[index - 1].amount};
      resolved = &from_mempool;
    } else {
      return Status::NotFound(
          "input references an output that is neither unspent on the chain "
          "nor created by a mempool transaction");
    }
    if (resolved->pubkey != input.pubkey || resolved->amount != input.amount) {
      return Status::ConstraintViolation(
          "input pubkey/amount does not match the referenced output");
    }
    if (!Script::Parse(input.pubkey).SatisfiedBy(input.signature)) {
      return Status::ConstraintViolation(
          "witness does not satisfy the output script of " + input.pubkey);
    }
  }
  if (tx.Fee() < 0) {
    return Status::ConstraintViolation("outputs exceed inputs");
  }
  by_txid_.emplace(tx.txid(), transactions_.size());
  transactions_.push_back(std::move(tx));
  return Status::OK();
}

const BitcoinTransaction* Mempool::Find(TxId txid) const {
  auto it = by_txid_.find(txid);
  return it == by_txid_.end() ? nullptr : &transactions_[it->second];
}

std::vector<std::pair<std::size_t, std::size_t>> Mempool::ConflictPairs()
    const {
  std::unordered_map<OutPoint, std::vector<std::size_t>, OutPointHash>
      spenders;
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    for (const TxInput& input : transactions_[i].inputs()) {
      spenders[input.prev].push_back(i);
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& [outpoint, txs] : spenders) {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (std::size_t j = i + 1; j < txs.size(); ++j) {
        pairs.emplace_back(txs[i], txs[j]);
      }
    }
  }
  return pairs;
}

std::size_t Mempool::RemoveConfirmedAndInvalid(const Blockchain& chain,
                                               const Block& block) {
  std::unordered_set<TxId> confirmed;
  for (const BitcoinTransaction& tx : block.transactions()) {
    confirmed.insert(tx.txid());
  }

  // Iteratively drop confirmed transactions and transactions whose inputs
  // can no longer be satisfied by chain UTXOs or surviving mempool parents
  // (a dropped parent invalidates its dependants transitively).
  std::vector<BitcoinTransaction> survivors = std::move(transactions_);
  transactions_.clear();
  by_txid_.clear();
  bool changed = true;
  std::size_t evicted = 0;
  while (changed) {
    changed = false;
    std::unordered_set<TxId> surviving_ids;
    for (const BitcoinTransaction& tx : survivors) {
      surviving_ids.insert(tx.txid());
    }
    std::vector<BitcoinTransaction> next;
    next.reserve(survivors.size());
    for (BitcoinTransaction& tx : survivors) {
      if (confirmed.count(tx.txid()) > 0) {
        ++evicted;
        changed = true;
        continue;
      }
      bool valid = true;
      for (const TxInput& input : tx.inputs()) {
        const bool on_chain = chain.utxos().count(input.prev) > 0;
        const bool from_mempool = surviving_ids.count(input.prev.txid) > 0;
        if (!on_chain && !from_mempool) {
          valid = false;
          break;
        }
      }
      if (!valid) {
        ++evicted;
        changed = true;
        continue;
      }
      next.push_back(std::move(tx));
    }
    survivors = std::move(next);
  }

  for (BitcoinTransaction& tx : survivors) {
    by_txid_.emplace(tx.txid(), transactions_.size());
    transactions_.push_back(std::move(tx));
  }
  return evicted;
}

ChainStats Mempool::Stats() const {
  ChainStats stats;
  for (const BitcoinTransaction& tx : transactions_) {
    stats.transactions += 1;
    stats.inputs += tx.inputs().size();
    stats.outputs += tx.outputs().size();
  }
  return stats;
}

}  // namespace bitcoin
}  // namespace bcdb
