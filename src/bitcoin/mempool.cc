#include "bitcoin/mempool.h"

#include "bitcoin/script.h"

#include <unordered_set>

namespace bcdb {
namespace bitcoin {

Status Mempool::Add(const Blockchain& chain, BitcoinTransaction tx) {
  if (by_txid_.count(tx.txid()) > 0) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  if (chain.ContainsTransaction(tx.txid())) {
    return Status::AlreadyExists("transaction already confirmed");
  }
  if (tx.is_coinbase()) {
    return Status::InvalidArgument("coinbases cannot be broadcast");
  }
  // Resolve each referenced output against the chain's UTXO set or the
  // outputs of mempool transactions (dependency chains).
  std::unordered_set<OutPoint, OutPointHash> spent_here;
  for (const TxInput& input : tx.inputs()) {
    if (!spent_here.insert(input.prev).second) {
      return Status::ConstraintViolation(
          "transaction spends the same output twice");
    }
    const Utxo* resolved = nullptr;
    Utxo from_mempool;
    auto it = chain.utxos().find(input.prev);
    if (it != chain.utxos().end()) {
      resolved = &it->second;
    } else if (const BitcoinTransaction* parent = Find(input.prev.txid)) {
      const std::size_t index = static_cast<std::size_t>(input.prev.index);
      if (index < 1 || index > parent->outputs().size()) {
        return Status::NotFound("referenced output serial out of range");
      }
      from_mempool = Utxo{parent->outputs()[index - 1].pubkey,
                          parent->outputs()[index - 1].amount};
      resolved = &from_mempool;
    } else {
      return Status::NotFound(
          "input references an output that is neither unspent on the chain "
          "nor created by a mempool transaction");
    }
    if (resolved->pubkey != input.pubkey || resolved->amount != input.amount) {
      return Status::ConstraintViolation(
          "input pubkey/amount does not match the referenced output");
    }
    if (!Script::Parse(input.pubkey).SatisfiedBy(input.signature)) {
      return Status::ConstraintViolation(
          "witness does not satisfy the output script of " + input.pubkey);
    }
  }
  if (tx.Fee() < 0) {
    return Status::ConstraintViolation("outputs exceed inputs");
  }
  by_txid_.emplace(tx.txid(), transactions_.size());
  transactions_.push_back(std::move(tx));
  return Status::OK();
}

const BitcoinTransaction* Mempool::Find(TxId txid) const {
  auto it = by_txid_.find(txid);
  return it == by_txid_.end() ? nullptr : &transactions_[it->second];
}

std::vector<std::pair<std::size_t, std::size_t>> Mempool::ConflictPairs()
    const {
  std::unordered_map<OutPoint, std::vector<std::size_t>, OutPointHash>
      spenders;
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    for (const TxInput& input : transactions_[i].inputs()) {
      spenders[input.prev].push_back(i);
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& [outpoint, txs] : spenders) {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (std::size_t j = i + 1; j < txs.size(); ++j) {
        pairs.emplace_back(txs[i], txs[j]);
      }
    }
  }
  return pairs;
}

std::vector<TxId> Mempool::EvictSet(const Blockchain& chain,
                                    const std::unordered_set<TxId>& victims) {
  // Iteratively drop the designated victims, transactions confirmed on the
  // active chain, and transactions whose inputs can no longer be satisfied
  // by chain UTXOs or surviving mempool parents (a dropped parent
  // invalidates its dependants transitively).
  std::vector<BitcoinTransaction> survivors = std::move(transactions_);
  transactions_.clear();
  by_txid_.clear();
  std::vector<TxId> evicted;
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<TxId> surviving_ids;
    for (const BitcoinTransaction& tx : survivors) {
      surviving_ids.insert(tx.txid());
    }
    std::vector<BitcoinTransaction> next;
    next.reserve(survivors.size());
    for (BitcoinTransaction& tx : survivors) {
      bool drop = victims.count(tx.txid()) > 0 ||
                  chain.ContainsTransaction(tx.txid());
      if (!drop) {
        for (const TxInput& input : tx.inputs()) {
          const bool on_chain = chain.utxos().count(input.prev) > 0;
          const bool from_mempool = surviving_ids.count(input.prev.txid) > 0;
          if (!on_chain && !from_mempool) {
            drop = true;
            break;
          }
        }
      }
      if (drop) {
        evicted.push_back(tx.txid());
        changed = true;
        continue;
      }
      next.push_back(std::move(tx));
    }
    survivors = std::move(next);
  }

  for (BitcoinTransaction& tx : survivors) {
    by_txid_.emplace(tx.txid(), transactions_.size());
    transactions_.push_back(std::move(tx));
  }
  return evicted;
}

std::size_t Mempool::RemoveConfirmedAndInvalid(const Blockchain& chain,
                                               const Block& block) {
  // `block` is already appended when this runs, so the chain's confirmation
  // index covers its transactions; the parameter is kept for callers that
  // want to assert as much.
  std::unordered_set<TxId> confirmed;
  for (const BitcoinTransaction& tx : block.transactions()) {
    confirmed.insert(tx.txid());
  }
  return EvictSet(chain, confirmed).size();
}

std::vector<TxId> Mempool::Resync(const Blockchain& chain) {
  return EvictSet(chain, {});
}

std::vector<TxId> Mempool::EvictToCapacity(const Blockchain& chain,
                                           std::size_t max_transactions) {
  std::vector<TxId> evicted;
  while (transactions_.size() > max_transactions) {
    const BitcoinTransaction* victim = nullptr;
    for (const BitcoinTransaction& tx : transactions_) {
      if (victim == nullptr || tx.Fee() < victim->Fee() ||
          (tx.Fee() == victim->Fee() && tx.txid() < victim->txid())) {
        victim = &tx;
      }
    }
    std::vector<TxId> round = EvictSet(chain, {victim->txid()});
    evicted.insert(evicted.end(), round.begin(), round.end());
  }
  return evicted;
}

StatusOr<std::vector<TxId>> Mempool::ReplaceByFee(const Blockchain& chain,
                                                  BitcoinTransaction tx) {
  std::unordered_set<OutPoint, OutPointHash> claimed;
  for (const TxInput& input : tx.inputs()) claimed.insert(input.prev);

  std::unordered_set<TxId> conflicts;
  Satoshi displaced_fees = 0;
  for (const BitcoinTransaction& resident : transactions_) {
    for (const TxInput& input : resident.inputs()) {
      if (claimed.count(input.prev) > 0) {
        if (conflicts.insert(resident.txid()).second) {
          displaced_fees += resident.Fee();
        }
        break;
      }
    }
  }
  if (!conflicts.empty() && tx.Fee() <= displaced_fees) {
    return Status::ConstraintViolation(
        "replacement fee " + std::to_string(tx.Fee()) +
        " does not exceed the " + std::to_string(displaced_fees) +
        " satoshi it displaces");
  }
  // Evict, then admit; a failed admission (e.g. the replacement depended on
  // an output of an evicted dependant) restores the pre-call pool.
  std::vector<BitcoinTransaction> pool_snapshot = transactions_;
  std::unordered_map<TxId, std::size_t> index_snapshot = by_txid_;
  std::vector<TxId> evicted = EvictSet(chain, conflicts);
  Status admitted = Add(chain, std::move(tx));
  if (!admitted.ok()) {
    transactions_ = std::move(pool_snapshot);
    by_txid_ = std::move(index_snapshot);
    return admitted;
  }
  return evicted;
}

ChainStats Mempool::Stats() const {
  ChainStats stats;
  for (const BitcoinTransaction& tx : transactions_) {
    stats.transactions += 1;
    stats.inputs += tx.inputs().size();
    stats.outputs += tx.outputs().size();
  }
  return stats;
}

}  // namespace bitcoin
}  // namespace bcdb
