#ifndef BCDB_BITCOIN_SERIALIZE_H_
#define BCDB_BITCOIN_SERIALIZE_H_

#include <string>

#include "bitcoin/node.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Line-oriented text snapshot of a node (chain + mempool), format `bcdb/1`:
///
///   bcdb-node v1
///   block <height>
///   tx
///   in <prevTxId> <prevSer> <pk> <amount> <sig>
///   out <pk> <amount>
///   endtx
///   endblock
///   mempool
///   tx ... endtx
///   end
///
/// Transaction and block ids are *recomputed* from content on load, and the
/// whole snapshot is replayed through full chain/mempool validation — a
/// snapshot that would not validate as a live history fails to load. Token
/// fields (pk, sig) must be whitespace-free (ours are by construction).
StatusOr<std::string> SerializeNode(const SimulatedNode& node);

/// Rebuilds a node from SerializeNode output (validating replay).
StatusOr<SimulatedNode> DeserializeNode(const std::string& data);

Status SaveNodeToFile(const SimulatedNode& node, const std::string& path);
StatusOr<SimulatedNode> LoadNodeFromFile(const std::string& path);

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_SERIALIZE_H_
