#ifndef BCDB_BITCOIN_GENERATOR_H_
#define BCDB_BITCOIN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitcoin/node.h"
#include "util/status.h"

namespace bcdb {
namespace bitcoin {

/// Parameters of the synthetic Bitcoin workload that replaces the paper's
/// real-node data feed. All randomness is seeded; the same parameters always
/// produce the same chain and mempool.
struct GeneratorParams {
  std::uint64_t seed = 1;

  // --- Current state R (the chain). ---
  std::size_t num_blocks = 200;
  std::size_t num_users = 50;
  /// Payments per block grow linearly with height (Bitcoin's early usage
  /// growth, which makes the paper's D100/D200/D300 superlinear in
  /// transactions): txs(h) = base + slope * h, capped.
  double txs_per_block_base = 2.0;
  double txs_per_block_slope = 0.02;
  std::size_t txs_per_block_cap = 60;

  // --- Pending transactions T (the mempool). ---
  /// Bulk random pending payments.
  std::size_t num_pending = 200;
  /// Double-spend pairs injected among the bulk pending payments — the
  /// paper's "contradictions" knob (each adds one conflicting transaction).
  std::size_t num_contradictions = 10;
  /// Length of the designated pending dependency chain (supports path
  /// constraints qp_i up to i = depth + 1).
  std::size_t pending_chain_depth = 6;
  /// Fan-out of the designated pending star (supports qr_i up to i = size).
  std::size_t star_size = 8;
  /// Pending payments to the designated rich address (for qa_n).
  std::size_t rich_payments = 10;

  Satoshi fee = 10'000;

  // --- Opt-in lifecycle churn (all off by default, so the long-standing
  // --- benchmark datasets are byte-identical with the base knobs alone). ---
  /// Number of bulk pending payments re-issued at a higher fee through
  /// replace-by-fee after the pending set is broadcast.
  std::size_t num_replacements = 0;
  /// If > 0, the mempool is evicted down to this many entries (lowest fee
  /// first, dependants cascading) after broadcast.
  std::size_t mempool_capacity = 0;
  /// If > 0, the generator then mines `reorg_depth` blocks confirming
  /// pending transactions and feeds the node a competing coinbase-only
  /// branch of `reorg_depth + 1` blocks forked from the pre-churn tip,
  /// forcing a heaviest-chain reorg that disconnects those confirmations
  /// back into the mempool.
  std::size_t reorg_depth = 0;
};

/// Landmarks in the generated data, used to pick constants that make the
/// benchmark constraints satisfied or unsatisfied on demand.
struct WorkloadMetadata {
  /// chain_pks[0] holds a confirmed output spent by pending chain tx C1,
  /// whose output goes to chain_pks[1], spent by C2, and so on.
  std::vector<std::string> chain_pks;
  /// Confirmed holder of `star_size` UTXOs, each spent by a distinct
  /// pending transaction paying a distinct address.
  std::string star_pk;
  /// Address receiving rich_base_total confirmed plus rich_pending_total
  /// across pending transactions.
  std::string rich_pk;
  Satoshi rich_base_total = 0;
  Satoshi rich_pending_total = 0;
  /// Addresses confirmed on-chain with no pending activity (for satisfied
  /// constraints) and one that appears nowhere.
  std::string quiet_pk;
  std::string quiet_pk2;
  std::string absent_pk = "NoSuchPk";

  /// Lifecycle churn tallies; non-zero only when the corresponding
  /// GeneratorParams knobs are set.
  std::size_t replaced_by_fee = 0;
  std::size_t evicted_by_capacity = 0;
  std::size_t disconnected_by_reorg = 0;
};

struct GeneratedWorkload {
  SimulatedNode node;
  WorkloadMetadata metadata;
};

/// Runs the simulated node through `params.num_blocks` blocks of organic
/// payment activity (plus a few setup blocks funding the landmark
/// addresses), then broadcasts the pending set: the designated chain, star
/// and rich payments, the bulk payments, and the contradiction double
/// spends. The mempool is left unmined — it is the paper's T.
StatusOr<GeneratedWorkload> GenerateWorkload(const GeneratorParams& params);

}  // namespace bitcoin
}  // namespace bcdb

#endif  // BCDB_BITCOIN_GENERATOR_H_
