#ifndef BCDB_BITCOIN_SHA256_H_
#define BCDB_BITCOIN_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bcdb {

/// FIPS 180-4 SHA-256, implemented from scratch (the hashing substrate for
/// transaction ids and block chaining; no external crypto dependency).
class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256() { Reset(); }

  void Reset();

  /// Absorbs `size` bytes.
  void Update(const void* data, std::size_t size);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// further use.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);

  /// Lowercase hex of a digest.
  static std::string ToHex(const Digest& digest);

  /// First 8 bytes of the digest as a non-negative 63-bit integer — the
  /// compact transaction-id form stored in the relational schema.
  static std::int64_t ToId63(const Digest& digest);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

}  // namespace bcdb

#endif  // BCDB_BITCOIN_SHA256_H_
