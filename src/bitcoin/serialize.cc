#include "bitcoin/serialize.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace bcdb {
namespace bitcoin {

namespace {

Status ValidateToken(const std::string& token) {
  if (token.empty()) {
    return Status::InvalidArgument("empty token cannot be serialized");
  }
  for (char c : token) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("token contains whitespace: '" + token +
                                     "'");
    }
  }
  return Status::OK();
}

Status WriteTransaction(const BitcoinTransaction& tx, std::ostringstream& out) {
  out << "tx\n";
  for (const TxInput& input : tx.inputs()) {
    BCDB_RETURN_IF_ERROR(ValidateToken(input.pubkey));
    BCDB_RETURN_IF_ERROR(ValidateToken(input.signature));
    out << "in " << input.prev.txid << ' ' << input.prev.index << ' '
        << input.pubkey << ' ' << input.amount << ' ' << input.signature
        << '\n';
  }
  for (const TxOutput& output : tx.outputs()) {
    BCDB_RETURN_IF_ERROR(ValidateToken(output.pubkey));
    out << "out " << output.pubkey << ' ' << output.amount << '\n';
  }
  out << "endtx\n";
  return Status::OK();
}

/// Streaming reader with one-line lookahead.
class LineReader {
 public:
  explicit LineReader(const std::string& data) : stream_(data) {}

  /// Next non-empty line, or empty string at end.
  std::string Next() {
    std::string line;
    while (std::getline(stream_, line)) {
      if (!line.empty()) return line;
    }
    return "";
  }

 private:
  std::istringstream stream_;
};

/// Parses the body lines of one transaction ("in ..."/"out ..." until
/// "endtx"); `first` is the line after "tx".
StatusOr<BitcoinTransaction> ReadTransaction(LineReader& reader) {
  std::vector<TxInput> inputs;
  std::vector<TxOutput> outputs;
  for (;;) {
    const std::string line = reader.Next();
    if (line.empty()) {
      return Status::InvalidArgument("unterminated transaction in snapshot");
    }
    if (line == "endtx") break;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "in") {
      TxInput input;
      fields >> input.prev.txid >> input.prev.index >> input.pubkey >>
          input.amount >> input.signature;
      if (fields.fail()) {
        return Status::InvalidArgument("malformed input line: " + line);
      }
      inputs.push_back(std::move(input));
    } else if (kind == "out") {
      TxOutput output;
      fields >> output.pubkey >> output.amount;
      if (fields.fail()) {
        return Status::InvalidArgument("malformed output line: " + line);
      }
      outputs.push_back(std::move(output));
    } else {
      return Status::InvalidArgument("unexpected line in transaction: " + line);
    }
  }
  return BitcoinTransaction(std::move(inputs), std::move(outputs));
}

}  // namespace

StatusOr<std::string> SerializeNode(const SimulatedNode& node) {
  std::ostringstream out;
  out << "bcdb-node v1\n";
  // Skip the genesis block (height 0, empty): it is implicit.
  const std::vector<Block>& blocks = node.chain().blocks();
  for (std::size_t h = 1; h < blocks.size(); ++h) {
    out << "block " << blocks[h].height() << '\n';
    for (const BitcoinTransaction& tx : blocks[h].transactions()) {
      if (tx.is_coinbase()) {
        // Coinbases need their height salt to reproduce the txid.
        BCDB_RETURN_IF_ERROR(ValidateToken(tx.outputs()[0].pubkey));
        out << "coinbase " << tx.outputs()[0].pubkey << ' '
            << tx.outputs()[0].amount << '\n';
        continue;
      }
      BCDB_RETURN_IF_ERROR(WriteTransaction(tx, out));
    }
    out << "endblock\n";
  }
  out << "mempool\n";
  for (const BitcoinTransaction& tx : node.mempool().transactions()) {
    BCDB_RETURN_IF_ERROR(WriteTransaction(tx, out));
  }
  out << "end\n";
  return out.str();
}

StatusOr<SimulatedNode> DeserializeNode(const std::string& data) {
  LineReader reader(data);
  if (reader.Next() != "bcdb-node v1") {
    return Status::InvalidArgument("not a bcdb-node v1 snapshot");
  }
  Blockchain chain;
  for (;;) {
    const std::string line = reader.Next();
    if (line == "mempool") break;
    if (line.rfind("block ", 0) != 0) {
      return Status::InvalidArgument("expected 'block', got: " + line);
    }
    std::vector<BitcoinTransaction> txs;
    for (;;) {
      const std::string inner = reader.Next();
      if (inner == "endblock") break;
      if (inner.rfind("coinbase ", 0) == 0) {
        std::istringstream fields(inner.substr(9));
        std::string pubkey;
        Satoshi amount = 0;
        fields >> pubkey >> amount;
        if (fields.fail()) {
          return Status::InvalidArgument("malformed coinbase: " + inner);
        }
        txs.push_back(BitcoinTransaction::Coinbase(pubkey, amount,
                                                   chain.height() + 1));
        continue;
      }
      if (inner != "tx") {
        return Status::InvalidArgument("expected 'tx' in block, got: " + inner);
      }
      StatusOr<BitcoinTransaction> tx = ReadTransaction(reader);
      if (!tx.ok()) return tx.status();
      txs.push_back(std::move(*tx));
    }
    BCDB_RETURN_IF_ERROR(chain.MineAndAppend(std::move(txs)));
  }
  SimulatedNode node(std::move(chain));
  for (;;) {
    const std::string line = reader.Next();
    if (line == "end") break;
    if (line != "tx") {
      return Status::InvalidArgument("expected 'tx' in mempool, got: " + line);
    }
    StatusOr<BitcoinTransaction> tx = ReadTransaction(reader);
    if (!tx.ok()) return tx.status();
    BCDB_RETURN_IF_ERROR(node.SubmitTransaction(std::move(*tx)));
  }
  return node;
}

Status SaveNodeToFile(const SimulatedNode& node, const std::string& path) {
  StatusOr<std::string> data = SerializeNode(node);
  if (!data.ok()) return data.status();
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Internal("cannot open " + path + " for writing");
  file << *data;
  return file.good() ? Status::OK()
                     : Status::Internal("short write to " + path);
}

StatusOr<SimulatedNode> LoadNodeFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream data;
  data << file.rdbuf();
  return DeserializeNode(data.str());
}

}  // namespace bitcoin
}  // namespace bcdb
