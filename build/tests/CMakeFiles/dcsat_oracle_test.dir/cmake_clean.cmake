file(REMOVE_RECURSE
  "CMakeFiles/dcsat_oracle_test.dir/dcsat_oracle_test.cc.o"
  "CMakeFiles/dcsat_oracle_test.dir/dcsat_oracle_test.cc.o.d"
  "dcsat_oracle_test"
  "dcsat_oracle_test.pdb"
  "dcsat_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsat_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
