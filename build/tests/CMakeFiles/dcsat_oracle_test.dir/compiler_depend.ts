# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dcsat_oracle_test.
