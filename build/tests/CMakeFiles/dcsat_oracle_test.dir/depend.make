# Empty dependencies file for dcsat_oracle_test.
# This may be replaced when dependencies are built.
