# Empty compiler generated dependencies file for possible_worlds_test.
# This may be replaced when dependencies are built.
