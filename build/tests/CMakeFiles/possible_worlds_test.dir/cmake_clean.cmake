file(REMOVE_RECURSE
  "CMakeFiles/possible_worlds_test.dir/possible_worlds_test.cc.o"
  "CMakeFiles/possible_worlds_test.dir/possible_worlds_test.cc.o.d"
  "possible_worlds_test"
  "possible_worlds_test.pdb"
  "possible_worlds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/possible_worlds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
