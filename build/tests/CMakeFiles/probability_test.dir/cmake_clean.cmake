file(REMOVE_RECURSE
  "CMakeFiles/probability_test.dir/probability_test.cc.o"
  "CMakeFiles/probability_test.dir/probability_test.cc.o.d"
  "probability_test"
  "probability_test.pdb"
  "probability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
