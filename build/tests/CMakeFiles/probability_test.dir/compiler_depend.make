# Empty compiler generated dependencies file for probability_test.
# This may be replaced when dependencies are built.
