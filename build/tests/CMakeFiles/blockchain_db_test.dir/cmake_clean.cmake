file(REMOVE_RECURSE
  "CMakeFiles/blockchain_db_test.dir/blockchain_db_test.cc.o"
  "CMakeFiles/blockchain_db_test.dir/blockchain_db_test.cc.o.d"
  "blockchain_db_test"
  "blockchain_db_test.pdb"
  "blockchain_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
