# Empty compiler generated dependencies file for blockchain_db_test.
# This may be replaced when dependencies are built.
