# Empty compiler generated dependencies file for sha256_test.
# This may be replaced when dependencies are built.
