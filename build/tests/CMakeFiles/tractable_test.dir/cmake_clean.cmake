file(REMOVE_RECURSE
  "CMakeFiles/tractable_test.dir/tractable_test.cc.o"
  "CMakeFiles/tractable_test.dir/tractable_test.cc.o.d"
  "tractable_test"
  "tractable_test.pdb"
  "tractable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tractable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
