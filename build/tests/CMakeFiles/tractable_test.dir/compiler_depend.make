# Empty compiler generated dependencies file for tractable_test.
# This may be replaced when dependencies are built.
