# Empty dependencies file for script_test.
# This may be replaced when dependencies are built.
