file(REMOVE_RECURSE
  "CMakeFiles/script_test.dir/script_test.cc.o"
  "CMakeFiles/script_test.dir/script_test.cc.o.d"
  "script_test"
  "script_test.pdb"
  "script_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
