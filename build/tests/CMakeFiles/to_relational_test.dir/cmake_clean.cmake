file(REMOVE_RECURSE
  "CMakeFiles/to_relational_test.dir/to_relational_test.cc.o"
  "CMakeFiles/to_relational_test.dir/to_relational_test.cc.o.d"
  "to_relational_test"
  "to_relational_test.pdb"
  "to_relational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
