# Empty dependencies file for to_relational_test.
# This may be replaced when dependencies are built.
