file(REMOVE_RECURSE
  "CMakeFiles/paper_properties_test.dir/paper_properties_test.cc.o"
  "CMakeFiles/paper_properties_test.dir/paper_properties_test.cc.o.d"
  "paper_properties_test"
  "paper_properties_test.pdb"
  "paper_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
