
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/schema_test.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/schema_test.dir/schema_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/bcdb_network.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bcdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/bcdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/bcdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/bcdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
