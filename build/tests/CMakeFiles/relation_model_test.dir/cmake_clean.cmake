file(REMOVE_RECURSE
  "CMakeFiles/relation_model_test.dir/relation_model_test.cc.o"
  "CMakeFiles/relation_model_test.dir/relation_model_test.cc.o.d"
  "relation_model_test"
  "relation_model_test.pdb"
  "relation_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
