file(REMOVE_RECURSE
  "CMakeFiles/dcsat_test.dir/dcsat_test.cc.o"
  "CMakeFiles/dcsat_test.dir/dcsat_test.cc.o.d"
  "dcsat_test"
  "dcsat_test.pdb"
  "dcsat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
