# Empty compiler generated dependencies file for dcsat_test.
# This may be replaced when dependencies are built.
