# Empty dependencies file for miner_test.
# This may be replaced when dependencies are built.
