# Empty compiler generated dependencies file for chain_test.
# This may be replaced when dependencies are built.
