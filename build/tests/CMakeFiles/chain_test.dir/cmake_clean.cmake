file(REMOVE_RECURSE
  "CMakeFiles/chain_test.dir/chain_test.cc.o"
  "CMakeFiles/chain_test.dir/chain_test.cc.o.d"
  "chain_test"
  "chain_test.pdb"
  "chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
