# Empty dependencies file for answers_test.
# This may be replaced when dependencies are built.
