file(REMOVE_RECURSE
  "CMakeFiles/answers_test.dir/answers_test.cc.o"
  "CMakeFiles/answers_test.dir/answers_test.cc.o.d"
  "answers_test"
  "answers_test.pdb"
  "answers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
