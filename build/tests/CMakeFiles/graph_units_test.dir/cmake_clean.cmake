file(REMOVE_RECURSE
  "CMakeFiles/graph_units_test.dir/graph_units_test.cc.o"
  "CMakeFiles/graph_units_test.dir/graph_units_test.cc.o.d"
  "graph_units_test"
  "graph_units_test.pdb"
  "graph_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
