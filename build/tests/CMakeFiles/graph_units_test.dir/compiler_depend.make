# Empty compiler generated dependencies file for graph_units_test.
# This may be replaced when dependencies are built.
