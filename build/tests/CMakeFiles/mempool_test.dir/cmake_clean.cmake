file(REMOVE_RECURSE
  "CMakeFiles/mempool_test.dir/mempool_test.cc.o"
  "CMakeFiles/mempool_test.dir/mempool_test.cc.o.d"
  "mempool_test"
  "mempool_test.pdb"
  "mempool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
