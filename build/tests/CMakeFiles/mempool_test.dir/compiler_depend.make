# Empty compiler generated dependencies file for mempool_test.
# This may be replaced when dependencies are built.
