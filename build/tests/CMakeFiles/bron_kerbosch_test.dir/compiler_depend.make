# Empty compiler generated dependencies file for bron_kerbosch_test.
# This may be replaced when dependencies are built.
