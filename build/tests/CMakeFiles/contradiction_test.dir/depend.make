# Empty dependencies file for contradiction_test.
# This may be replaced when dependencies are built.
