# Empty compiler generated dependencies file for bitcoin_tx_test.
# This may be replaced when dependencies are built.
