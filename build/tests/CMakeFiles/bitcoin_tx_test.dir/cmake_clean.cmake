file(REMOVE_RECURSE
  "CMakeFiles/bitcoin_tx_test.dir/bitcoin_tx_test.cc.o"
  "CMakeFiles/bitcoin_tx_test.dir/bitcoin_tx_test.cc.o.d"
  "bitcoin_tx_test"
  "bitcoin_tx_test.pdb"
  "bitcoin_tx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcoin_tx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
