# Empty compiler generated dependencies file for bcdb_shell.
# This may be replaced when dependencies are built.
