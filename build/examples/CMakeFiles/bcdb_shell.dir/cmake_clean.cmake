file(REMOVE_RECURSE
  "CMakeFiles/bcdb_shell.dir/bcdb_shell.cpp.o"
  "CMakeFiles/bcdb_shell.dir/bcdb_shell.cpp.o.d"
  "bcdb_shell"
  "bcdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
