# Empty compiler generated dependencies file for supply_chain.
# This may be replaced when dependencies are built.
