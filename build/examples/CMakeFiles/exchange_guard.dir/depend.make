# Empty dependencies file for exchange_guard.
# This may be replaced when dependencies are built.
