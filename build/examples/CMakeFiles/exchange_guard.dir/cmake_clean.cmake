file(REMOVE_RECURSE
  "CMakeFiles/exchange_guard.dir/exchange_guard.cpp.o"
  "CMakeFiles/exchange_guard.dir/exchange_guard.cpp.o.d"
  "exchange_guard"
  "exchange_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
