# Empty compiler generated dependencies file for mempool_monitor.
# This may be replaced when dependencies are built.
