file(REMOVE_RECURSE
  "CMakeFiles/mempool_monitor.dir/mempool_monitor.cpp.o"
  "CMakeFiles/mempool_monitor.dir/mempool_monitor.cpp.o.d"
  "mempool_monitor"
  "mempool_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
