# Empty dependencies file for escrow_settlement.
# This may be replaced when dependencies are built.
