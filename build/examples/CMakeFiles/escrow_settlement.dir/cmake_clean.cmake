file(REMOVE_RECURSE
  "CMakeFiles/escrow_settlement.dir/escrow_settlement.cpp.o"
  "CMakeFiles/escrow_settlement.dir/escrow_settlement.cpp.o.d"
  "escrow_settlement"
  "escrow_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escrow_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
