# Empty compiler generated dependencies file for network_divergence.
# This may be replaced when dependencies are built.
