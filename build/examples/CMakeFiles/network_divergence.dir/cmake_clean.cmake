file(REMOVE_RECURSE
  "CMakeFiles/network_divergence.dir/network_divergence.cpp.o"
  "CMakeFiles/network_divergence.dir/network_divergence.cpp.o.d"
  "network_divergence"
  "network_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
