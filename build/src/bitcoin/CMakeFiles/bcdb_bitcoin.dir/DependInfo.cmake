
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitcoin/block.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/block.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/block.cc.o.d"
  "/root/repo/src/bitcoin/chain.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/chain.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/chain.cc.o.d"
  "/root/repo/src/bitcoin/generator.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/generator.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/generator.cc.o.d"
  "/root/repo/src/bitcoin/mempool.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/mempool.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/mempool.cc.o.d"
  "/root/repo/src/bitcoin/miner.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/miner.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/miner.cc.o.d"
  "/root/repo/src/bitcoin/node.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/node.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/node.cc.o.d"
  "/root/repo/src/bitcoin/script.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/script.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/script.cc.o.d"
  "/root/repo/src/bitcoin/serialize.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/serialize.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/serialize.cc.o.d"
  "/root/repo/src/bitcoin/sha256.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/sha256.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/sha256.cc.o.d"
  "/root/repo/src/bitcoin/to_relational.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/to_relational.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/to_relational.cc.o.d"
  "/root/repo/src/bitcoin/transaction.cc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/transaction.cc.o" "gcc" "src/bitcoin/CMakeFiles/bcdb_bitcoin.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/bcdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/bcdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/bcdb_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
