file(REMOVE_RECURSE
  "CMakeFiles/bcdb_bitcoin.dir/block.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/block.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/chain.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/chain.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/generator.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/generator.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/mempool.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/mempool.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/miner.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/miner.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/node.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/node.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/script.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/script.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/serialize.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/serialize.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/sha256.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/sha256.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/to_relational.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/to_relational.cc.o.d"
  "CMakeFiles/bcdb_bitcoin.dir/transaction.cc.o"
  "CMakeFiles/bcdb_bitcoin.dir/transaction.cc.o.d"
  "libbcdb_bitcoin.a"
  "libbcdb_bitcoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_bitcoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
