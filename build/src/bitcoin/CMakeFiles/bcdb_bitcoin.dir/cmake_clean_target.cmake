file(REMOVE_RECURSE
  "libbcdb_bitcoin.a"
)
