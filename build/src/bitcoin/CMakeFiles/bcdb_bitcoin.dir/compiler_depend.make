# Empty compiler generated dependencies file for bcdb_bitcoin.
# This may be replaced when dependencies are built.
