# CMake generated Testfile for 
# Source directory: /root/repo/src/bitcoin
# Build directory: /root/repo/build/src/bitcoin
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
