
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/bcdb_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/bcdb_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/bcdb_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/bcdb_relational.dir/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/bcdb_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/bcdb_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/relational/CMakeFiles/bcdb_relational.dir/tuple.cc.o" "gcc" "src/relational/CMakeFiles/bcdb_relational.dir/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/bcdb_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/bcdb_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
