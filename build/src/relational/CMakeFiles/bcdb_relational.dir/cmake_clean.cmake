file(REMOVE_RECURSE
  "CMakeFiles/bcdb_relational.dir/database.cc.o"
  "CMakeFiles/bcdb_relational.dir/database.cc.o.d"
  "CMakeFiles/bcdb_relational.dir/relation.cc.o"
  "CMakeFiles/bcdb_relational.dir/relation.cc.o.d"
  "CMakeFiles/bcdb_relational.dir/schema.cc.o"
  "CMakeFiles/bcdb_relational.dir/schema.cc.o.d"
  "CMakeFiles/bcdb_relational.dir/tuple.cc.o"
  "CMakeFiles/bcdb_relational.dir/tuple.cc.o.d"
  "CMakeFiles/bcdb_relational.dir/value.cc.o"
  "CMakeFiles/bcdb_relational.dir/value.cc.o.d"
  "libbcdb_relational.a"
  "libbcdb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
