# Empty compiler generated dependencies file for bcdb_relational.
# This may be replaced when dependencies are built.
