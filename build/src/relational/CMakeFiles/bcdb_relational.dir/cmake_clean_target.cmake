file(REMOVE_RECURSE
  "libbcdb_relational.a"
)
