# Empty dependencies file for bcdb_constraints.
# This may be replaced when dependencies are built.
