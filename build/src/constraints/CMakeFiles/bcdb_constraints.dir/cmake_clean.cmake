file(REMOVE_RECURSE
  "CMakeFiles/bcdb_constraints.dir/checker.cc.o"
  "CMakeFiles/bcdb_constraints.dir/checker.cc.o.d"
  "CMakeFiles/bcdb_constraints.dir/constraint.cc.o"
  "CMakeFiles/bcdb_constraints.dir/constraint.cc.o.d"
  "libbcdb_constraints.a"
  "libbcdb_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
