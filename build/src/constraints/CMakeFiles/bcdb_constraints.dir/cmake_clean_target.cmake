file(REMOVE_RECURSE
  "libbcdb_constraints.a"
)
