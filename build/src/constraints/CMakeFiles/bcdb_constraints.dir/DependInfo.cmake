
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/checker.cc" "src/constraints/CMakeFiles/bcdb_constraints.dir/checker.cc.o" "gcc" "src/constraints/CMakeFiles/bcdb_constraints.dir/checker.cc.o.d"
  "/root/repo/src/constraints/constraint.cc" "src/constraints/CMakeFiles/bcdb_constraints.dir/constraint.cc.o" "gcc" "src/constraints/CMakeFiles/bcdb_constraints.dir/constraint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/bcdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
