# Empty dependencies file for bcdb_query.
# This may be replaced when dependencies are built.
