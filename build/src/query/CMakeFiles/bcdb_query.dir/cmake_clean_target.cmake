file(REMOVE_RECURSE
  "libbcdb_query.a"
)
