
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/analysis.cc" "src/query/CMakeFiles/bcdb_query.dir/analysis.cc.o" "gcc" "src/query/CMakeFiles/bcdb_query.dir/analysis.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/bcdb_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/bcdb_query.dir/ast.cc.o.d"
  "/root/repo/src/query/compiled_query.cc" "src/query/CMakeFiles/bcdb_query.dir/compiled_query.cc.o" "gcc" "src/query/CMakeFiles/bcdb_query.dir/compiled_query.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/bcdb_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/bcdb_query.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/bcdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/bcdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
