file(REMOVE_RECURSE
  "CMakeFiles/bcdb_query.dir/analysis.cc.o"
  "CMakeFiles/bcdb_query.dir/analysis.cc.o.d"
  "CMakeFiles/bcdb_query.dir/ast.cc.o"
  "CMakeFiles/bcdb_query.dir/ast.cc.o.d"
  "CMakeFiles/bcdb_query.dir/compiled_query.cc.o"
  "CMakeFiles/bcdb_query.dir/compiled_query.cc.o.d"
  "CMakeFiles/bcdb_query.dir/parser.cc.o"
  "CMakeFiles/bcdb_query.dir/parser.cc.o.d"
  "libbcdb_query.a"
  "libbcdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
