file(REMOVE_RECURSE
  "CMakeFiles/bcdb_core.dir/answers.cc.o"
  "CMakeFiles/bcdb_core.dir/answers.cc.o.d"
  "CMakeFiles/bcdb_core.dir/blockchain_db.cc.o"
  "CMakeFiles/bcdb_core.dir/blockchain_db.cc.o.d"
  "CMakeFiles/bcdb_core.dir/bron_kerbosch.cc.o"
  "CMakeFiles/bcdb_core.dir/bron_kerbosch.cc.o.d"
  "CMakeFiles/bcdb_core.dir/contradiction.cc.o"
  "CMakeFiles/bcdb_core.dir/contradiction.cc.o.d"
  "CMakeFiles/bcdb_core.dir/dcsat.cc.o"
  "CMakeFiles/bcdb_core.dir/dcsat.cc.o.d"
  "CMakeFiles/bcdb_core.dir/fd_graph.cc.o"
  "CMakeFiles/bcdb_core.dir/fd_graph.cc.o.d"
  "CMakeFiles/bcdb_core.dir/get_maximal.cc.o"
  "CMakeFiles/bcdb_core.dir/get_maximal.cc.o.d"
  "CMakeFiles/bcdb_core.dir/ind_graph.cc.o"
  "CMakeFiles/bcdb_core.dir/ind_graph.cc.o.d"
  "CMakeFiles/bcdb_core.dir/monitor.cc.o"
  "CMakeFiles/bcdb_core.dir/monitor.cc.o.d"
  "CMakeFiles/bcdb_core.dir/possible_worlds.cc.o"
  "CMakeFiles/bcdb_core.dir/possible_worlds.cc.o.d"
  "CMakeFiles/bcdb_core.dir/probability.cc.o"
  "CMakeFiles/bcdb_core.dir/probability.cc.o.d"
  "CMakeFiles/bcdb_core.dir/tractable.cc.o"
  "CMakeFiles/bcdb_core.dir/tractable.cc.o.d"
  "libbcdb_core.a"
  "libbcdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
