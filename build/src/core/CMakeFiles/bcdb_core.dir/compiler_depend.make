# Empty compiler generated dependencies file for bcdb_core.
# This may be replaced when dependencies are built.
