file(REMOVE_RECURSE
  "libbcdb_core.a"
)
