
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/answers.cc" "src/core/CMakeFiles/bcdb_core.dir/answers.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/answers.cc.o.d"
  "/root/repo/src/core/blockchain_db.cc" "src/core/CMakeFiles/bcdb_core.dir/blockchain_db.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/blockchain_db.cc.o.d"
  "/root/repo/src/core/bron_kerbosch.cc" "src/core/CMakeFiles/bcdb_core.dir/bron_kerbosch.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/bron_kerbosch.cc.o.d"
  "/root/repo/src/core/contradiction.cc" "src/core/CMakeFiles/bcdb_core.dir/contradiction.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/contradiction.cc.o.d"
  "/root/repo/src/core/dcsat.cc" "src/core/CMakeFiles/bcdb_core.dir/dcsat.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/dcsat.cc.o.d"
  "/root/repo/src/core/fd_graph.cc" "src/core/CMakeFiles/bcdb_core.dir/fd_graph.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/fd_graph.cc.o.d"
  "/root/repo/src/core/get_maximal.cc" "src/core/CMakeFiles/bcdb_core.dir/get_maximal.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/get_maximal.cc.o.d"
  "/root/repo/src/core/ind_graph.cc" "src/core/CMakeFiles/bcdb_core.dir/ind_graph.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/ind_graph.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/bcdb_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/possible_worlds.cc" "src/core/CMakeFiles/bcdb_core.dir/possible_worlds.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/possible_worlds.cc.o.d"
  "/root/repo/src/core/probability.cc" "src/core/CMakeFiles/bcdb_core.dir/probability.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/probability.cc.o.d"
  "/root/repo/src/core/tractable.cc" "src/core/CMakeFiles/bcdb_core.dir/tractable.cc.o" "gcc" "src/core/CMakeFiles/bcdb_core.dir/tractable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/bcdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/bcdb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/bcdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
