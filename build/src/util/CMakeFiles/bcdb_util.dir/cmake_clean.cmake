file(REMOVE_RECURSE
  "CMakeFiles/bcdb_util.dir/status.cc.o"
  "CMakeFiles/bcdb_util.dir/status.cc.o.d"
  "CMakeFiles/bcdb_util.dir/strings.cc.o"
  "CMakeFiles/bcdb_util.dir/strings.cc.o.d"
  "libbcdb_util.a"
  "libbcdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
