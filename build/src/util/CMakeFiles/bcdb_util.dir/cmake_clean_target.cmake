file(REMOVE_RECURSE
  "libbcdb_util.a"
)
