# Empty dependencies file for bcdb_util.
# This may be replaced when dependencies are built.
