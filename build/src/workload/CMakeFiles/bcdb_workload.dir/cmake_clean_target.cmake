file(REMOVE_RECURSE
  "libbcdb_workload.a"
)
