file(REMOVE_RECURSE
  "CMakeFiles/bcdb_workload.dir/constraints.cc.o"
  "CMakeFiles/bcdb_workload.dir/constraints.cc.o.d"
  "CMakeFiles/bcdb_workload.dir/datasets.cc.o"
  "CMakeFiles/bcdb_workload.dir/datasets.cc.o.d"
  "libbcdb_workload.a"
  "libbcdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
