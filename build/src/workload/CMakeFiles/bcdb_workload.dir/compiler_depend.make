# Empty compiler generated dependencies file for bcdb_workload.
# This may be replaced when dependencies are built.
