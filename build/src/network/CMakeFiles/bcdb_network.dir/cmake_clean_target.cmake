file(REMOVE_RECURSE
  "libbcdb_network.a"
)
