# Empty dependencies file for bcdb_network.
# This may be replaced when dependencies are built.
