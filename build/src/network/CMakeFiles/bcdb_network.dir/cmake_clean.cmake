file(REMOVE_RECURSE
  "CMakeFiles/bcdb_network.dir/simulator.cc.o"
  "CMakeFiles/bcdb_network.dir/simulator.cc.o.d"
  "libbcdb_network.a"
  "libbcdb_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcdb_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
