# Empty dependencies file for bench_fig6c_pending_sat.
# This may be replaced when dependencies are built.
