file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_pending_sat.dir/bench_fig6c_pending_sat.cc.o"
  "CMakeFiles/bench_fig6c_pending_sat.dir/bench_fig6c_pending_sat.cc.o.d"
  "bench_fig6c_pending_sat"
  "bench_fig6c_pending_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_pending_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
