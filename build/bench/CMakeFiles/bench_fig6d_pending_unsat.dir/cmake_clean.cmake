file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d_pending_unsat.dir/bench_fig6d_pending_unsat.cc.o"
  "CMakeFiles/bench_fig6d_pending_unsat.dir/bench_fig6d_pending_unsat.cc.o.d"
  "bench_fig6d_pending_unsat"
  "bench_fig6d_pending_unsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d_pending_unsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
