# Empty compiler generated dependencies file for bench_fig6d_pending_unsat.
# This may be replaced when dependencies are built.
