# Empty compiler generated dependencies file for bench_fig6f_contradictions_unsat.
# This may be replaced when dependencies are built.
