file(REMOVE_RECURSE
  "CMakeFiles/bench_exhaustive_blowup.dir/bench_exhaustive_blowup.cc.o"
  "CMakeFiles/bench_exhaustive_blowup.dir/bench_exhaustive_blowup.cc.o.d"
  "bench_exhaustive_blowup"
  "bench_exhaustive_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhaustive_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
