# Empty compiler generated dependencies file for bench_exhaustive_blowup.
# This may be replaced when dependencies are built.
