# Empty dependencies file for bench_fig6h_data_size.
# This may be replaced when dependencies are built.
