# Empty dependencies file for bench_fig6e_contradictions_sat.
# This may be replaced when dependencies are built.
