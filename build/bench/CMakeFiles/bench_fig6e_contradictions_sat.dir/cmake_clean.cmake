file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6e_contradictions_sat.dir/bench_fig6e_contradictions_sat.cc.o"
  "CMakeFiles/bench_fig6e_contradictions_sat.dir/bench_fig6e_contradictions_sat.cc.o.d"
  "bench_fig6e_contradictions_sat"
  "bench_fig6e_contradictions_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6e_contradictions_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
