# Empty dependencies file for bench_fig6b_query_types_unsat.
# This may be replaced when dependencies are built.
