# Empty dependencies file for bench_ablation_opts.
# This may be replaced when dependencies are built.
