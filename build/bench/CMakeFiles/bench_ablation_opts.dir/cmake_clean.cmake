file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_opts.dir/bench_ablation_opts.cc.o"
  "CMakeFiles/bench_ablation_opts.dir/bench_ablation_opts.cc.o.d"
  "bench_ablation_opts"
  "bench_ablation_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
