file(REMOVE_RECURSE
  "CMakeFiles/bench_network_gossip.dir/bench_network_gossip.cc.o"
  "CMakeFiles/bench_network_gossip.dir/bench_network_gossip.cc.o.d"
  "bench_network_gossip"
  "bench_network_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
