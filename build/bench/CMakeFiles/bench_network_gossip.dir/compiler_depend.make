# Empty compiler generated dependencies file for bench_network_gossip.
# This may be replaced when dependencies are built.
