# Empty compiler generated dependencies file for bench_fig6a_query_types_sat.
# This may be replaced when dependencies are built.
