# Empty dependencies file for bench_fig6g_query_size.
# This may be replaced when dependencies are built.
