file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6g_query_size.dir/bench_fig6g_query_size.cc.o"
  "CMakeFiles/bench_fig6g_query_size.dir/bench_fig6g_query_size.cc.o.d"
  "bench_fig6g_query_size"
  "bench_fig6g_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6g_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
