// bcdb_store — inspect, verify, recover, and import durable store
// directories.
//
// Usage:
//   bcdb_store inspect <dir>                 list segments/WAL files + headers
//   bcdb_store verify <dir>                  validate every checksum on disk
//   bcdb_store recover <dir>                 full recovery dry-run + summary
//   bcdb_store import <dir> --blocks=F [--mempool=F] [--checkpoint]
//                                            rebuild a store from block files
//
// All subcommands default to the built-in Bitcoin TxOut/TxIn catalog
// (the schema every persisted dataset in this repo uses). `inspect` and
// `verify` are read-only; `recover` truncates torn WAL tails exactly like
// a normal open would; `import` creates/overwrites a store at <dir>.
//
// Exit code: 0 on success, 1 on corruption/failure, 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bitcoin/block_file.h"
#include "bitcoin/to_relational.h"
#include "storage/durable_store.h"
#include "storage/record_codec.h"
#include "storage/segment.h"
#include "storage/wal.h"

namespace {

using bcdb::BlockchainDatabase;
using bcdb::ConstraintSet;
using bcdb::Status;
using bcdb::StatusOr;
using bcdb::bitcoin::MakeBitcoinCatalog;
using bcdb::storage::DurableStore;
using bcdb::storage::ScanWal;
using bcdb::storage::SegmentHeader;
using bcdb::storage::WalScan;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <inspect|verify|recover> <dir>\n"
      "       %s import <dir> --blocks=FILE [--mempool=FILE] [--checkpoint]\n"
      "\n"
      "  inspect   list checkpoint segments and WAL files with headers\n"
      "  verify    validate every header, block and record checksum\n"
      "  recover   dry-run a full recovery and print what it rebuilds\n"
      "  import    rebuild a store from Bitcoin-shaped block files\n",
      argv0, argv0);
  return 2;
}

StatusOr<std::unique_ptr<DurableStore>> OpenStore(const std::string& dir) {
  return DurableStore::Open(dir, MakeBitcoinCatalog());
}

int Inspect(const std::string& dir) {
  StatusOr<std::unique_ptr<DurableStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("store: %s\n", dir.c_str());
  const std::vector<std::string> checkpoints = (*store)->ListCheckpoints();
  std::printf("checkpoints: %zu\n", checkpoints.size());
  for (const std::string& path : checkpoints) {
    StatusOr<SegmentHeader> header =
        bcdb::storage::ReadSegmentHeader(path);
    if (!header.ok()) {
      std::printf("  %s  UNREADABLE (%s)\n", path.c_str(),
                  header.status().ToString().c_str());
      continue;
    }
    std::printf("  %s  seq=%" PRIu64 " version=%" PRIu64
                " payload=%" PRIu64 "B block=%" PRIu32
                "B fingerprint=%016" PRIx64 "\n",
                path.c_str(), header->checkpoint_seq, header->db_version,
                header->payload_size, header->block_size,
                header->schema_fingerprint);
  }
  const std::vector<std::string> wals = (*store)->ListWalFiles();
  std::printf("wal files: %zu\n", wals.size());
  for (const std::string& path : wals) {
    StatusOr<WalScan> scan = ScanWal(path);
    if (!scan.ok()) {
      std::printf("  %s  UNREADABLE (%s)\n", path.c_str(),
                  scan.status().ToString().c_str());
      continue;
    }
    std::printf("  %s  records=%zu valid_bytes=%" PRIu64 "%s\n", path.c_str(),
                scan->records.size(), scan->valid_prefix,
                scan->tail_corrupt ? " TORN-TAIL" : "");
  }
  return 0;
}

int Verify(const std::string& dir) {
  StatusOr<std::unique_ptr<DurableStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& path : (*store)->ListCheckpoints()) {
    const Status status = bcdb::storage::ReadSegment(path).status();
    std::printf("segment %s: %s\n", path.c_str(),
                status.ok() ? "OK" : status.ToString().c_str());
    if (!status.ok()) ++failures;
  }
  for (const std::string& path : (*store)->ListWalFiles()) {
    StatusOr<WalScan> scan = ScanWal(path);
    if (!scan.ok()) {
      std::printf("wal %s: %s\n", path.c_str(),
                  scan.status().ToString().c_str());
      ++failures;
    } else if (scan->tail_corrupt) {
      std::printf("wal %s: TORN TAIL after %zu records (%" PRIu64
                  " valid bytes)\n",
                  path.c_str(), scan->records.size(), scan->valid_prefix);
      ++failures;
    } else {
      std::printf("wal %s: OK (%zu records)\n", path.c_str(),
                  scan->records.size());
    }
  }
  return failures == 0 ? 0 : 1;
}

int Recover(const std::string& dir) {
  StatusOr<std::unique_ptr<DurableStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }
  StatusOr<ConstraintSet> constraints =
      bcdb::bitcoin::MakeBitcoinConstraints((*store)->catalog());
  if (!constraints.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 constraints.status().ToString().c_str());
    return 1;
  }
  StatusOr<BlockchainDatabase> db =
      (*store)->Recover(std::move(*constraints));
  if (!db.ok()) {
    std::fprintf(stderr, "recovery FAILED: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const bcdb::storage::DurableStoreStats& stats = (*store)->stats();
  std::printf("recovered: version=%" PRIu64 " end_seq=%" PRIu64
              " pending=%zu\n",
              db->version(), db->mutations().end_seq(), db->num_pending());
  for (std::size_t r = 0; r < db->database().num_relations(); ++r) {
    std::printf("  relation %s: %zu tuples\n",
                db->catalog().schema(r).name().c_str(),
                db->database().relation(r).num_tuples());
  }
  std::printf("from snapshot: %" PRIu64 " tuples; from wal: %" PRIu64
              " records%s\n",
              stats.recovered_snapshot_tuples, stats.recovered_wal_records,
              stats.degraded_recovery ? "; DEGRADED (some persisted state was unreadable)" : "");
  return 0;
}

int Import(const std::string& dir, const std::string& blocks,
           const std::string& mempool, bool checkpoint) {
  StatusOr<bcdb::bitcoin::SimulatedNode> node =
      bcdb::bitcoin::LoadNode({blocks}, mempool);
  if (!node.ok()) {
    std::fprintf(stderr, "error loading block files: %s\n",
                 node.status().ToString().c_str());
    return 1;
  }
  StatusOr<std::unique_ptr<DurableStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }
  StatusOr<BlockchainDatabase> bootstrap = (*store)->Recover(ConstraintSet{});
  if (!bootstrap.ok() || bootstrap->version() != 0) {
    std::fprintf(stderr, "error: %s is not an empty store directory\n",
                 dir.c_str());
    return 1;
  }
  StatusOr<BlockchainDatabase> db =
      bcdb::bitcoin::BuildBlockchainDatabase(*node, store->get());
  if (!db.ok()) {
    std::fprintf(stderr, "error building database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Status status = checkpoint ? (*store)->Checkpoint(*db) : (*store)->Sync();
  if (!status.ok() || !(*store)->status().ok()) {
    std::fprintf(stderr, "error persisting: %s\n",
                 (!status.ok() ? status : (*store)->status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const bcdb::storage::DurableStoreStats& stats = (*store)->stats();
  std::printf("imported: version=%" PRIu64 " pending=%zu wal_records=%" PRIu64
              " write_amp=%.2f%s\n",
              db->version(), db->num_pending(), stats.wal_records,
              stats.WriteAmplification(),
              checkpoint ? " (checkpointed)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string command = argv[1];
  const std::string dir = argv[2];
  if (command == "inspect" && argc == 3) return Inspect(dir);
  if (command == "verify" && argc == 3) return Verify(dir);
  if (command == "recover" && argc == 3) return Recover(dir);
  if (command == "import") {
    std::string blocks;
    std::string mempool;
    bool checkpoint = false;
    for (int i = 3; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--blocks=", 9) == 0) {
        blocks = arg + 9;
      } else if (std::strncmp(arg, "--mempool=", 10) == 0) {
        mempool = arg + 10;
      } else if (std::strcmp(arg, "--checkpoint") == 0) {
        checkpoint = true;
      } else {
        return Usage(argv[0]);
      }
    }
    if (blocks.empty()) return Usage(argv[0]);
    return Import(dir, blocks, mempool, checkpoint);
  }
  return Usage(argv[0]);
}
