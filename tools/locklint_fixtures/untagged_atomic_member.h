// Locklint fixture: MUST fail with [untagged-atomic].
// A std::atomic member with no BCDB_LOCK_FREE("...") rationale — lock-free
// state is allowed, but only when it documents its publication protocol.
#ifndef BCDB_TOOLS_LOCKLINT_FIXTURES_UNTAGGED_ATOMIC_MEMBER_H_
#define BCDB_TOOLS_LOCKLINT_FIXTURES_UNTAGGED_ATOMIC_MEMBER_H_

#include <atomic>

namespace bcdb_fixture {

class UntaggedAtomicMember {
 public:
  void Bump() { count_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<int> count_{0};
};

}  // namespace bcdb_fixture

#endif  // BCDB_TOOLS_LOCKLINT_FIXTURES_UNTAGGED_ATOMIC_MEMBER_H_
