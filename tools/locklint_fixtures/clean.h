// Locklint fixture: MUST pass — the blessed shapes, all three rules.
// A ranked annotated Mutex, a tagged atomic, and one sanctioned raw-token
// escape hatch.
#ifndef BCDB_TOOLS_LOCKLINT_FIXTURES_CLEAN_H_
#define BCDB_TOOLS_LOCKLINT_FIXTURES_CLEAN_H_

#include <atomic>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcdb_fixture {

class Clean {
 public:
  void Touch() {
    bcdb::MutexLock lock(mu_);
    ++count_;
  }
  void Bump() { hits_.fetch_add(1, std::memory_order_relaxed); }

 private:
  bcdb::Mutex mu_{bcdb::LockRank::kValuePool};
  int count_ BCDB_GUARDED_BY(mu_) = 0;
  std::atomic<int> hits_ BCDB_LOCK_FREE(
      "monotonic counter, relaxed increments, read only for reporting"){0};
  // A deliberate mention of std::mutex for documentation purposes is fine
  // when escaped:
  using Banned = int;  // would be std::mutex in real code  locklint:allow-raw
};

}  // namespace bcdb_fixture

#endif  // BCDB_TOOLS_LOCKLINT_FIXTURES_CLEAN_H_
