// Locklint fixture: MUST fail with [unranked-mutex].
// An annotated bcdb::Mutex member that never names its LockRank — the
// runtime hierarchy checker cannot place it in the acquisition order.
#ifndef BCDB_TOOLS_LOCKLINT_FIXTURES_UNRANKED_MUTEX_MEMBER_H_
#define BCDB_TOOLS_LOCKLINT_FIXTURES_UNRANKED_MUTEX_MEMBER_H_

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcdb_fixture {

class UnrankedMutexMember {
 public:
  void Touch() {
    bcdb::MutexLock lock(mu_);
    ++count_;
  }

 private:
  bcdb::Mutex mu_;
  int count_ BCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace bcdb_fixture

#endif  // BCDB_TOOLS_LOCKLINT_FIXTURES_UNRANKED_MUTEX_MEMBER_H_
