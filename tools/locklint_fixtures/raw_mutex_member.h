// Locklint fixture: MUST fail with [raw-primitive].
// A class holding a raw std::mutex member instead of the annotated
// bcdb::Mutex wrapper — invisible to clang's thread-safety analysis.
#ifndef BCDB_TOOLS_LOCKLINT_FIXTURES_RAW_MUTEX_MEMBER_H_
#define BCDB_TOOLS_LOCKLINT_FIXTURES_RAW_MUTEX_MEMBER_H_

#include <mutex>

namespace bcdb_fixture {

class RawMutexMember {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace bcdb_fixture

#endif  // BCDB_TOOLS_LOCKLINT_FIXTURES_RAW_MUTEX_MEMBER_H_
