// bcdb_locklint — source-level lock-discipline checker.
//
// The thread-safety annotations (util/thread_annotations.h) only bite when
// the code actually uses the annotated wrappers; a raw std::mutex member
// slips past clang's analysis entirely because nothing marks it a
// capability. This linter closes that hole with three textual rules,
// applied to every .h/.cc/.cpp under the directories given on the command
// line (comments and string literals stripped first):
//
//   1. Raw synchronization primitives (std::mutex, std::shared_mutex,
//      std::recursive_mutex, std::condition_variable[_any], std::lock_guard,
//      std::unique_lock, std::scoped_lock, std::shared_lock) are forbidden
//      outside the wrapper implementation (util/mutex.h, util/mutex.cc,
//      util/thread_annotations.h).
//   2. Every `std::atomic` declaration must carry a BCDB_LOCK_FREE("...")
//      tag on the same or an adjacent line — intentionally lock-free state
//      must say so, with its protocol rationale, where it is declared.
//   3. Every bcdb `Mutex` / `SharedMutex` member declaration must name its
//      LockRank on the same or an adjacent line — a lock with no place in
//      the hierarchy defeats the runtime order checker.
//
// A line whose trailing comment contains `locklint:allow-raw` is exempt
// from all three rules (the escape hatch for code that must talk about
// the primitives themselves).
//
// Usage: bcdb_locklint <dir-or-file>...   (exit 0 clean, 1 violations,
//                                          2 usage/IO error)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string detail;
};

/// Whether `path` implements the annotated wrappers themselves (the only
/// place raw primitives may live).
bool IsWrapperSource(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return path.size() >= n &&
           path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with("util/mutex.h") || ends_with("util/mutex.cc") ||
         ends_with("util/thread_annotations.h");
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comments and string/char literals with spaces, preserving line
/// structure so the token rules below cannot fire inside either. Line
/// comments' text is captured separately (one entry per line) so the
/// `locklint:allow-raw` escape can be honored after stripping.
std::string StripCommentsAndStrings(const std::string& text,
                                    std::vector<std::string>* comments) {
  std::string out;
  out.reserve(text.size());
  std::string current_comment;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // Raw-string terminator, e.g. `)foo"`.
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      comments->push_back(current_comment);
      current_comment.clear();
      if (state == State::kLineComment) state = State::kCode;
      out += '\n';
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   !(i > 0 && IsIdentChar(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t paren = text.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_delim = ")" + text.substr(i + 2, paren - (i + 2)) + "\"";
          state = State::kRawString;
          for (std::size_t j = i; j <= paren; ++j) out += ' ';
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          // The ident check skips digit separators (1'000'000).
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        current_comment += c;
        out += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          out += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          out += ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
        } else {
          out += ' ';
        }
        break;
    }
  }
  comments->push_back(current_comment);
  return out;
}

/// True if `line` contains `needle` ("std::mutex", "std::atomic", ...)
/// bounded by non-identifier characters: `xstd::mutex`, `std::mutexes`,
/// and `std::atomic_thread_fence` do not match.
bool ContainsQualified(const std::string& line, const std::string& needle) {
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    const bool before_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool after_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (before_ok && after_ok) return true;
    pos += needle.size();
  }
  return false;
}

/// True if `line` declares owning `std::atomic<...>` storage. References
/// and pointers (`std::atomic<T>&` parameters) are borrows of someone
/// else's tagged member and do not match.
bool IsAtomicDecl(const std::string& line) {
  std::size_t pos = 0;
  const std::string needle = "std::atomic";
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    const bool before_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    std::size_t end = pos + needle.size();
    if (end < line.size() && IsIdentChar(line[end])) {  // atomic_flag etc.
      pos = end;
      continue;
    }
    if (!before_ok) {
      pos = end;
      continue;
    }
    // Skip the template argument list, if present on this line.
    if (end < line.size() && line[end] == '<') {
      int depth = 0;
      while (end < line.size()) {
        if (line[end] == '<') ++depth;
        if (line[end] == '>' && --depth == 0) {
          ++end;
          break;
        }
        ++end;
      }
    }
    while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) {
      ++end;
    }
    if (end < line.size() && (line[end] == '&' || line[end] == '*')) {
      pos = end;  // A borrow, not owning storage.
      continue;
    }
    return true;
  }
  return false;
}

/// Detects a bcdb `Mutex foo_` / `SharedMutex foo_` member/variable
/// declaration: the wrapper type name (optionally `bcdb::`-qualified) at a
/// token boundary, followed by whitespace and an identifier. Borrows
/// (`Mutex&`, `Mutex*`) do not match — the rank lives at the owning
/// declaration, not at every parameter that borrows the lock.
bool IsBcdbMutexDecl(const std::string& line) {
  for (const char* type : {"SharedMutex", "Mutex"}) {
    const std::size_t n = std::strlen(type);
    std::size_t pos = 0;
    while ((pos = line.find(type, pos)) != std::string::npos) {
      const char before = pos > 0 ? line[pos - 1] : ' ';
      if (IsIdentChar(before)) {  // SharedMutex's "Mutex", FooMutex, ...
        pos += n;
        continue;
      }
      if (before == ':') {  // Accept bcdb::Mutex; reject other qualifiers.
        const std::size_t q = line.rfind("bcdb::", pos);
        if (q == std::string::npos || q + 6 != pos) {
          pos += n;
          continue;
        }
      }
      std::size_t after = pos + n;
      if (after < line.size() && IsIdentChar(line[after])) {  // MutexLock
        pos += n;
        continue;
      }
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
      if (after > pos + n && after < line.size() &&
          (std::isalpha(static_cast<unsigned char>(line[after])) ||
           line[after] == '_')) {
        return true;
      }
      pos += n;
    }
  }
  return false;
}

void LintFile(const std::string& path, std::vector<Violation>* out) {
  std::ifstream in(path);
  if (!in) {
    out->push_back({path, 0, "io", "cannot open file"});
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<std::string> comments;
  const std::string stripped = StripCommentsAndStrings(buffer.str(), &comments);

  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(stripped);
  while (std::getline(stream, line)) lines.push_back(line);

  auto allowed = [&comments](std::size_t idx) {
    return idx < comments.size() &&
           comments[idx].find("locklint:allow-raw") != std::string::npos;
  };
  // Declarations wrap: accept the tag on the same line, the line before,
  // or the line after.
  auto near_find = [&lines](std::size_t idx, const char* needle) {
    if (lines[idx].find(needle) != std::string::npos) return true;
    if (idx > 0 && lines[idx - 1].find(needle) != std::string::npos) {
      return true;
    }
    return idx + 1 < lines.size() &&
           lines[idx + 1].find(needle) != std::string::npos;
  };

  if (IsWrapperSource(path)) return;  // The wrappers hold the raw pieces.
  static const char* kRawPrimitives[] = {
      "std::mutex",
      "std::shared_mutex",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::recursive_timed_mutex",
      "std::shared_timed_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
      "std::lock_guard",
      "std::unique_lock",
      "std::scoped_lock",
      "std::shared_lock",
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (allowed(i)) continue;
    const std::string& l = lines[i];
    for (const char* prim : kRawPrimitives) {
      if (ContainsQualified(l, prim)) {
        out->push_back(
            {path, i + 1, "raw-primitive",
             std::string(prim) +
                 " outside util/mutex.h — use the annotated "
                 "bcdb::Mutex/MutexLock/CondVar wrappers"});
        break;
      }
    }
    if (IsAtomicDecl(l) && !near_find(i, "BCDB_LOCK_FREE")) {
      out->push_back(
          {path, i + 1, "untagged-atomic",
           "std::atomic declaration without a BCDB_LOCK_FREE(\"...\") "
           "rationale tag"});
    }
    if (IsBcdbMutexDecl(l) && !near_find(i, "LockRank::")) {
      out->push_back(
          {path, i + 1, "unranked-mutex",
           "bcdb Mutex/SharedMutex member without a LockRank — every lock "
           "must name its place in the hierarchy (DESIGN.md section 16)"});
    }
  }
}

bool HasSourceSuffix(const std::string& name) {
  for (const char* suffix : {".h", ".cc", ".cpp", ".hpp"}) {
    const std::size_t n = std::strlen(suffix);
    if (name.size() >= n &&
        name.compare(name.size() - n, n, suffix) == 0) {
      return true;
    }
  }
  return false;
}

void Walk(const std::string& path, std::vector<Violation>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    out->push_back({path, 0, "io", "cannot stat path"});
    return;
  }
  if (S_ISREG(st.st_mode)) {
    if (HasSourceSuffix(path)) LintFile(path, out);
    return;
  }
  if (!S_ISDIR(st.st_mode)) return;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    out->push_back({path, 0, "io", "cannot open directory"});
    return;
  }
  std::vector<std::string> children;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    children.push_back(path + "/" + name);
  }
  ::closedir(dir);
  std::sort(children.begin(), children.end());  // Deterministic output.
  for (const std::string& child : children) Walk(child, out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::vector<Violation> violations;
  for (int i = 1; i < argc; ++i) Walk(argv[i], &violations);
  bool io_error = false;
  for (const Violation& v : violations) {
    if (v.rule == "io") io_error = true;
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.detail.c_str());
  }
  if (io_error) return 2;
  if (!violations.empty()) {
    std::fprintf(stderr, "bcdb_locklint: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  return 0;
}
