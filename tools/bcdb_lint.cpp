// bcdb_lint — batch static analysis for denial-constraint files.
//
// Usage:
//   bcdb_lint --schema=examples/constraints/marketplace.schema file.dc ...
//   bcdb_lint --schema=bitcoin --format=json file.dc
//
// A .dc file is line-oriented: `#` starts a comment, every remaining
// non-empty line is one denial constraint in the parser's datalog-ish
// syntax. The exit code is the number of files containing at least one
// error-severity diagnostic (0 = everything clean), so the tool slots
// directly into CI.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/lint_format.h"
#include "analysis/schema_text.h"
#include "bitcoin/to_relational.h"
#include "query/template.h"
#include "relational/database.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --schema=<file|bitcoin> [--format=text|json] [--quiet] "
      "<constraints.dc> [more.dc ...]\n"
      "\n"
      "  --schema=FILE     schema description (relation/key/fd/ind lines)\n"
      "  --schema=bitcoin  the built-in Bitcoin TxOut/TxIn schema\n"
      "  --format=text     compiler-style diagnostics (default)\n"
      "  --format=json     one JSON document per file, for CI consumption\n"
      "  --quiet           errors and warnings only (text format)\n",
      argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

struct LintStats {
  std::size_t constraints = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

/// A `$` outside a string literal marks the line as a constraint template
/// ($name placeholders), linted class-level via AnalyzeTemplate.
bool LooksLikeTemplate(const std::string& text) {
  bool in_string = false;
  for (const char ch : text) {
    if (ch == '\'') {
      in_string = !in_string;
    } else if (ch == '$' && !in_string) {
      return true;
    }
  }
  return false;
}

/// Lints one .dc file against the schema; prints per the chosen format and
/// accumulates totals.
bool LintFile(const std::string& path, const bcdb::Database& db,
              const bcdb::ConstraintSet& constraints, bool json, bool quiet,
              LintStats& stats) {
  std::string text;
  if (!ReadFile(path, text)) {
    std::fprintf(stderr, "bcdb_lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<bcdb::LintedConstraint> linted;
  std::size_t line_number = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    bcdb::LintedConstraint c;
    c.text = line.substr(start, end - start + 1);
    c.line = line_number;
    if (LooksLikeTemplate(c.text)) {
      auto tmpl = bcdb::ConstraintTemplate::Parse(c.text);
      if (tmpl.ok()) {
        bcdb::TemplateAnalysis analysis =
            bcdb::AnalyzeTemplate(*tmpl, db, constraints);
        c.is_template = true;
        c.num_params = tmpl->num_params();
        c.batchable = analysis.batchable;
        c.class_key = std::move(analysis.class_key);
        c.report = std::move(analysis.report);
      } else {
        // Syntactically broken template: the text analyzer's parse
        // diagnostic (with its span) is strictly better than a bare Status.
        c.report = bcdb::AnalyzeConstraintText(c.text, db, constraints);
      }
    } else {
      c.report = bcdb::AnalyzeConstraintText(c.text, db, constraints);
    }
    linted.push_back(std::move(c));
  }

  bool file_has_error = false;
  for (const bcdb::LintedConstraint& c : linted) {
    ++stats.constraints;
    const std::size_t errors = c.report.CountSeverity(bcdb::Severity::kError);
    stats.errors += errors;
    stats.warnings += c.report.CountSeverity(bcdb::Severity::kWarning);
    if (errors > 0) file_has_error = true;
  }

  if (json) {
    std::fputs(bcdb::FormatFileJson(path, linted).c_str(), stdout);
  } else {
    for (const bcdb::LintedConstraint& c : linted) {
      std::string rendered;
      if (quiet) {
        bcdb::LintedConstraint filtered = c;
        filtered.report.diagnostics.clear();
        for (const bcdb::Diagnostic& d : c.report.diagnostics) {
          if (d.severity != bcdb::Severity::kNote) {
            filtered.report.diagnostics.push_back(d);
          }
        }
        if (filtered.report.diagnostics.empty()) continue;
        rendered = bcdb::FormatConstraintText(path, filtered);
      } else {
        rendered = bcdb::FormatConstraintText(path, c);
      }
      std::fputs(rendered.c_str(), stdout);
    }
  }
  return !file_has_error;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_arg;
  bool json = false;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--schema=", 9) == 0) {
      schema_arg = arg + 9;
    } else if (std::strcmp(arg, "--format=json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--format=text") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "bcdb_lint: unknown flag %s\n", arg);
      return Usage(argv[0]);
    } else {
      files.emplace_back(arg);
    }
  }
  if (schema_arg.empty() || files.empty()) return Usage(argv[0]);

  bcdb::Catalog catalog;
  bcdb::ConstraintSet constraints;
  if (schema_arg == "bitcoin") {
    catalog = bcdb::bitcoin::MakeBitcoinCatalog();
    auto built = bcdb::bitcoin::MakeBitcoinConstraints(catalog);
    if (!built.ok()) {
      std::fprintf(stderr, "bcdb_lint: %s\n",
                   built.status().ToString().c_str());
      return 2;
    }
    constraints = *std::move(built);
  } else {
    std::string schema_text;
    if (!ReadFile(schema_arg, schema_text)) {
      std::fprintf(stderr, "bcdb_lint: cannot read schema %s\n",
                   schema_arg.c_str());
      return 2;
    }
    auto parsed = bcdb::ParseSchemaText(schema_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bcdb_lint: %s: %s\n", schema_arg.c_str(),
                   parsed.status().message().c_str());
      return 2;
    }
    catalog = std::move(parsed->catalog);
    constraints = std::move(parsed->constraints);
  }

  // An empty database over the catalog: lint analyses schema conformance and
  // classification; kTriviallyViolated only fires on a live database.
  bcdb::Database db(catalog);

  int failing_files = 0;
  LintStats stats;
  for (const std::string& file : files) {
    if (!LintFile(file, db, constraints, json, quiet, stats)) ++failing_files;
  }
  if (!json) {
    std::fprintf(stderr, "bcdb_lint: %zu constraints, %zu errors, %zu warnings\n",
                 stats.constraints, stats.errors, stats.warnings);
  }
  return failing_files;
}
