// Figure 6f: execution time of qp3 (unsatisfied) as the number of injected
// contradictions varies over 10..50. The paper observes the *inverse*
// trend: fewer contradictions mean larger cliques, hence larger maximal
// worlds to materialize and evaluate, so runtime peaks at the low end.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  std::vector<std::unique_ptr<PreparedDataset>> datasets;
  for (std::size_t contradictions : {10u, 20u, 30u, 40u, 50u}) {
    datasets.push_back(
        Prepare(WithContradictions(DefaultDataset(), contradictions)));
    PreparedDataset* data = datasets.back().get();
    const std::string suffix =
        "/contradictions:" + std::to_string(contradictions);
    RegisterDcSat("Fig6f/qp3/Naive" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), NaiveOptions());
    RegisterDcSat("Fig6f/qp3/Opt" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), OptOptions());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
