// Figure 6h: execution time of qp3 (unsatisfied) across the three datasets
// S100 / S200 / S300, each with roughly 3000 pending transactions (the
// paper fixes pending at ~3000 for this sweep). Expected shape: runtime
// grows only moderately with |R| — the current state is index-probed, not
// scanned — and OptDCSat stays well below NaiveDCSat.

// Results are also written as google-benchmark JSON to
// BENCH_fig6h_data_size.json for machine-readable perf tracking.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  std::vector<std::unique_ptr<PreparedDataset>> datasets;
  for (const DatasetSpec& base : AllDatasets()) {
    // "Each dataset contains approximately 3000 pending transactions."
    datasets.push_back(Prepare(WithPendingTotal(base, 3000)));
    PreparedDataset* data = datasets.back().get();
    const std::string suffix = "/data:" + base.name;
    RegisterDcSat("Fig6h/qp3/Naive" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), NaiveOptions());
    RegisterDcSat("Fig6h/qp3/Opt" + suffix, data->engine.get(),
                  PathUnsat(data->metadata, 3), OptOptions());
  }

  std::vector<char*> args =
      WithDefaultJsonOut(&argc, argv, "BENCH_fig6h_data_size.json");
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
