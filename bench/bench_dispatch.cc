// Per-class check latency under classified dispatch.
//
// The static analyzer (src/analysis) places every denial constraint in a
// tractability class once, at registration time; DcSatEngine::Check(q,
// report) then routes on the cached class instead of re-probing the
// constraint set and query shape on every call. This bench measures what
// that buys per class: for each tractability class and pending-set size it
// times the classified check against the legacy runtime-gated check (and
// records the one-off Analyze cost the classification paid up front).
//
// Writes BENCH_dispatch.json. --smoke shrinks the sweep for CI.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bench_common.h"
#include "core/dcsat.h"
#include "query/parser.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace bcdb;

/// R(a, b) / S(x, y nonneg) with the requested constraint classes and
/// `pending` single-tuple transactions over a domain wide enough to keep
/// key conflicts sparse (the bench measures dispatch, not search blowup).
BlockchainDatabase MakeDb(std::uint64_t seed, bool keys, bool inds,
                          std::size_t pending) {
  Xoshiro256 rng(seed);
  Catalog catalog;
  if (!catalog
           .AddRelation(RelationSchema(
               "R", {Attribute{"a", ValueType::kInt, false},
                     Attribute{"b", ValueType::kInt, false}}))
           .ok()) {
    std::abort();
  }
  if (!catalog
           .AddRelation(RelationSchema(
               "S", {Attribute{"x", ValueType::kInt, false},
                     Attribute{"y", ValueType::kInt, true}}))
           .ok()) {
    std::abort();
  }
  ConstraintSet constraints;
  if (keys) {
    constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
    constraints.AddFd(
        *FunctionalDependency::Create(catalog, "S", {"x"}, {"y"}));
  }
  if (inds) {
    constraints.AddInd(
        *InclusionDependency::Create(catalog, "S", {"x"}, "R", {"a"}));
  }
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  if (!db.ok()) std::abort();
  const std::int64_t domain = static_cast<std::int64_t>(pending) * 4;
  for (std::size_t t = 0; t < pending; ++t) {
    Transaction txn("P" + std::to_string(t));
    if (rng.NextBool(0.5)) {
      txn.Add("R", Tuple({Value::Int(rng.NextInRange(0, domain)),
                          Value::Int(rng.NextInRange(0, 3))}));
    } else {
      txn.Add("S", Tuple({Value::Int(rng.NextInRange(0, domain)),
                          Value::Int(rng.NextInRange(0, 3))}));
    }
    if (!db->AddPending(txn).ok()) std::abort();
  }
  return std::move(*db);
}

struct Scenario {
  const char* label;  // Expected class, for the report.
  const char* query;
  bool keys;
  bool inds;
};

// One scenario per tractability class (kTriviallyViolated is data-dependent
// and never produced by Analyze, which probes classes data-independently).
constexpr Scenario kScenarios[] = {
    {"ptime-fd-only", "q() :- R(x, y), S(x, y)", true, false},
    {"ptime-ind-only", "q() :- S(x, y), R(x, z)", false, true},
    {"conp-mixed", "q() :- R(x, 0), R(x, 1)", true, true},
    {"trivially-unsat", "q() :- R(x, y), x > x", true, true},
};

struct Row {
  std::string cls;
  std::size_t pending = 0;
  std::string algorithm;
  double analyze_us = 0;     // One-off classification cost.
  double classified_us = 0;  // Per classified Check(q, report).
  double legacy_us = 0;      // Per legacy runtime-gated Check(q).
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"class\": \"%s\", \"pending\": %zu, "
                 "\"algorithm\": \"%s\", \"analyze_us\": %.3f, "
                 "\"classified_us\": %.3f, \"legacy_us\": %.3f}%s\n",
                 r.cls.c_str(), r.pending, r.algorithm.c_str(), r.analyze_us,
                 r.classified_us, r.legacy_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %zu rows to %s\n", rows.size(),
               path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::ApplySmokeFlag(&argc, argv);
  const std::vector<std::size_t> pending_sizes =
      smoke ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t iters = smoke ? 5 : 50;

  std::vector<Row> rows;
  std::printf("%-16s %8s %-14s %12s %14s %12s\n", "class", "pending",
              "algorithm", "analyze_us", "classified_us", "legacy_us");
  for (const Scenario& scenario : kScenarios) {
    for (std::size_t pending : pending_sizes) {
      BlockchainDatabase db =
          MakeDb(/*seed=*/42 + pending, scenario.keys, scenario.inds, pending);
      DcSatEngine engine(&db);
      engine.PrepareSteadyState();
      auto q = ParseDenialConstraint(scenario.query);
      if (!q.ok()) std::abort();

      Stopwatch analyze_watch;
      AnalysisReport report = engine.Analyze(*q);
      const double analyze_us = analyze_watch.ElapsedSeconds() * 1e6;
      if (!report.ok()) std::abort();
      if (std::string(TractabilityClassToString(report.tractability)) !=
          scenario.label) {
        std::fprintf(stderr, "scenario %s classified as %s\n", scenario.label,
                     TractabilityClassToString(report.tractability));
        std::abort();
      }

      Row row;
      row.cls = scenario.label;
      row.pending = pending;
      row.analyze_us = analyze_us;

      Stopwatch classified_watch;
      for (std::size_t i = 0; i < iters; ++i) {
        auto result = engine.Check(*q, report);
        if (!result.ok()) std::abort();
        if (i == 0) {
          row.algorithm =
              DcSatAlgorithmToString(result->stats.algorithm_used);
        }
      }
      row.classified_us = classified_watch.ElapsedSeconds() * 1e6 / iters;

      Stopwatch legacy_watch;
      for (std::size_t i = 0; i < iters; ++i) {
        auto result = engine.Check(*q);
        if (!result.ok()) std::abort();
      }
      row.legacy_us = legacy_watch.ElapsedSeconds() * 1e6 / iters;

      std::printf("%-16s %8zu %-14s %12.3f %14.3f %12.3f\n", row.cls.c_str(),
                  pending, row.algorithm.c_str(), row.analyze_us,
                  row.classified_us, row.legacy_us);
      rows.push_back(row);
    }
  }

  WriteJson("BENCH_dispatch.json", rows);
  return 0;
}
