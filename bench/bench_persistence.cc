// Durable-store cost model: write amplification of the WAL + checkpoint
// pipeline under each sync policy, and wall-clock recovery time from (a) a
// pure WAL replay and (b) a checkpoint plus WAL suffix.
//
// Phases per sync policy (kNone / kGroup / kEveryRecord):
//   ingest      stream the generated dataset through the DurabilitySink
//   churn       mempool add/discard cycles growing the WAL
//   recover_wal reopen + full recovery with no checkpoint on disk
//   checkpoint  write a snapshot segment, bounding future replay
//   recover_ckp reopen + recovery from the checkpoint + WAL suffix
//
// Standalone timer (no google-benchmark): emits a human table on stderr
// and the machine-readable BENCH_persistence.json. Pass --smoke (or
// BCDB_BENCH_SMOKE=1) for a seconds-scale CI run. Scratch state lives in
// ./bench_persistence_scratch and is removed on exit.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/durable_store.h"

namespace {

using namespace bcdb;
using namespace bcdb::bench;
using bcdb::storage::DurableStore;
using bcdb::storage::DurableStoreOptions;
using bcdb::storage::DurableStoreStats;
using bcdb::storage::SyncPolicy;

struct Row {
  std::string phase;
  std::string sync;
  double seconds = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t segment_bytes = 0;
  double write_amp = 0;
  std::uint64_t recovered_snapshot_tuples = 0;
  std::uint64_t recovered_wal_records = 0;
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"phase\": \"%s\", \"sync\": \"%s\", \"seconds\": %.6f, "
        "\"wal_records\": %llu, \"wal_bytes\": %llu, "
        "\"segment_bytes\": %llu, \"write_amp\": %.3f, "
        "\"recovered_snapshot_tuples\": %llu, "
        "\"recovered_wal_records\": %llu}%s\n",
        r.phase.c_str(), r.sync.c_str(), r.seconds,
        static_cast<unsigned long long>(r.wal_records),
        static_cast<unsigned long long>(r.wal_bytes),
        static_cast<unsigned long long>(r.segment_bytes), r.write_amp,
        static_cast<unsigned long long>(r.recovered_snapshot_tuples),
        static_cast<unsigned long long>(r.recovered_wal_records),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %zu rows to %s\n", rows.size(),
               path.c_str());
}

Row Snapshot(const std::string& phase, const std::string& sync,
             double seconds, const DurableStoreStats& stats) {
  Row row;
  row.phase = phase;
  row.sync = sync;
  row.seconds = seconds;
  row.wal_records = stats.wal_records;
  row.wal_bytes = stats.wal_bytes;
  row.segment_bytes = stats.segment_bytes;
  row.write_amp = stats.WriteAmplification();
  row.recovered_snapshot_tuples = stats.recovered_snapshot_tuples;
  row.recovered_wal_records = stats.recovered_wal_records;
  return row;
}

void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::abort();
}

std::unique_ptr<DurableStore> OpenOrDie(const std::string& dir,
                                        SyncPolicy policy) {
  DurableStoreOptions options;
  options.sync = policy;
  auto store = DurableStore::Open(dir, bitcoin::MakeBitcoinCatalog(),
                                  options);
  if (!store.ok()) Die("open", store.status());
  return std::move(*store);
}

/// Reopens `dir` and runs full recovery, returning the recovered database
/// and the freshly-positioned store.
std::pair<std::unique_ptr<DurableStore>, BlockchainDatabase> RecoverOrDie(
    const std::string& dir, SyncPolicy policy) {
  std::unique_ptr<DurableStore> store = OpenOrDie(dir, policy);
  auto constraints = bitcoin::MakeBitcoinConstraints(store->catalog());
  if (!constraints.ok()) Die("constraints", constraints.status());
  auto db = store->Recover(std::move(*constraints));
  if (!db.ok()) Die("recover", db.status());
  return {std::move(store), std::move(*db)};
}

/// One mempool cycle: a fresh pending transaction enters, the previous
/// churn transaction leaves. Every step appends two WAL records.
void Churn(BlockchainDatabase& db, std::size_t steps) {
  PendingId previous = kNoPendingId;
  for (std::size_t step = 0; step < steps; ++step) {
    Transaction incoming("persist-churn-" + std::to_string(step));
    incoming.Add(
        bitcoin::kTxOut,
        Tuple({Value::Int(static_cast<std::int64_t>(20'000'000 + step)),
               Value::Int(0), Value::Str("PersistPk"), Value::Int(1)}));
    auto id = db.AddPending(incoming);
    if (!id.ok()) Die("churn add", id.status());
    if (previous != kNoPendingId && !db.DiscardPending(previous).ok()) {
      std::abort();
    }
    previous = *id;
  }
}

const char* PolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kGroup:
      return "group";
    case SyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(&argc, argv);  // Accepted for uniformity; runs serial.
  const bool smoke = ApplySmokeFlag(&argc, argv);
  const std::size_t churn_steps = smoke ? 40 : 2000;

  bitcoin::GeneratorParams params;
  if (smoke) {
    params.seed = 7;
    params.num_blocks = 6;
    params.num_users = 6;
    params.num_pending = 8;
    params.num_contradictions = 1;
    params.pending_chain_depth = 2;
    params.star_size = 2;
    params.rich_payments = 2;
  } else {
    params = workload::DefaultDataset().params;
  }
  auto workload = bitcoin::GenerateWorkload(params);
  if (!workload.ok()) Die("generate", workload.status());
  const bitcoin::SimulatedNode& node = workload->node;

  const std::filesystem::path scratch = "bench_persistence_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  std::vector<Row> rows;
  for (SyncPolicy policy :
       {SyncPolicy::kNone, SyncPolicy::kGroup, SyncPolicy::kEveryRecord}) {
    const std::string name = PolicyName(policy);
    const std::string dir = (scratch / name).string();

    // Ingest: stream the dataset's relational image through the sink.
    std::unique_ptr<DurableStore> store = OpenOrDie(dir, policy);
    {
      auto bootstrap = store->Recover(ConstraintSet{});
      if (!bootstrap.ok()) Die("bootstrap", bootstrap.status());
    }
    Stopwatch ingest_watch;
    auto db = bitcoin::BuildBlockchainDatabase(node, store.get());
    if (!db.ok()) Die("ingest", db.status());
    if (!store->Sync().ok() || !store->status().ok()) {
      Die("sync", store->status());
    }
    rows.push_back(Snapshot("ingest", name, ingest_watch.ElapsedSeconds(),
                            store->stats()));

    // Churn: add/discard cycles growing the WAL past the snapshot.
    Stopwatch churn_watch;
    Churn(*db, churn_steps);
    if (!store->Sync().ok()) Die("sync", store->status());
    rows.push_back(Snapshot("churn", name, churn_watch.ElapsedSeconds(),
                            store->stats()));
    store.reset();

    // Recovery with nothing but the WAL on disk.
    Stopwatch wal_watch;
    auto [recovered_store, recovered] = RecoverOrDie(dir, policy);
    rows.push_back(Snapshot("recover_wal", name, wal_watch.ElapsedSeconds(),
                            recovered_store->stats()));

    // Checkpoint bounds replay: snapshot, more churn, recover again.
    Stopwatch checkpoint_watch;
    if (!recovered_store->Checkpoint(recovered).ok()) {
      Die("checkpoint", recovered_store->status());
    }
    rows.push_back(Snapshot("checkpoint", name,
                            checkpoint_watch.ElapsedSeconds(),
                            recovered_store->stats()));
    recovered.AttachDurabilitySink(recovered_store.get());
    Churn(recovered, churn_steps / 4);
    if (!recovered_store->Sync().ok()) Die("sync", recovered_store->status());
    recovered_store.reset();

    Stopwatch ckp_watch;
    auto [final_store, final_db] = RecoverOrDie(dir, policy);
    rows.push_back(Snapshot("recover_ckp", name, ckp_watch.ElapsedSeconds(),
                            final_store->stats()));
    std::fprintf(stderr,
                 "[%s] ingest %.3fs, churn %.3fs, recover(wal) %.3fs, "
                 "recover(ckp) %.3fs, write_amp %.2f\n",
                 name.c_str(), rows[rows.size() - 5].seconds,
                 rows[rows.size() - 4].seconds, rows[rows.size() - 3].seconds,
                 rows[rows.size() - 1].seconds,
                 rows[rows.size() - 4].write_amp);
    if (final_db.version() != recovered.version()) {
      std::fprintf(stderr, "recovery version mismatch\n");
      return 1;
    }
  }

  WriteJson("BENCH_persistence.json", rows);
  std::filesystem::remove_all(scratch);
  return 0;
}
