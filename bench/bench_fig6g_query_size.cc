// Figure 6g: execution time of unsatisfied path constraints qp2..qp5 as the
// query grows. Expected shape: runtime rises only slightly with query size
// — query evaluation is a small share of the total; graph construction and
// world materialization dominate.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  auto data = Prepare(DefaultDataset());
  DcSatEngine* engine = data->engine.get();
  const bitcoin::WorkloadMetadata& meta = data->metadata;

  for (std::size_t i : {2u, 3u, 4u, 5u}) {
    const std::string suffix = "/size:" + std::to_string(i);
    RegisterDcSat("Fig6g/qp/Naive" + suffix, engine, PathUnsat(meta, i),
                  NaiveOptions());
    RegisterDcSat("Fig6g/qp/Opt" + suffix, engine, PathUnsat(meta, i),
                  OptOptions());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
