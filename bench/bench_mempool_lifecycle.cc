// Full-lifecycle mempool churn at block-interval rates: every mutation kind
// the database publishes — pending adds, fee-capped evictions, replace-by-
// fee (discard + re-add), block confirmation (ApplyPending + a coinbase
// InsertCurrent), and chain reorgs (UnapplyPending + RemoveCurrent of the
// orphaned coinbase) — driven at ratios shaped like Bitcoin mainnet's
// (arrivals ~2x confirmations per block interval, evictions and
// replacements a small fraction of arrivals, shallow reorgs every few
// blocks).
//
// Times a DCSat check per block interval on an engine that patches its
// steady-state caches (fd graph determinant buckets, Θ_I components,
// validity bits) from the mutation-delta log versus one forced to rebuild
// from scratch, and the matching incremental vs full monitor polls. The
// base-state events must be handled incrementally: the run fails if the
// engine ever takes the fallbacks_base_insert rebuild path, or if the
// incremental check is not decisively faster (>= 5x in the full
// configuration).
//
// Standalone timer (no google-benchmark): emits a human table on stderr and
// the machine-readable BENCH_mempool_lifecycle.json. Pass --smoke (or
// BCDB_BENCH_SMOKE=1) for a seconds-scale CI run.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

namespace {

using namespace bcdb;
using namespace bcdb::bench;
using namespace bcdb::workload;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

SteadyStateOptions FullRebuildPolicy() {
  SteadyStateOptions options;
  options.incremental = false;
  return options;
}

void AddStanding(ConstraintMonitor& monitor,
                 const bitcoin::WorkloadMetadata& meta) {
  const std::string pks[] = {meta.rich_pk, meta.star_pk, meta.quiet_pk,
                             "ChurnPk"};
  for (const std::string& pk : pks) {
    auto handle = monitor.Add("paid " + pk, MakeSimpleConstraint(pk));
    if (!handle.ok()) {
      std::fprintf(stderr, "monitor add failed: %s\n",
                   handle.status().ToString().c_str());
      std::abort();
    }
  }
}

/// One synthetic mempool payment: a single fresh TxOut row. Fresh txids keep
/// the (txId, ser) key clean so churn never manufactures contradictions.
Transaction ChurnTxn(std::int64_t txid, const std::string& pk) {
  Transaction txn("lifecycle-" + std::to_string(txid));
  txn.Add(bitcoin::kTxOut,
          Tuple({Value::Int(txid), Value::Int(1), Value::Str(pk),
                 Value::Int(1000)}));
  return txn;
}

struct LifecycleRates {
  std::size_t intervals = 0;
  std::size_t adds = 0;      // arrivals per block interval
  std::size_t confirms = 0;  // transactions per mined block
  std::size_t evicts = 0;    // fee-capped evictions per interval
  std::size_t replaces = 0;  // replace-by-fee per interval
  std::size_t reorg_every = 0;  // a 1-block reorg every Nth interval
};

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(&argc, argv);  // Accepted for uniformity; runs serial.
  const bool smoke = ApplySmokeFlag(&argc, argv);

  // Mainnet-shaped ratios, scaled to the dataset: arrivals roughly double
  // confirmations, evictions/replacements trail well behind arrivals, and a
  // shallow reorg interrupts every few blocks.
  LifecycleRates rates;
  if (smoke) {
    rates = {/*intervals=*/6, /*adds=*/8,     /*confirms=*/4,
             /*evicts=*/2,    /*replaces=*/1, /*reorg_every=*/3};
  } else {
    rates = {/*intervals=*/48, /*adds=*/24,    /*confirms=*/12,
             /*evicts=*/6,     /*replaces=*/3, /*reorg_every=*/6};
  }

  auto spec = smoke ? WithPendingTotal(DefaultDataset(), 600)
                    : DefaultDataset();
  auto data = Prepare(spec);
  if (smoke) data->name += "_smoke";
  BlockchainDatabase& db = *data->db;

  DcSatEngine& incremental_engine = *data->engine;
  DcSatEngine full_engine(&db, FullRebuildPolicy());
  full_engine.PrepareSteadyState();

  ConstraintMonitor incremental_monitor(&db);
  MonitorOptions full_monitor_options;
  full_monitor_options.steady = FullRebuildPolicy();
  full_monitor_options.dirty_tracking = false;
  ConstraintMonitor full_monitor(&db, full_monitor_options);
  AddStanding(incremental_monitor, data->metadata);
  AddStanding(full_monitor, data->metadata);

  DcSatOptions options;
  options.num_threads = 1;
  const DenialConstraint q = SimpleSat(data->metadata);

  // Seed the churn queue so every interval confirms/evicts transactions
  // added in *earlier* delta batches (the engine deliberately rebuilds on
  // an add-and-apply of the same transaction inside one batch; a mempool
  // never confirms a transaction the instant it arrives either).
  std::deque<PendingId> live;
  std::int64_t next_txid = 20'000'000;
  const std::string cycle_pks[] = {"ChurnPk", data->metadata.quiet_pk,
                                   "RbfPk", data->metadata.star_pk};
  for (std::size_t s = 0; s < 64; ++s) {
    auto id = db.AddPending(ChurnTxn(next_txid++, cycle_pks[s % 4]));
    if (!id.ok()) {
      std::fprintf(stderr, "seed add failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    live.push_back(*id);
  }

  // Warm both engines and monitors on the seeded state.
  (void)CheckOrDie(incremental_engine, q, options);
  (void)CheckOrDie(full_engine, q, options);
  if (!incremental_monitor.Poll(options).ok() ||
      !full_monitor.Poll(options).ok()) {
    std::fprintf(stderr, "warm-up poll failed\n");
    return 1;
  }

  std::vector<double> check_incremental, check_full;
  std::vector<double> poll_incremental, poll_full;
  bool satisfied = false;
  std::vector<PendingId> last_block;  // most recent confirmations
  Tuple last_coinbase;
  std::size_t total_adds = 0, total_confirms = 0, total_evicts = 0;
  std::size_t total_replaces = 0, total_reorgs = 0, total_restored = 0;

  auto die = [](const char* what, const Status& status) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  };

  for (std::size_t interval = 0; interval < rates.intervals; ++interval) {
    const bool reorg_now = rates.reorg_every > 0 && interval > 0 &&
                           interval % rates.reorg_every == 0 &&
                           !last_block.empty();
    if (reorg_now) {
      // A competing branch displaced the last block: its transactions fall
      // back to the mempool and its coinbase vanishes from current state.
      for (PendingId id : last_block) {
        Status restored = db.UnapplyPending(id);
        if (!restored.ok()) die("unapply", restored);
        live.push_back(id);
        ++total_restored;
      }
      Status removed = db.RemoveCurrent(bitcoin::kTxOut, last_coinbase);
      if (!removed.ok()) die("remove coinbase", removed);
      last_block.clear();
      ++total_reorgs;
    } else {
      // Mine: confirm the oldest pending churn transactions plus a fresh
      // coinbase output entering the current state.
      last_block.clear();
      for (std::size_t c = 0; c < rates.confirms && !live.empty(); ++c) {
        const PendingId id = live.front();
        live.pop_front();
        Status applied = db.ApplyPending(id);
        if (!applied.ok()) die("apply", applied);
        last_block.push_back(id);
        ++total_confirms;
      }
      last_coinbase = Tuple({Value::Int(next_txid++), Value::Int(1),
                             Value::Str("LifecycleMinerPk"),
                             Value::Int(5'000'000'000)});
      Status mined = db.InsertCurrent(bitcoin::kTxOut, last_coinbase);
      if (!mined.ok()) die("insert coinbase", mined);
    }

    // Fee-capped eviction of the oldest entries.
    for (std::size_t e = 0; e < rates.evicts && !live.empty(); ++e) {
      const PendingId id = live.front();
      live.pop_front();
      Status evicted = db.DiscardPending(id);
      if (!evicted.ok()) die("evict", evicted);
      ++total_evicts;
    }

    // Replace-by-fee: the old payment leaves, its replacement arrives.
    for (std::size_t r = 0; r < rates.replaces && !live.empty(); ++r) {
      const PendingId id = live.front();
      live.pop_front();
      Status dropped = db.DiscardPending(id);
      if (!dropped.ok()) die("rbf discard", dropped);
      auto replacement = db.AddPending(ChurnTxn(next_txid++, "RbfPk"));
      if (!replacement.ok()) die("rbf add", replacement.status());
      live.push_back(*replacement);
      ++total_replaces;
    }

    // New arrivals.
    for (std::size_t a = 0; a < rates.adds; ++a) {
      auto id = db.AddPending(
          ChurnTxn(next_txid++, cycle_pks[(total_adds + a) % 4]));
      if (!id.ok()) die("add", id.status());
      live.push_back(*id);
    }
    total_adds += rates.adds;

    Stopwatch inc_watch;
    const DcSatResult inc = CheckOrDie(incremental_engine, q, options);
    check_incremental.push_back(inc_watch.ElapsedSeconds());

    Stopwatch full_watch;
    const DcSatResult full = CheckOrDie(full_engine, q, options);
    check_full.push_back(full_watch.ElapsedSeconds());

    if (inc.satisfied != full.satisfied) {
      std::fprintf(stderr,
                   "interval %zu: incremental/full verdicts diverge\n",
                   interval);
      return 1;
    }
    satisfied = inc.satisfied;

    Stopwatch inc_poll_watch;
    if (!incremental_monitor.Poll(options).ok()) return 1;
    poll_incremental.push_back(inc_poll_watch.ElapsedSeconds());

    Stopwatch full_poll_watch;
    if (!full_monitor.Poll(options).ok()) return 1;
    poll_full.push_back(full_poll_watch.ElapsedSeconds());
  }

  const SteadyStateStats& stats = incremental_engine.steady_state_stats();
  std::fprintf(stderr,
               "[lifecycle] %zu intervals: %zu adds, %zu confirms, %zu "
               "evictions, %zu replacements, %zu reorgs (%zu restored); "
               "engine: %zu incremental batches (%zu events), %zu full "
               "rebuilds, %zu base-insert fallbacks\n",
               rates.intervals, total_adds, total_confirms, total_evicts,
               total_replaces, total_reorgs, total_restored,
               stats.incremental_batches, stats.incremental_events,
               stats.full_rebuilds, stats.fallbacks_base_insert);
  if (total_reorgs == 0) {
    std::fprintf(stderr, "FAIL: churn schedule never exercised a reorg\n");
    return 1;
  }
  if (stats.incremental_batches == 0) {
    std::fprintf(stderr, "incremental engine never took the delta path\n");
    return 1;
  }
  // The tentpole claim: base inserts/removals and reorg restorations are
  // patched into the steady-state caches, never punted to a rebuild.
  if (stats.fallbacks_base_insert != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu base-state events fell back to a full rebuild\n",
                 stats.fallbacks_base_insert);
    return 1;
  }

  struct Mode {
    const char* workload;
    std::vector<double>* times;
    double baseline_median;
  };
  const double check_full_median = Median(check_full);
  const double poll_full_median = Median(poll_full);
  Mode modes[] = {
      {"check_incremental", &check_incremental, check_full_median},
      {"check_full_rebuild", &check_full, check_full_median},
      {"poll_incremental", &poll_incremental, poll_full_median},
      {"poll_full_rebuild", &poll_full, poll_full_median},
  };
  std::vector<BenchJsonRow> rows;
  for (const Mode& mode : modes) {
    const double median = Median(*mode.times);
    BenchJsonRow row;
    row.dataset = data->name;
    row.workload = mode.workload;
    row.threads = 1;
    row.seconds = median;
    row.speedup = median > 0 ? mode.baseline_median / median : 1.0;
    row.satisfied = satisfied;
    rows.push_back(row);
    std::fprintf(stderr, "%-22s %-20s median %9.3f ms  vs full %.1fx\n",
                 data->name.c_str(), mode.workload, median * 1e3,
                 row.speedup);
  }

  WriteBenchJson("BENCH_mempool_lifecycle.json", rows);

  // Smoke runs (tiny dataset, sanitizer CI) only require the delta path to
  // win; the full configuration must beat the rebuild decisively.
  const double required = smoke ? 1.0 : 5.0;
  const double achieved =
      Median(check_incremental) > 0
          ? check_full_median / Median(check_incremental)
          : required;
  if (achieved < required) {
    std::fprintf(stderr,
                 "FAIL: incremental check only %.2fx faster than full "
                 "rebuild (need >= %.1fx)\n",
                 achieved, required);
    return 1;
  }
  return 0;
}
