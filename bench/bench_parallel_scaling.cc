// Parallel OptDCSat scaling: wall-clock speedup of the component-level
// clique search at 1/2/4/8 worker threads, on the two workload shapes the
// parallelism targets — contradiction-heavy (many conflict pairs → many
// cliques per component) and many-pending (many covered components). A
// Naive run rides along as the single-component regression guard: with at
// most one component the parallel path never engages, so its times at any
// thread count must match the serial reference.
//
// Unlike the Figure-6 benches this is a standalone timer (no
// google-benchmark): it emits a human table on stderr and the
// machine-readable trajectory BENCH_parallel_scaling.json for future
// regression tracking.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace bcdb;
using namespace bcdb::bench;
using namespace bcdb::workload;

// Shrunk by --smoke (CI runs every bench path in seconds).
std::vector<std::size_t> g_thread_sweep = {1, 2, 4, 8};
int g_repetitions = 3;

double MedianSeconds(DcSatEngine& engine, const DenialConstraint& q,
                     const DcSatOptions& options, DcSatResult* last) {
  std::vector<double> times;
  times.reserve(g_repetitions);
  for (int rep = 0; rep < g_repetitions; ++rep) {
    Stopwatch watch;
    *last = CheckOrDie(engine, q, options);
    times.push_back(watch.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void SweepThreads(PreparedDataset& data, const std::string& workload,
                  const DenialConstraint& q, DcSatOptions options,
                  std::vector<BenchJsonRow>& rows) {
  (void)CheckOrDie(*data.engine, q, options);  // Warm indexes and caches.
  double serial_seconds = 0;
  for (std::size_t threads : g_thread_sweep) {
    options.num_threads = threads;
    DcSatResult last;
    const double seconds = MedianSeconds(*data.engine, q, options, &last);
    if (threads == 1) serial_seconds = seconds;
    BenchJsonRow row;
    row.dataset = data.name;
    row.workload = workload;
    row.threads = threads;
    row.seconds = seconds;
    row.speedup = seconds > 0 ? serial_seconds / seconds : 1.0;
    row.satisfied = last.satisfied;
    rows.push_back(row);
    std::fprintf(stderr,
                 "%-22s %-16s threads=%zu  %8.1f ms  speedup %.2fx  "
                 "(components=%zu covered=%zu cliques=%zu cancelled=%zu)\n",
                 data.name.c_str(), workload.c_str(), threads,
                 seconds * 1e3, row.speedup, last.stats.num_components,
                 last.stats.num_components_covered, last.stats.num_cliques,
                 last.stats.cancelled_tasks);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(&argc, argv);  // Accepted for uniformity; sweep overrides.
  const bool smoke = ApplySmokeFlag(&argc, argv);
  if (smoke) {
    g_thread_sweep = {1, 2};
    g_repetitions = 1;
  }

  // With the constant-coverage filter on, the Figure-6 path constraints
  // leave a single covered component and there is nothing to fan out. The
  // scaling rows therefore disable covers so every component runs its
  // clique search — the shape the component-level parallelism targets.
  DcSatOptions full_search = OptOptions();
  full_search.use_covers = false;
  DcSatOptions full_search_sat = full_search;
  full_search_sat.use_precheck = false;  // Sat ⇒ precheck would decide it.

  std::vector<BenchJsonRow> rows;

  // Contradiction-heavy: conflict pairs multiply the maximal cliques each
  // component contributes. Unsat ⇒ one component violates, so this row
  // exercises the cancellation path (siblings abort once a lower-index
  // violation is found).
  auto contra = Prepare(WithContradictions(
      smoke ? WithPendingTotal(DefaultDataset(), 1200) : DefaultDataset(),
      smoke ? 16 : 50));
  contra->name = smoke ? "contradictions16_smoke" : "contradictions50";
  SweepThreads(*contra, "qp3_unsat_full", PathUnsat(contra->metadata, 3),
               full_search, rows);

  // Sat ⇒ no early exit: every component is searched to completion, the
  // embarrassingly-parallel upper bound for the component fan-out.
  SweepThreads(*contra, "qp2_sat_full", PathSat(contra->metadata, 2),
               full_search_sat, rows);

  // Many-pending: the component count grows with |T|. (Skipped in smoke
  // mode: the contradiction dataset already covers the sat sweep.)
  if (!smoke) {
    auto pending = Prepare(WithPendingTotal(DefaultDataset(), 7382));
    pending->name = "pending7382";
    SweepThreads(*pending, "qp2_sat_full", PathSat(pending->metadata, 2),
                 full_search_sat, rows);
  }

  // Single-component regression guard: NaiveDCSat folds all pending
  // transactions into one component, so the parallel path must stay
  // disengaged and times must match serial within noise.
  SweepThreads(*contra, "qp3_unsat_naive", PathUnsat(contra->metadata, 3),
               NaiveOptions(), rows);

  WriteBenchJson("BENCH_parallel_scaling.json", rows);
  return 0;
}
