// Graceful degradation under a check budget: the verdict-coverage curve.
//
// DCSat is CoNP-complete for {key, ind} constraint sets (paper Theorem 1),
// so any latency SLO must tolerate checks that cannot finish. This bench
// sweeps the per-check budget over the conflict-ladder blowup workload
// (k double-spend pairs => |Poss(D)| = 3^k under a non-monotone
// constraint) and records, per (ladder size, budget) cell, whether the
// check still decided, how much of the search it completed, and how far
// past its deadline it ran — the curve showing coverage degrade gracefully
// from "everything decided" (unlimited) to "only the small instances
// decided" (tight budgets), with the overshoot staying within the
// cooperative-preemption envelope.
//
// Writes BENCH_deadline_degradation.json. --smoke shrinks the sweep for CI.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dcsat.h"
#include "query/parser.h"
#include "util/stopwatch.h"

namespace {

using namespace bcdb;

/// R(a, b) with key a; pending pairs (i,0) vs (i,1) for i < k.
BlockchainDatabase MakeConflictLadder(std::size_t k) {
  Catalog catalog;
  if (!catalog
           .AddRelation(RelationSchema(
               "R", {Attribute{"a", ValueType::kInt, false},
                     Attribute{"b", ValueType::kInt, false}}))
           .ok()) {
    std::abort();
  }
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  if (!db.ok()) std::abort();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::int64_t b : {0, 1}) {
      Transaction txn;
      txn.Add("R",
              Tuple({Value::Int(static_cast<std::int64_t>(i)), Value::Int(b)}));
      if (!db->AddPending(txn).ok()) std::abort();
    }
  }
  return std::move(*db);
}

struct Cell {
  std::string workload;
  std::size_t conflict_pairs = 0;
  double budget_ms = 0;  // 0 = unlimited.
  bool decided = false;
  bool satisfied = false;
  std::size_t worlds = 0;
  std::size_t cliques = 0;
  double seconds = 0;
  double overshoot = 0;  // elapsed / budget; 0 when unlimited.
};

void WriteJson(const std::string& path, const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "  {\"workload\": \"%s\", \"conflict_pairs\": %zu, "
                 "\"budget_ms\": %.4f, \"decided\": %s, \"satisfied\": %s, "
                 "\"worlds\": %zu, \"cliques\": %zu, \"seconds\": %.6f, "
                 "\"overshoot\": %.3f}%s\n",
                 c.workload.c_str(), c.conflict_pairs, c.budget_ms,
                 c.decided ? "true" : "false", c.satisfied ? "true" : "false",
                 c.worlds, c.cliques, c.seconds, c.overshoot,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote %zu rows to %s\n", cells.size(),
               path.c_str());
}

Cell RunCell(const char* workload, DcSatEngine& engine,
             const DenialConstraint& q, std::size_t k, double budget_ms) {
  DcSatOptions options;
  options.budget.deadline_ms = budget_ms;
  Stopwatch watch;
  auto result = engine.Check(q, options);
  const double seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "check failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  Cell cell;
  cell.workload = workload;
  cell.conflict_pairs = k;
  cell.budget_ms = budget_ms;
  cell.decided = result->decided;
  cell.satisfied = result->satisfied;
  cell.worlds = result->stats.num_worlds_evaluated;
  cell.cliques = result->stats.num_cliques;
  cell.seconds = seconds;
  cell.overshoot = budget_ms > 0 ? seconds * 1e3 / budget_ms : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::ApplySmokeFlag(&argc, argv);

  // Exhaustive-path curve: the non-monotone count constraint forces exact
  // 3^k possible-world enumeration; certifying it satisfied needs the full
  // search, so tight budgets must leave the large ladders undecided.
  std::vector<std::size_t> ladder_sizes =
      smoke ? std::vector<std::size_t>{2, 4, 6}
            : std::vector<std::size_t>{2, 4, 6, 8, 10};
  std::vector<double> budgets_ms =
      smoke ? std::vector<double>{0.05, 5, 0}
            : std::vector<double>{0.01, 0.1, 1, 10, 100, 0};

  auto exhaustive_q = ParseDenialConstraint("[q(count()) :- R(x, y)] = 99");
  // Monotone clique-path curve on the same ladder, with the tractable
  // fragments disabled so the budget gates the Bron–Kerbosch search.
  auto monotone_q = ParseDenialConstraint("q() :- R(x, 0), R(x, 1)");
  if (!exhaustive_q.ok() || !monotone_q.ok()) std::abort();

  std::vector<Cell> cells;
  std::printf("%-11s %6s %10s %8s %10s %10s %9s\n", "workload", "k",
              "budget_ms", "decided", "worlds", "seconds", "overshoot");
  for (std::size_t k : ladder_sizes) {
    BlockchainDatabase db = MakeConflictLadder(k);
    DcSatEngine engine(&db);
    engine.PrepareSteadyState();
    for (double budget_ms : budgets_ms) {
      Cell cell = RunCell("exhaustive", engine, *exhaustive_q, k, budget_ms);
      std::printf("%-11s %6zu %10.2f %8s %10zu %10.6f %9.2f\n", "exhaustive",
                  k, budget_ms, cell.decided ? "yes" : "no", cell.worlds,
                  cell.seconds, cell.overshoot);
      cells.push_back(cell);
    }
    for (double budget_ms : budgets_ms) {
      DcSatOptions options;
      options.use_tractable_fragments = false;
      options.budget.deadline_ms = budget_ms;
      Stopwatch watch;
      auto result = engine.Check(*monotone_q, options);
      if (!result.ok()) std::abort();
      Cell cell;
      cell.workload = "monotone";
      cell.conflict_pairs = k;
      cell.budget_ms = budget_ms;
      cell.decided = result->decided;
      cell.satisfied = result->satisfied;
      cell.worlds = result->stats.num_worlds_evaluated;
      cell.cliques = result->stats.num_cliques;
      cell.seconds = watch.ElapsedSeconds();
      cell.overshoot =
          budget_ms > 0 ? cell.seconds * 1e3 / budget_ms : 0;
      std::printf("%-11s %6zu %10.2f %8s %10zu %10.6f %9.2f\n", "monotone", k,
                  budget_ms, cell.decided ? "yes" : "no", cell.worlds,
                  cell.seconds, cell.overshoot);
      cells.push_back(cell);
    }
  }

  // Coverage summary per budget: the headline degradation curve.
  std::printf("\n%10s %12s\n", "budget_ms", "coverage");
  for (double budget_ms : budgets_ms) {
    std::size_t total = 0;
    std::size_t decided = 0;
    for (const Cell& cell : cells) {
      if (cell.budget_ms == budget_ms) {
        ++total;
        if (cell.decided) ++decided;
      }
    }
    std::printf("%10.2f %9zu/%zu\n", budget_ms, decided, total);
  }

  WriteJson("BENCH_deadline_degradation.json", cells);
  return 0;
}
