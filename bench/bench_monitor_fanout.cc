// Monitor fan-out: per-poll cost of N near-identical standing constraints
// under template batching versus the per-constraint baseline.
//
// The registration shapes stress the class structure the redesigned API is
// built around:
//   one_class    — one RegisterTemplate, N bindings: the advertised case.
//                  Per-poll work is one shared batch check whatever N is.
//   k_classes    — the same template registered 16 times (RegisterTemplate
//                  never merges), bindings striped round-robin: per-poll
//                  cost tracks the number of classes, not members.
//   all_distinct — one class per member: the degenerate grouping where
//                  batching cannot help and must not hurt.
// The baseline monitor runs the identical registrations with
// enable_template_batching = false, i.e. one grounded check per member.
//
// Standalone timer (no google-benchmark): emits a human table on stderr and
// the machine-readable BENCH_monitor_fanout.json. Pass --smoke (or
// BCDB_BENCH_SMOKE=1) for a seconds-scale CI run; the full run sweeps
// 10^2..10^5 in both modes plus a batched-only 10^6 point and enforces the
// >= 20x acceptance bound at 10^5 / one_class.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

namespace {

using namespace bcdb;
using namespace bcdb::bench;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

/// R(a, b) with key a: a few conflicting pending pairs (so polls do real
/// possible-worlds work) plus singleton transactions the fleet bindings can
/// hit. Small on purpose — the sweep varies the *fleet*, not the data.
BlockchainDatabase MakeDatabase() {
  Catalog catalog;
  if (!catalog
           .AddRelation(RelationSchema(
               "R", {Attribute{"a", ValueType::kInt, false},
                     Attribute{"b", ValueType::kInt, false}}))
           .ok()) {
    std::abort();
  }
  ConstraintSet constraints;
  auto key = FunctionalDependency::Key(catalog, "R", {"a"});
  if (!key.ok()) std::abort();
  constraints.AddFd(std::move(*key));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  if (!db.ok()) std::abort();
  for (std::int64_t i = 0; i < 8; ++i) {
    if (!db->InsertCurrent("R", Tuple({Value::Int(-1 - i), Value::Int(i % 3)}))
             .ok()) {
      std::abort();
    }
  }
  // Double-spend pairs (i,0) vs (i,1) for i < 4, then singletons.
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t b : {0, 1}) {
      Transaction txn;
      txn.Add("R", Tuple({Value::Int(i), Value::Int(b)}));
      if (!db->AddPending(txn).ok()) std::abort();
    }
  }
  for (std::int64_t i = 4; i < 16; ++i) {
    Transaction txn;
    txn.Add("R", Tuple({Value::Int(i), Value::Int(i % 3)}));
    if (!db->AddPending(txn).ok()) std::abort();
  }
  return std::move(*db);
}

constexpr const char* kTemplateText = "q() :- R($a, $b)";

/// Registers the fleet into `monitor` under `shape` and returns false on any
/// registration error.
bool RegisterFleet(ConstraintMonitor& monitor, const std::string& shape,
                   std::size_t n) {
  std::size_t num_classes = 1;
  if (shape == "k_classes") num_classes = 16;
  if (shape == "all_distinct") num_classes = n;
  std::vector<TemplateHandle> classes;
  classes.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::string label = "c";
    label += std::to_string(c);
    auto handle = monitor.RegisterTemplate(std::move(label), kTemplateText);
    if (!handle.ok()) {
      std::fprintf(stderr, "RegisterTemplate failed: %s\n",
                   handle.status().ToString().c_str());
      return false;
    }
    classes.push_back(*handle);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto handle = monitor.Bind(
        classes[i % num_classes],
        {Value::Int(static_cast<std::int64_t>(i)),
         Value::Int(static_cast<std::int64_t>(i % 3))});
    if (!handle.ok()) {
      std::fprintf(stderr, "Bind failed: %s\n",
                   handle.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

/// Median per-poll seconds over `polls` churn steps (one fresh pending
/// transaction per step keeps every member dirty, as in steady state).
double TimedPolls(ConstraintMonitor& monitor, BlockchainDatabase& db,
                  std::size_t polls, std::int64_t* next_key) {
  DcSatOptions options;
  options.num_threads = BenchNumThreads();
  if (!monitor.Poll(options).ok()) std::abort();  // Warm-up: first full poll.
  std::vector<double> seconds;
  for (std::size_t p = 0; p < polls; ++p) {
    Transaction churn;
    churn.Add("R", Tuple({Value::Int((*next_key)++), Value::Int(0)}));
    if (!db.AddPending(churn).ok()) std::abort();
    Stopwatch watch;
    if (!monitor.Poll(options).ok()) std::abort();
    seconds.push_back(watch.ElapsedSeconds());
  }
  return Median(seconds);
}

struct Run {
  std::string shape;
  std::size_t n = 0;
  bool batched = false;
  double seconds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ApplyThreadFlag(&argc, argv);
  const bool smoke = ApplySmokeFlag(&argc, argv);
  const std::size_t polls = smoke ? 3 : 5;

  struct Point {
    const char* shape;
    std::size_t n;
    bool run_baseline;
  };
  std::vector<Point> points;
  if (smoke) {
    points = {{"one_class", 100, true},
              {"one_class", 1000, true},
              {"k_classes", 1000, true},
              {"all_distinct", 200, true}};
  } else {
    points = {{"one_class", 100, true},      {"one_class", 1000, true},
              {"one_class", 10000, true},    {"one_class", 100000, true},
              {"one_class", 1000000, false},  // Baseline gated: ~minutes.
              {"k_classes", 1000, true},     {"k_classes", 10000, true},
              {"k_classes", 100000, true},   {"all_distinct", 1000, true},
              {"all_distinct", 10000, true}};
    std::fprintf(stderr,
                 "[cap] per-constraint baseline skipped at n=10^6 and "
                 "all_distinct capped at 10^4 (per-class compile cost "
                 "dominates both modes equally there)\n");
  }

  std::vector<Run> runs;
  std::int64_t next_key = 5'000'000;
  for (const Point& point : points) {
    for (bool batched : {true, false}) {
      if (!batched && !point.run_baseline) continue;
      BlockchainDatabase db = MakeDatabase();
      MonitorOptions options;
      options.enable_template_batching = batched;
      ConstraintMonitor monitor(&db, options);
      Stopwatch reg_watch;
      if (!RegisterFleet(monitor, point.shape, point.n)) return 1;
      const double reg_seconds = reg_watch.ElapsedSeconds();
      const double median = TimedPolls(monitor, db, polls, &next_key);
      runs.push_back({point.shape, point.n, batched, median});
      std::fprintf(stderr,
                   "%-13s n=%-8zu %-15s register %7.2fs  poll median "
                   "%10.3f ms  (classes=%zu, batched=%zu, evaluated=%zu)\n",
                   point.shape, point.n,
                   batched ? "batched" : "per_constraint", reg_seconds,
                   median * 1e3, monitor.num_classes(),
                   monitor.poll_stats().constraints_batched,
                   monitor.poll_stats().constraints_evaluated);
    }
  }

  auto find_run = [&](const std::string& shape, std::size_t n,
                      bool batched) -> const Run* {
    for (const Run& run : runs) {
      if (run.shape == shape && run.n == n && run.batched == batched) {
        return &run;
      }
    }
    return nullptr;
  };

  std::vector<BenchJsonRow> rows;
  for (const Run& run : runs) {
    const Run* baseline = find_run(run.shape, run.n, false);
    BenchJsonRow row;
    row.dataset = run.shape + "_n" + std::to_string(run.n) +
                  (smoke ? "_smoke" : "");
    row.workload = run.batched ? "batched" : "per_constraint";
    row.threads = BenchNumThreads() == 0 ? 0 : BenchNumThreads();
    row.seconds = run.seconds;
    row.speedup = (baseline != nullptr && run.seconds > 0)
                      ? baseline->seconds / run.seconds
                      : 1.0;
    row.satisfied = false;
    rows.push_back(row);
  }
  WriteBenchJson("BENCH_monitor_fanout.json", rows);

  // The acceptance bound: at 10^5 members in one class the shared batch
  // check must be at least 20x cheaper per poll than per-member grounding.
  if (!smoke) {
    const Run* batched = find_run("one_class", 100000, true);
    const Run* baseline = find_run("one_class", 100000, false);
    if (batched == nullptr || baseline == nullptr || batched->seconds <= 0) {
      std::fprintf(stderr, "FAIL: missing 10^5 one_class measurements\n");
      return 1;
    }
    const double speedup = baseline->seconds / batched->seconds;
    std::fprintf(stderr, "[acceptance] one_class n=100000: %.1fx\n", speedup);
    if (speedup < 20.0) {
      std::fprintf(stderr, "FAIL: batch speedup %.1fx < 20x\n", speedup);
      return 1;
    }
  }
  return 0;
}
