// Theorem-1 intractability made measurable: outside the monotone/tractable
// fragments DCSat falls back to exact possible-world enumeration, and with
// k independent double-spend pairs |Poss(D)| = 3^k (neither / first /
// second per pair). This bench sweeps k and shows the exponential wall the
// paper's CoNP-completeness results predict — and why the monotone
// algorithms' pre-check/clique machinery matters.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/dcsat.h"
#include "query/parser.h"

namespace {

using namespace bcdb;

/// R(a, b) with key a; pending pairs (i,0) vs (i,1) for i < k.
BlockchainDatabase MakeConflictLadder(std::size_t k) {
  Catalog catalog;
  if (!catalog
           .AddRelation(RelationSchema(
               "R", {Attribute{"a", ValueType::kInt, false},
                     Attribute{"b", ValueType::kInt, false}}))
           .ok()) {
    std::abort();
  }
  ConstraintSet constraints;
  constraints.AddFd(*FunctionalDependency::Key(catalog, "R", {"a"}));
  auto db =
      BlockchainDatabase::Create(std::move(catalog), std::move(constraints));
  if (!db.ok()) std::abort();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::int64_t b : {0, 1}) {
      Transaction txn;
      txn.Add("R",
              Tuple({Value::Int(static_cast<std::int64_t>(i)), Value::Int(b)}));
      if (!db->AddPending(txn).ok()) std::abort();
    }
  }
  return std::move(*db);
}

void BM_ExhaustiveWorlds(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  BlockchainDatabase db = MakeConflictLadder(k);
  DcSatEngine engine(&db);
  // Non-monotone (= comparison): forces the exhaustive algorithm. The
  // constraint is satisfied, so every world must be enumerated.
  auto q = ParseDenialConstraint("[q(count()) :- R(x, y)] = 99");
  if (!q.ok()) std::abort();
  std::size_t worlds = 0;
  for (auto _ : state) {
    auto result = engine.Check(*q);
    if (!result.ok() ||
        result->stats.algorithm_used != DcSatAlgorithm::kExhaustive) {
      state.SkipWithError("exhaustive path not taken");
      break;
    }
    worlds = result->stats.num_worlds_evaluated;
    benchmark::DoNotOptimize(result->satisfied);
  }
  state.counters["worlds"] = static_cast<double>(worlds);
  state.counters["conflict_pairs"] = static_cast<double>(k);
}

void BM_MonotoneSameInstance(benchmark::State& state) {
  // Contrast: the same conflict ladder under a *monotone* constraint is
  // decided by the tractable FD-only fragment in polynomial time.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  BlockchainDatabase db = MakeConflictLadder(k);
  DcSatEngine engine(&db);
  auto q = ParseDenialConstraint("q() :- R(x, 0), R(x, 1)");
  if (!q.ok()) std::abort();
  for (auto _ : state) {
    auto result = engine.Check(*q);
    if (!result.ok() || !result->satisfied) {
      state.SkipWithError("expected a satisfied verdict");
      break;
    }
    benchmark::DoNotOptimize(result->satisfied);
  }
  state.counters["conflict_pairs"] = static_cast<double>(k);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("Blowup/Exhaustive3PowK", BM_ExhaustiveWorlds)
      ->DenseRange(2, 10, 2)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Blowup/MonotoneTractable",
                               BM_MonotoneSameInstance)
      ->DenseRange(2, 10, 2)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
