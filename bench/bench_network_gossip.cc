// Gossip-layer microbenchmarks (beyond the paper's figures): cost of
// flooding transactions through P2P topologies of increasing size, and of
// the node-local DCSat view rebuild that a monitoring node performs after
// convergence. Grounds the paper's footnote 6 (per-node pending sets) in
// measured propagation costs.

#include <benchmark/benchmark.h>

#include "bitcoin/to_relational.h"
#include "core/dcsat.h"
#include "network/simulator.h"
#include "query/parser.h"

namespace {

using namespace bcdb;
using namespace bcdb::bitcoin;

/// Builds a funded network and a batch of independent payments to flood.
struct GossipFixture {
  explicit GossipFixture(std::size_t nodes) {
    net::NetworkParams params;
    params.num_nodes = nodes;
    params.extra_edges = nodes / 2;
    params.seed = 17;
    net = std::make_unique<net::NetworkSimulator>(params);
    MinerPolicy policy;
    policy.miner_pubkey = "FunderPk";
    for (int i = 0; i < 8; ++i) {
      if (!net->MineAt(0, policy).ok()) std::abort();
      net->Run();
    }
    for (const auto& [point, utxo] : net->node(0).chain().utxos()) {
      sources.emplace_back(point, utxo);
    }
  }

  BitcoinTransaction PaymentFrom(std::size_t i) const {
    const auto& [point, utxo] = sources[i % sources.size()];
    return BitcoinTransaction(
        {TxInput{point, utxo.pubkey, utxo.amount, SignatureFor(utxo.pubkey)}},
        {TxOutput{"Rcpt" + std::to_string(i) + "Pk", utxo.amount - 1000}});
  }

  std::unique_ptr<net::NetworkSimulator> net;
  std::vector<std::pair<OutPoint, Utxo>> sources;
};

void BM_FloodTransactions(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    GossipFixture fixture(nodes);
    state.ResumeTiming();
    for (std::size_t i = 0; i < fixture.sources.size(); ++i) {
      (void)fixture.net->BroadcastTransaction(i % nodes,
                                              fixture.PaymentFrom(i));
    }
    fixture.net->Run();
    benchmark::DoNotOptimize(fixture.net->events_processed());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_NodeLocalDcSatAfterConvergence(benchmark::State& state) {
  GossipFixture fixture(6);
  for (std::size_t i = 0; i < fixture.sources.size(); ++i) {
    (void)fixture.net->BroadcastTransaction(i % 6, fixture.PaymentFrom(i));
  }
  fixture.net->Run();
  auto q = ParseDenialConstraint("q() :- TxOut(t, s, 'Rcpt0Pk', a)");
  if (!q.ok()) std::abort();
  for (auto _ : state) {
    auto db = BuildBlockchainDatabase(fixture.net->node(3));
    if (!db.ok()) std::abort();
    DcSatEngine engine(&*db);
    auto result = engine.Check(*q);
    benchmark::DoNotOptimize(result.ok());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("Network/FloodTransactions",
                               BM_FloodTransactions)
      ->Arg(4)
      ->Arg(8)
      ->Arg(16)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Network/NodeLocalDcSatAfterConvergence",
                               BM_NodeLocalDcSatAfterConvergence)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
