// Figure 6e: execution time of qp3 (satisfied) as the number of injected
// functional-dependency contradictions (double spends among the pending
// transactions) varies over 10..50. Expected shape: flat and fast — the
// pre-check decides satisfied constraints regardless of conflicts.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  ApplyThreadFlag(&argc, argv);

  std::vector<std::unique_ptr<PreparedDataset>> datasets;
  for (std::size_t contradictions : {10u, 20u, 30u, 40u, 50u}) {
    datasets.push_back(
        Prepare(WithContradictions(DefaultDataset(), contradictions)));
    PreparedDataset* data = datasets.back().get();
    const std::string suffix =
        "/contradictions:" + std::to_string(contradictions);
    RegisterDcSat("Fig6e/qp3/Naive" + suffix, data->engine.get(),
                  PathSat(data->metadata, 3), NaiveOptions());
    RegisterDcSat("Fig6e/qp3/Opt" + suffix, data->engine.get(),
                  PathSat(data->metadata, 3), OptOptions());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
