// Ablation of the Section-6.3 optimizations, beyond the paper's figures:
//  * pre-check (evaluate q over R ∪ T first),
//  * constant-coverage filtering of components (OptDCSat),
//  * Tomita pivoting inside Bron–Kerbosch.
//
// Unsatisfied constraints run on the full default dataset. The
// precheck-off *satisfied* case runs on a deliberately small pending set:
// without the pre-check a satisfied constraint must enumerate every maximal
// clique, which is exponential in the number of contradictions — the
// ablation demonstrates exactly that cliff without taking hours.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace bcdb;
  using namespace bcdb::bench;
  using namespace bcdb::workload;

  auto with = [](DcSatOptions options, bool precheck, bool covers,
                 bool pivot) {
    options.use_precheck = precheck;
    options.use_covers = covers;
    options.use_pivot = pivot;
    return options;
  };

  // --- Unsatisfied qp3 on the default dataset. ---
  auto data = Prepare(DefaultDataset());
  {
    DcSatEngine* engine = data->engine.get();
    const bitcoin::WorkloadMetadata& meta = data->metadata;
    const DenialConstraint qp3 = PathUnsat(meta, 3);
    RegisterDcSat("Ablation/unsat_qp3/Opt/full", engine, qp3,
                  with(OptOptions(), true, true, true));
    RegisterDcSat("Ablation/unsat_qp3/Opt/no_precheck", engine, qp3,
                  with(OptOptions(), false, true, true));
    RegisterDcSat("Ablation/unsat_qp3/Opt/no_covers", engine, qp3,
                  with(OptOptions(), true, false, true));
    RegisterDcSat("Ablation/unsat_qp3/Opt/no_pivot", engine, qp3,
                  with(OptOptions(), true, true, false));
    RegisterDcSat("Ablation/unsat_qp3/Naive/full", engine, qp3,
                  with(NaiveOptions(), true, true, true));
    RegisterDcSat("Ablation/unsat_qp3/Naive/no_pivot", engine, qp3,
                  with(NaiveOptions(), true, true, false));
  }

  // --- Satisfied qp3: the pre-check cliff, on a small pending set. ---
  DatasetSpec small = WithPendingTotal(S100(), 300);
  small.params.num_contradictions = 6;
  small.name = "S100-small";
  auto small_data = Prepare(small);
  {
    DcSatEngine* engine = small_data->engine.get();
    const bitcoin::WorkloadMetadata& meta = small_data->metadata;
    const DenialConstraint qp3 = PathSat(meta, 3);
    RegisterDcSat("Ablation/sat_qp3_small/Naive/precheck", engine, qp3,
                  with(NaiveOptions(), true, true, true));
    RegisterDcSat("Ablation/sat_qp3_small/Naive/no_precheck", engine, qp3,
                  with(NaiveOptions(), false, true, true));
    RegisterDcSat("Ablation/sat_qp3_small/Opt/precheck", engine, qp3,
                  with(OptOptions(), true, true, true));
    RegisterDcSat("Ablation/sat_qp3_small/Opt/no_precheck", engine, qp3,
                  with(OptOptions(), false, true, true));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
